"""Geographic coordinate type and geometry helpers.

The paper's Figure 5 notes that ``GeoCoordinate`` "is a pair of doubles
(latitude and longitude) and so is numeric" — it supports the arithmetic
operators, which is what lets ``Uncertain[GeoCoordinate]`` flow through the
lifted operator algebra.
"""

from __future__ import annotations

import dataclasses
import math

#: Mean Earth radius in metres (IUGG).
EARTH_RADIUS_M = 6_371_008.8

#: Metres per degree of latitude (approximately constant).
M_PER_DEG_LAT = math.pi * EARTH_RADIUS_M / 180.0


@dataclasses.dataclass(frozen=True)
class GeoCoordinate:
    """A latitude/longitude pair in degrees, with vector arithmetic.

    Arithmetic treats coordinates as a numeric pair (the paper's framing);
    the geometry helpers below convert to metres when physical distances are
    needed.
    """

    latitude: float
    longitude: float

    def __add__(self, other: "GeoCoordinate") -> "GeoCoordinate":
        return GeoCoordinate(
            self.latitude + other.latitude, self.longitude + other.longitude
        )

    def __sub__(self, other: "GeoCoordinate") -> "GeoCoordinate":
        return GeoCoordinate(
            self.latitude - other.latitude, self.longitude - other.longitude
        )

    def __mul__(self, k: float) -> "GeoCoordinate":
        return GeoCoordinate(self.latitude * k, self.longitude * k)

    __rmul__ = __mul__

    def __truediv__(self, k: float) -> "GeoCoordinate":
        return GeoCoordinate(self.latitude / k, self.longitude / k)

    def __neg__(self) -> "GeoCoordinate":
        return GeoCoordinate(-self.latitude, -self.longitude)

    # -- geometry ----------------------------------------------------------

    def offset_m(self, east_m: float, north_m: float) -> "GeoCoordinate":
        """Translate by metres in the local tangent plane."""
        dlat = north_m / M_PER_DEG_LAT
        dlon = east_m / (M_PER_DEG_LAT * math.cos(math.radians(self.latitude)))
        return GeoCoordinate(self.latitude + dlat, self.longitude + dlon)

    def enu_m(self, origin: "GeoCoordinate") -> tuple[float, float]:
        """(east, north) metres of ``self`` relative to ``origin``."""
        north = (self.latitude - origin.latitude) * M_PER_DEG_LAT
        east = (
            (self.longitude - origin.longitude)
            * M_PER_DEG_LAT
            * math.cos(math.radians(origin.latitude))
        )
        return east, north


def haversine_m(a: GeoCoordinate, b: GeoCoordinate) -> float:
    """Great-circle distance in metres."""
    lat1, lon1 = math.radians(a.latitude), math.radians(a.longitude)
    lat2, lon2 = math.radians(b.latitude), math.radians(b.longitude)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = (
        math.sin(dlat / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    )
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(h)))


def enu_distance_m(a: GeoCoordinate, b: GeoCoordinate) -> float:
    """Planar local-tangent distance in metres (fast, accurate at walk scale)."""
    east, north = b.enu_m(a)
    return math.hypot(east, north)
