"""Bulkhead isolation: per-group breakers, fail-fast rejects, recovery.

One pathological plan shape must not starve the rest of the service: its
structural group trips its own circuit breaker and fails fast with
``Retry-After``-style metadata while healthy groups keep serving.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Uncertain
from repro.dists import Gaussian
from repro.dists.base import Distribution
from repro.resilience.source import CircuitBreaker
from repro.service import (
    BulkheadRegistry,
    QueryRequest,
    Service,
    ServiceOverloaded,
    evaluate_request,
)
from repro.service.degradation import GroupBulkhead
from repro.service.errors import BulkheadRejected


def speed_query() -> Uncertain:
    east = Uncertain(Gaussian(4.0, 1.0))
    north = Uncertain(Gaussian(4.0, 1.0))
    return (east * east + north * north) ** 0.5


def run(coro):
    return asyncio.run(coro)


class Flaky(Distribution):
    """Fails on demand; flipping ``fail`` lets a recovery probe succeed."""

    def __init__(self) -> None:
        self.fail = True

    def sample_n(self, n, rng):
        if self.fail:
            raise RuntimeError("flaky source down")
        return rng.normal(0.0, 1.0, size=n)


def breaker(**overrides) -> CircuitBreaker:
    defaults = dict(window=8, failure_threshold=0.5, min_calls=2,
                    recovery_calls=4)
    defaults.update(overrides)
    return CircuitBreaker(**defaults)


class TestGroupBulkhead:
    def test_slot_accounting(self):
        bh = GroupBulkhead("g", limit=1, breaker=breaker(), retry_after_s=0.05)
        assert bh.try_enter() is None
        second = bh.try_enter()
        assert isinstance(second, BulkheadRejected)
        assert second.reason == "concurrency-limit"
        assert second.group == "g"
        assert second.retry_after_hint == 0.05
        bh.exit(True)
        assert bh.active == 0
        assert bh.try_enter() is None  # slot freed

    def test_breaker_open_rejects_scale_retry_after(self):
        bh = GroupBulkhead("g", limit=4, breaker=breaker(), retry_after_s=0.05)
        for _ in range(2):  # min_calls failures trip the breaker
            assert bh.try_enter() is None
            bh.exit(False)
        assert bh.breaker.state == "open"
        first = bh.try_enter()
        assert first.reason == "breaker-open"
        assert first.breaker_state == "open"
        later = bh.try_enter()
        # The hint shrinks as refused draws burn down the recovery count.
        assert later.retry_after_hint < first.retry_after_hint

    def test_cancelled_exits_are_breaker_neutral(self):
        bh = GroupBulkhead("g", limit=1, breaker=breaker(), retry_after_s=0.05)
        for _ in range(8):  # far past min_calls: still no outcomes recorded
            assert bh.try_enter() is None
            bh.exit(None)
        assert bh.breaker.state == "closed"

    def test_rejection_is_a_service_overloaded(self):
        # Clients with ServiceOverloaded handling get bulkhead rejects free.
        err = BulkheadRejected(group="g", breaker_state="open",
                              reason="breaker-open", retry_after_hint=0.2)
        assert isinstance(err, ServiceOverloaded)
        assert "breaker-open" in str(err)


class TestBulkheadRegistry:
    def test_lru_bound_drops_oldest_group(self):
        registry = BulkheadRegistry(max_groups=2)
        a, b = registry.get("a"), registry.get("b")
        registry.get("a")  # refresh a: b is now the eviction candidate
        registry.get("c")
        assert registry.get("a") is a
        assert registry.get("b") is not b  # evicted: fresh state
        assert len(registry.states()) == 2

    def test_open_groups_counts_non_closed_breakers(self):
        registry = BulkheadRegistry()
        bh = registry.get("bad")
        registry.get("good")
        for _ in range(2):
            bh.try_enter()
            bh.exit(False)
        assert registry.open_groups() == 1
        states = registry.states()
        assert states["bad"]["breaker"] == "open"
        assert states["good"]["breaker"] == "closed"

    def test_validation(self):
        with pytest.raises(ValueError, match="max_concurrency"):
            BulkheadRegistry(max_concurrency=0)
        with pytest.raises(ValueError, match="max_groups"):
            BulkheadRegistry(max_groups=0)
        with pytest.raises(ValueError, match="retry_after_s"):
            BulkheadRegistry(retry_after_s=-1.0)


class TestServiceIsolation:
    def test_tripped_group_fails_fast_while_healthy_group_serves(self):
        flaky = Flaky()
        bad = Uncertain(flaky) + 0.0
        good = speed_query()

        async def scenario():
            events = []
            async with Service(
                engine="numpy", window=0.001, retries=0, bulkheads=True
            ) as svc:
                # Two failing bulk evaluations trip the bad group's breaker.
                for seed in (1, 2):
                    with pytest.raises(RuntimeError, match="flaky source"):
                        await svc.samples(bad, 32, seed=seed)
                # Now the group fails fast: no evaluation is attempted, so
                # the flaky source is never touched again.
                flaky.fail = False  # would succeed — but the breaker says no
                with pytest.raises(BulkheadRejected) as err:
                    await svc.samples(bad, 32, seed=3)
                events.append(err.value)
                # A healthy group is untouched by the bad group's breaker.
                ok = await svc.samples(good, 32, seed=4)
                return events, ok, svc.stats()

        events, ok, stats = run(scenario())
        rejection = events[0]
        assert rejection.reason == "breaker-open"
        assert rejection.retry_after_hint > 0
        solo = evaluate_request(
            QueryRequest(value=speed_query(), kind="samples", samples=32,
                         seed=4),
            engine="numpy",
        )
        assert np.array_equal(ok.value, solo.value)
        assert stats["degradation"]["bulkhead_rejected"] >= 1

    def test_breaker_recovers_via_half_open_probe(self):
        flaky = Flaky()
        bad = Uncertain(flaky) + 0.0

        async def scenario():
            async with Service(
                engine="numpy", window=0.001, retries=0, bulkheads=True
            ) as svc:
                for seed in (1, 2):
                    with pytest.raises(RuntimeError):
                        await svc.samples(bad, 32, seed=seed)
                flaky.fail = False
                # The default registry breaker refuses recovery_calls=4
                # draws while OPEN, then admits a half-open probe.
                probed = None
                for seed in range(3, 12):
                    try:
                        probed = await svc.samples(bad, 32, seed=seed)
                        break
                    except BulkheadRejected:
                        continue
                assert probed is not None, "probe never admitted"
                # Closed again: the next request is served immediately.
                after = await svc.samples(bad, 32, seed=99)
                return probed, after, svc.stats()

        probed, after, stats = run(scenario())
        assert probed.value.shape == (32,)
        assert after.value.shape == (32,)
        groups = stats["degradation"]["groups"]
        bad_state = next(
            s for s in groups.values() if s["trips"] > 0
        )
        assert bad_state["breaker"] == "closed"
        assert bad_state["recoveries"] == 1
