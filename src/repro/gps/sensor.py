"""The GPS sensor model and its Uncertain-aware library API (Section 4.1).

A GPS fix is the true position perturbed by isotropic planar error; the
radial magnitude of that error is Rayleigh-distributed.  Sensors report a
"horizontal accuracy" ``epsilon`` — the 95% confidence radius — so the
Rayleigh scale is ``epsilon / sqrt(ln 400)`` (see :mod:`repro.dists.rayleigh`
for the derivation).

The expert-facing API mirrors the paper's Figure 12: ``GpsSensor.
get_location`` returns an ``Uncertain[GeoCoordinate]`` whose sampling
function draws a uniformly random angle and a Rayleigh radius around the
*measured* fix — the posterior over true locations given the fix.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.uncertain import Uncertain
from repro.dists.rayleigh import SCALE_FROM_95CI, Rayleigh
from repro.dists.sampling_function import FunctionDistribution
from repro.gps.geo import GeoCoordinate


class GpsDropout(RuntimeError):
    """The receiver failed to produce a fix (simulated signal loss).

    Raised by :meth:`GpsSensor.measure` when a dropout-prone sensor
    (``dropout_probability > 0``) loses signal; the resilience layer's
    :class:`~repro.resilience.ResilientSource` treats it as a retryable
    source failure (see :meth:`GpsSensor.resilient_location`).
    """


@dataclasses.dataclass(frozen=True)
class GpsFix:
    """What a conventional GPS API returns: a point plus an accuracy radius.

    This is the lossy abstraction of Section 2 — ``horizontal_accuracy`` is
    the 95% confidence radius that almost no application reads.
    """

    coordinate: GeoCoordinate
    horizontal_accuracy: float  # metres, 95% confidence radius
    timestamp: float  # seconds


def rayleigh_scale(epsilon_m: float) -> float:
    """Rayleigh scale (metres) from a 95% accuracy radius."""
    if epsilon_m <= 0:
        raise ValueError(f"horizontal accuracy must be positive, got {epsilon_m}")
    return epsilon_m * SCALE_FROM_95CI


def _fix_samples(fix: GpsFix, n: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` posterior draws (GeoCoordinate objects) around a fix."""
    rho = rayleigh_scale(fix.horizontal_accuracy)
    centre = fix.coordinate
    radii = rng.rayleigh(rho, size=n)
    angles = rng.uniform(0.0, 2.0 * math.pi, size=n)
    out = np.empty(n, dtype=object)
    for i in range(n):
        out[i] = centre.offset_m(
            radii[i] * math.cos(angles[i]), radii[i] * math.sin(angles[i])
        )
    return out


def gps_posterior(fix: GpsFix) -> Uncertain:
    """Figure 12's ``GPS.GetLocation``: the location posterior for a fix.

    Samples are ``GeoCoordinate`` objects: radius ~ Rayleigh(rho), angle ~
    Uniform[0, 2*pi), centred on the measured coordinate.
    """
    rho = rayleigh_scale(fix.horizontal_accuracy)
    centre = fix.coordinate

    def sample_one(rng: np.random.Generator) -> GeoCoordinate:
        radius = rng.rayleigh(rho)
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return centre.offset_m(radius * math.cos(angle), radius * math.sin(angle))

    def sample_many(n: int, rng: np.random.Generator) -> np.ndarray:
        return _fix_samples(fix, n, rng)

    dist = FunctionDistribution(sample_one, fn_n=sample_many)
    return Uncertain(dist, label=f"GPS@{centre.latitude:.5f},{centre.longitude:.5f}")


def gps_posterior_enu(
    fix: GpsFix, origin: GeoCoordinate
) -> tuple[Uncertain, Uncertain]:
    """The same posterior as planar (east, north) metre coordinates.

    Returns two correlated ``Uncertain[float]`` components sharing one
    underlying draw — built from a shared radius/angle leaf so the pair
    stays jointly consistent.  The planar form runs fully vectorised, which
    the benchmarks use.
    """
    rho = rayleigh_scale(fix.horizontal_accuracy)
    east0, north0 = fix.coordinate.enu_m(origin)

    def sample_offsets(n: int, rng: np.random.Generator) -> np.ndarray:
        radii = rng.rayleigh(rho, size=n)
        angles = rng.uniform(0.0, 2.0 * math.pi, size=n)
        return np.stack([radii * np.cos(angles), radii * np.sin(angles)], axis=1)

    offsets = Uncertain(
        FunctionDistribution(
            lambda rng: sample_offsets(1, rng)[0], fn_n=sample_offsets
        ),
        label="gps_offset_en",
    )
    east = offsets.map(lambda pair: pair[:, 0], vectorized=True, label="east") + east0
    north = (
        offsets.map(lambda pair: pair[:, 1], vectorized=True, label="north") + north0
    )
    return east, north


class GpsSensor:
    """A simulated GPS receiver with a realistic error process.

    ``measure`` perturbs ground truth with the error model and returns a
    :class:`GpsFix`; ``get_location`` wraps that fix in the posterior
    ``Uncertain[GeoCoordinate]``, which is the Uncertain-aware library call
    of Figure 12.

    Real GPS error is *temporally correlated* (the same satellites and
    atmosphere affect consecutive fixes) and punctuated by multipath
    glitches — which is exactly what produces the paper's absurd 59 mph
    walking speeds when positions are differenced.  The model here is an
    AR(1) error vector with stationary per-axis sigma matching the Rayleigh
    scale of ``epsilon_m``, plus transient glitch offsets:

    - ``correlation`` — AR(1) coefficient; 0 gives the iid model.
    - ``glitch_probability`` — per-fix chance of starting a glitch.
    - ``glitch_scale_m`` — magnitude scale of glitch offsets.
    - ``glitch_duration_s`` — how long a glitch persists.
    - ``honest_accuracy`` — when True, the reported horizontal accuracy
      grows during glitches (a good receiver knows it is struggling);
      when False the sensor always reports ``epsilon_m``.
    - ``dropout_probability`` — per-fix chance that the receiver produces
      no fix at all (urban canyon, tunnel): ``measure`` raises
      :class:`GpsDropout`.  See :meth:`resilient_location` for the
      hardened call that retries and degrades to the last good fix.
    """

    def __init__(
        self,
        epsilon_m: float = 4.0,
        rng: np.random.Generator | None = None,
        correlation: float = 0.0,
        glitch_probability: float = 0.0,
        glitch_scale_m: float = 25.0,
        glitch_duration_s: float = 2.0,
        honest_accuracy: bool = True,
        dropout_probability: float = 0.0,
    ) -> None:
        if epsilon_m <= 0:
            raise ValueError(f"epsilon_m must be positive, got {epsilon_m}")
        if not 0.0 <= correlation < 1.0:
            raise ValueError(f"correlation must be in [0, 1), got {correlation}")
        if not 0.0 <= glitch_probability <= 1.0:
            raise ValueError(
                f"glitch_probability must be in [0, 1], got {glitch_probability}"
            )
        if not 0.0 <= dropout_probability < 1.0:
            raise ValueError(
                f"dropout_probability must be in [0, 1), got {dropout_probability}"
            )
        self.epsilon_m = float(epsilon_m)
        self.correlation = float(correlation)
        self.glitch_probability = float(glitch_probability)
        self.glitch_scale_m = float(glitch_scale_m)
        self.glitch_duration_s = float(glitch_duration_s)
        self.honest_accuracy = honest_accuracy
        self.dropout_probability = float(dropout_probability)
        self._rho = rayleigh_scale(epsilon_m)
        from repro.rng import ensure_rng

        self._rng = ensure_rng(rng)
        # AR(1) error state (east, north) and glitch bookkeeping.
        self._error = (
            self._rng.normal(0.0, self._rho),
            self._rng.normal(0.0, self._rho),
        )
        self._glitch_offset = (0.0, 0.0)
        self._glitch_until = -math.inf
        self._last_timestamp: float | None = None
        self._last_fix: GpsFix | None = None

    def _step_error(self, timestamp: float) -> tuple[float, float, float]:
        """Advance the error process; return (east_err, north_err, epsilon)."""
        rng = self._rng
        a = self.correlation
        innovation = self._rho * math.sqrt(max(1.0 - a * a, 0.0))
        self._error = (
            a * self._error[0] + rng.normal(0.0, innovation),
            a * self._error[1] + rng.normal(0.0, innovation),
        )
        if timestamp >= self._glitch_until and rng.random() < self.glitch_probability:
            magnitude = rng.rayleigh(self.glitch_scale_m)
            angle = rng.uniform(0.0, 2.0 * math.pi)
            self._glitch_offset = (
                magnitude * math.cos(angle),
                magnitude * math.sin(angle),
            )
            self._glitch_until = timestamp + self.glitch_duration_s
        if timestamp >= self._glitch_until:
            self._glitch_offset = (0.0, 0.0)
        east = self._error[0] + self._glitch_offset[0]
        north = self._error[1] + self._glitch_offset[1]
        epsilon = self.epsilon_m
        if self.honest_accuracy and self._glitch_offset != (0.0, 0.0):
            glitch_mag = math.hypot(*self._glitch_offset)
            epsilon = max(epsilon, glitch_mag)
        return east, north, epsilon

    def measure(self, true_location: GeoCoordinate, timestamp: float = 0.0) -> GpsFix:
        """One noisy fix of a true location (raises :class:`GpsDropout`
        when a dropout-prone sensor loses signal)."""
        # Guarded draw: a sensor with dropout_probability == 0 consumes no
        # extra randomness, so existing sample streams are unchanged.
        if self.dropout_probability and self._rng.random() < self.dropout_probability:
            self._last_timestamp = timestamp
            raise GpsDropout(
                f"no GPS fix at t={timestamp:g} (simulated signal dropout)"
            )
        east, north, epsilon = self._step_error(timestamp)
        measured = true_location.offset_m(east, north)
        self._last_timestamp = timestamp
        fix = GpsFix(measured, epsilon, timestamp)
        self._last_fix = fix
        return fix

    def get_location(
        self, true_location: GeoCoordinate, timestamp: float = 0.0
    ) -> Uncertain:
        """Measure, then return the posterior distribution for the fix."""
        return gps_posterior(self.measure(true_location, timestamp))

    def resilient_location(
        self,
        true_location: GeoCoordinate,
        timestamp: float = 0.0,
        accuracy_inflation: float = 2.0,
        **resilient_kwargs,
    ) -> Uncertain:
        """A dropout-hardened :meth:`get_location`.

        Wraps a live fix source (every batch re-measures, so dropouts can
        strike any draw) in a :class:`~repro.resilience.ResilientSource`:
        dropouts are retried, repeated failure trips the breaker, and the
        declared fallback is the posterior around the *last good fix* with
        its accuracy radius inflated by ``accuracy_inflation`` — the
        honest degraded answer ("I am probably still near where I last
        saw myself, but less sure").  Keyword arguments (``max_retries``,
        ``breaker``, ``seed``, ...) pass through to ``ResilientSource``.

        If the primary is unavailable and the sensor has never produced a
        fix, the fallback itself raises :class:`GpsDropout` — there is
        nothing to degrade to.
        """
        from repro.resilience.source import ResilientSource

        sensor = self

        def fresh_samples(n: int, rng: np.random.Generator) -> np.ndarray:
            return _fix_samples(sensor.measure(true_location, timestamp), n, rng)

        def degraded_samples(n: int, rng: np.random.Generator) -> np.ndarray:
            fix = sensor._last_fix
            if fix is None:
                raise GpsDropout(
                    "GPS degraded with no previous fix to fall back on"
                )
            inflated = GpsFix(
                fix.coordinate,
                fix.horizontal_accuracy * accuracy_inflation,
                fix.timestamp,
            )
            return _fix_samples(inflated, n, rng)

        primary = FunctionDistribution(
            lambda rng: fresh_samples(1, rng)[0], fn_n=fresh_samples
        )
        fallback = FunctionDistribution(
            lambda rng: degraded_samples(1, rng)[0], fn_n=degraded_samples
        )
        resilient_kwargs.setdefault("failure_types", (GpsDropout,))
        resilient_kwargs.setdefault("fallback", fallback)
        source = ResilientSource(primary, **resilient_kwargs)
        return Uncertain(source, label="GPS(resilient)")

    @property
    def error_magnitude_dist(self) -> Rayleigh:
        """The radial error distribution (Figure 11's ring-shaped posterior)."""
        return Rayleigh(self._rho)
