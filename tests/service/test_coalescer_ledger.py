"""Service × ledger: pooled seedless floods reuse cached sample columns.

The coalescer's seedless pooled path is the service-side analogue of the
analyst session — the same-shape flood arrives again and again.  With
``sample_cache`` on, the second flood must be served from the ledger
(zero engine runs), while seeded requests keep bypassing the ledger so
their batched-equals-solo bit-identity contract stays intact.
"""

from __future__ import annotations

import numpy as np

from repro import Uncertain
from repro.core.conditionals import evaluation_config
from repro.core.ledger import clear_ledger, ledger_stats
from repro.dists import Gaussian
from repro.rng import default_rng
from repro.service import CoalescerStats, QueryRequest, evaluate_batch, evaluate_request


def speed_value() -> Uncertain:
    return Uncertain(Gaussian(4.0, 1.0)) * 1.5 + 3.0


def _seedless_batch(value, n_requests=4, samples=500):
    return [
        QueryRequest(value=value, kind="expected_value", samples=samples)
        for _ in range(n_requests)
    ]


class TestPooledLedger:
    def setup_method(self):
        clear_ledger()

    def teardown_method(self):
        clear_ledger()

    def test_second_flood_served_from_ledger(self):
        value = speed_value()
        with evaluation_config(sample_cache=True):
            first = CoalescerStats()
            out1 = evaluate_batch(
                _seedless_batch(value), engine="numpy",
                pool_rng=default_rng(9), stats=first,
            )
            second = CoalescerStats()
            out2 = evaluate_batch(
                _seedless_batch(value), engine="numpy",
                pool_rng=default_rng(9), stats=second,
            )
        assert all(not isinstance(o, Exception) for o in out1 + out2)
        # First flood filled the ledger (one engine run); the second is
        # answered entirely from it.
        assert second.engine_runs == 0
        assert second.ledger_served == 2000
        assert second.samples_drawn == 0
        # Same pooled stream start, same rows: identical answers.
        assert [o.value for o in out1] == [o.value for o in out2]
        assert ledger_stats()["entries"] == 1

    def test_seeded_requests_keep_solo_bit_identity(self):
        value = speed_value()
        reqs = [
            QueryRequest(value=value, kind="samples", samples=64, seed=s)
            for s in (1, 2, 3)
        ]
        with evaluation_config(sample_cache=True):
            stats = CoalescerStats()
            batched = evaluate_batch(reqs, engine="numpy", stats=stats)
            solo = [evaluate_request(r, engine="numpy") for r in reqs]
        assert stats.ledger_served == 0  # seeded streams bypass the ledger
        for b, s in zip(batched, solo):
            assert np.array_equal(b.value, s.value)

    def test_ledger_off_keeps_fresh_runs(self):
        value = speed_value()
        stats = CoalescerStats()
        evaluate_batch(
            _seedless_batch(value), engine="numpy",
            pool_rng=default_rng(9), stats=stats,
        )
        assert stats.ledger_served == 0
        assert stats.engine_runs == 1
        assert ledger_stats()["entries"] == 0

    def test_budget_charged_once_for_repeated_floods(self):
        value = speed_value()
        with evaluation_config(sample_cache=True) as cfg:
            for _ in range(3):
                out = evaluate_batch(
                    _seedless_batch(value), engine="numpy",
                    pool_rng=default_rng(9),
                )
                assert all(not isinstance(o, Exception) for o in out)
            # 4 requests x 500 samples, paid exactly once.
            assert cfg.samples_executed == 2000
