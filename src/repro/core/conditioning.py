"""Conditioning an uncertain value on uncertain evidence.

``posterior`` (Section 3.5) improves an estimate with an *external* prior
density.  This module covers the complementary Bayesian operation: given a
boolean condition over the *same* network, produce the conditional
distribution

    Pr[X | C]  where C shares variables with X.

Example: the speed distribution given that the user is inside the park, or
a sensor value given that a co-computed plausibility check passed.  Because
condition and value share graph nodes, they must be sampled under one
joint assignment — which is exactly what a shared :class:`SampleContext`
provides; conditioning is then rejection of the joint samples where the
evidence is false.
"""

from __future__ import annotations

import numpy as np

from repro.core.sampling import _execute_plan
from repro.core.uncertain import Uncertain, UncertainBool
from repro.dists.empirical import Empirical
from repro.rng import ensure_rng


def condition(
    value: Uncertain,
    evidence: UncertainBool,
    pool_size: int = 2_000,
    max_batches: int = 200,
    batch_size: int = 2_000,
    rng=None,
) -> Uncertain:
    """The conditional distribution of ``value`` given ``evidence`` is true.

    Draws joint samples of (value, evidence) under shared contexts and
    keeps the values where the evidence holds, until ``pool_size`` accepted
    samples are collected (or ``max_batches`` is exhausted — rare evidence
    raises rather than looping forever, mirroring the rejection-economics
    discussion around Figure 17).
    """
    if not isinstance(evidence, UncertainBool):
        raise TypeError(
            f"evidence must be an UncertainBool (a comparison), got "
            f"{type(evidence).__name__}"
        )
    if pool_size <= 0 or batch_size <= 0 or max_batches <= 0:
        raise ValueError("pool_size, batch_size and max_batches must be positive")
    rng = ensure_rng(rng)
    # Both plans compile once; each batch shares one memo table so the
    # evidence sees the same joint assignment as the value.
    value_plan, evidence_plan = value.plan, evidence.plan
    accepted: list[np.ndarray] = []
    total_accepted = 0
    for _ in range(max_batches):
        memo: dict = {}
        values = _execute_plan(value_plan, batch_size, rng, memo=memo)
        holds = np.asarray(
            _execute_plan(evidence_plan, batch_size, rng, memo=memo), dtype=bool
        )
        kept = values[holds]
        if len(kept):
            accepted.append(kept)
            total_accepted += len(kept)
        if total_accepted >= pool_size:
            break
    if total_accepted == 0:
        raise ValueError(
            "the evidence was never true in "
            f"{max_batches * batch_size} joint samples; conditioning on "
            "(near-)impossible evidence is not representable by rejection"
        )
    pool = np.concatenate(accepted)[:pool_size]
    return Uncertain(Empirical(pool), label="conditioned")


