"""Failure-injection tests: the library must fail loudly and sanely."""

import math

import numpy as np
import pytest

from repro.core.conditionals import evaluation_config
from repro.core.sprt import SPRT, TestDecision
from repro.core.uncertain import Uncertain
from repro.dists import Empirical, Gaussian
from repro.rng import default_rng


class TestNaNPropagation:
    def test_nan_sensor_propagates_not_crashes(self, rng):
        broken = Uncertain(lambda r: float("nan"))
        sample = (broken + 1.0).sample(rng)
        assert math.isnan(sample)

    def test_nan_comparison_is_false(self, rng):
        broken = Uncertain(lambda r: float("nan"))
        cond = broken > 0.0
        assert cond.evidence(100, rng) == 0.0  # IEEE: NaN compares false

    def test_inf_division(self, rng):
        # No np.errstate needed at the call site: the engines centralise
        # floating-point error suppression (IEEE semantics are the default
        # on_nonfinite="propagate" policy).
        zero = Uncertain(0.0)
        inf = Uncertain(1.0) / zero
        value = inf.sample(rng)
        assert math.isinf(value)


class TestDegenerateDistributions:
    def test_zero_variance_conditional_decides_instantly(self):
        constant = Uncertain(Gaussian(5.0, 0.0))
        with evaluation_config(rng=default_rng(0)) as cfg:
            assert bool(constant > 4.0)
            assert cfg.samples_drawn <= 2 * cfg.batch_size

    def test_zero_variance_expected_value(self, rng):
        assert Uncertain(Gaussian(5.0, 0.0)).expected_value(10, rng) == 5.0

    def test_empty_empirical_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])


class TestSamplerExhaustion:
    def test_max_sample_exhaustion_is_inconclusive_false(self):
        # Evidence pinned exactly at the threshold can never conclude.
        coin = Uncertain(Gaussian(0.0, 1.0)) > 0.0
        with evaluation_config(
            rng=default_rng(1), max_samples=200, epsilon=0.01
        ) as cfg:
            assert coin.pr(0.5) is False
            assert cfg.samples_drawn == 200

    def test_inconclusive_decision_surfaces_in_diagnostics(self):
        coin = Uncertain(Gaussian(0.0, 1.0)) > 0.0
        with evaluation_config(rng=default_rng(2), max_samples=200, epsilon=0.01):
            result = coin.test(0.5)
        assert result.decision is TestDecision.INCONCLUSIVE

    def test_sprt_with_always_true_sampler_terminates_fast(self):
        test = SPRT(threshold=0.5)
        result = test.run(lambda k: np.ones(k, dtype=bool))
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE
        assert result.samples_used <= 30


class TestMisbehavingSamplingFunctions:
    def test_wrong_shape_vectorised_fn(self, rng):
        from repro.dists.sampling_function import FunctionDistribution

        bad = Uncertain(FunctionDistribution(lambda r: 0.0, fn_n=lambda n, r: np.zeros(2 * n)))
        with pytest.raises(ValueError):
            bad.samples(5, rng)

    def test_exception_in_sampling_function_propagates(self, rng):
        def explode(r):
            raise RuntimeError("sensor offline")

        broken = Uncertain(explode)
        with pytest.raises(RuntimeError, match="sensor offline"):
            broken.sample(rng)

    def test_exception_inside_lifted_function_propagates(self, rng):
        from repro.core.lifting import apply

        def bad_metric(a, b):
            raise ZeroDivisionError

        u = apply(bad_metric, Uncertain(1.0), Uncertain(2.0))
        with pytest.raises(ZeroDivisionError):
            u.sample(rng)


class TestValidationSurface:
    def test_uncertain_truthiness_error_is_actionable(self):
        with pytest.raises(TypeError) as excinfo:
            bool(Uncertain(Gaussian(0, 1)))
        assert "compare" in str(excinfo.value)

    def test_expected_value_rejects_bad_n(self):
        with pytest.raises(ValueError):
            Uncertain(Gaussian(0, 1)).expected_value(-5)

    def test_histogram_of_object_samples_fails_loudly(self, rng):
        objects = Uncertain(lambda r: object())
        with pytest.raises((TypeError, ValueError)):
            objects.histogram(10, 100, rng)
