"""The rule catalogue shared by both static passes.

``UNC1xx`` rules are graph diagnostics produced by abstract interpretation
of a compiled plan (:mod:`repro.analysis.diagnostics`); ``UNC2xx`` rules
are source-level lints produced by the AST checker
(:mod:`repro.analysis.lint`); ``UNC3xx`` rules are runtime findings
produced by probing a plan with actual samples
(``Uncertain.diagnose(samples=...)`` via :mod:`repro.resilience`).
``docs/analysis.md`` is the narrative catalogue; this module is the
machine-readable one.
"""

from __future__ import annotations

import dataclasses

#: Severities, in increasing order of concern.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_ORDER = {INFO: 0, WARNING: 1, ERROR: 2}


def severity_at_least(severity: str, floor: str) -> bool:
    return _SEVERITY_ORDER[severity] >= _SEVERITY_ORDER[floor]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One diagnosable uncertainty-bug pattern."""

    id: str
    severity: str
    title: str
    #: True for rules that only run when explicitly selected.
    opt_in: bool = False


GRAPH_RULES = {
    "UNC100": Rule("UNC100", INFO,
                   "static bound report: affine-inferred support and "
                   "standard-deviation upper bound for a slot",
                   opt_in=True),
    "UNC101": Rule("UNC101", ERROR,
                   "division by a quantity whose support contains zero"),
    "UNC102": Rule("UNC102", ERROR,
                   "domain-restricted function applied to a support crossing "
                   "its domain boundary"),
    "UNC103": Rule("UNC103", WARNING,
                   "comparison is statically decidable: Pr is provably 0 or "
                   "1, so the hypothesis test is wasted work"),
    "UNC104": Rule("UNC104", WARNING,
                   "tautological self-comparison of a shared node"),
    "UNC105": Rule("UNC105", INFO,
                   "constant (point-mass-only) sub-DAG: folded by the "
                   "optimizer's constant-fold pass when enabled, otherwise "
                   "a re-evaluation cost on every joint sample"),
    "UNC106": Rule("UNC106", WARNING,
                   "correlation-collapsed comparison: decided by the "
                   "dependence-tracking affine domain but invisible to "
                   "intervals, so the hypothesis test is wasted work"),
    "UNC107": Rule("UNC107", WARNING,
                   "spurious independence: structurally identical operand "
                   "sub-DAGs built from disjoint stochastic leaves, "
                   "typically a reconstruction of a value that should "
                   "share its ancestors"),
}

RUNTIME_RULES = {
    "UNC301": Rule("UNC301", WARNING,
                   "plan slot produced non-finite samples in a runtime "
                   "probe; see repro.resilience for policies"),
}

LINT_RULES = {
    "UNC201": Rule("UNC201", ERROR,
                   "float()/int()/bool() coercion collapses an uncertain "
                   "value to a fact"),
    "UNC202": Rule("UNC202", WARNING,
                   "branching on expected_value() treats an estimate as a "
                   "fact; compare the uncertain value and branch on evidence"),
    "UNC203": Rule("UNC203", WARNING,
                   "math.* call on an uncertain operand; use "
                   "repro.lift(math.fn) so uncertainty propagates"),
    "UNC204": Rule("UNC204", INFO,
                   "implicit conditional inside a loop; prefer an explicit "
                   ".pr(alpha) with a stated evidence threshold",
                   opt_in=True),
    "UNC205": Rule("UNC205", ERROR,
                   "chained comparison on an uncertain operand desugars "
                   "through an implicit bool(); write (a < x) & (x < b)"),
}

#: ``UNC4xx`` rules are compiler-certification findings produced by the
#: static stream-safety certifier (:mod:`repro.analysis.certify`).
CERTIFY_RULES = {
    "UNC401": Rule("UNC401", ERROR,
                   "rewrite or fused kernel could not be certified "
                   "stream-safe: its RNG consumption sequence is not "
                   "provably identical to the reference plan"),
}

ALL_RULES = {**GRAPH_RULES, **RUNTIME_RULES, **LINT_RULES, **CERTIFY_RULES}
