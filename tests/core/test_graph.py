"""Tests for the Bayesian-network node graph."""

import operator

import numpy as np

from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
    depth,
    iter_nodes,
    leaf_nodes,
    node_count,
    to_networkx,
)
from repro.dists import Gaussian


def _leaf(mu=0.0, sigma=1.0):
    return LeafNode(Gaussian(mu, sigma))


class TestConstruction:
    def test_leaf_has_no_parents(self):
        assert _leaf().parents == ()

    def test_binary_records_parents_in_order(self):
        a, b = _leaf(), _leaf()
        node = BinaryOpNode(operator.add, a, b, "+")
        assert node.parents == (a, b)

    def test_unary_parent(self):
        a = _leaf()
        node = UnaryOpNode(operator.neg, a, "neg")
        assert node.parents == (a,)

    def test_apply_parents(self):
        a, b, c = _leaf(), _leaf(), _leaf()
        node = ApplyNode(lambda x, y, z: x + y + z, (a, b, c))
        assert node.parents == (a, b, c)

    def test_uids_unique(self):
        nodes = [_leaf() for _ in range(10)]
        assert len({n.uid for n in nodes}) == 10

    def test_labels(self):
        assert _leaf().label == "Gaussian"
        assert PointMassNode(3).label == "pointmass(3)"
        assert BinaryOpNode(operator.add, _leaf(), _leaf(), "+").label == "+"


class TestEvaluation:
    def test_leaf_batch(self, rng):
        values = _leaf(2.0, 0.0).evaluate_batch([], 5, rng)
        assert np.all(values == 2.0)

    def test_pointmass_numeric(self, rng):
        assert np.all(PointMassNode(7).evaluate_batch([], 4, rng) == 7)

    def test_pointmass_object(self, rng):
        marker = object()
        out = PointMassNode(marker).evaluate_batch([], 3, rng)
        assert out.dtype == object and all(v is marker for v in out)

    def test_binary_elementwise(self, rng):
        node = BinaryOpNode(operator.mul, _leaf(), _leaf(), "*")
        out = node.evaluate_batch([np.array([1.0, 2.0]), np.array([3.0, 4.0])], 2, rng)
        assert np.allclose(out, [3.0, 8.0])

    def test_unary_elementwise(self, rng):
        node = UnaryOpNode(operator.neg, _leaf(), "neg")
        assert np.allclose(node.evaluate_batch([np.array([1.0, -2.0])], 2, rng), [-1.0, 2.0])

    def test_apply_scalar_mapping(self, rng):
        node = ApplyNode(lambda x, y: x - y, (_leaf(), _leaf()))
        out = node.evaluate_batch(
            [np.array([5.0, 7.0]), np.array([1.0, 2.0])], 2, rng
        )
        assert np.allclose(out, [4.0, 5.0])

    def test_apply_vectorized(self, rng):
        node = ApplyNode(np.add, (_leaf(), _leaf()), vectorized=True)
        out = node.evaluate_batch([np.ones(3), np.ones(3)], 3, rng)
        assert np.allclose(out, 2.0)

    def test_apply_object_results(self, rng):
        node = ApplyNode(lambda x: (x,), (_leaf(),))
        out = node.evaluate_batch([np.array([1.0, 2.0])], 2, rng)
        assert out.dtype == object and out[0] == (1.0,)

    def test_apply_bool_results(self, rng):
        node = ApplyNode(lambda x: x > 0, (_leaf(),))
        out = node.evaluate_batch([np.array([1.0, -1.0])], 2, rng)
        assert out[0] and not out[1]

    def test_apply_preserves_integer_dtype(self, rng):
        # Regression: the scalar path used to allocate dtype=float, silently
        # coercing integer-valued functions to float.
        node = ApplyNode(lambda x: int(x) * 2, (_leaf(),))
        out = node.evaluate_batch([np.array([1.4, 2.6, 3.0])], 3, rng)
        assert np.issubdtype(out.dtype, np.integer)
        assert list(out) == [2, 4, 6]

    def test_apply_mixed_int_float_widens(self, rng):
        node = ApplyNode(lambda x: int(x) if x < 2 else float(x), (_leaf(),))
        out = node.evaluate_batch([np.array([1.0, 2.5])], 2, rng)
        assert np.issubdtype(out.dtype, np.floating)
        assert np.allclose(out, [1.0, 2.5])


class TestInspection:
    def _diamond(self):
        # B and C both depend on A; D on B and C.
        a = _leaf()
        b = UnaryOpNode(operator.neg, a, "neg")
        c = UnaryOpNode(abs, a, "abs")
        d = BinaryOpNode(operator.add, b, c, "+")
        return a, b, c, d

    def test_iter_nodes_unique(self):
        a, b, c, d = self._diamond()
        nodes = list(iter_nodes(d))
        assert len(nodes) == 4
        assert len({id(n) for n in nodes}) == 4

    def test_iter_nodes_postorder(self):
        a, b, c, d = self._diamond()
        order = [id(n) for n in iter_nodes(d)]
        assert order.index(id(a)) < order.index(id(b))
        assert order.index(id(b)) < order.index(id(d))
        assert order.index(id(c)) < order.index(id(d))

    def test_node_count_with_sharing(self):
        a, b, c, d = self._diamond()
        assert node_count(d) == 4

    def test_leaf_nodes(self):
        a, _, _, d = self._diamond()
        assert leaf_nodes(d) == [a]

    def test_depth(self):
        a, b, c, d = self._diamond()
        assert depth(a) == 0
        assert depth(d) == 2

    def test_long_chain_depth_without_recursion(self):
        node = _leaf()
        for _ in range(5_000):
            node = UnaryOpNode(operator.neg, node, "neg")
        assert depth(node) == 5_000

    def test_to_networkx(self):
        a, b, c, d = self._diamond()
        g = to_networkx(d)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 4
        assert g.nodes[a.uid]["leaf"] is True
        assert g.nodes[d.uid]["leaf"] is False
        import networkx as nx

        assert nx.is_directed_acyclic_graph(g)
