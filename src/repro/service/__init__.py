"""The async service tier: serving uncertainty queries at scale.

The paper's runtime answers one query at a time; this package is the
front end that serves *many* — the "millions of users issuing the same
speeding-test query" regime the roadmap targets.  Concurrent queries
enter an asyncio :class:`Service`, a batching coalescer merges
structurally isomorphic plans arriving within a configurable window into
shared bulk evaluations (one compiled plan, one fused kernel, many
answers), and per-request ``SeedSequence`` streams keep every batched
answer bit-identical to solo evaluation.  Admission control reuses the
evaluation layer's sample budgets and deadlines, backpressure sheds
load at a queue bound, and a stdlib HTTP endpoint exposes
Prometheus-style metrics.  See ``docs/service.md``.

Layering:

- :mod:`repro.service.requests`  — the request/result schema and the one
  shared reduction (:func:`reduce_query`).
- :mod:`repro.service.coalescer` — synchronous batching core:
  structural grouping, per-request streams, pooled seedless runs,
  fault isolation.  Directly testable without an event loop.
- :mod:`repro.service.service`   — the asyncio front end: queueing,
  batching windows, shedding, worker tasks, metrics exposition.
- :mod:`repro.service.errors`    — the structured error taxonomy
  (:class:`ServiceOverloaded`, :class:`BulkheadRejected`, ...).
- :mod:`repro.service.degradation` — graceful degradation under
  overload: the :class:`BrownoutController` (queue-pressure-driven
  sample-budget levels), :class:`DegradationRecord` provenance, and
  per-group :class:`BulkheadRegistry` isolation.  See
  ``docs/degradation.md``.
- :mod:`repro.service.http`      — stdlib ``/metrics`` + ``/healthz``
  + ``/stats`` endpoint.
"""

from repro.service.requests import (
    QUERY_KINDS,
    QueryRequest,
    QueryResult,
    reduce_query,
)
from repro.service.coalescer import (
    CoalescerStats,
    evaluate_batch,
    evaluate_request,
)
from repro.service.degradation import (
    BrownoutController,
    BulkheadRegistry,
    DegradationDecision,
    DegradationRecord,
)
from repro.service.errors import (
    BulkheadRejected,
    EvaluationCancelled,
    ServiceClosed,
    ServiceError,
    ServiceOverloaded,
)
from repro.service.service import Service
from repro.service.http import MetricsServer, serve_metrics

__all__ = [
    "QUERY_KINDS",
    "QueryRequest",
    "QueryResult",
    "reduce_query",
    "CoalescerStats",
    "evaluate_batch",
    "evaluate_request",
    "BrownoutController",
    "BulkheadRegistry",
    "DegradationDecision",
    "DegradationRecord",
    "ServiceError",
    "ServiceClosed",
    "ServiceOverloaded",
    "BulkheadRejected",
    "EvaluationCancelled",
    "Service",
    "MetricsServer",
    "serve_metrics",
]
