"""Bayesian-network inspection: pretty-printing and DOT export.

Debugging aids for the graphs that lifted operators build (Figures 7-8).
``describe`` renders an indented tree (shared nodes are printed once and
referenced thereafter, making dependence visible); ``to_dot`` emits
Graphviz source with leaves shaded, matching the paper's figures.
"""

from __future__ import annotations

from repro.core.graph import Node, iter_nodes


def _unwrap(value) -> Node:
    node = getattr(value, "node", value)
    if not isinstance(node, Node):
        raise TypeError(f"expected an Uncertain or Node, got {type(value).__name__}")
    return node


def describe(value, max_depth: int = 20) -> str:
    """Indented tree rendering of a computation's Bayesian network.

    Shared nodes appear in full once; later occurrences render as
    ``@shared #uid`` so that Figure 8-style dependence is visible::

        + #7
          + #5
            Gaussian #3 (leaf)
            Gaussian #4 (leaf)
          @shared #4
    """
    root = _unwrap(value)
    seen: set[int] = set()
    lines: list[str] = []

    def walk(node: Node, depth: int) -> None:
        indent = "  " * depth
        if depth > max_depth:
            lines.append(f"{indent}... (max depth reached)")
            return
        if node.uid in seen:
            lines.append(f"{indent}@shared #{node.uid}")
            return
        seen.add(node.uid)
        suffix = " (leaf)" if not node.parents else ""
        lines.append(f"{indent}{node.label} #{node.uid}{suffix}")
        for parent in node.parents:
            walk(parent, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def _escape_dot(label: str) -> str:
    """Escape a label for a double-quoted DOT string.

    Backslashes first, then quotes — DOT strings use backslash escapes, so
    replacing quotes with apostrophes (the old behaviour) mangled labels
    like ``pointmass('a "b"')`` instead of round-tripping them.
    """
    return label.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(value, graph_name: str = "uncertain") -> str:
    """Graphviz DOT source for the network; leaves are shaded as in the
    paper's figures, edges point from dependencies to dependents."""
    root = _unwrap(value)
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;"]
    for node in iter_nodes(root):
        shape = "ellipse"
        style = ', style=filled, fillcolor="gray85"' if not node.parents else ""
        label = _escape_dot(node.label)
        lines.append(f'  n{node.uid} [label="{label}", shape={shape}{style}];')
    for node in iter_nodes(root):
        for parent in node.parents:
            lines.append(f"  n{parent.uid} -> n{node.uid};")
    lines.append("}")
    return "\n".join(lines)


def summary(value) -> dict:
    """Structural statistics of a network (used in logs and tests)."""
    from repro.core.graph import depth, leaf_nodes, node_count

    root = _unwrap(value)
    return {
        "nodes": node_count(root),
        "leaves": len(leaf_nodes(root)),
        "depth": depth(root),
        "root": root.label,
    }
