"""Command-line interface: ``python -m repro.analysis``.

Two subcommands, one per pass::

    # AST lint of user source (UNC2xx)
    python -m repro.analysis lint examples/ [--json] [--output report.json]
                                  [--select UNC201,UNC202] [--enable-unc204]
                                  [--exit-zero]

    # graph diagnostics of a demo or user-supplied network (UNC1xx)
    python -m repro.analysis graph div-by-zero [--json]
    python -m repro.analysis graph mypkg.mymod:build_graph

    # static stream-safety certification of the plan corpus (UNC401)
    python -m repro.analysis certify [target ...] [--json] [--output f.json]

``lint`` exits 1 when any error- or warning-severity finding survives
suppression (pass ``--exit-zero`` to force success, e.g. for advisory CI
steps); ``graph`` exits 1 only on error-severity findings; ``certify``
exits 1 on any UNC401 rejection (first-party plans must always certify
or legitimately fall back to the probe).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.demos import DEMOS, resolve_target
from repro.analysis.diagnostics import analyze, inferred_supports
from repro.analysis.lint import LintSummary, default_selection, lint_paths
from repro.analysis.report import render_json, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static diagnostics for uncertain computations "
                    "(see docs/analysis.md for the rule catalogue)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lint = sub.add_parser("lint", help="AST lint of user source (UNC2xx rules)")
    lint.add_argument("paths", nargs="+", help="files or directories to lint")
    lint.add_argument("--json", action="store_true", help="emit a JSON report")
    lint.add_argument("--output", type=Path, default=None,
                      help="write the report to a file instead of stdout")
    lint.add_argument("--select", default=None,
                      help="comma-separated rule ids to enable "
                           "(default: all non-opt-in rules)")
    lint.add_argument("--enable-unc204", action="store_true",
                      help="also run the opt-in implicit-conditional-in-loop "
                           "rule")
    lint.add_argument("--exit-zero", action="store_true",
                      help="always exit 0, even with findings")

    graph = sub.add_parser(
        "graph",
        help="interval diagnostics of a compiled network (UNC1xx rules)",
    )
    graph.add_argument(
        "target",
        help=f"demo name ({', '.join(sorted(DEMOS))}) or a "
             "'module.path:callable' returning an Uncertain",
    )
    graph.add_argument("--json", action="store_true", help="emit a JSON report")
    graph.add_argument("--output", type=Path, default=None,
                       help="write the report to a file instead of stdout")

    certify = sub.add_parser(
        "certify",
        help="static stream-safety certification of compiled plans "
             "(UNC401): optimizer rewrites + fused kernels, no probe "
             "execution",
    )
    certify.add_argument(
        "targets", nargs="*",
        help="corpus names or 'module.path:callable' specs; default: the "
             "full built-in corpus (benchmark workloads + demos)",
    )
    certify.add_argument("--json", action="store_true",
                         help="emit a JSON report")
    certify.add_argument("--output", type=Path, default=None,
                         help="write the report to a file instead of stdout")
    certify.add_argument("--exit-zero", action="store_true",
                         help="always exit 0, even with UNC401 rejections")
    return parser


def _emit(text: str, output: Path | None) -> None:
    if output is None:
        print(text)
    else:
        output.write_text(text + "\n")


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.select:
        select = frozenset(r.strip().upper() for r in args.select.split(","))
    else:
        select = default_selection(enable_opt_in=args.enable_unc204)
    findings = lint_paths(args.paths, select=select)
    if args.json:
        _emit(render_json(findings, mode="lint", paths=list(args.paths)),
              args.output)
    else:
        _emit(render_text(findings), args.output)
    if args.exit_zero:
        return 0
    return 1 if LintSummary.of(findings).failing else 0


def _cmd_graph(args: argparse.Namespace) -> int:
    value = resolve_target(args.target)
    findings = analyze(value)
    if args.json:
        supports = {
            str(uid): [interval.lower, interval.upper]
            for uid, interval in inferred_supports(value).items()
        }
        _emit(
            render_json(findings, mode="graph", target=args.target,
                        inferred_supports=supports),
            args.output,
        )
    else:
        from repro.core.viz import describe

        lines = [f"network for {args.target!r}:", describe(value), ""]
        lines.append("inferred supports (slot order):")
        for step, interval in zip(value.plan.steps,
                                  _slot_intervals(value)):
            lines.append(
                f"  slot {step.slot:>3}  {step.node.label:<20} {interval}"
            )
        lines.append("")
        lines.append(render_text(findings))
        _emit("\n".join(lines), args.output)
    return 1 if any(f.severity == "error" for f in findings) else 0


def _slot_intervals(value):
    from repro.analysis.intervals import infer_intervals

    return infer_intervals(value.plan)


def _cmd_certify(args: argparse.Namespace) -> int:
    import time

    from repro.analysis.certify import certify_value
    from repro.analysis.demos import CERTIFY_CORPUS
    from repro.analysis.report import (
        render_certification_json,
        render_certification_text,
    )

    targets = args.targets or sorted(CERTIFY_CORPUS)
    reports: dict[str, dict] = {}
    for target in targets:
        value = resolve_target(target, registry=CERTIFY_CORPUS)
        start = time.perf_counter()
        report = certify_value(value)
        report["elapsed_ms"] = (time.perf_counter() - start) * 1e3
        reports[target] = report
    if args.json:
        _emit(render_certification_json(reports), args.output)
    else:
        _emit(render_certification_text(reports), args.output)
    if args.exit_zero:
        return 0
    return 1 if any(r["status"] == "rejected" for r in reports.values()) else 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "certify":
        return _cmd_certify(args)
    return _cmd_graph(args)


if __name__ == "__main__":
    sys.exit(main())
