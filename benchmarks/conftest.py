"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's figures (see DESIGN.md's
per-experiment index), prints the regenerated table, and asserts the
paper's shape claims.  Timing is recorded by pytest-benchmark; heavy
experiment drivers run once (``rounds=1``) since their cost, not their
jitter, is the interesting number.
"""

from __future__ import annotations


def run_and_report(benchmark, experiment_id: str, **kwargs):
    """Run an experiment driver under the benchmark and verify its claims."""
    from repro.experiments import run_experiment

    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, **kwargs), rounds=1, iterations=1
    )
    print()
    print(result.render())
    failed = [claim for claim, ok in result.claims.items() if not ok]
    assert not failed, f"{experiment_id} failed shape claims: {failed}"
    return result
