"""The uncertain type: Bayesian-network computation over sampling functions.

This package implements Sections 3 and 4 of the paper:

- :mod:`repro.core.graph` — the Bayesian-network representation that lifted
  operators construct (Figures 7 and 8).
- :mod:`repro.core.plan` — compilation of node DAGs into flat, reusable
  evaluation plans, cached per root (Section 4.2's "much like a JIT").
- :mod:`repro.core.engines` — pluggable execution engines running compiled
  plans (vectorized numpy default, reference interpreter).
- :mod:`repro.core.sampling` — ancestral-sampling facade over the
  plan/engine layer with per-joint-sample memoisation (Section 4.2).
- :mod:`repro.core.uncertain` — the ``Uncertain[T]`` type and its operator
  algebra (Table 1).
- :mod:`repro.core.sprt` — Wald's sequential probability ratio test and the
  fixed-size and group-sequential alternatives (Section 4.3).
- :mod:`repro.core.conditionals` — evaluation configuration for implicit and
  explicit conditionals (Section 3.4).
- :mod:`repro.core.expectation` — the expected-value operator ``E``.
- :mod:`repro.core.bayes` — improving estimates with priors (Section 3.5).
- :mod:`repro.core.lifting` — lifting arbitrary functions over uncertain
  values.
"""

from repro.core.uncertain import Uncertain, UncertainBool, uncertain
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    BindNode,
    LeafNode,
    Node,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import (
    EvaluationPlan,
    PlanTelemetry,
    clear_plan_cache,
    compile_plan,
    invalidate_plan,
    plan_cache_size,
)
from repro.core.engines import (
    ExecutionEngine,
    InterpreterEngine,
    NumpyEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.sampling import (
    DeadlineExceeded,
    SampleBudgetExceeded,
    SampleContext,
    SamplingError,
)
from repro.core.sprt import (
    FixedSampleTest,
    GroupSequentialTest,
    HypothesisTest,
    SPRT,
    TestDecision,
    TestResult,
)
from repro.core.conditionals import EvaluationConfig, get_config, evaluation_config
from repro.core.expectation import expected_value, expected_value_adaptive
from repro.core.bayes import Prior, posterior
from repro.core.lifting import apply, lift
from repro.core.joint import ComponentNode, correlated_gaussians, joint
from repro.core.viz import describe, summary, to_dot

__all__ = [
    "Uncertain",
    "UncertainBool",
    "uncertain",
    "Node",
    "LeafNode",
    "PointMassNode",
    "BinaryOpNode",
    "UnaryOpNode",
    "ApplyNode",
    "BindNode",
    "EvaluationPlan",
    "PlanTelemetry",
    "compile_plan",
    "invalidate_plan",
    "clear_plan_cache",
    "plan_cache_size",
    "ExecutionEngine",
    "NumpyEngine",
    "InterpreterEngine",
    "get_engine",
    "register_engine",
    "available_engines",
    "SampleContext",
    "SamplingError",
    "SampleBudgetExceeded",
    "DeadlineExceeded",
    "HypothesisTest",
    "SPRT",
    "FixedSampleTest",
    "GroupSequentialTest",
    "TestDecision",
    "TestResult",
    "EvaluationConfig",
    "get_config",
    "evaluation_config",
    "expected_value",
    "expected_value_adaptive",
    "Prior",
    "posterior",
    "lift",
    "apply",
    "joint",
    "correlated_gaussians",
    "ComponentNode",
    "describe",
    "to_dot",
    "summary",
]
