"""Figure 9: a conditional on uncertain data yields evidence, not a boolean."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.gps.ticket import speed_distribution_mph
from repro.rng import default_rng


@experiment("fig09")
def run(seed: int = 9, fast: bool = True) -> ExperimentResult:
    """Evidence Pr[Speed > 4] for walking-speed posteriors.

    Figure 9 shades the area of the speed distribution above 4 mph: the
    conditional's truth is a probability.  We tabulate that area for a
    range of true speeds at 4 m GPS accuracy and check it is graded —
    neither 0 nor 1 near the threshold.
    """
    rng = default_rng(seed)
    n = 20_000 if fast else 200_000
    rows = []
    for true_speed in (2.0, 3.0, 4.0, 5.0, 6.0, 8.0):
        speed = speed_distribution_mph(true_speed, epsilon_m=4.0)
        evidence = (speed > 4.0).evidence(n, rng)
        rows.append(
            {
                "true_speed_mph": true_speed,
                "evidence_speed_gt_4": evidence,
                "naive_answer": true_speed > 4.0,
            }
        )
    evidences = [row["evidence_speed_gt_4"] for row in rows]
    claims = {
        "evidence increases with true speed": all(
            a <= b + 0.02 for a, b in zip(evidences, evidences[1:])
        ),
        "evidence near the threshold is graded (not 0/1)": 0.05
        < rows[2]["evidence_speed_gt_4"]
        < 0.999,
        "far above threshold the evidence saturates": rows[-1][
            "evidence_speed_gt_4"
        ]
        > 0.9,
    }
    return ExperimentResult(
        "fig09", "conditionals evaluate evidence (area under the curve)", rows, claims
    )
