"""Tests for Bernoulli and Binomial."""

import numpy as np
import pytest

from repro.dists import Bernoulli, Binomial


class TestBernoulli:
    def test_values_are_zero_one(self, rng):
        s = Bernoulli(0.5).sample_n(1_000, rng)
        assert set(np.unique(s)) <= {0, 1}

    def test_mean_matches_p(self, fixed_rng):
        s = Bernoulli(0.3).sample_n(50_000, fixed_rng)
        assert s.mean() == pytest.approx(0.3, abs=0.01)

    def test_extremes(self, rng):
        assert np.all(Bernoulli(0.0).sample_n(100, rng) == 0)
        assert np.all(Bernoulli(1.0).sample_n(100, rng) == 1)

    def test_pmf(self):
        b = Bernoulli(0.7)
        assert float(b.pdf(1)) == pytest.approx(0.7)
        assert float(b.pdf(0)) == pytest.approx(0.3)
        assert float(b.pdf(0.5)) == 0.0

    def test_variance(self):
        assert Bernoulli(0.25).variance == pytest.approx(0.1875)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            Bernoulli(1.5)
        with pytest.raises(ValueError):
            Bernoulli(-0.1)


class TestBinomial:
    def test_range(self, rng):
        s = Binomial(10, 0.5).sample_n(2_000, rng)
        assert s.min() >= 0 and s.max() <= 10

    def test_moments(self):
        b = Binomial(20, 0.3)
        assert b.mean == pytest.approx(6.0)
        assert b.variance == pytest.approx(4.2)

    def test_pmf_sums_to_one(self):
        b = Binomial(8, 0.4)
        total = sum(float(b.pdf(k)) for k in range(9))
        assert total == pytest.approx(1.0)

    def test_pmf_zero_outside_support(self):
        b = Binomial(5, 0.5)
        assert float(b.pdf(6)) == 0.0
        assert float(b.pdf(-1)) == 0.0
        assert float(b.pdf(2.5)) == 0.0

    def test_degenerate_p(self, rng):
        assert np.all(Binomial(5, 1.0).sample_n(20, rng) == 5)
        assert float(Binomial(5, 1.0).pdf(5)) == pytest.approx(1.0)
        assert float(Binomial(5, 0.0).pdf(0)) == pytest.approx(1.0)

    def test_zero_trials(self, rng):
        assert np.all(Binomial(0, 0.5).sample_n(10, rng) == 0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            Binomial(-1, 0.5)
        with pytest.raises(ValueError):
            Binomial(5, 1.2)
