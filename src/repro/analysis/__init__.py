"""Static diagnostics for uncertain computations.

Two complementary passes over the two representations every
``Uncertain`` program has:

1. **Graph diagnostics** (:mod:`repro.analysis.diagnostics`) — interval
   abstract interpretation over a compiled
   :class:`~repro.core.plan.EvaluationPlan`, reporting division by
   zero-crossing supports (UNC101), domain-boundary violations (UNC102),
   statically decided comparisons (UNC103), tautological self-comparisons
   (UNC104), and foldable constant sub-DAGs (UNC105).
2. **Source lint** (:mod:`repro.analysis.lint`) — an AST checker for the
   paper's uncertainty anti-patterns in user code: coercing estimates to
   facts (UNC201), branching on point estimates (UNC202), un-lifted
   ``math.*`` calls (UNC203), and implicit conditionals in loops
   (UNC204, opt-in).

Entry points: ``python -m repro.analysis`` (CLI),
``Uncertain.diagnose()`` (per-value), and
``EvaluationConfig.enable_plan_analysis()`` (warn at compile time).
See ``docs/analysis.md`` for the full rule catalogue.
"""

from repro.analysis.diagnostics import (
    Diagnostic,
    UncertaintyWarning,
    analyze,
    analyze_plan,
    inferred_supports,
    warn_on_diagnostics,
)
from repro.analysis.intervals import Interval, infer_intervals
from repro.analysis.lint import (
    LintSummary,
    default_selection,
    lint_paths,
    lint_source,
)
from repro.analysis.report import render_json, render_text
from repro.analysis.rules import ALL_RULES, GRAPH_RULES, LINT_RULES, Rule

__all__ = [
    "Diagnostic",
    "UncertaintyWarning",
    "Interval",
    "Rule",
    "ALL_RULES",
    "GRAPH_RULES",
    "LINT_RULES",
    "analyze",
    "analyze_plan",
    "infer_intervals",
    "inferred_supports",
    "warn_on_diagnostics",
    "lint_source",
    "lint_paths",
    "default_selection",
    "LintSummary",
    "render_text",
    "render_json",
]
