"""ResilientSource: retries, backoff, breaker trips, recovery probes."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SourceFailure
from repro.dists import Gaussian
from repro.dists.base import Distribution
from repro.resilience import CircuitBreaker, ResilientSource
from repro.resilience.source import CLOSED, OPEN
from repro.runtime.metrics import RuntimeMetrics
from repro.core.conditionals import evaluation_config


class Flaky(Distribution):
    """Fails on scripted call indices (1-based); samples N(0,1) otherwise."""

    def __init__(self, fail_calls=(), exc=RuntimeError) -> None:
        self.fail_calls = set(fail_calls)
        self.exc = exc
        self.calls = 0

    def sample_n(self, n, rng):
        self.calls += 1
        if self.calls in self.fail_calls:
            raise self.exc(f"scripted failure on call {self.calls}")
        return rng.normal(0.0, 1.0, size=n)


class AlwaysFailing(Distribution):
    def __init__(self) -> None:
        self.calls = 0

    def sample_n(self, n, rng):
        self.calls += 1
        raise RuntimeError("permanently down")


class TestRetries:
    def test_transient_failure_is_retried_transparently(self):
        primary = Flaky(fail_calls={1})
        source = ResilientSource(primary, max_retries=2)
        out = source.sample_n(8, np.random.default_rng(0))
        assert len(out) == 8
        assert source.retries == 1
        assert primary.calls == 2

    def test_exhausted_retries_without_fallback_raise(self):
        source = ResilientSource(AlwaysFailing(), max_retries=2)
        with pytest.raises(SourceFailure, match="failed 3 time"):
            source.sample_n(8, np.random.default_rng(0))

    def test_exhausted_retries_serve_fallback(self):
        source = ResilientSource(
            AlwaysFailing(), fallback=Gaussian(10.0, 0.1), max_retries=1
        )
        out = source.sample_n(100, np.random.default_rng(0))
        assert np.mean(out) == pytest.approx(10.0, abs=0.2)
        assert source.fallback_draws == 1

    def test_unmatched_exception_types_propagate(self):
        primary = Flaky(fail_calls={1}, exc=KeyError)
        source = ResilientSource(primary, failure_types=(ValueError,))
        with pytest.raises(KeyError):
            source.sample_n(8, np.random.default_rng(0))
        assert source.retries == 0

    def test_backoff_delays_are_seed_deterministic(self):
        def delays_for(seed):
            recorded = []
            source = ResilientSource(
                Flaky(fail_calls={1, 2, 3}),
                max_retries=3,
                backoff_s=0.1,
                jitter=0.5,
                seed=seed,
                sleep=recorded.append,
            )
            source.sample_n(4, np.random.default_rng(0))
            return recorded

        a, b = delays_for(7), delays_for(7)
        assert a == b
        assert len(a) == 3
        # Exponential: each base delay doubles; jitter only inflates.
        assert 0.1 <= a[0] <= 0.15 and 0.2 <= a[1] <= 0.3

    def test_sample_stream_unperturbed_by_retries(self):
        # A retried source draws the same samples a clean one would have:
        # the jitter generator is separate from the sampling generator.
        clean = ResilientSource(Flaky()).sample_n(64, np.random.default_rng(3))
        flaky = ResilientSource(Flaky(fail_calls={1}), max_retries=1).sample_n(
            64, np.random.default_rng(3)
        )
        assert np.array_equal(clean, flaky)


class TestCircuitBreaker:
    def make(self, **kwargs):
        defaults = dict(window=8, failure_threshold=0.5, min_calls=2,
                        recovery_calls=3)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults)

    def test_trips_after_failure_fraction(self):
        breaker = self.make()
        breaker.record_failure()
        assert breaker.state == CLOSED  # below min_calls
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1

    def test_open_breaker_skips_primary_until_recovery(self):
        primary = AlwaysFailing()
        breaker = self.make()
        source = ResilientSource(
            primary, fallback=Gaussian(0.0, 1.0), max_retries=0, breaker=breaker
        )
        rng = np.random.default_rng(0)
        source.sample_n(4, rng)  # fail -> outcome 1
        source.sample_n(4, rng)  # fail -> trips
        assert breaker.state == OPEN
        calls_when_tripped = primary.calls
        source.sample_n(4, rng)  # degraded, no primary touch
        source.sample_n(4, rng)
        assert primary.calls == calls_when_tripped
        assert source.fallback_draws >= 2

    def test_half_open_probe_recovers(self):
        primary = Flaky(fail_calls={1, 2})  # heals from call 3 on
        breaker = self.make(recovery_calls=2)
        source = ResilientSource(
            primary, fallback=Gaussian(0.0, 1.0), max_retries=0, breaker=breaker
        )
        rng = np.random.default_rng(0)
        source.sample_n(4, rng)
        source.sample_n(4, rng)
        assert breaker.state == OPEN
        source.sample_n(4, rng)  # degraded draw 1
        source.sample_n(4, rng)  # degraded draw 2 -> HALF_OPEN probe -> success
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1

    def test_failed_probe_reopens(self):
        primary = AlwaysFailing()
        breaker = self.make(recovery_calls=2)
        source = ResilientSource(
            primary, fallback=Gaussian(0.0, 1.0), max_retries=0, breaker=breaker
        )
        rng = np.random.default_rng(0)
        source.sample_n(4, rng)
        source.sample_n(4, rng)
        assert breaker.state == OPEN
        source.sample_n(4, rng)
        probe_calls = primary.calls
        out = source.sample_n(4, rng)  # HALF_OPEN probe fails -> degraded
        assert primary.calls == probe_calls + 1
        assert breaker.state == OPEN
        assert len(out) == 4

    def test_breaker_is_call_count_based_and_reproducible(self):
        def run():
            breaker = self.make(recovery_calls=2)
            source = ResilientSource(
                Flaky(fail_calls={1, 2, 4}),
                fallback=Gaussian(0.0, 1.0),
                max_retries=0,
                breaker=breaker,
            )
            rng = np.random.default_rng(9)
            batches = [source.sample_n(4, rng) for _ in range(8)]
            return (
                breaker.state,
                breaker.trips,
                breaker.recoveries,
                source.fallback_draws,
                np.concatenate(batches),
            )

        a, b = run(), run()
        assert a[:4] == b[:4]
        assert np.array_equal(a[4], b[4])

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0.0)
        with pytest.raises(ValueError):
            ResilientSource(Gaussian(0, 1), max_retries=-1)


class TestIntegration:
    def test_metrics_counters(self):
        sink = RuntimeMetrics()
        with evaluation_config(metrics=sink):
            breaker = CircuitBreaker(window=4, min_calls=2, recovery_calls=2)
            source = ResilientSource(
                AlwaysFailing(),
                fallback=Gaussian(0.0, 1.0),
                max_retries=1,
                breaker=breaker,
            )
            rng = np.random.default_rng(0)
            for _ in range(4):
                source.sample_n(4, rng)
        stats = sink.snapshot()["sources"]
        assert stats["failures"] > 0
        assert stats["retries"] > 0
        assert stats["fallbacks"] > 0
        assert stats["breaker_trips"] == 1

    def test_distribution_resilient_convenience(self):
        source = Gaussian(5.0, 1.0).resilient(max_retries=1)
        assert isinstance(source, ResilientSource)
        out = source.sample_n(50, np.random.default_rng(1))
        assert np.mean(out) == pytest.approx(5.0, abs=0.6)

    def test_callable_primary_is_coerced(self):
        source = ResilientSource(lambda rng: rng.normal())
        out = source.sample_n(10, np.random.default_rng(0))
        assert len(out) == 10

    def test_usable_as_uncertain_leaf(self):
        from repro import Uncertain

        primary = Flaky(fail_calls={1})
        value = Uncertain(ResilientSource(primary, max_retries=1)) + 1.0
        samples = value.samples(32, rng=2)
        assert len(samples) == 32
        assert primary.calls >= 2


class TestGpsDemonstration:
    def test_dropout_prone_sensor_degrades_to_last_fix(self):
        from repro.gps.geo import GeoCoordinate
        from repro.gps.sensor import GpsDropout, GpsSensor

        home = GeoCoordinate(47.6, -122.3)
        sensor = GpsSensor(4.0, rng=np.random.default_rng(1))
        good_fix = sensor.measure(home, 0.0)
        sensor.dropout_probability = 0.999  # signal essentially gone
        loc = sensor.resilient_location(home, 1.0, max_retries=1)
        points = loc.samples(64, rng=7)
        assert len(points) == 64
        # Degraded samples centre on the last good fix, not on nothing.
        lat = np.mean([p.latitude for p in points])
        assert lat == pytest.approx(good_fix.coordinate.latitude, abs=1e-3)
        assert loc.node.dist.fallback_draws >= 1

        # With no fix ever seen the fallback has nothing to serve.
        fresh = GpsSensor(4.0, rng=np.random.default_rng(2),
                          dropout_probability=0.999)
        barren = fresh.resilient_location(home, 0.0, max_retries=1)
        with pytest.raises(GpsDropout, match="no previous fix"):
            barren.samples(8, rng=0)

    def test_zero_dropout_sensor_stream_is_unchanged(self):
        from repro.gps.geo import GeoCoordinate
        from repro.gps.sensor import GpsSensor

        home = GeoCoordinate(47.6, -122.3)
        # dropout_probability=0 must consume no extra randomness, so the
        # fix stream is bit-identical to a sensor without the feature.
        a = GpsSensor(4.0, rng=np.random.default_rng(5))
        b = GpsSensor(4.0, rng=np.random.default_rng(5), dropout_probability=0.0)
        for t in range(5):
            fa, fb = a.measure(home, float(t)), b.measure(home, float(t))
            assert fa.coordinate.latitude == fb.coordinate.latitude
            assert fa.coordinate.longitude == fb.coordinate.longitude
