"""Uniform distributions (continuous and discrete)."""

from __future__ import annotations

import numpy as np

from repro.dists.base import Distribution, Support


class Uniform(Distribution):
    """Continuous uniform on ``[low, high)``.

    A pseudo-random number generator *is* the sampling function for this
    distribution (Section 4.1); it anchors the library.
    """

    def __init__(self, low: float, high: float) -> None:
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def bulk_draw_spec(self):
        # ``rng.uniform(low, high, n)`` computes ``low + (high-low) * u``
        # per value, bit-identical to the affine over ``rng.random``.
        return ("random", self.low, self.high - self.low)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        inside = (x >= self.low) & (x <= self.high)
        with np.errstate(divide="ignore"):
            return np.where(inside, -np.log(self.high - self.low), -np.inf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.clip((x - self.low) / (self.high - self.low), 0.0, 1.0)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    @property
    def support(self) -> Support:
        return Support(self.low, self.high)


class DiscreteUniform(Distribution):
    """Uniform over integers ``low..high`` inclusive."""

    discrete = True

    def __init__(self, low: int, high: int) -> None:
        if not low <= high:
            raise ValueError(f"need low <= high, got [{low}, {high}]")
        self.low = int(low)
        self.high = int(high)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=n)

    def log_pdf(self, x):
        x = np.asarray(x)
        count = self.high - self.low + 1
        inside = (x >= self.low) & (x <= self.high) & (np.floor(x) == x)
        with np.errstate(divide="ignore"):
            return np.where(inside, -np.log(count), -np.inf)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def variance(self) -> float:
        count = self.high - self.low + 1
        return (count**2 - 1) / 12.0

    @property
    def support(self) -> Support:
        return Support(self.low, self.high)
