"""Evaluation configuration for conditionals and expectations.

The implicit conditional (``if speed > 4:``) has no argument position for a
hypothesis test or RNG, so the runtime carries an ambient
:class:`EvaluationConfig`.  The :func:`evaluation_config` context manager
scopes overrides, which the case studies use to instrument sample counts and
to switch between SPRT / fixed / group-sequential testing.
"""

from __future__ import annotations

import contextlib
import dataclasses
from time import monotonic
from typing import Iterator

import numpy as np

from repro.core.plan import PlanTelemetry
from repro.core.sprt import HypothesisTest, SPRT
from repro.resilience.policies import (
    INCONCLUSIVE_POLICIES,
    NONFINITE_POLICIES,
    validate_policy,
)
from repro.rng import default_rng
from repro.runtime import metrics as _metrics


@dataclasses.dataclass
class EvaluationConfig:
    """Ambient knobs for evaluating conditionals and expectations.

    Attributes mirror Section 4.3: ``alpha``/``beta`` are the significance
    level and type-II error bound of the conditional hypothesis tests,
    ``epsilon`` the half-width of the SPRT indifference region,
    ``batch_size`` the paper's ``k``, ``max_samples`` the truncation bound,
    and ``expectation_samples`` the fixed sample size the ``E`` operator
    uses.

    ``engine`` selects how compiled evaluation plans are executed (see
    :mod:`repro.core.engines`; ``"numpy"`` is the vectorized default,
    ``"interpreter"`` the per-batch graph walk, ``"parallel"`` the
    process-pool engine of :mod:`repro.runtime.parallel`).
    ``plan_telemetry``, when set to a
    :class:`~repro.core.plan.PlanTelemetry`, makes every engine record
    nodes evaluated, batches executed, and wall time per node kind.

    The unified evaluation knobs (the ``repro.evaluate`` surface) live
    here too:

    - ``sample_budget`` — cumulative cap on joint samples drawn while this
      config is active; exceeding it raises
      :class:`~repro.core.sampling.SampleBudgetExceeded`.
    - ``deadline`` — wall-clock seconds, measured from the construction of
      this config, after which any further draw raises
      :class:`~repro.core.sampling.DeadlineExceeded` (time-bounded
      conditionals: the SPRT loop checks before every batch).
    - ``metrics`` — ``True`` (default) records runtime counters into the
      process-global :data:`repro.runtime.metrics.METRICS`; ``False``
      disables recording; a
      :class:`~repro.runtime.metrics.RuntimeMetrics` instance scopes
      recording to that instance.
    - ``estimator_samples`` / ``ci_samples`` — shared default sample sizes
      for the moment estimators (``sd``/``var``) and the interval/density
      estimators (``ci``/``histogram``/``evidence``).
    """

    alpha: float = 0.05
    beta: float = 0.05
    epsilon: float = 0.05
    batch_size: int = 10
    max_samples: int = 10_000
    expectation_samples: int = 1_000
    rng: np.random.Generator = dataclasses.field(default_factory=default_rng)
    #: Optional override: a factory building the test for a given threshold.
    test_factory: "callable | None" = None
    #: Execution engine for compiled plans: a registered name or an
    #: :class:`~repro.core.engines.ExecutionEngine` instance.  Built-in
    #: names: ``"numpy"`` (default), ``"interpreter"``, ``"parallel"``,
    #: ``"fused"`` (generated-kernel backend, :mod:`repro.core.fused`).
    engine: "str | object" = "numpy"
    #: Optimizer level for compiled plans (:mod:`repro.core.optimizer`):
    #: ``False``/``0`` disables, ``1`` runs constant folding + dead-slot
    #: elimination, ``True``/``2`` adds common-subexpression elimination.
    #: Safe default ``True``: every accepted rewrite preserves bit-identical
    #: RNG streams (rewrites that would reorder leaf draws are rejected),
    #: and memo-carrying draws (``SampleContext``) always run unoptimized.
    optimize: "bool | int" = True
    #: Telemetry sink for the plan/engine layer (``None`` = off, the fast
    #: path).  Enable with :meth:`enable_plan_telemetry`.
    plan_telemetry: PlanTelemetry | None = None
    #: Optional static-analysis hook run once per freshly compiled plan
    #: (``None`` = off).  Install the default analyzer — which warns with
    #: :class:`~repro.analysis.UncertaintyWarning` on UNC101-class
    #: findings — via :meth:`enable_plan_analysis`.
    plan_analyzer: "callable | None" = None
    #: Cumulative cap on joint samples drawn under this config (``None`` =
    #: unlimited).  Enforced centrally by the sampling facade.
    sample_budget: int | None = None
    #: Wall-clock budget in seconds from this config's construction
    #: (``None`` = unlimited).
    deadline: float | None = None
    #: Runtime-metrics selection: ``True`` → the process-global registry,
    #: ``False`` → off, or a :class:`~repro.runtime.metrics.RuntimeMetrics`
    #: instance for scoped recording.
    metrics: "bool | object" = True
    #: Default sample size for the moment estimators ``sd``/``var``.
    estimator_samples: int = 1_000
    #: Default sample size for ``ci``/``histogram``/``evidence``.
    ci_samples: int = 10_000
    #: Numerical-health policy applied by every engine batch:
    #: ``"propagate"`` (IEEE semantics, the default), ``"warn"``,
    #: ``"raise"``, or ``"resample"`` (redraw poisoned rows, bounded by
    #: ``nonfinite_retries``).  See ``docs/resilience.md``.
    on_nonfinite: str = "propagate"
    #: Retry cap for ``on_nonfinite="resample"``; exhausting it raises
    #: :class:`~repro.resilience.NonFiniteError`.
    nonfinite_retries: int = 8
    #: Cross-query sample ledger (:mod:`repro.core.ledger`): ``False``
    #: (default) disables, ``True`` enables with the default 64 MiB byte
    #: budget, an ``int`` enables with that byte budget.  When enabled,
    #: repeated queries over the same plan shape reuse cached sample
    #: columns, drawing only stream suffixes (see ``docs/performance.md``
    #: for the bit-identity and invalidation contract).
    sample_cache: "bool | int" = False
    #: Policy for hypothesis tests that truncate without significance:
    #: ``"best-guess"`` (the paper's ternary mapping, the default),
    #: ``"warn"``, or ``"raise"``
    #: (:class:`~repro.resilience.InconclusiveError`).
    on_inconclusive: str = "best-guess"
    #: Running count of Bernoulli samples drawn by conditionals (telemetry
    #: for Figure 14(b)); reset with ``reset_sample_counter``.
    samples_drawn: int = 0
    #: Running count of conditionals evaluated.
    conditionals_evaluated: int = 0
    #: Running count of joint samples executed under this config (the
    #: quantity ``sample_budget`` bounds).
    samples_executed: int = 0

    def __post_init__(self) -> None:
        # The deadline clock starts when the config is built, so a
        # ``with evaluation_config(deadline=0.5):`` block bounds the whole
        # block's sampling, not each individual draw.
        self.deadline_at = (
            monotonic() + self.deadline if self.deadline is not None else None
        )
        validate_policy("on_nonfinite", self.on_nonfinite, NONFINITE_POLICIES)
        validate_policy(
            "on_inconclusive", self.on_inconclusive, INCONCLUSIVE_POLICIES
        )
        if self.nonfinite_retries < 0:
            raise ValueError(
                f"nonfinite_retries must be >= 0, got {self.nonfinite_retries}"
            )
        if not isinstance(self.sample_cache, bool):
            if not isinstance(self.sample_cache, int):
                raise ValueError(
                    "sample_cache must be a bool or an int byte budget, "
                    f"got {self.sample_cache!r}"
                )
            if self.sample_cache <= 0:
                raise ValueError(
                    "sample_cache byte budget must be positive, got "
                    f"{self.sample_cache}"
                )

    def make_test(self, threshold: float) -> HypothesisTest:
        """Construct the hypothesis test for a conditional at ``threshold``."""
        if self.test_factory is not None:
            return self.test_factory(threshold)
        return SPRT(
            threshold=threshold,
            alpha=self.alpha,
            beta=self.beta,
            epsilon=self.epsilon,
            batch_size=self.batch_size,
            max_samples=self.max_samples,
        )

    def record(self, samples_used: int) -> None:
        self.samples_drawn += samples_used
        self.conditionals_evaluated += 1
        sink = _metrics.active()
        if sink is not None:
            sink.record_conditional(samples_used)

    def reset_sample_counter(self) -> None:
        self.samples_drawn = 0
        self.conditionals_evaluated = 0

    def enable_plan_telemetry(self) -> PlanTelemetry:
        """Install (or return the existing) plan/engine telemetry sink."""
        if self.plan_telemetry is None:
            self.plan_telemetry = PlanTelemetry()
        return self.plan_telemetry

    def enable_plan_analysis(self) -> None:
        """Warn (once per cached plan) on statically detectable bugs.

        Installs :func:`repro.analysis.warn_on_diagnostics` as the
        compile-time hook: every fresh plan compile runs the interval
        abstract interpreter, and error-severity findings — division by a
        zero-crossing support (UNC101), domain violations (UNC102) —
        surface as :class:`~repro.analysis.UncertaintyWarning`.  Cache
        hits never re-analyze, so the overhead is one sub-millisecond
        pass per distinct graph.
        """
        from repro.analysis.diagnostics import warn_on_diagnostics

        self.plan_analyzer = warn_on_diagnostics


_active_config = EvaluationConfig()


def get_config() -> EvaluationConfig:
    """The currently active evaluation configuration."""
    return _active_config


def set_config(config: EvaluationConfig) -> EvaluationConfig:
    """Install ``config`` globally, returning the previous one."""
    global _active_config
    previous = _active_config
    _active_config = config
    return previous


@contextlib.contextmanager
def evaluation_config(**overrides) -> Iterator[EvaluationConfig]:
    """Scope an evaluation configuration.

    Example::

        with evaluation_config(alpha=0.01, rng=default_rng(7)) as cfg:
            if speed > 4:
                ...
            print(cfg.samples_drawn)
    """
    base = get_config()
    fields = {
        f.name: getattr(base, f.name)
        for f in dataclasses.fields(EvaluationConfig)
        if f.name
        not in ("samples_drawn", "conditionals_evaluated", "samples_executed")
    }
    fields.update(overrides)
    fresh = EvaluationConfig(**fields)
    previous = set_config(fresh)
    try:
        yield fresh
    finally:
        set_config(previous)


# The runtime-metrics module resolves its recording sink through the active
# configuration (see ``EvaluationConfig.metrics``).
_metrics.bind_resolver(lambda: get_config().metrics)
