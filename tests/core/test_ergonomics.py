"""The uncertain-tee ergonomics surface: percentiles, intervals, map/flat_map.

These mirror the exemplar API (``percentiles(sampleCount)``,
``confidenceInterval(0.95)``, ``isProbable()``, ``map``/``flatMap``) on
top of this library's cached/optimized plans, ambient configuration and
engines — the satellite API redesign of the service-tier PR.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Uncertain, evaluate, evaluation_config
from repro.core.graph import BindNode
from repro.dists import Exponential, Gaussian, Uniform
from repro.runtime import RuntimeMetrics


class TestPercentiles:
    def test_shape_and_monotonicity(self):
        speed = Uncertain(Gaussian(4.0, 1.0))
        p = speed.percentiles(100, samples=20_000, rng=0)
        assert p.shape == (101,)
        assert np.all(np.diff(p) >= 0)
        # p[50] is the median of a symmetric distribution.
        assert p[50] == pytest.approx(4.0, abs=0.1)

    def test_divisions_default_and_override(self):
        value = Uncertain(Uniform(0.0, 1.0))
        assert value.percentiles(samples=1_000, rng=0).shape == (101,)
        assert value.percentiles(4, samples=1_000, rng=0).shape == (5,)

    def test_samples_defaults_to_ci_samples(self):
        scoped = RuntimeMetrics()
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(ci_samples=333, metrics=scoped, rng=0):
            value.percentiles()
        assert scoped.total_samples() == 333

    def test_honors_sample_budget(self):
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(sample_budget=10, rng=0):
            with pytest.raises(repro.SampleBudgetExceeded):
                value.percentiles(samples=1_000)

    def test_engine_override_is_bit_identical(self):
        value = Uncertain(Gaussian(0.0, 1.0)) * 2.0 + 1.0
        a = value.percentiles(10, samples=4_096, rng=3, engine="numpy")
        b = value.percentiles(10, samples=4_096, rng=3, engine="interpreter")
        assert np.array_equal(a, b)


class TestConfidenceInterval:
    def test_covers_the_mass(self):
        value = Uncertain(Gaussian(10.0, 2.0))
        lo, hi = value.confidence_interval(0.95, samples=50_000, rng=0)
        assert lo == pytest.approx(10.0 - 1.96 * 2.0, abs=0.15)
        assert hi == pytest.approx(10.0 + 1.96 * 2.0, abs=0.15)

    def test_matches_ci_spelling(self):
        value = Uncertain(Exponential(1.0))
        a = value.confidence_interval(0.9, samples=5_000, rng=7)
        b = value.ci(0.9, n=5_000, rng=7)
        assert a == b

    def test_level_validation(self):
        value = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(ValueError):
            value.confidence_interval(0.0)
        with pytest.raises(ValueError):
            value.confidence_interval(1.0)


class TestIsProbable:
    def test_on_boolean_evidence(self):
        speed = Uncertain(Gaussian(4.0, 0.1))
        assert (speed > 3.0).is_probable(0.9, rng=0)
        assert not (speed > 5.0).is_probable(0.5, rng=0)

    def test_lifts_truthiness_on_general_values(self):
        # A value that is almost never exactly zero is almost surely truthy.
        value = Uncertain(Gaussian(5.0, 0.1))
        assert value.is_probable(0.9, rng=0)

    def test_bool_overload_matches(self):
        speed = Uncertain(Gaussian(4.0, 0.1))
        with evaluation_config(rng=np.random.default_rng(0)):
            expected = bool(speed > 3.0)
        assert (speed > 3.0).is_probable(0.5, rng=0) == expected


class TestMapFlatMap:
    def test_map_preserves_correlation(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        doubled = x.map(lambda v: 2.0 * v, vectorized=True)
        diff = doubled - x - x
        assert diff.expected_value(100, rng=0) == pytest.approx(0.0, abs=1e-12)

    def test_flat_map_draws_from_dependent_distribution(self):
        # The canonical bind: a rate sampled upstream parameterises the
        # downstream distribution.
        rate = Uncertain(Uniform(1.0, 2.0))
        wait = rate.flat_map(lambda r: Exponential(r))
        # E[wait] = E[1/rate] = ln(2) for rate ~ U(1, 2).
        est = wait.expected_value(40_000, rng=0)
        assert est == pytest.approx(np.log(2.0), abs=0.03)

    def test_flat_map_accepts_uncertain_results(self):
        base = Uncertain(Gaussian(0.0, 0.001))
        shifted = base.flat_map(lambda v: Uncertain(Gaussian(v + 10.0, 0.001)))
        assert shifted.expected_value(500, rng=0) == pytest.approx(10.0, abs=0.1)

    def test_flat_map_accepts_plain_values(self):
        value = Uncertain(Uniform(0.0, 1.0)).flat_map(lambda v: 42.0)
        assert np.all(value.samples(16, rng=0) == 42.0)

    def test_bind_plans_are_structurally_opaque(self):
        value = Uncertain(Gaussian(0.0, 1.0)).flat_map(lambda v: Exponential(1.0))
        assert isinstance(value.node, BindNode)
        assert value.plan.structural_hash is None

    def test_bind_is_deterministic_per_seed(self):
        rate = Uncertain(Uniform(1.0, 2.0))
        wait = rate.flat_map(lambda r: Exponential(r))
        a = wait.samples(64, rng=5)
        b = wait.samples(64, rng=5)
        assert np.array_equal(a, b)


class TestFacadeParity:
    """The new surface is exposed identically via ``repro.evaluate``."""

    def test_percentiles_parity(self):
        value = Uncertain(Gaussian(1.0, 1.0))
        a = evaluate.percentiles(value, 10, samples=2_000, rng=1)
        b = value.percentiles(10, samples=2_000, rng=1)
        assert np.array_equal(a, b)

    def test_confidence_interval_parity(self):
        value = Uncertain(Gaussian(1.0, 1.0))
        assert evaluate.confidence_interval(
            value, 0.9, samples=2_000, rng=1
        ) == value.confidence_interval(0.9, samples=2_000, rng=1)

    def test_is_probable_parity(self):
        cond = Uncertain(Gaussian(4.0, 0.1)) > 3.0
        assert evaluate.is_probable(cond, 0.5, rng=1) == cond.is_probable(
            0.5, rng=1
        )

    def test_all_lists_the_new_names(self):
        for name in ("percentiles", "confidence_interval", "is_probable"):
            assert name in evaluate.__all__
