"""Tests for the MLP, including gradient checks against finite differences."""

import numpy as np
import pytest

from repro.ml.mlp import MLP
from repro.rng import default_rng


class TestConstruction:
    def test_param_count(self):
        mlp = MLP((9, 8, 1), rng=default_rng(0))
        assert mlp.n_params == 9 * 8 + 8 + 8 * 1 + 1

    def test_unpack_shapes(self):
        mlp = MLP((4, 3, 2), rng=default_rng(1))
        layers = mlp.unpack()
        assert layers[0][0].shape == (4, 3)
        assert layers[0][1].shape == (3,)
        assert layers[1][0].shape == (3, 2)

    def test_unpack_roundtrip(self):
        mlp = MLP((3, 2, 1), rng=default_rng(2))
        layers = mlp.unpack()
        rebuilt = np.concatenate(
            [np.concatenate([w.ravel(), b]) for w, b in layers]
        )
        assert np.array_equal(rebuilt, mlp.weights)

    def test_unpack_validates_length(self):
        mlp = MLP((3, 2), rng=default_rng(3))
        with pytest.raises(ValueError):
            mlp.unpack(np.zeros(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLP((5,))
        with pytest.raises(ValueError):
            MLP((5, 0, 1))


class TestForward:
    def test_output_shape_single_unit(self):
        mlp = MLP((4, 3, 1), rng=default_rng(4))
        assert mlp.forward(np.zeros((7, 4))).shape == (7,)

    def test_output_shape_multi_unit(self):
        mlp = MLP((4, 3, 2), rng=default_rng(5))
        assert mlp.forward(np.zeros((7, 4))).shape == (7, 2)

    def test_alternate_weights(self):
        mlp = MLP((2, 2, 1), rng=default_rng(6))
        x = np.array([[1.0, -1.0]])
        default_out = mlp.forward(x)
        other_out = mlp.forward(x, np.zeros(mlp.n_params))
        assert not np.allclose(default_out, other_out)
        assert np.allclose(other_out, 0.0)  # all-zero weights -> zero output

    def test_deterministic(self):
        mlp = MLP((3, 4, 1), rng=default_rng(7))
        x = default_rng(8).normal(size=(5, 3))
        assert np.array_equal(mlp.forward(x), mlp.forward(x))


class TestBackprop:
    def test_gradient_matches_finite_differences(self):
        mlp = MLP((3, 4, 1), rng=default_rng(9))
        rng = default_rng(10)
        x = rng.normal(size=(6, 3))
        t = rng.normal(size=6)
        _, grad = mlp.forward_backward(x, t)
        eps = 1e-6
        for idx in range(0, mlp.n_params, 7):
            w_plus = mlp.weights.copy()
            w_plus[idx] += eps
            w_minus = mlp.weights.copy()
            w_minus[idx] -= eps
            loss_plus, _ = mlp.forward_backward(x, t, w_plus)
            loss_minus, _ = mlp.forward_backward(x, t, w_minus)
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grad[idx] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_gradient_deep_network(self):
        mlp = MLP((2, 5, 5, 1), rng=default_rng(11))
        rng = default_rng(12)
        x = rng.normal(size=(4, 2))
        t = rng.normal(size=4)
        _, grad = mlp.forward_backward(x, t)
        eps = 1e-6
        for idx in (0, mlp.n_params // 2, mlp.n_params - 1):
            w = mlp.weights.copy()
            w[idx] += eps
            lp, _ = mlp.forward_backward(x, t, w)
            w[idx] -= 2 * eps
            lm, _ = mlp.forward_backward(x, t, w)
            assert grad[idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-3, abs=1e-6)

    def test_loss_is_half_sse(self):
        mlp = MLP((2, 1), rng=default_rng(13))
        x = np.array([[0.0, 0.0]])
        t = np.array([2.0])
        loss, _ = mlp.forward_backward(x, t, np.zeros(mlp.n_params))
        assert loss == pytest.approx(0.5 * 4.0)


class TestTraining:
    def test_sgd_reduces_loss(self):
        rng = default_rng(14)
        x = rng.normal(size=(200, 2))
        t = 0.3 * x[:, 0] - 0.7 * x[:, 1]
        mlp = MLP((2, 6, 1), rng=default_rng(15))
        history = mlp.train_sgd(x, t, epochs=50, rng=default_rng(16))
        assert history[-1] < 0.2 * history[0]

    def test_rmse_after_training(self):
        rng = default_rng(17)
        x = rng.normal(size=(500, 2))
        t = np.tanh(x[:, 0])
        mlp = MLP((2, 8, 1), rng=default_rng(18))
        mlp.train_sgd(x, t, epochs=100, rng=default_rng(19))
        assert mlp.rmse(x, t) < 0.1

    def test_validation(self):
        mlp = MLP((2, 1), rng=default_rng(20))
        with pytest.raises(ValueError):
            mlp.train_sgd(np.zeros((2, 2)), np.zeros(2), epochs=0)
