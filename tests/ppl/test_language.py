"""Tests for the mini generative PPL."""

import numpy as np
import pytest

from repro.ppl.language import Observe, Trace, rejection_query
from repro.rng import default_rng


class TestTrace:
    def test_flip_probability(self):
        rng = default_rng(0)
        values = [Trace(rng).flip(0.8) for _ in range(2_000)]
        assert np.mean(values) == pytest.approx(0.8, abs=0.03)

    def test_flip_validation(self):
        with pytest.raises(ValueError):
            Trace(default_rng(1)).flip(1.5)

    def test_uniform_range(self):
        rng = default_rng(2)
        trace = Trace(rng)
        v = trace.uniform(2.0, 3.0)
        assert 2.0 <= v < 3.0

    def test_gaussian(self):
        rng = default_rng(3)
        values = [Trace(rng).gaussian(5.0, 0.1) for _ in range(500)]
        assert np.mean(values) == pytest.approx(5.0, abs=0.05)

    def test_choices_recorded(self):
        trace = Trace(default_rng(4))
        trace.flip(0.5, "a")
        trace.uniform(0, 1, "b")
        assert [name for name, _ in trace.choices] == ["a", "b"]

    def test_observe_true_passes(self):
        Trace(default_rng(5)).observe(True)

    def test_observe_false_raises(self):
        with pytest.raises(Observe):
            Trace(default_rng(6)).observe(False, "constraint")


class TestRejectionQuery:
    def test_unconditioned_model(self):
        result = rejection_query(lambda t: t.flip(0.5), 500, rng=default_rng(7))
        assert len(result.samples) == 500
        assert result.executions == 500
        assert result.acceptance_rate == 1.0

    def test_conditioning_changes_distribution(self):
        def model(t: Trace):
            x = t.flip(0.5, "x")
            y = t.flip(0.5, "y")
            t.observe(x or y)
            return x

        result = rejection_query(model, 3_000, rng=default_rng(8))
        # Pr[x | x or y] = 2/3.
        assert result.estimate() == pytest.approx(2 / 3, abs=0.03)

    def test_rare_evidence_costs_executions(self):
        def model(t: Trace):
            t.observe(t.flip(0.01))
            return True

        result = rejection_query(model, 20, rng=default_rng(9))
        assert result.executions > 500

    def test_max_executions_cap(self):
        def impossible(t: Trace):
            t.observe(False)
            return True

        result = rejection_query(
            impossible, 10, max_executions=1_000, rng=default_rng(10)
        )
        assert result.samples == []
        assert result.executions == 1_000
        assert result.acceptance_rate == 0.0

    def test_estimate_requires_samples(self):
        def impossible(t: Trace):
            t.observe(False)
            return True

        result = rejection_query(impossible, 5, max_executions=50, rng=default_rng(11))
        with pytest.raises(ValueError):
            result.estimate()

    def test_n_samples_validation(self):
        with pytest.raises(ValueError):
            rejection_query(lambda t: True, 0)
