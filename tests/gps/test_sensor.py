"""Tests for the GPS sensor and its Rayleigh posterior."""

import math

import numpy as np
import pytest

from repro.gps.geo import GeoCoordinate, enu_distance_m
from repro.gps.sensor import (
    GpsFix,
    GpsSensor,
    gps_posterior,
    gps_posterior_enu,
    rayleigh_scale,
)
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


class TestRayleighScale:
    def test_value(self):
        assert rayleigh_scale(4.0) == pytest.approx(4.0 / math.sqrt(math.log(400)))

    def test_validation(self):
        with pytest.raises(ValueError):
            rayleigh_scale(0.0)


class TestGpsPosterior:
    def test_radial_distribution(self, fixed_rng):
        fix = GpsFix(ORIGIN, 4.0, 0.0)
        loc = gps_posterior(fix)
        samples = loc.samples(5_000, fixed_rng)
        dists = np.array([enu_distance_m(ORIGIN, s) for s in samples])
        # 95% of the posterior mass lies within the 95% accuracy radius.
        assert np.mean(dists <= 4.0) == pytest.approx(0.95, abs=0.01)

    def test_isotropy(self, fixed_rng):
        fix = GpsFix(ORIGIN, 8.0, 0.0)
        samples = gps_posterior(fix).samples(5_000, fixed_rng)
        easts = np.array([s.enu_m(ORIGIN)[0] for s in samples])
        norths = np.array([s.enu_m(ORIGIN)[1] for s in samples])
        assert abs(easts.mean()) < 0.3 and abs(norths.mean()) < 0.3
        assert easts.std() == pytest.approx(norths.std(), rel=0.1)

    def test_enu_posterior_matches_object_posterior(self, fixed_rng):
        fix = GpsFix(ORIGIN.offset_m(10.0, 5.0), 4.0, 0.0)
        east, north = gps_posterior_enu(fix, ORIGIN)
        assert east.expected_value(20_000, default_rng(0)) == pytest.approx(10.0, abs=0.1)
        assert north.expected_value(20_000, default_rng(1)) == pytest.approx(5.0, abs=0.1)

    def test_enu_components_jointly_consistent(self, fixed_rng):
        # east^2 + north^2 must follow the Rayleigh radial law, which only
        # holds when the two components share the same underlying draw.
        fix = GpsFix(ORIGIN, 4.0, 0.0)
        east, north = gps_posterior_enu(fix, ORIGIN)
        radius = (east**2 + north**2) ** 0.5
        r95 = np.quantile(radius.samples(20_000, fixed_rng), 0.95)
        assert r95 == pytest.approx(4.0, rel=0.03)


class TestGpsSensor:
    def test_iid_error_statistics(self, fixed_rng):
        sensor = GpsSensor(4.0, rng=fixed_rng)
        dists = np.array(
            [
                enu_distance_m(ORIGIN, sensor.measure(ORIGIN, t).coordinate)
                for t in range(3_000)
            ]
        )
        assert np.mean(dists <= 4.0) == pytest.approx(0.95, abs=0.02)

    def test_correlated_errors_move_slowly(self):
        sensor = GpsSensor(4.0, rng=default_rng(1), correlation=0.99)
        fixes = [sensor.measure(ORIGIN, t) for t in range(100)]
        steps = [
            enu_distance_m(a.coordinate, b.coordinate)
            for a, b in zip(fixes, fixes[1:])
        ]
        iid_sensor = GpsSensor(4.0, rng=default_rng(1), correlation=0.0)
        iid_fixes = [iid_sensor.measure(ORIGIN, t) for t in range(100)]
        iid_steps = [
            enu_distance_m(a.coordinate, b.coordinate)
            for a, b in zip(iid_fixes, iid_fixes[1:])
        ]
        assert np.mean(steps) < 0.5 * np.mean(iid_steps)

    def test_glitches_produce_jumps_and_honest_accuracy(self):
        sensor = GpsSensor(
            4.0,
            rng=default_rng(2),
            correlation=0.9,
            glitch_probability=0.2,
            glitch_scale_m=50.0,
            glitch_duration_s=2.0,
        )
        fixes = [sensor.measure(ORIGIN, float(t)) for t in range(200)]
        accuracies = [f.horizontal_accuracy for f in fixes]
        assert max(accuracies) > 10.0  # honest sensor reports bad accuracy
        dists = [enu_distance_m(ORIGIN, f.coordinate) for f in fixes]
        assert max(dists) > 20.0  # jumps actually happened

    def test_dishonest_accuracy_stays_constant(self):
        sensor = GpsSensor(
            4.0,
            rng=default_rng(3),
            glitch_probability=0.5,
            honest_accuracy=False,
        )
        fixes = [sensor.measure(ORIGIN, float(t)) for t in range(50)]
        assert all(f.horizontal_accuracy == 4.0 for f in fixes)

    def test_get_location_returns_uncertain(self, rng):
        sensor = GpsSensor(4.0, rng=rng)
        loc = sensor.get_location(ORIGIN)
        sample = loc.sample(rng)
        assert isinstance(sample, GeoCoordinate)

    def test_error_magnitude_dist(self):
        sensor = GpsSensor(4.0)
        assert float(sensor.error_magnitude_dist.cdf(4.0)) == pytest.approx(0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            GpsSensor(0.0)
        with pytest.raises(ValueError):
            GpsSensor(4.0, correlation=1.0)
        with pytest.raises(ValueError):
            GpsSensor(4.0, glitch_probability=1.5)
