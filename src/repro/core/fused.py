"""Stage 3 of the plan compiler: the fused-kernel execution backend.

For every plan *shape* (structural hash, see :mod:`repro.core.structural`)
this module generates one flat numpy Python source — a single function that
evaluates the whole optimized program without the per-step dispatch loop of
:class:`~repro.core.engines.NumpyEngine` — compiles it once, and caches it
process-wide.  Isomorphic plans compiled later (fresh graphs per session,
worker processes, re-built roots) rebind the same generated code to their
own node objects instead of re-generating anything.

What the generated kernel fuses:

- **Coalesced leaf draws.**  Runs of adjacent stochastic leaves whose
  distributions declare an affine reduction
  (:meth:`~repro.dists.base.Distribution.bulk_draw_spec`) collapse into a
  single base-generator call plus a broadcast affine::

      _d0 = (_loc0 + _scale0
             * rng.standard_normal(4 * n).reshape(4, n))

  This is bit-identical to the four sequential ``rng.normal(...)`` calls
  the reference engines make — numpy's distribution methods compute
  ``loc + scale * draw`` per value from the same underlying stream, so
  chunking the stream differently does not reorder it.  Adjacency is in
  *RNG-consumption order*: point masses and deterministic interior ops
  never draw, so they do not break a run.
- **Operator chains.**  Deterministic interior ops become native infix
  expressions; single-use intermediates are inlined into their consumer,
  so ``sqrt(dx*dx + dy*dy) / dt > 4`` becomes one line of numpy instead
  of five dispatched steps.
- **Constants.**  Scalar point masses (including those produced by the
  constant-fold pass) are bound once at kernel-build time and used as
  scalars where broadcasting keeps the result identical.

Safety: every freshly generated kernel is **admitted before first use**,
now in two tiers.  First the static stream-safety certifier
(:mod:`repro.analysis.certify`) tries to *prove* the kernel consumes the
RNG stream exactly as the reference engine — trusted bulk-draw families,
contiguous coalesced runs, delegated sources, NEP 50-safe inlined
scalars.  A certified kernel skips probe execution entirely (counted as
``kernels_certified``); a kernel the analysis cannot model is executed
against :class:`~repro.core.engines.NumpyEngine` on the same plan for
multiple seeds and batch sizes and required to produce bit-identical
arrays, values *and* dtype (``kernels_probed``); a kernel the analysis
*refutes* is rejected outright with rule UNC401.  A kernel that fails
either gate — or a plan with no structural hash (lambdas, opaque
sources) — falls back to the inner engine, with the rejection recorded
in runtime metrics and the :class:`CertificationRecord` attached to
``plan.provenance``.  The bit-identity contract of
:mod:`repro.core.optimizer` is therefore enforced three ways: by
construction, by proof, and by test.

``numexpr`` acceleration for long arithmetic chains is available behind a
feature flag (``FusedEngine(use_numexpr=True)`` or the
``REPRO_FUSED_NUMEXPR`` environment variable); when the library is not
installed the flag degrades to plain numpy with a warning.
"""

from __future__ import annotations

import operator
import os
import threading
import warnings
from collections import OrderedDict

import numpy as np

from repro.core.engines import ExecutionEngine, get_engine, register_engine
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import OP_SOURCE, EvaluationPlan, PlanStep
from repro.runtime import cancellation as _cancel
from repro.runtime import metrics as _metrics


class FusedFallbackWarning(UserWarning):
    """A plan could not use the fused backend and fell back to numpy."""


#: Deterministic binary ops with a native infix spelling.  The symbol is
#: applied to ndarray operands, which dispatches to exactly the same ufunc
#: the reference engine's bound callable invokes.
_INFIX_BINARY = {
    operator.add: "+", operator.sub: "-", operator.mul: "*",
    operator.truediv: "/", operator.floordiv: "//", operator.mod: "%",
    operator.pow: "**",
    operator.lt: "<", operator.le: "<=", operator.gt: ">",
    operator.ge: ">=", operator.eq: "==", operator.ne: "!=",
    np.add: "+", np.subtract: "-", np.multiply: "*", np.true_divide: "/",
}

#: Binary ops spelled as calls on the ``np`` module object.
_NPFUNC_BINARY = {
    np.logical_and: "logical_and",
    np.logical_or: "logical_or",
    np.logical_xor: "logical_xor",
}

_PREFIX_UNARY = {operator.neg: "-", operator.pos: "+"}
_NPFUNC_UNARY = {np.abs: "abs", np.absolute: "abs", np.logical_not: "logical_not"}

#: Operations that cannot signal IEEE floating-point errors, letting the
#: kernel skip the ``np.errstate`` context manager entirely.
_SAFE_SYMBOLS = frozenset(
    {"+", "-", "*", "<", "<=", ">", ">=", "==", "!=",
     "logical_and", "logical_or", "logical_xor", "logical_not", "abs"}
)

#: numexpr handles these (and only these) in the chain-fusion path.
_NE_SYMBOLS = frozenset({"+", "-", "*", "/"})

_SCALAR_TYPES = (int, float, bool, np.integer, np.floating, np.bool_)

#: Verification matrix: every fresh kernel must be bit-identical to the
#: reference engine for each (seed, batch size) pair before first use.
_VERIFY_SEEDS = (12345, 67890)
_VERIFY_SIZES = (3, 17)

_KERNEL_CACHE_LIMIT = 256


def _chk(values, n):
    """Match ``engines._check_batch``: coerce + validate a step's output."""
    if type(values) is not np.ndarray:
        values = np.asarray(values)
    if values.shape[:1] != (n,):
        from repro.core.sampling import SamplingError

        raise SamplingError(
            f"fused kernel produced batch of shape {values.shape}, "
            f"expected leading dimension {n}"
        )
    return values


class FusedStep(PlanStep):
    """One emitted kernel statement, listing its constituent operations."""

    __slots__ = ("ops",)

    def __init__(self, node, slot, parent_slots, ops):
        super().__init__(node, slot, parent_slots)
        self.ops = tuple(ops)
        self.kind = "Fused"


class FusedProgram:
    """Introspection handle for one generated kernel (shared per shape)."""

    __slots__ = ("structural_hash", "source", "steps", "uses_numexpr")

    def __init__(self, structural_hash, source, steps, uses_numexpr=False):
        self.structural_hash = structural_hash
        self.source = source
        self.steps = tuple(steps)
        self.uses_numexpr = uses_numexpr

    def op_histogram(self) -> dict[str, int]:
        """Constituent-operation counts across all fused statements."""
        hist: dict[str, int] = {}
        for step in self.steps:
            for op in step.ops:
                name, _, count = op.partition(" ×")
                hist[name] = hist.get(name, 0) + (int(count) if count else 1)
        return hist

    def describe(self) -> str:
        lines = [f"fused kernel {self.structural_hash}:"]
        lines.extend(f"  {step!r}" for step in self.steps)
        lines.append("generated source:")
        lines.extend("  " + line for line in self.source.splitlines())
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FusedProgram {self.structural_hash} "
            f"{len(self.steps)} fused step(s)>"
        )


class _Expr:
    """An expression being built for one plan slot."""

    __slots__ = ("text", "ops", "ne_ok", "names")

    def __init__(self, text, ops=(), ne_ok=False, names=()):
        self.text = text
        self.ops = tuple(ops)
        self.ne_ok = ne_ok
        self.names = frozenset(names)


class _KernelSpec:
    """Everything needed to rebind the generated source to a new plan."""

    __slots__ = (
        "source", "factory", "steps_meta", "s_slots", "f_slots", "g_slots",
        "k_slots", "runs", "uses_numexpr", "verified", "certification",
    )

    def __init__(self):
        self.source = ""
        self.factory = None
        self.steps_meta = ()  # (slot, parent_slots, ops) per statement
        self.s_slots = ()
        self.f_slots = ()
        self.g_slots = ()
        self.k_slots = ()
        self.runs = ()  # (family, (slot, ...)) per coalesced draw
        self.uses_numexpr = False
        self.verified = False
        self.certification = None  # CertificationRecord (shared per shape)


def _binding_args(spec: _KernelSpec, plan: EvaluationPlan):
    """Extract this plan's callables/constants for the shared kernel code."""
    steps = plan.steps
    S = tuple(steps[i].node.evaluate_batch for i in spec.s_slots)
    # F holds op callables for Binary/UnaryOp slots and lifted ufuncs for
    # vectorized ApplyNode slots (called directly, no wrapper).
    F = tuple(
        getattr(steps[i].node, "op", None) or steps[i].node.fn
        for i in spec.f_slots
    )
    G = tuple(steps[i].node.evaluate_batch for i in spec.g_slots)
    K = tuple(steps[i].node.value for i in spec.k_slots)
    R = []
    for _family, slots in spec.runs:
        params = [steps[i].node.dist.bulk_draw_spec() for i in slots]
        if len(slots) == 1:
            R.append((float(params[0][1]), float(params[0][2])))
        else:
            # Column vectors, shaped once here so the kernel's broadcast
            # against the (k, n) draw block needs no per-call reshaping.
            R.append(
                (
                    np.asarray([p[1] for p in params], dtype=np.float64)
                    .reshape(-1, 1),
                    np.asarray([p[2] for p in params], dtype=np.float64)
                    .reshape(-1, 1),
                )
            )
    return S, F, G, K, tuple(R)


def _generate(plan: EvaluationPlan, use_numexpr: bool) -> _KernelSpec:
    """Generate (but do not verify) the kernel source for ``plan``."""
    spec = _KernelSpec()
    steps = plan.steps
    root_slot = plan.root_slot

    # Use counts decide materialisation (consts) and inlining (exprs).
    uses = [0] * len(steps)
    uses[root_slot] += 1
    for step in steps:
        for p in step.parent_slots:
            uses[p] += 1

    # -- classify ----------------------------------------------------------
    # const slots that must materialise as np.full (mirroring the engine):
    # the root, operands of generic/unknown calls, operands of unary ops,
    # and one side of a const-const binary.
    const_slot = {}
    for step in steps:
        node = step.node
        if (
            step.opcode == OP_SOURCE
            and type(node) is PointMassNode
            and isinstance(node.value, _SCALAR_TYPES)
        ):
            const_slot[step.slot] = True  # True = scalar-inlinable so far
    if root_slot in const_slot:
        const_slot[root_slot] = False
    for step in steps:
        kind = type(step.node)
        parents = step.parent_slots
        if kind is BinaryOpNode and step.node.op in _INFIX_BINARY:
            a, b = parents
            if a in const_slot and b in const_slot:
                const_slot[a] = False  # materialise one side; b stays scalar
        elif kind is BinaryOpNode and step.node.op in _NPFUNC_BINARY:
            pass  # np.logical_* broadcast scalars identically
        else:
            for p in parents:
                if p in const_slot:
                    const_slot[p] = False

    s_slots, f_slots, g_slots, k_slots, runs = [], [], [], [], []
    k_index = {}
    pending_run = None  # (family, [slots]) being grown in rng order
    for step in steps:
        if step.opcode != OP_SOURCE:
            continue
        node = step.node
        if type(node) is LeafNode:
            draw = node.dist.bulk_draw_spec()
            if draw is not None:
                family = draw[0]
                if pending_run is not None and pending_run[0] == family:
                    pending_run[1].append(step.slot)
                else:
                    if pending_run is not None:
                        runs.append((pending_run[0], tuple(pending_run[1])))
                    pending_run = (family, [step.slot])
                continue
            # A spec-less leaf consumes RNG through its own path: it ends
            # any open run so draw order stays exactly the engines' order.
            if pending_run is not None:
                runs.append((pending_run[0], tuple(pending_run[1])))
                pending_run = None
            s_slots.append(step.slot)
        elif step.slot in const_slot:
            k_index[step.slot] = len(k_slots)
            k_slots.append(step.slot)
        else:
            # Non-scalar point masses and exotic parentless nodes run
            # through their own evaluate_batch (they never draw RNG, so
            # their position relative to the coalesced draws is free).
            s_slots.append(step.slot)
    if pending_run is not None:
        runs.append((pending_run[0], tuple(pending_run[1])))
    run_of = {}
    for r, (_family, slots) in enumerate(runs):
        for slot in slots:
            run_of[slot] = r

    # -- emit --------------------------------------------------------------
    body: list[str] = []
    steps_meta: list[tuple] = []
    exprs: dict[int, _Expr] = {}
    unsafe = False

    def ref(slot):
        """Operand text for ``slot`` (inlined expression or variable)."""
        e = exprs.get(slot)
        return e if e is not None else _Expr(f"v{slot}", ne_ok=True, names=(f"v{slot}",))

    def assign(slot, expr, parent_slots):
        body.append(f"v{slot} = {expr.text}")
        steps_meta.append((slot, tuple(parent_slots), expr.ops))

    drawn_runs = set()
    for step in steps:
        slot, node, parents = step.slot, step.node, step.parent_slots
        kind = type(node)
        if step.opcode == OP_SOURCE:
            if slot in run_of:
                r = run_of[slot]
                family, slots = runs[r]
                if r not in drawn_runs:
                    drawn_runs.add(r)
                    k = len(slots)
                    if k == 1:
                        # Identity terms are dropped: ``0.0 + x`` and
                        # ``1.0 * x`` cannot change any value the base
                        # generators produce (params are structural, so
                        # every plan sharing this source shares them).
                        spec_row = node.dist.bulk_draw_spec()
                        loc, scale = float(spec_row[1]), float(spec_row[2])
                        text = f"rng.{family}(n)"
                        if scale != 1.0:
                            text = f"_scale{r} * {text}"
                        if loc != 0.0:
                            text = f"_loc{r} + {text}"
                        body.append(f"v{slot} = ({text})")
                        steps_meta.append((slot, (), (family,)))
                    else:
                        body.append(
                            f"_d{r} = (_loc{r} + _scale{r}"
                            f" * rng.{family}({k} * n).reshape({k}, n))"
                        )
                        body.append(
                            ", ".join(f"v{s}" for s in slots) + f" = _d{r}"
                        )
                        steps_meta.append((slots[0], (), (f"{family} ×{k}",)))
            elif slot in k_index:
                j = k_index[slot]
                if const_slot[slot]:
                    exprs[slot] = _Expr(
                        f"_K{j}", ne_ok=True, names=(f"_K{j}",)
                    )
                else:
                    body.append(f"v{slot} = np.full(n, _K{j})")
                    steps_meta.append((slot, (), ("const",)))
            else:
                j = s_slots.index(slot)
                unsafe = True
                body.append(f"v{slot} = _chk(_S{j}((), n, rng), n)")
                steps_meta.append((slot, (), (step.kind,)))
            continue
        if kind is BinaryOpNode and node.op in _INFIX_BINARY:
            sym = _INFIX_BINARY[node.op]
            a, b = ref(parents[0]), ref(parents[1])
            expr = _Expr(
                f"({a.text} {sym} {b.text})",
                ops=a.ops + b.ops + (sym,),
                ne_ok=a.ne_ok and b.ne_ok and sym in _NE_SYMBOLS,
                names=a.names | b.names,
            )
        elif kind is BinaryOpNode and node.op in _NPFUNC_BINARY:
            fn = _NPFUNC_BINARY[node.op]
            a, b = ref(parents[0]), ref(parents[1])
            expr = _Expr(
                f"np.{fn}({a.text}, {b.text})",
                ops=a.ops + b.ops + (fn,),
                names=a.names | b.names,
            )
            sym = fn
        elif kind is UnaryOpNode and node.op in _PREFIX_UNARY:
            sym = _PREFIX_UNARY[node.op]
            a = ref(parents[0])
            expr = _Expr(
                f"({sym}{a.text})", ops=a.ops + (sym,), names=a.names
            )
            sym = "neg" if sym == "-" else "pos"
        elif kind is UnaryOpNode and node.op in _NPFUNC_UNARY:
            fn = _NPFUNC_UNARY[node.op]
            a = ref(parents[0])
            expr = _Expr(
                f"np.{fn}({a.text})", ops=a.ops + (fn,), names=a.names
            )
            sym = fn
        elif kind in (BinaryOpNode, UnaryOpNode) or (
            kind is ApplyNode
            and node.vectorized
            and isinstance(node.fn, np.ufunc)
        ):
            # Hashable op callables (e.g. np.hypot) and lifted ufuncs
            # applied to whole batches: call the bound callable directly.
            # For a ufunc ApplyNode this is bit-identical to its
            # ``evaluate_batch`` — ``np.asarray`` is a no-op on the
            # ndarray the ufunc returns — minus the wrapper frame.  A
            # unary ufunc on an ndarray operand keeps its shape, so the
            # batch check is skipped exactly as NumpyEngine skips its
            # (conditional) ``_check_batch`` for well-shaped results.
            j = len(f_slots)
            f_slots.append(slot)
            args = [ref(p) for p in parents]
            call = f"_F{j}({', '.join(a.text for a in args)})"
            if not (kind is ApplyNode and node.fn.nout == 1):
                call = f"_chk({call}, n)"
            expr = _Expr(
                call,
                ops=tuple(a2 for a in args for a2 in a.ops) + (node.label,),
                names=frozenset().union(*(a.names for a in args)),
            )
            sym = node.label
        else:
            # ApplyNode / ComponentNode / future hashable kinds: run the
            # node's own evaluate_batch, exactly like the generic engine
            # path.  These never consume RNG (RNG-consuming node kinds are
            # structurally opaque and never reach the fused backend).
            j = len(g_slots)
            g_slots.append(slot)
            args = [ref(p) for p in parents]
            unsafe = True
            assign(
                slot,
                _Expr(
                    f"_chk(_G{j}([{', '.join(a.text for a in args)}], n, rng), n)",
                    ops=tuple(a2 for a in args for a2 in a.ops) + (step.kind,),
                ),
                parents,
            )
            continue
        if sym not in _SAFE_SYMBOLS:
            unsafe = True
        if uses[slot] == 1 and slot != root_slot:
            exprs[slot] = expr  # single consumer: fuse into it
        else:
            if use_numexpr and expr.ne_ok and len(expr.ops) >= 2:
                local = ", ".join(
                    f"{nm!r}: {nm}" for nm in sorted(expr.names)
                )
                expr = _Expr(
                    f"_ne.evaluate({expr.text!r}, local_dict={{{local}}})",
                    ops=expr.ops,
                )
                spec.uses_numexpr = True
            assign(slot, expr, parents)

    body.append(f"return v{root_slot}")

    lines = ["def _factory(np, _chk, S, F, G, K, R, _ne):"]
    for j in range(len(s_slots)):
        lines.append(f"    _S{j} = S[{j}]")
    for j in range(len(f_slots)):
        lines.append(f"    _F{j} = F[{j}]")
    for j in range(len(g_slots)):
        lines.append(f"    _G{j} = G[{j}]")
    for j in range(len(k_slots)):
        lines.append(f"    _K{j} = K[{j}]")
    for r in range(len(runs)):
        lines.append(f"    _loc{r}, _scale{r} = R[{r}]")
    lines.append("    def _kernel(n, rng):")
    if unsafe:
        lines.append(
            "        with np.errstate(divide='ignore', invalid='ignore',"
            " over='ignore'):"
        )
        lines.extend("            " + b for b in body)
    else:
        lines.extend("        " + b for b in body)
    lines.append("    return _kernel")
    source = "\n".join(lines) + "\n"

    namespace: dict = {}
    digest = plan.structural_hash or "anonymous"
    exec(compile(source, f"<fused:{digest[:16]}>", "exec"), namespace)
    spec.source = source
    spec.factory = namespace["_factory"]
    spec.steps_meta = tuple(steps_meta)
    spec.s_slots = tuple(s_slots)
    spec.f_slots = tuple(f_slots)
    spec.g_slots = tuple(g_slots)
    spec.k_slots = tuple(k_slots)
    spec.runs = tuple(runs)
    return spec


def _verify(kernel, plan: EvaluationPlan, reference) -> bool:
    """Is ``kernel`` bit-identical to the reference engine on ``plan``?"""
    for seed in _VERIFY_SEEDS:
        for n in _VERIFY_SIZES:
            expected = reference.run(
                plan, n, np.random.default_rng(seed)
            )[plan.root_slot]
            got = kernel(n, np.random.default_rng(seed))
            expected = np.asarray(expected)
            got = np.asarray(got)
            if got.dtype != expected.dtype or got.shape != expected.shape:
                return False
            equal_nan = expected.dtype.kind in "fc"
            if not np.array_equal(got, expected, equal_nan=equal_nan):
                return False
    return True


class _BoundKernel:
    """A shape's kernel bound to one plan's node objects."""

    __slots__ = ("kernel", "program")

    def __init__(self, kernel, program):
        self.kernel = kernel
        self.program = program


def _attach_certification(plan: EvaluationPlan, record) -> None:
    """Append the kernel's CertificationRecord to ``plan.provenance``.

    Identity comparison, not equality: this runs on every kernel-cache
    hit, and a structural compare of the draw sequence would cost more
    than the dispatch it decorates.
    """
    if record is not None and not any(r is record for r in plan.provenance):
        plan.provenance = tuple(plan.provenance) + (record,)


#: Sentinel: this plan cannot be fused; always use the inner engine.
_FALLBACK = object()

_kernel_cache: "OrderedDict[str, _KernelSpec]" = OrderedDict()
_kernel_lock = threading.Lock()


def kernel_cache_stats() -> dict:
    with _kernel_lock:
        return {
            "size": len(_kernel_cache),
            "limit": _KERNEL_CACHE_LIMIT,
            "verified": sum(1 for s in _kernel_cache.values() if s.verified),
            "certified": sum(
                1 for s in _kernel_cache.values()
                if s.certification is not None and s.certification.certified
            ),
        }


def clear_kernel_cache() -> None:
    with _kernel_lock:
        _kernel_cache.clear()


def fused_program(plan: EvaluationPlan) -> FusedProgram | None:
    """The fused program bound to ``plan``, or ``None`` if it falls back."""
    bound = plan._fused
    if bound is None:
        bound = _prepare(plan, FusedEngine._default_numexpr())
    return None if bound is _FALLBACK else bound.program


def _prepare(plan: EvaluationPlan, use_numexpr):
    """Build (or rebind) and verify the kernel for ``plan``; cache on it."""
    metrics = _metrics.active()
    digest = plan.structural_hash
    if digest is None:
        plan._fused = _FALLBACK
        return _FALLBACK
    reference = get_engine("numpy")
    with _kernel_lock:
        spec = _kernel_cache.get(digest)
        if spec is not None:
            _kernel_cache.move_to_end(digest)
    fresh = spec is None
    if fresh:
        try:
            spec = _generate(plan, use_numexpr and _numexpr() is not None)
        except Exception as exc:
            warnings.warn(
                f"fused kernel generation failed for plan {digest}: "
                f"{type(exc).__name__}: {exc}; falling back to numpy",
                FusedFallbackWarning,
                stacklevel=3,
            )
            if metrics is not None:
                metrics.record_fused(rejected=1)
            plan._fused = _FALLBACK
            return _FALLBACK
    if not fresh and not spec.verified:
        # A previous plan of this shape failed verification: don't retry.
        _attach_certification(plan, spec.certification)
        plan._fused = _FALLBACK
        return _FALLBACK
    if fresh:
        # Static stream-safety certification (UNC401): a certified kernel
        # provably consumes the RNG stream exactly as the reference engine
        # and skips the probe run; a "probe" verdict falls through to the
        # dynamic bit-identity check below.
        from repro.analysis.certify import certify_kernel

        spec.certification = certify_kernel(spec, plan)
        if spec.certification.status == "rejected":
            reasons = "; ".join(spec.certification.reasons)
            warnings.warn(
                f"fused kernel for plan {digest} rejected "
                f"({spec.certification.rule}: {reasons}); "
                "falling back to numpy",
                FusedFallbackWarning,
                stacklevel=3,
            )
            if metrics is not None:
                metrics.record_fused(rejected=1)
            spec.verified = False
            with _kernel_lock:
                _kernel_cache[digest] = spec
                while len(_kernel_cache) > _KERNEL_CACHE_LIMIT:
                    _kernel_cache.popitem(last=False)
            _attach_certification(plan, spec.certification)
            plan._fused = _FALLBACK
            return _FALLBACK
    certified = spec.certification is not None and spec.certification.certified
    try:
        S, F, G, K, R = _binding_args(spec, plan)
        kernel = spec.factory(np, _chk, S, F, G, K, R, _numexpr())
        if fresh and not certified and not _verify(kernel, plan, reference):
            raise _VerificationFailed(digest)
    except Exception as exc:
        if isinstance(exc, _VerificationFailed):
            detail = "UNC401: output diverged from the numpy engine"
            record = spec.certification
            if record is not None and record.reasons:
                detail += (
                    "; static certification had deferred to the probe: "
                    + "; ".join(record.reasons)
                )
        else:
            detail = f"{type(exc).__name__}: {exc}"
        warnings.warn(
            f"fused kernel for plan {digest} rejected ({detail}); "
            "falling back to numpy",
            FusedFallbackWarning,
            stacklevel=3,
        )
        if metrics is not None:
            metrics.record_fused(rejected=1)
        spec.verified = False
        with _kernel_lock:
            _kernel_cache[digest] = spec
            while len(_kernel_cache) > _KERNEL_CACHE_LIMIT:
                _kernel_cache.popitem(last=False)
        _attach_certification(plan, spec.certification)
        plan._fused = _FALLBACK
        return _FALLBACK
    if fresh:
        spec.verified = True
        with _kernel_lock:
            _kernel_cache[digest] = spec
            while len(_kernel_cache) > _KERNEL_CACHE_LIMIT:
                _kernel_cache.popitem(last=False)
        if metrics is not None:
            metrics.record_fused(
                built=1,
                certified=1 if certified else 0,
                probed=0 if certified else 1,
            )
    elif metrics is not None:
        metrics.record_fused(kernel_hits=1)
    _attach_certification(plan, spec.certification)
    steps = plan.steps
    program = FusedProgram(
        digest,
        spec.source,
        [
            FusedStep(steps[slot].node, slot, parent_slots, ops)
            for slot, parent_slots, ops in spec.steps_meta
        ],
        uses_numexpr=spec.uses_numexpr,
    )
    bound = _BoundKernel(kernel, program)
    plan._fused = bound
    return bound


class _VerificationFailed(Exception):
    pass


_numexpr_cache = False


def _numexpr():
    """The numexpr module, or ``None`` when unavailable (warns once)."""
    global _numexpr_cache
    if _numexpr_cache is False:
        try:
            import numexpr  # noqa: F401

            _numexpr_cache = numexpr
        except ImportError:
            _numexpr_cache = None
    return _numexpr_cache


class FusedEngine(ExecutionEngine):
    """Execute plans through per-shape generated numpy kernels.

    Drop-in engine (``evaluation_config(engine="fused")``): memo-carrying
    draws, telemetry runs, and unfusable plans delegate to the inner
    engine (numpy by default), so semantics are always exactly the
    reference engines' — the kernel path is taken only after bit-identity
    verification.
    """

    name = "fused"
    supports_optimized = True

    def __init__(self, inner: str = "numpy", use_numexpr: bool | None = None):
        self._inner_name = inner
        self._inner = None
        if use_numexpr is None:
            use_numexpr = self._default_numexpr()
        self.use_numexpr = bool(use_numexpr)
        if self.use_numexpr and _numexpr() is None:
            warnings.warn(
                "numexpr requested for the fused engine but not installed; "
                "kernels will use plain numpy",
                FusedFallbackWarning,
                stacklevel=2,
            )

    @staticmethod
    def _default_numexpr() -> bool:
        return os.environ.get("REPRO_FUSED_NUMEXPR", "").strip() not in (
            "", "0", "false", "no",
        )

    @property
    def inner(self) -> ExecutionEngine:
        if self._inner is None:
            self._inner = get_engine(self._inner_name)
        return self._inner

    def run(self, plan, n, rng, memo=None, telemetry=None):
        if memo is not None or telemetry is not None:
            # Memoised contexts need every shared slot; telemetry needs
            # per-node timings.  Both are the inner engine's job.
            return self.inner.run(plan, n, rng, memo=memo, telemetry=telemetry)
        bound = plan._fused
        if bound is None:
            bound = _prepare(plan, self.use_numexpr)
        if bound is _FALLBACK:
            # The inner engine polls the ambient token per program step.
            return self.inner.run(plan, n, rng)
        # A generated kernel is one indivisible batch: the boundary check
        # is before launch (delegated runs inherit the inner engine's
        # finer per-step boundaries).
        _cancel.check_current(kernel=plan.structural_hash, n=int(n))
        values: list = [None] * len(plan.steps)
        values[plan.root_slot] = bound.kernel(n, rng)
        return values


register_engine(FusedEngine())

__all__ = [
    "FusedEngine",
    "FusedFallbackWarning",
    "FusedProgram",
    "FusedStep",
    "clear_kernel_cache",
    "fused_program",
    "kernel_cache_stats",
]
