"""Weibull distribution — a standard lifetime/reliability error model."""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, NON_NEGATIVE, Support


class Weibull(Distribution):
    """Weibull(shape k, scale lambda) over non-negative reals."""

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(f"shape and scale must be positive, got {shape}, {scale}")
        self.shape = float(shape)
        self.scale = float(scale)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.scale * rng.weibull(self.shape, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        k, lam = self.shape, self.scale
        with np.errstate(divide="ignore", invalid="ignore"):
            z = x / lam
            lp = math.log(k / lam) + (k - 1) * np.log(z) - z**k
        return np.where(x > 0, lp, np.where((x == 0) & (k == 1), math.log(k / lam), -np.inf))

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x > 0, 1.0 - np.exp(-((x / self.scale) ** self.shape)), 0.0)

    @property
    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    @property
    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    @property
    def support(self) -> Support:
        return NON_NEGATIVE
