"""Tests for the Rayleigh distribution (the GPS error model)."""

import math

import numpy as np
import pytest

from repro.dists import Rayleigh
from repro.dists.rayleigh import SCALE_FROM_95CI


class TestRayleigh:
    def test_moments(self):
        r = Rayleigh(2.0)
        assert r.mean == pytest.approx(2.0 * math.sqrt(math.pi / 2))
        assert r.variance == pytest.approx((2 - math.pi / 2) * 4.0)

    def test_samples_non_negative(self, rng):
        assert Rayleigh(1.0).sample_n(5_000, rng).min() >= 0.0

    def test_sampled_mean(self, fixed_rng):
        r = Rayleigh(3.0)
        assert r.sample_n(50_000, fixed_rng).mean() == pytest.approx(r.mean, rel=0.02)

    def test_cdf_at_zero(self):
        assert float(Rayleigh(1.0).cdf(0.0)) == 0.0

    def test_pdf_zero_for_negative(self):
        assert float(Rayleigh(1.0).pdf(-1.0)) == 0.0

    def test_from_95ci_puts_95_percent_inside(self):
        # The defining property of the paper's eps / sqrt(ln 400) scale.
        r = Rayleigh.from_95ci(4.0)
        assert float(r.cdf(4.0)) == pytest.approx(0.95)

    def test_scale_constant(self):
        assert SCALE_FROM_95CI == pytest.approx(1.0 / math.sqrt(math.log(400.0)))

    def test_pdf_peaks_at_scale(self):
        r = Rayleigh(2.0)
        xs = np.linspace(0.01, 8.0, 1_000)
        peak = xs[np.argmax(r.pdf(xs))]
        assert peak == pytest.approx(2.0, abs=0.02)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            Rayleigh(0.0)
        with pytest.raises(ValueError):
            Rayleigh.from_95ci(-1.0)
