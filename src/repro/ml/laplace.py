"""Gaussian (Laplace) approximation to the weight posterior.

The paper notes hybrid Monte Carlo's downsides (many network executions,
hand tuning) and that "a Gaussian approximation to the PPD would mitigate
all these downsides, but may be an inappropriate approximation in some
cases" (Section 5.3).  This module implements that alternative: a Laplace
approximation around the SGD optimum with a Gauss-Newton diagonal Hessian,

    p(w | D) ~ N(w*, H^-1),
    H_jj = sum_i J_ij^2 / sigma_noise^2 + 1 / sigma_prior^2,

where J is the per-example output Jacobian.  Sampling the approximate
posterior is a cheap Gaussian draw — no chains, no rejection — and the
result plugs into the same :class:`~repro.ml.parakeet.Parakeet` runtime, so
the ablation bench can compare the two PPDs head to head.
"""

from __future__ import annotations

import numpy as np

from repro.ml.mlp import MLP
from repro.ml.parakeet import Parakeet, SOBEL_TOPOLOGY
from repro.rng import ensure_rng


def output_jacobian(mlp: MLP, x: np.ndarray, w: np.ndarray | None = None) -> np.ndarray:
    """Per-example gradient of the (single) output w.r.t. the flat weights.

    Returns shape ``(n, n_params)``.  Only defined for single-output
    networks (which is what the Sobel approximator is).
    """
    if mlp.sizes[-1] != 1:
        raise ValueError("output_jacobian requires a single-output network")
    x = np.atleast_2d(np.asarray(x, dtype=float))
    layers = mlp.unpack(w)
    n = len(x)

    activations = [x]
    a = x
    for i, (mat, bias) in enumerate(layers):
        z = a @ mat + bias
        a = z if i == len(layers) - 1 else np.tanh(z)
        activations.append(a)

    grads: list[np.ndarray] = []
    delta = np.ones((n, 1))  # d(output)/d(output) per example
    for i in reversed(range(len(layers))):
        a_prev = activations[i]
        # Per-example outer products a_prev (n, in) x delta (n, out).
        grad_w = np.einsum("ni,nj->nij", a_prev, delta).reshape(n, -1)
        grad_b = delta
        grads.append(grad_b)
        grads.append(grad_w)
        if i > 0:
            mat, _ = layers[i]
            delta = (delta @ mat.T) * (1.0 - activations[i] ** 2)
    grads.reverse()
    return np.concatenate([g.reshape(n, -1) for g in grads], axis=1)


def laplace_weight_posterior(
    mlp: MLP,
    x: np.ndarray,
    t: np.ndarray,
    noise_sigma: float = 0.05,
    prior_sigma: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """(mean, variance-diagonal) of the Gaussian weight posterior."""
    if noise_sigma <= 0 or prior_sigma <= 0:
        raise ValueError("noise_sigma and prior_sigma must be positive")
    jac = output_jacobian(mlp, x)
    hessian_diag = (jac**2).sum(axis=0) / noise_sigma**2 + 1.0 / prior_sigma**2
    return mlp.weights.copy(), 1.0 / hessian_diag


def laplace_parakeet(
    mlp: MLP,
    x: np.ndarray,
    t: np.ndarray,
    pool_size: int = 40,
    noise_sigma: float = 0.05,
    prior_sigma: float = 1.0,
    rng=None,
) -> Parakeet:
    """Build a Parakeet whose weight pool samples the Laplace posterior."""
    if pool_size <= 0:
        raise ValueError(f"pool_size must be positive, got {pool_size}")
    rng = ensure_rng(rng)
    mean, var_diag = laplace_weight_posterior(mlp, x, t, noise_sigma, prior_sigma)
    pool = mean + rng.standard_normal((pool_size, mean.size)) * np.sqrt(var_diag)
    return Parakeet(mlp, pool, noise_sigma=noise_sigma)


def train_laplace_parakeet(
    x: np.ndarray,
    t: np.ndarray,
    topology=SOBEL_TOPOLOGY,
    epochs: int = 300,
    pool_size: int = 40,
    noise_sigma: float = 0.05,
    rng=None,
) -> Parakeet:
    """SGD training followed by the Laplace posterior — the cheap pipeline."""
    rng = ensure_rng(rng)
    mlp = MLP(topology, rng=rng)
    mlp.train_sgd(x, t, epochs=epochs, rng=rng)
    return laplace_parakeet(
        mlp, x, t, pool_size=pool_size, noise_sigma=noise_sigma, rng=rng
    )
