"""Cross-request batching: merge same-shape queries into shared evaluations.

The coalescer is the synchronous heart of the service tier (the asyncio
front end in :mod:`repro.service.service` only decides *when* to call it).
Given a batch of :class:`~repro.service.requests.QueryRequest` objects it:

1. **Groups** requests by their plan's structural hash.  Structurally
   isomorphic plans — same shape, same distribution parameters — compile
   to interchangeable programs, so one group shares a single compiled,
   optimized plan (the leader's) and, on the fused engine, a single
   generated kernel.  Opaque plans (lambdas, hardened sources) group by
   plan identity instead, so a hot value still batches with itself.

2. **Evaluates** each group once per *stream*:

   - Seeded requests each own the stream ``default_rng(SeedSequence(seed))``
     (the request-level analogue of the parallel engine's chunk streams),
     so the group runs the shared plan once per seeded request.  The solo
     path (:func:`evaluate_request`) derives the identical stream from the
     identical seed and runs the identical plan program — batched answers
     are bit-identical to solo answers *by construction*, not by test.
   - Seedless requests pool: the group draws ``sum(n_i)`` rows in **one**
     engine run from the coalescer's stream and slices the rows across
     requests.  This is the cheap path — one kernel launch answers many
     queries — at the cost of per-request reproducibility.

3. **Reduces** each request's sample array with the same
   :func:`~repro.service.requests.reduce_query` used everywhere, and
   isolates failures: a request whose source feed trips its circuit
   breaker (or whose chaos-injected engine call dies) fails *alone*;
   the coalescer falls back to per-request evaluation for the survivors
   rather than failing the whole group.  Per-request retries re-derive
   the request stream from the seed, so a retried answer is still
   bit-identical — fault injection consumes breaker/chaos state, never
   the request's sample stream.
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core import conditionals as _cond
from repro.core.engines import ExecutionEngine, get_engine
from repro.core.sampling import DeadlineExceeded, SampleBudgetExceeded
from repro.rng import ensure_rng

from repro.service.requests import QueryRequest, QueryResult, reduce_query

__all__ = [
    "BatchOutcome",
    "CoalescerStats",
    "evaluate_batch",
    "evaluate_request",
]


@dataclasses.dataclass
class CoalescerStats:
    """What one ``evaluate_batch`` call did — fed into service metrics."""

    requests: int = 0
    groups: int = 0
    #: Requests answered from a group of >= 2 (shared plan/kernel).
    coalesced_requests: int = 0
    #: Seedless requests answered by slicing one pooled engine run.
    pooled_requests: int = 0
    #: Engine runs actually issued (the amortisation denominator).
    engine_runs: int = 0
    #: Joint samples drawn across all runs.
    samples_drawn: int = 0
    #: Groups whose bulk evaluation failed and fell back per-request.
    group_fallbacks: int = 0
    #: Requests that ultimately failed (exception outcome).
    failures: int = 0
    #: Pooled seedless rows served from the cross-query sample ledger
    #: instead of a fresh engine run (``config.sample_cache`` on).
    ledger_served: int = 0


#: One entry per request: either a ``QueryResult`` or the exception that
#: answered it.  Order matches the input batch.
BatchOutcome = list  # list[QueryResult | BaseException]


def _engine_name(engine: "str | ExecutionEngine") -> str:
    return engine if isinstance(engine, str) else type(engine).__name__


def _draw(plan, n: int, rng, engine) -> np.ndarray:
    """One instrumented engine run of the shared plan."""
    eng = get_engine(engine)
    config = _cond.get_config()
    return eng.sample(plan, int(n), rng, telemetry=config.plan_telemetry)


def _admit(config, n: int) -> None:
    """Admission control: the existing budget/deadline semantics.

    Reuses :class:`EvaluationConfig`'s ``sample_budget`` / ``deadline``
    accounting (the same fields ``_execute_plan`` enforces) so a service
    shares one vocabulary with solo evaluation.
    """
    if config.deadline is not None and time.monotonic() > config.deadline_at:
        raise DeadlineExceeded(
            f"evaluation deadline of {config.deadline}s expired before a "
            f"draw of {n} samples"
        )
    if config.sample_budget is not None:
        if config.samples_executed + n > config.sample_budget:
            raise SampleBudgetExceeded(
                f"sample budget exhausted: {config.samples_executed} drawn + "
                f"{n} requested > budget {config.sample_budget}"
            )
    config.samples_executed += n


def evaluate_request(
    request: QueryRequest,
    *,
    engine: "str | ExecutionEngine | None" = None,
    config: "_cond.EvaluationConfig | None" = None,
    rng: "np.random.Generator | None" = None,
    _batched: bool = False,
    _batch_size: int = 1,
    _plan=None,
) -> QueryResult:
    """Solo evaluation: one request, its own stream, the shared reduction.

    This is the reference the determinism contract is stated against —
    the batched path produces answers bit-identical to this function for
    any seeded request.  ``rng`` is only accepted for seedless requests
    (callers that want solo evaluation with an external stream).
    """
    config = config if config is not None else _cond.get_config()
    engine = engine if engine is not None else config.engine
    plan = _plan if _plan is not None else request.value.plan
    n = request.resolve_samples(config)
    _admit(config, n)
    if request.seed is not None:
        rng = request.rng()
    elif rng is None:
        rng = ensure_rng(None)
    values = _draw(plan, n, rng, engine)
    answer, extra = reduce_query(request, values)
    return QueryResult(
        request=request,
        value=answer,
        samples_used=n,
        batched=_batched,
        batch_size=_batch_size,
        latency_s=0.0,
        engine=_engine_name(engine),
        extra=extra,
    )


def _evaluate_group(
    group: "list[tuple[int, QueryRequest]]",
    outcomes: BatchOutcome,
    stats: CoalescerStats,
    *,
    engine,
    config,
    pool_rng,
    retries: int,
) -> None:
    """Answer one structural group, isolating per-request failures."""
    plan = group[0][1].value.plan  # the leader's compiled (cached) plan
    size = len(group)
    seeded = [(i, r) for i, r in group if r.seed is not None]
    pooled = [(i, r) for i, r in group if r.seed is None]

    try:
        # Seeded requests: one run of the shared plan per request stream.
        for i, req in seeded:
            n = req.resolve_samples(config)
            _admit(config, n)
            values = _draw(plan, n, req.rng(), engine)
            stats.engine_runs += 1
            stats.samples_drawn += n
            answer, extra = reduce_query(req, values)
            outcomes[i] = QueryResult(
                request=req, value=answer, samples_used=n, batched=size > 1,
                batch_size=size, latency_s=0.0, engine=_engine_name(engine),
                extra=extra,
            )
        # Seedless requests: ONE pooled run sliced across requests.
        # With the sample ledger on, the pooled run is served from (and
        # feeds) the cross-query cache — repeated same-shape floods reuse
        # rows instead of redrawing.  Seeded requests above deliberately
        # bypass the ledger: their per-request streams are the solo
        # bit-identity contract.
        if pooled:
            counts = [r.resolve_samples(config) for _, r in pooled]
            total = int(sum(counts))
            rows = None
            if config.sample_cache:
                from repro.core.ledger import LEDGER

                rows = LEDGER.serve(plan, total, pool_rng, engine, config)
            if rows is not None:
                stats.ledger_served += total
            else:
                _admit(config, total)
                rows = _draw(plan, total, pool_rng, engine)
                stats.engine_runs += 1
                stats.samples_drawn += total
            offset = 0
            for (i, req), n in zip(pooled, counts):
                values = rows[offset:offset + n]
                offset += n
                answer, extra = reduce_query(req, values)
                outcomes[i] = QueryResult(
                    request=req, value=answer, samples_used=n,
                    batched=size > 1, batch_size=size, latency_s=0.0,
                    engine=_engine_name(engine), extra=extra,
                )
                stats.pooled_requests += 1
        if size > 1:
            stats.coalesced_requests += size
        return
    except (SampleBudgetExceeded, DeadlineExceeded):
        raise  # admission failures abort the group; the service maps them
    except Exception:
        # Bulk evaluation died mid-group (flaky source, chaos-injected
        # fault, ...).  Fall back to per-request evaluation so one bad
        # request — or one transient fault — cannot fail its batchmates.
        stats.group_fallbacks += 1

    for i, req in group:
        if outcomes[i] is not None:
            continue  # answered before the fault
        last: BaseException | None = None
        for _ in range(retries + 1):
            try:
                outcomes[i] = evaluate_request(
                    req, engine=engine, config=config, rng=pool_rng,
                    _batched=size > 1, _batch_size=size,
                )
                stats.engine_runs += 1
                stats.samples_drawn += outcomes[i].samples_used
                last = None
                break
            except (SampleBudgetExceeded, DeadlineExceeded):
                raise
            except Exception as exc:  # noqa: BLE001 — isolate per request
                last = exc
        if last is not None:
            outcomes[i] = last
            stats.failures += 1
    if size > 1:
        stats.coalesced_requests += size


def evaluate_batch(
    requests: Sequence[QueryRequest],
    *,
    engine: "str | ExecutionEngine | None" = None,
    config: "_cond.EvaluationConfig | None" = None,
    pool_rng: "np.random.Generator | int | None" = None,
    retries: int = 1,
    stats: CoalescerStats | None = None,
) -> BatchOutcome:
    """Answer a batch of requests, coalescing same-shape plans.

    Returns one outcome per request, in request order: a
    :class:`QueryResult` on success or the exception that answered it.
    Admission failures (:class:`SampleBudgetExceeded`,
    :class:`DeadlineExceeded`) become per-request outcomes too — they
    reject the remainder of the batch request-by-request rather than
    raising out of the coalescer.
    """
    config = config if config is not None else _cond.get_config()
    engine = engine if engine is not None else config.engine
    pool_rng = ensure_rng(pool_rng)
    stats = stats if stats is not None else CoalescerStats()
    stats.requests += len(requests)

    outcomes: BatchOutcome = [None] * len(requests)
    groups: dict[str, list[tuple[int, QueryRequest]]] = defaultdict(list)
    for i, req in enumerate(requests):
        try:
            groups[req.group_key()].append((i, req))
        except Exception as exc:  # un-compilable value: fail that request
            outcomes[i] = exc
            stats.failures += 1

    stats.groups += len(groups)
    for group in groups.values():
        try:
            _evaluate_group(
                group, outcomes, stats,
                engine=engine, config=config, pool_rng=pool_rng,
                retries=retries,
            )
        except (SampleBudgetExceeded, DeadlineExceeded) as exc:
            for i, _ in group:
                if outcomes[i] is None:
                    outcomes[i] = exc
                    stats.failures += 1
    return outcomes
