"""Expert-specified joint distributions (Section 3.3).

Uncertain<T>'s Bayesian network assumes leaf nodes are independent, "but
expert developers can override it by specifying the joint distribution
between two variables."  This module is that override: a *joint leaf* draws
a single vector sample from a multivariate distribution, and each exposed
component is a projection of that shared draw.  Because all components hang
off one underlying node, the per-joint-sample memoisation keeps them
consistent — exactly the mechanism the planar GPS posterior uses for its
correlated (east, north) components.

Example::

    from repro.dists import MultivariateGaussian

    temp, humidity = joint(MultivariateGaussian([20, 0.6], cov), ["temp", "rh"])
    discomfort = temp * 0.4 + humidity * 30.0   # correlation respected
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.graph import LeafNode, Node
from repro.core.uncertain import Uncertain
from repro.dists.base import Distribution


class ComponentNode(Node):
    """Projection of one component out of a vector-valued parent node."""

    __slots__ = ("index",)

    def __init__(self, parent: Node, index: int, label: str | None = None) -> None:
        super().__init__((parent,), label or f"component[{index}]")
        self.index = int(index)

    def evaluate_batch(self, parent_values, n, rng):
        (vectors,) = parent_values
        vectors = np.asarray(vectors)
        if vectors.ndim < 2:
            # Object-dtype batches of sequences: project elementwise.
            out = np.empty(n, dtype=object)
            for i, vec in enumerate(vectors):
                out[i] = vec[self.index]
            try:
                return out.astype(float)
            except (TypeError, ValueError):
                return out
        if self.index >= vectors.shape[1]:
            raise IndexError(
                f"component {self.index} out of range for joint sample of "
                f"dimension {vectors.shape[1]}"
            )
        return vectors[:, self.index]


def joint(
    dist: Distribution, labels: Sequence[str] | int | None = None
) -> tuple[Uncertain, ...]:
    """Split a multivariate distribution into correlated Uncertain components.

    ``dist.sample_n`` must return arrays of shape ``(n, d)``.  ``labels``
    may be the component names, the dimension ``d`` as an int, or ``None``
    to infer ``d`` from the distribution (``dist.dim`` or one trial draw).
    All returned components share a single leaf, so a joint sample assigns
    them one consistent vector draw.
    """
    if isinstance(labels, int):
        dim = labels
        names = [f"component[{i}]" for i in range(dim)]
    elif labels is not None:
        names = list(labels)
        dim = len(names)
    else:
        dim = getattr(dist, "dim", None)
        if dim is None:
            from repro.rng import default_rng

            probe = np.asarray(dist.sample_n(1, default_rng(0)))
            if probe.ndim != 2:
                raise ValueError(
                    "joint() needs a vector-valued distribution; got samples "
                    f"of shape {probe.shape[1:]} — pass `labels` to be explicit"
                )
            dim = probe.shape[1]
        names = [f"component[{i}]" for i in range(dim)]
    if dim <= 0:
        raise ValueError(f"joint dimension must be positive, got {dim}")
    leaf = LeafNode(dist, label=f"joint[{type(dist).__name__}]")
    return tuple(
        Uncertain.from_node(ComponentNode(leaf, i, label=name))
        for i, name in enumerate(names)
    )


def correlated_gaussians(
    means: Sequence[float],
    cov: np.ndarray,
    labels: Sequence[str] | None = None,
) -> tuple[Uncertain, ...]:
    """Convenience: jointly Gaussian uncertain values with given covariance."""
    from repro.dists.gaussian import MultivariateGaussian

    return joint(MultivariateGaussian(np.asarray(means, dtype=float), cov), labels
                 or len(list(means)))
