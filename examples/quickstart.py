"""Quickstart: the Uncertain<T> programming model in five minutes.

Run with::

    python examples/quickstart.py
"""

from repro import Uncertain
from repro.core.conditionals import evaluation_config
from repro.dists import Gaussian
from repro.rng import default_rng


def main() -> None:
    # An estimate is a distribution, not a number.  A GPS-style speed
    # estimate: the sensor thinks we move at 3.5 mph, give or take 1 mph.
    speed = Uncertain(Gaussian(3.5, 1.0))

    # Computing with estimates propagates their uncertainty (Section 3.3):
    # operators build a Bayesian network instead of evaluating eagerly.
    km_per_h = speed * 1.609344
    pace_min_per_km = 60.0 / km_per_h

    rng = default_rng(1)
    print("speed          E =", round(speed.expected_value(rng=rng), 3), "mph")
    print("km/h           E =", round(km_per_h.expected_value(rng=rng), 3))
    print("pace           E =", round(pace_min_per_km.expected_value(rng=rng), 2), "min/km")
    lo, hi = km_per_h.ci(0.95, rng=rng)
    print(f"km/h        95% CI = [{lo:.2f}, {hi:.2f}]")

    # Conditionals evaluate *evidence* (Section 3.4).  The implicit form
    # asks "more likely than not?"; the runtime answers with a sequential
    # hypothesis test, drawing only as many samples as it needs.
    with evaluation_config(rng=default_rng(2)) as cfg:
        if speed > 2.0:
            print(f"probably moving   ({cfg.samples_drawn} samples used)")

        # The explicit form lets you demand stronger evidence, trading
        # false positives for false negatives.
        if (speed > 4.0).pr(0.9):
            print("very confident you are fast")
        else:
            print("not enough evidence that speed > 4 mph at the 90% level")

    # Evidence itself is a first-class quantity.
    print("Pr[speed > 4] ~", round((speed > 4.0).evidence(20_000, default_rng(3)), 3))

    # Dependence is tracked through shared subexpressions (Section 3.3):
    # speed - speed is *exactly* zero, not a wider distribution.
    assert (speed - speed).sd(1_000, default_rng(4)) == 0.0
    print("speed - speed == 0 exactly (shared-variable semantics)")


if __name__ == "__main__":
    main()
