"""Base class for distributions backed by sampling functions."""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Any

import numpy as np


@dataclasses.dataclass(frozen=True)
class Support:
    """Closed support interval of a scalar distribution.

    Infinite endpoints use ``±math.inf``.  Discrete distributions report the
    smallest interval containing their support.
    """

    lower: float
    upper: float

    def contains(self, x: float) -> bool:
        return self.lower <= x <= self.upper

    @property
    def is_bounded(self) -> bool:
        return math.isfinite(self.lower) and math.isfinite(self.upper)


REAL_LINE = Support(-math.inf, math.inf)
NON_NEGATIVE = Support(0.0, math.inf)
UNIT_INTERVAL = Support(0.0, 1.0)


class Distribution(abc.ABC):
    """A random variable represented by a sampling function.

    Subclasses must implement :meth:`sample_n`; everything else has sensible
    defaults.  Analytic structure (``pdf``, ``cdf``, ``mean``, ``variance``)
    is optional — distributions without closed forms raise
    ``NotImplementedError`` from the corresponding accessor, matching the
    paper's observation that sampling functions are the only universally
    available representation.
    """

    #: True when the distribution takes values on a countable set.
    discrete: bool = False

    #: Attribute names that define this distribution structurally.  ``None``
    #: (the default) means "every instance attribute" — right for simple
    #: parametric families; subclasses that cache derived state (frozen
    #: scipy objects, Cholesky factors, ...) narrow this to their defining
    #: parameters so structural hashing sees through the cached extras.
    structural_fields: "tuple[str, ...] | None" = None

    @abc.abstractmethod
    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` independent samples as a numpy array."""

    # -- structural metadata (plan compiler) -------------------------------

    def structural_params(self) -> "dict | None":
        """Parameters that determine this distribution's sample stream.

        Used by :mod:`repro.core.structural` to hash plan shapes: two leaf
        nodes whose distributions share a class and equal structural
        params are interchangeable.  Returns a plain mapping of raw values
        (canonicalisation happens in the structural module); return
        ``None`` to declare the distribution structurally opaque (never
        shared across plans).  The default reflects over the instance
        dict, restricted to :attr:`structural_fields` when set; values
        with no canonical form (callables, exotic objects) make the
        owning plan opaque automatically.
        """
        if self.structural_fields is not None:
            return {name: getattr(self, name) for name in self.structural_fields}
        return dict(getattr(self, "__dict__", {}))

    def bulk_draw_spec(self) -> "tuple[str, float, float] | None":
        """Affine reduction to a base generator draw, if one exists.

        ``("standard_normal", loc, scale)`` declares that ``sample_n(n,
        rng)`` is bit-identical to ``loc + scale * rng.standard_normal(n)``
        (likewise ``"random"`` and ``"standard_exponential"``).  The fused
        backend (:mod:`repro.core.fused`) uses this to coalesce runs of
        adjacent leaf draws into one base-generator call plus per-leaf
        affine slices — the single biggest win for leaf-heavy plans —
        without changing the consumed RNG stream.  ``None`` (the default)
        means "no such reduction"; generated kernels then call
        :meth:`sample_n` directly.  Claims are verified empirically once
        per plan shape against the reference engine, so a wrong spec
        degrades to the unfused path rather than corrupting streams.
        """
        return None

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a single sample (scalar for scalar distributions)."""
        return self.sample_n(1, rng)[0]

    # -- analytic structure ------------------------------------------------

    def pdf(self, x: Any) -> Any:
        """Density (or mass, for discrete distributions) at ``x``."""
        return np.exp(self.log_pdf(x))

    def log_pdf(self, x: Any) -> Any:
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form density"
        )

    def cdf(self, x: Any) -> Any:
        raise NotImplementedError(f"{type(self).__name__} has no closed-form CDF")

    @property
    def mean(self) -> float:
        raise NotImplementedError(f"{type(self).__name__} has no closed-form mean")

    @property
    def variance(self) -> float:
        raise NotImplementedError(
            f"{type(self).__name__} has no closed-form variance"
        )

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def support(self) -> Support:
        return REAL_LINE

    # -- convenience -------------------------------------------------------

    def empirical_mean(self, n: int, rng: np.random.Generator) -> float:
        """Monte-Carlo estimate of the mean from ``n`` samples."""
        return float(np.mean(self.sample_n(n, rng)))

    def resilient(self, **kwargs) -> "Distribution":
        """Wrap this distribution in a fault-tolerant sampling shell.

        Returns a :class:`~repro.resilience.ResilientSource` whose primary
        is this distribution; keyword arguments (``fallback``,
        ``max_retries``, ``backoff_s``, ``breaker``, ...) pass through.
        Convenience for hardening a flaky sensor/network-backed source::

            gps = FunctionDistribution(read_fix).resilient(
                fallback=last_good_fix, max_retries=3
            )
        """
        from repro.resilience.source import ResilientSource

        return ResilientSource(self, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = getattr(self, "__dict__", {})
        inner = ", ".join(f"{k}={v!r}" for k, v in fields.items() if not k.startswith("_"))
        return f"{type(self).__name__}({inner})"
