"""Cache-lifecycle audit: ``evaluate.clear_caches()`` leaves no residue.

Four process-global caches accumulate state across evaluations — the
per-root compiled-plan cache, the structural plan LRU, the fused-kernel
cache, and the cross-query sample ledger.  One call must clear them all,
and clearing must not leak entries *between* caches (a plan surviving in
one cache must not resurrect stale entries in another).
"""

import numpy as np

from repro import evaluate
from repro.core.conditionals import evaluation_config
from repro.core.fused import kernel_cache_stats
from repro.core.ledger import ledger_stats
from repro.core.plan import compile_plan, plan_cache_size
from repro.core.structural import structural_cache_stats
from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.dists.uniform import Uniform


def _populate():
    """Touch every cache: compile, structurally share, fuse, and ledger."""
    u = Uncertain(Gaussian(5.0, 2.0)) * 1.5 + 3.0
    v = Uncertain(Gaussian(0.0, 1.0)) + Uncertain(Uniform(0.0, 1.0))
    with evaluation_config(engine="fused", sample_cache=True):
        u.samples(100, rng=1)
        v.samples(100, rng=2)
    return u, v


class TestClearCaches:
    def test_every_cache_is_emptied(self):
        _populate()
        assert plan_cache_size() > 0
        assert ledger_stats()["entries"] > 0
        assert kernel_cache_stats()["size"] > 0

        evaluate.clear_caches()

        assert plan_cache_size() == 0
        assert structural_cache_stats()["entries"] == 0
        assert kernel_cache_stats()["size"] == 0
        stats = ledger_stats()
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["verdicts"] == {}  # sticky probe verdicts drop too

    def test_no_cross_cache_leak_after_clear(self):
        u, v = _populate()
        evaluate.clear_caches()
        # Fresh evaluation after the purge rebuilds everything from
        # scratch and stays bit-identical — no cache held a stale entry
        # another cache could resurrect.
        with evaluation_config(engine="fused", sample_cache=True):
            a = u.samples(100, rng=1)
        evaluate.clear_caches()
        with evaluation_config(engine="fused", sample_cache=True):
            b = u.samples(100, rng=1)
        assert np.array_equal(a, b)
        evaluate.clear_caches()

    def test_clear_caches_is_idempotent(self):
        evaluate.clear_caches()
        evaluate.clear_caches()
        assert plan_cache_size() == 0
        assert ledger_stats()["entries"] == 0

    def test_exported_from_facade(self):
        assert "clear_caches" in evaluate.__all__
