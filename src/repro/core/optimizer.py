"""Stage 1 of the plan compiler: graph-rewrite optimizer passes.

:func:`optimize_plan` lowers an :class:`~repro.core.plan.EvaluationPlan`
through a fixed pipeline of rewrite passes and returns the optimized plan
together with a pass-by-pass :class:`PassRecord` provenance trail:

1. **constant-fold** — a sub-DAG built only from point masses combined by
   deterministic operators (the shape rule UNC105 diagnoses) is evaluated
   once at compile time and replaced by a single
   :class:`~repro.core.graph.PointMassNode` carrying the computed value
   (dtype-preserving: the folded value is the ``numpy`` scalar the
   original chain would have produced).  ``ApplyNode`` is a fold barrier:
   lifted user functions may be impure, so folding one could change
   observable behaviour; such sub-DAGs are *rejected* and recorded.
2. **cse** — common-subexpression elimination by structure: deterministic
   inner nodes (binary/unary operators with identical op identity,
   component projections, equal scalar point masses) whose rewritten
   parents are the *same objects* merge into one node.  Stochastic nodes
   never merge — merging two ``Gaussian`` leaves would turn independent
   draws into one shared draw, changing both the distribution and the
   consumed RNG stream.
3. **dead-slot-elim** — the optimized graph is re-lowered from its root,
   which retains exactly the reachable slots; this pass records the net
   slot reduction and enforces the safety gate below.

Bit-identity contract
---------------------

Every accepted rewrite preserves the RNG stream consumed at execution
time sample for sample: folded sub-DAGs and merged deterministic nodes
never touch the generator, and the **leaf-order guard** verifies that the
optimized plan evaluates the *same stochastic source objects in the same
slot order* as the original.  An optimization that would drop or reorder
a stochastic source is rejected outright — ``optimize_plan`` returns the
original plan with the rejection recorded in provenance — rather than
silently applied.
"""

from __future__ import annotations

import copy
import dataclasses

import numpy as np

from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    Node,
    PointMassNode,
    UnaryOpNode,
    iter_nodes,
)

#: Mirrors the engines' IEEE-semantics suppression so folding ``1/0`` at
#: compile time warns exactly as much as evaluating it per batch (not at
#: all); defined locally to keep this module import-independent of
#: :mod:`repro.core.engines`.
_ERRSTATE = {"divide": "ignore", "invalid": "ignore", "over": "ignore"}

_SCALAR_TYPES = (int, float, bool, np.integer, np.floating, np.bool_)


@dataclasses.dataclass(frozen=True)
class PassRecord:
    """Provenance for one optimizer pass over one plan."""

    #: Pass name: ``"constant-fold"``, ``"cse"``, ``"dead-slot-elim"``.
    name: str
    #: Node counts on entry/exit of the pass (graph nodes, == plan slots).
    nodes_before: int
    nodes_after: int
    #: Human-readable notes for each rewrite the pass performed.
    rewrites: tuple[str, ...] = ()
    #: Rewrites the pass declined, with reasons (fold barriers, guards).
    rejected: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "pass": self.name,
            "nodes_before": self.nodes_before,
            "nodes_after": self.nodes_after,
            "rewrites": list(self.rewrites),
            "rejected": list(self.rejected),
        }


def resolve_level(optimize) -> int:
    """Normalise an ``EvaluationConfig.optimize`` value to a pass level.

    ``False``/``0``/``None`` → 0 (off), ``1`` → constant folding + dead
    slot elimination, ``True``/``2`` (or higher) → plus CSE.
    """
    if optimize is True:
        return 2
    if not optimize:
        return 0
    return min(int(optimize), 2)


def is_stochastic(node: Node) -> bool:
    """Does evaluating ``node`` itself draw from the RNG stream?

    Point masses never draw; distribution leaves always do.  Unknown
    parentless node kinds are treated as stochastic (conservative), and
    unknown *inner* kinds are handled by the passes themselves (never
    folded, never merged).
    """
    return not node.parents and type(node) is not PointMassNode


def _clone_with_parents(node: Node, parents: tuple[Node, ...]) -> Node:
    """A copy of ``node`` rewired to ``parents`` (plan cache not copied)."""
    clone = copy.copy(node)
    clone.parents = parents
    return clone


def _rebuild(root: Node, replacement: "dict[int, Node]") -> Node:
    """Rebuild the graph from ``root`` applying ``replacement`` (id-keyed).

    Nodes outside the replacement map are kept by identity unless a parent
    changed, in which case they are cloned with rewired parents — the
    original graph is never mutated.
    """
    new_of: dict[int, Node] = {}
    for node in iter_nodes(root):
        target = replacement.get(id(node))
        if target is not None:
            new_of[id(node)] = target
            continue
        new_parents = tuple(new_of[id(p)] for p in node.parents)
        if new_parents == node.parents:
            new_of[id(node)] = node
        else:
            new_of[id(node)] = _clone_with_parents(node, new_parents)
    return new_of[id(root)]


# ---------------------------------------------------------------------------
# Pass 1: constant folding.
# ---------------------------------------------------------------------------


def _fold_value(node: Node):
    """Evaluate a constant sub-DAG once (n=1) and return its scalar value.

    Uses the nodes' own ``evaluate_batch`` so the folded value has exactly
    the dtype the runtime chain would produce (``np.full`` with a numpy
    scalar reproduces it downstream).
    """
    memo: dict[int, np.ndarray] = {}

    def ev(nd: Node):
        out = memo.get(id(nd))
        if out is None:
            vals = [ev(p) for p in nd.parents]
            out = nd.evaluate_batch(vals, 1, None)
            memo[id(nd)] = out
        return out

    with np.errstate(**_ERRSTATE):
        return np.asarray(ev(node))[0]


def constant_fold(root: Node) -> tuple[Node, PassRecord]:
    """Replace maximal point-mass-only sub-DAGs with single point masses."""
    order = list(iter_nodes(root))
    before = len(order)
    constant: dict[int, bool] = {}
    rejected: list[str] = []
    for node in order:
        kind = type(node)
        if kind is PointMassNode:
            constant[id(node)] = True
        elif kind in (BinaryOpNode, UnaryOpNode) and node.parents:
            constant[id(node)] = all(constant.get(id(p), False) for p in node.parents)
        else:
            if (
                kind is ApplyNode
                and node.parents
                and all(constant.get(id(p), False) for p in node.parents)
            ):
                rejected.append(
                    f"apply node {node.label!r} has constant operands but "
                    "lifted functions may be impure; not folded"
                )
            constant[id(node)] = False
    consumers: dict[int, list[Node]] = {}
    for node in order:
        for parent in node.parents:
            consumers.setdefault(id(parent), []).append(node)
    replacement: dict[int, Node] = {}
    rewrites: list[str] = []
    for node in order:
        if not constant.get(id(node)) or not node.parents:
            continue
        used_by = consumers.get(id(node), ())
        if used_by and all(constant.get(id(c), False) for c in used_by):
            continue  # an interior constant; its maximal ancestor folds
        try:
            value = _fold_value(node)
        except Exception as exc:  # exotic operand types: leave it in place
            rejected.append(
                f"constant sub-DAG at {node.label!r} failed compile-time "
                f"evaluation ({type(exc).__name__}); not folded"
            )
            continue
        replacement[id(node)] = PointMassNode(value)
        rewrites.append(f"folded constant sub-DAG at {node.label!r} -> {value!r}")
    new_root = _rebuild(root, replacement) if replacement else root
    after = sum(1 for _ in iter_nodes(new_root)) if replacement else before
    return new_root, PassRecord(
        "constant-fold", before, after, tuple(rewrites), tuple(rejected)
    )


# ---------------------------------------------------------------------------
# Pass 2: common-subexpression elimination.
# ---------------------------------------------------------------------------


def _cse_key(node: Node, new_parents: tuple[Node, ...]):
    """Merge key for deterministic nodes; ``None`` = never merge.

    Parent identity is part of the key (ids of the *rewritten* parents),
    so only true common subexpressions over the same inputs merge.
    """
    kind = type(node)
    if kind is BinaryOpNode:
        return ("bin", node.op, id(new_parents[0]), id(new_parents[1]))
    if kind is UnaryOpNode:
        return ("un", node.op, id(new_parents[0]))
    if kind is PointMassNode:
        value = node.value
        if isinstance(value, _SCALAR_TYPES):
            return ("pm", type(value), value.item() if hasattr(value, "item") else value)
        return None
    if kind.__name__ == "ComponentNode" and len(new_parents) == 1:
        index = getattr(node, "index", None)
        if index is not None:
            return ("comp", int(index), id(new_parents[0]))
    # LeafNode (stochastic), ApplyNode (possibly impure) and unknown node
    # kinds never merge.
    return None


def eliminate_common_subexpressions(root: Node) -> tuple[Node, PassRecord]:
    """Merge structurally identical deterministic nodes over shared inputs."""
    order = list(iter_nodes(root))
    before = len(order)
    canon: dict[object, Node] = {}
    new_of: dict[int, Node] = {}
    rewrites: list[str] = []
    for node in order:
        new_parents = tuple(new_of[id(p)] for p in node.parents)
        key = _cse_key(node, new_parents)
        if key is not None:
            existing = canon.get(key)
            if existing is not None:
                new_of[id(node)] = existing
                rewrites.append(
                    f"merged duplicate {type(node).__name__} {node.label!r}"
                )
                continue
        if new_parents == node.parents:
            rebuilt = node
        else:
            rebuilt = _clone_with_parents(node, new_parents)
        if key is not None:
            canon[key] = rebuilt
        new_of[id(node)] = rebuilt
    new_root = new_of[id(root)]
    after = sum(1 for _ in iter_nodes(new_root)) if rewrites else before
    return new_root, PassRecord("cse", before, after, tuple(rewrites))


# ---------------------------------------------------------------------------
# The pipeline.
# ---------------------------------------------------------------------------


def optimize_plan(plan, level: int = 2):
    """Run the optimizer pipeline over ``plan`` at ``level``.

    Returns ``(optimized_plan, records)``.  ``level`` 0 is the identity;
    1 runs constant folding (+ the dead-slot rebuild); 2 adds CSE.  When
    no pass changes the graph — or when the leaf-order safety guard
    rejects the rewritten graph — the *original* plan object is returned,
    so callers can detect no-ops with ``is``.
    """
    from repro.core.plan import EvaluationPlan

    records: list[PassRecord] = []
    root = plan.root
    if level >= 1:
        root, record = constant_fold(root)
        records.append(record)
    if level >= 2:
        root, record = eliminate_common_subexpressions(root)
        records.append(record)
    if root is plan.root:
        records.append(
            PassRecord("dead-slot-elim", len(plan.steps), len(plan.steps))
        )
        return plan, tuple(records)
    optimized = EvaluationPlan(root)
    # Safety gate: the optimized plan must evaluate the same stochastic
    # source objects in the same order, or the RNG stream would diverge
    # from the reference engines.  The passes above preserve this by
    # construction; the static stream-safety certifier
    # (repro.analysis.certify) proves it per rewrite, emitting a
    # CertificationRecord into provenance — an uncertifiable rewrite is
    # rejected with UNC401, not silently applied.
    from repro.analysis.certify import certify_rewrite

    certificate = certify_rewrite(plan, optimized)
    if not certificate.certified:
        records.append(
            PassRecord(
                "dead-slot-elim",
                len(plan.steps),
                len(plan.steps),
                rejected=(
                    "optimized graph would reorder or drop stochastic "
                    "sources; optimization rejected to preserve the RNG "
                    "stream",
                ),
            )
        )
        records.append(certificate)
        return plan, tuple(records)
    records.append(
        PassRecord(
            "dead-slot-elim",
            len(plan.steps),
            len(optimized.steps),
            rewrites=(
                f"{len(plan.steps) - len(optimized.steps)} slot(s) "
                "eliminated by re-lowering from the rewritten root",
            ),
        )
    )
    records.append(certificate)
    return optimized, tuple(records)


__all__ = [
    "PassRecord",
    "constant_fold",
    "eliminate_common_subexpressions",
    "is_stochastic",
    "optimize_plan",
    "resolve_level",
]
