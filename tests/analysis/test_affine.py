"""Affine (zonotope) domain tests: exactness, tightness, and soundness.

Three layers:

1. **Exactness on linear cancellation** — the headline capability the
   interval domain cannot have: ``x - x`` is exactly ``[0, 0]``,
   ``(a + b) - a`` carries exactly ``b``'s support, and comparisons such
   as ``x + 1 > x`` are statically decided.
2. **Tightness** — for every slot of every plan we test, the affine
   concretization is a subset of the interval result (the affine domain
   is never *worse* than intervals, by construction of the final meet).
3. **Soundness** — the sampled envelope of every slot lies inside the
   affine concretization, over randomized fig08-style plans.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.analysis.affine import (
    AffineForm,
    decide_comparison,
    infer_affine,
    leaf_variances,
    sd_bounds,
)
from repro.analysis.intervals import (
    BOOL,
    FALSE,
    TRUE,
    Interval,
    infer_intervals,
)
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Exponential, Gaussian, Uniform
from repro.rng import default_rng


def _forms(value: Uncertain):
    plan = compile_plan(value.node)
    return plan, infer_affine(plan)


def _root_range(value: Uncertain) -> Interval:
    plan, forms = _forms(value)
    return forms[plan.root_slot].range


class TestLinearCancellation:
    def test_x_minus_x_is_exactly_zero(self):
        x = Uncertain(Uniform(0.0, 1.0))
        assert _root_range(x - x) == Interval(0.0, 0.0)

    def test_x_minus_x_gaussian_is_exactly_zero(self):
        # Unbounded support: the interval domain infers TOP here.
        x = Uncertain(Gaussian(0.0, 1.0))
        assert _root_range(x - x) == Interval(0.0, 0.0)

    def test_sum_minus_shared_term_has_other_support(self):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Uniform(2.0, 5.0))
        assert _root_range((a + b) - a) == Interval(2.0, 5.0)

    def test_scaled_cancellation(self):
        x = Uncertain(Uniform(-1.0, 1.0))
        assert _root_range(2.0 * x - x - x) == Interval(0.0, 0.0)

    def test_partial_cancellation_is_tighter_than_interval(self):
        x = Uncertain(Uniform(0.0, 1.0))
        value = (x + x) - x  # concretely just x, i.e. [0, 1]
        plan = compile_plan(value.node)
        affine = infer_affine(plan)[plan.root_slot].range
        interval = infer_intervals(plan)[plan.root_slot]
        assert affine == Interval(0.0, 1.0)
        # The non-relational interval domain sees [0,2] - [0,1] = [-1, 2].
        assert interval.lower < affine.lower or interval.upper > affine.upper

    def test_comparison_decided_by_cancellation(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert _root_range((x + 1.0) > x) == TRUE
        assert _root_range((x - 1.0) > x) == FALSE
        assert _root_range(x == x) == TRUE

    def test_unrelated_comparison_stays_undecided(self):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Gaussian(0.0, 1.0))
        result = _root_range(a > b)
        assert not result.is_point


class TestDecideComparison:
    def test_strict_less(self):
        assert decide_comparison("<", Interval(-3.0, -1.0)) is TRUE
        assert decide_comparison("<", Interval(0.0, 2.0)) is FALSE
        assert decide_comparison("<", Interval(-1.0, 1.0)) is BOOL

    def test_equality_only_at_exact_zero(self):
        assert decide_comparison("==", Interval(0.0, 0.0)) is TRUE
        assert decide_comparison("==", Interval(1.0, 2.0)) is FALSE
        assert decide_comparison("==", Interval(0.0, 1.0)) is BOOL
        assert decide_comparison("!=", Interval(0.0, 0.0)) is FALSE


class TestAffineFormAlgebra:
    def test_from_interval_concretizes_to_itself(self):
        form = AffineForm.from_interval(Interval(1.0, 3.0))
        assert form.range == Interval(1.0, 3.0)
        assert not form.symbols

    def test_constant(self):
        form = AffineForm.constant(4.5)
        assert form.range == Interval(4.5, 4.5)
        assert form.is_linear

    def test_multiplication_by_point_is_exact(self):
        x = Uncertain(Uniform(0.0, 1.0))
        assert _root_range(x * 3.0 - x - x - x) == Interval(0.0, 0.0)

    def test_division_by_point_is_exact(self):
        x = Uncertain(Uniform(0.0, 2.0))
        assert _root_range(x / 2.0 + x / 2.0 - x) == Interval(0.0, 0.0)


# ---------------------------------------------------------------------------
# Randomized fig08-style plans: sliding sums over shared leaves, point-mass
# scale chains, differences of overlapping windows, and a final comparison.
# Every plan heavily shares subexpressions, which is exactly the regime
# where the affine domain must beat intervals while staying sound.
# ---------------------------------------------------------------------------


def _random_plan(rng: random.Random) -> Uncertain:
    leaves = []
    for _ in range(rng.randint(3, 6)):
        kind = rng.choice(["gauss", "uniform", "expo"])
        if kind == "gauss":
            leaves.append(Uncertain(Gaussian(rng.uniform(-2, 2), 0.5)))
        elif kind == "uniform":
            lo = rng.uniform(-3, 0)
            leaves.append(Uncertain(Uniform(lo, lo + rng.uniform(0.5, 3))))
        else:
            leaves.append(Uncertain(Exponential(rng.uniform(0.5, 2.0))))
    exprs = list(leaves)
    for _ in range(rng.randint(4, 10)):
        op = rng.choice(["+", "-", "*", "scale", "neg", "abs", "window"])
        a = rng.choice(exprs)
        b = rng.choice(exprs)
        if op == "+":
            exprs.append(a + b)
        elif op == "-":
            exprs.append(a - b)
        elif op == "*":
            exprs.append(a * b)
        elif op == "scale":
            exprs.append(a * rng.choice([0.5, 2.0, -1.0, 10.0]))
        elif op == "neg":
            exprs.append(-a)
        elif op == "abs":
            exprs.append(abs(a))
        else:  # overlapping-window difference, the fig08 shape
            shared = a + b
            exprs.append((shared + a) - (shared + b))
    return exprs[-1]


@pytest.mark.parametrize("seed", range(25))
def test_affine_is_tight_and_sound_on_random_plans(seed):
    rng = random.Random(seed)
    value = _random_plan(rng)
    plan = compile_plan(value.node)
    intervals = infer_intervals(plan)
    forms = infer_affine(plan, intervals)

    # Tightness: affine concretization within the interval result, per slot.
    for slot, (form, interval) in enumerate(zip(forms, intervals)):
        assert form.range.lower >= interval.lower - 1e-9, (
            f"slot {slot}: affine lower {form.range.lower} below "
            f"interval lower {interval.lower}"
        )
        assert form.range.upper <= interval.upper + 1e-9, (
            f"slot {slot}: affine upper {form.range.upper} above "
            f"interval upper {interval.upper}"
        )

    # Soundness: the sampled envelope of every slot is inside the affine
    # concretization (tolerance scaled to the magnitude for float error).
    samples = 2_000
    np_rng = default_rng(seed)
    from repro.core.engines import get_engine

    buffers = get_engine("numpy").run(plan, samples, np_rng)
    for slot, form in enumerate(forms):
        data = np.asarray(buffers[slot], dtype=float)
        finite = data[np.isfinite(data)]
        if finite.size == 0:
            continue
        tol = 1e-9 * max(1.0, abs(finite).max())
        assert finite.min() >= form.range.lower - tol, (
            f"slot {slot}: sampled min {finite.min()} below affine "
            f"lower {form.range.lower}"
        )
        assert finite.max() <= form.range.upper + tol, (
            f"slot {slot}: sampled max {finite.max()} above affine "
            f"upper {form.range.upper}"
        )


class TestVarianceBounds:
    def test_gaussian_leaf_variance(self):
        x = Uncertain(Gaussian(0.0, 2.0))
        plan = compile_plan(x.node)
        assert leaf_variances(plan)[plan.root_slot] == pytest.approx(4.0)

    def test_x_minus_x_has_zero_sd(self):
        x = Uncertain(Gaussian(0.0, 3.0))
        plan = compile_plan((x - x).node)
        assert sd_bounds(plan)[plan.root_slot] == pytest.approx(0.0)

    def test_linear_combination_sd(self):
        # sd(2x + y) = sqrt(4·1 + 4) for independent x ~ N(·,1), y ~ N(·,2)
        x = Uncertain(Gaussian(0.0, 1.0))
        y = Uncertain(Gaussian(0.0, 2.0))
        plan = compile_plan((2.0 * x + y).node)
        assert sd_bounds(plan)[plan.root_slot] == pytest.approx(math.sqrt(8.0))

    def test_sampled_sd_below_bound(self):
        rng = random.Random(7)
        for _ in range(10):
            value = _random_plan(rng)
            plan = compile_plan(value.node)
            bound = sd_bounds(plan)[plan.root_slot]
            data = np.asarray(
                value.samples(4_000, default_rng(11)), dtype=float
            )
            finite = data[np.isfinite(data)]
            if finite.size < 2 or not math.isfinite(bound):
                continue
            # The bound is *exact* (not just an upper bound) for pure
            # linear-Gaussian plans, so allow a few standard errors of
            # sampling noise: se(std)/std ~ 1/sqrt(2n) ~ 1.1% at n=4000.
            assert finite.std() <= bound * 1.05 + 1e-9

    def test_popoviciu_bound_for_unknown_variance(self):
        # A bounded leaf with no variance attribute still gets a finite
        # bound from Popoviciu's inequality on its support width.
        x = Uncertain(Uniform(0.0, 4.0))
        plan = compile_plan(x.node)
        bound = sd_bounds(plan)[plan.root_slot]
        assert bound <= 2.0 + 1e-12  # (4-0)/2
        assert bound >= math.sqrt(4.0 / 3.0) - 1e-9  # true sd ~ 1.1547


class TestDiagnoseBounds:
    def test_bounds_diagnostic_opt_in(self):
        x = Uncertain(Uniform(0.0, 1.0))
        value = (x + x) - x
        diags = value.diagnose(bounds=True)
        unc100 = [d for d in diags if d.rule == "UNC100"]
        assert len(unc100) == 1
        assert unc100[0].data["support"] == [0.0, 1.0]
        assert unc100[0].data["sd_bound"] <= 0.5 + 1e-12

    def test_bounds_off_by_default(self):
        x = Uncertain(Uniform(0.0, 1.0))
        assert not [d for d in x.diagnose() if d.rule == "UNC100"]
