"""Tests for lifted reductions."""

import numpy as np
import pytest

from repro.core.graph import depth
from repro.core.reductions import uall, uany, umax, umean, umedian, umin, usum
from repro.core.uncertain import Uncertain, UncertainBool
from repro.dists import Gaussian, PointMass, Uniform


class TestUsum:
    def test_sum_of_pointmasses(self, rng):
        total = usum([Uncertain(PointMass(float(i))) for i in range(5)])
        assert total.sample(rng) == 10.0

    def test_sum_matches_gaussian_analytics(self, fixed_rng):
        total = usum([Uncertain(Gaussian(1.0, 1.0)) for _ in range(8)])
        assert total.expected_value(20_000, fixed_rng) == pytest.approx(8.0, abs=0.1)
        assert total.var(20_000, fixed_rng) == pytest.approx(8.0, rel=0.08)

    def test_balanced_tree_depth(self):
        total = usum([Uncertain(Gaussian(0, 1)) for _ in range(16)])
        assert depth(total.node) == 4  # log2(16), not 15

    def test_plain_values_coerced(self, rng):
        total = usum([1.0, 2.0, Uncertain(PointMass(3.0))])
        assert total.sample(rng) == 6.0

    def test_single_element(self, rng):
        u = Uncertain(PointMass(7.0))
        assert usum([u]) is u

    def test_shared_operand(self, fixed_rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        total = usum([x, x, x])
        assert total.var(20_000, fixed_rng) == pytest.approx(9.0, rel=0.08)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            usum([])


class TestUmean:
    def test_mean_of_gaussians(self, fixed_rng):
        # CLT in miniature: the mean of 16 unit Gaussians has sd 1/4.
        mean = umean([Uncertain(Gaussian(2.0, 1.0)) for _ in range(16)])
        assert mean.expected_value(20_000, fixed_rng) == pytest.approx(2.0, abs=0.05)
        assert mean.sd(20_000, fixed_rng) == pytest.approx(0.25, rel=0.1)


class TestOrderStatistics:
    def test_umin_umax_of_pointmasses(self, rng):
        values = [Uncertain(PointMass(v)) for v in (3.0, 1.0, 2.0)]
        assert umin(values).sample(rng) == 1.0
        assert umax(values).sample(rng) == 3.0

    def test_umax_of_uniforms_statistics(self, fixed_rng):
        # max of k U(0,1) has mean k/(k+1).
        values = [Uncertain(Uniform(0.0, 1.0)) for _ in range(3)]
        assert umax(values).expected_value(40_000, fixed_rng) == pytest.approx(
            0.75, abs=0.01
        )

    def test_umin_of_uniforms_statistics(self, fixed_rng):
        values = [Uncertain(Uniform(0.0, 1.0)) for _ in range(3)]
        assert umin(values).expected_value(40_000, fixed_rng) == pytest.approx(
            0.25, abs=0.01
        )

    def test_umedian(self, rng):
        values = [Uncertain(PointMass(v)) for v in (10.0, 1.0, 5.0)]
        assert umedian(values).sample(rng) == 5.0

    def test_per_sample_not_per_mean(self, fixed_rng):
        # max(X, -X) = |X| whose mean is sqrt(2/pi), NOT max of means = 0.
        x = Uncertain(Gaussian(0.0, 1.0))
        m = umax([x, -x])
        assert m.expected_value(40_000, fixed_rng) == pytest.approx(
            np.sqrt(2 / np.pi), abs=0.02
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            umin([])


class TestBooleanReductions:
    def test_uall(self, fixed_rng):
        u = Uncertain(Uniform(0.0, 1.0))
        conds = [u > 0.2, u < 0.8]
        both = uall(conds)
        assert isinstance(both, UncertainBool)
        assert both.evidence(20_000, fixed_rng) == pytest.approx(0.6, abs=0.02)

    def test_uany(self, fixed_rng):
        u = Uncertain(Uniform(0.0, 1.0))
        either = uany([u < 0.2, u > 0.8])
        assert either.evidence(20_000, fixed_rng) == pytest.approx(0.4, abs=0.02)

    def test_type_check(self):
        with pytest.raises(TypeError):
            uall([Uncertain(Gaussian(0, 1))])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            uany([])
