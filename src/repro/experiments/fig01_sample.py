"""Figure 1: a single sample is a poor approximation of a distribution."""

from __future__ import annotations

import numpy as np

from repro.dists.gaussian import Gaussian
from repro.experiments.base import ExperimentResult, experiment
from repro.rng import default_rng


@experiment("fig01")
def run(seed: int = 1, fast: bool = True) -> ExperimentResult:
    """Quantify Figure 1: the estimation error of k-sample summaries.

    A single sample misestimates the mean of N(0, 1) by ~0.8 on average
    (E|Z| = sqrt(2/pi)); growing the sample shrinks the error as 1/sqrt(k),
    which is the whole case for keeping distributions instead of points.
    """
    rng = default_rng(seed)
    dist = Gaussian(0.0, 1.0)
    replications = 200 if fast else 2_000
    rows = []
    for k in (1, 10, 100, 1000):
        errors = [
            abs(float(np.mean(dist.sample_n(k, rng)))) for _ in range(replications)
        ]
        rows.append(
            {
                "samples_per_estimate": k,
                "mean_abs_error_of_mean": float(np.mean(errors)),
                "theory_sqrt_2_over_pi_k": float(np.sqrt(2 / (np.pi * k))),
            }
        )
    claims = {
        "a single sample is a poor estimate (error ~0.8 sd)": 0.6
        < rows[0]["mean_abs_error_of_mean"]
        < 1.0,
        "error shrinks ~1/sqrt(k)": rows[-1]["mean_abs_error_of_mean"]
        < 0.1 * rows[0]["mean_abs_error_of_mean"],
    }
    return ExperimentResult(
        "fig01", "one sample vs the distribution", rows, claims
    )
