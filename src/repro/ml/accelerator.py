"""Approximate-hardware simulation for neural acceleration.

Parrot's original setting (Esmaeilzadeh et al., MICRO 2012) executes the
trained network on an *analog neural processing unit* whose computation is
itself noisy — weights stored imprecisely, activations perturbed.  The
related-work discussion (EnerJ, Rely) is about exactly this hardware
approximation.  This module simulates such an accelerator and exposes its
output as an ``Uncertain[float]``, so hardware error composes with
generalization error in the same evidence framework.

Error model per invocation:

- weight perturbation: ``w' = w * (1 + N(0, weight_noise))`` — analog
  storage drift;
- activation noise: additive ``N(0, activation_noise)`` on each hidden
  activation — analog summation error;
- optional stuck-at faults: a random subset of weights fixed at 0.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.uncertain import Uncertain
from repro.dists.sampling_function import FunctionDistribution
from repro.ml.mlp import MLP
from repro.rng import ensure_rng


@dataclasses.dataclass(frozen=True)
class HardwareModel:
    """Noise characteristics of the simulated analog NPU."""

    weight_noise: float = 0.02  # relative weight storage error
    activation_noise: float = 0.01  # absolute activation error
    stuck_at_zero_fraction: float = 0.0  # permanently faulty weights

    def __post_init__(self) -> None:
        if self.weight_noise < 0 or self.activation_noise < 0:
            raise ValueError("noise parameters must be non-negative")
        if not 0.0 <= self.stuck_at_zero_fraction < 1.0:
            raise ValueError(
                f"stuck_at_zero_fraction must be in [0, 1), got {self.stuck_at_zero_fraction}"
            )


class ApproximateAccelerator:
    """A noisy analog execution engine for a trained MLP."""

    def __init__(
        self, mlp: MLP, hardware: HardwareModel | None = None, rng=None
    ) -> None:
        self.mlp = mlp
        self.hardware = hardware or HardwareModel()
        rng = ensure_rng(rng)
        # Manufacturing defects are fixed per chip, not per invocation.
        n_stuck = int(round(self.hardware.stuck_at_zero_fraction * mlp.n_params))
        self._stuck = (
            rng.choice(mlp.n_params, size=n_stuck, replace=False)
            if n_stuck
            else np.empty(0, dtype=int)
        )

    def _noisy_forward(
        self, window: np.ndarray, rng: np.random.Generator
    ) -> float:
        hw = self.hardware
        weights = self.mlp.weights.copy()
        if hw.weight_noise:
            weights = weights * (
                1.0 + rng.normal(0.0, hw.weight_noise, size=weights.shape)
            )
        if len(self._stuck):
            weights[self._stuck] = 0.0
        layers = self.mlp.unpack(weights)
        a = np.atleast_2d(np.asarray(window, dtype=float))
        for i, (mat, bias) in enumerate(layers):
            z = a @ mat + bias
            if i < len(layers) - 1:
                a = np.tanh(z)
                if hw.activation_noise:
                    a = a + rng.normal(0.0, hw.activation_noise, size=a.shape)
            else:
                a = z
        return float(a[0, 0])

    def invoke(self, window: np.ndarray) -> float:
        """One (noisy) hardware invocation — what naive code consumes."""
        from repro.rng import default_rng

        return self._noisy_forward(window, default_rng(None))

    def predict(self, window: np.ndarray) -> Uncertain:
        """The accelerator's output distribution as an Uncertain value.

        Each sample is a fresh noisy invocation, so the distribution
        reflects this chip's weight drift and activation noise on this
        input — the hardware analogue of Parakeet's PPD.
        """
        window = np.asarray(window, dtype=float)

        def sample_many(n: int, rng: np.random.Generator) -> np.ndarray:
            return np.array([self._noisy_forward(window, rng) for _ in range(n)])

        return Uncertain(
            FunctionDistribution(
                lambda rng: self._noisy_forward(window, rng), fn_n=sample_many
            ),
            label="npu_output",
        )


def hardware_error_rate(
    accelerator: ApproximateAccelerator,
    windows: np.ndarray,
    truths: np.ndarray,
    threshold: float = 0.1,
    evidence: float | None = None,
    samples_per_input: int = 200,
    rng=None,
) -> float:
    """Edge-decision error rate of the accelerator on an evaluation set.

    ``evidence=None`` is the naive flow (one invocation, compare to the
    threshold); a value uses the Uncertain flow (report an edge when the
    evidence exceeds it).
    """
    rng = ensure_rng(rng)
    truths = np.asarray(truths, dtype=float) > threshold
    wrong = 0
    for window, actual in zip(windows, truths):
        if evidence is None:
            predicted = accelerator._noisy_forward(window, rng) > threshold
        else:
            u = accelerator.predict(window)
            p = (u > threshold).evidence(samples_per_input, rng)
            predicted = p > evidence
        wrong += predicted != actual
    return wrong / len(truths)
