"""Runtime metrics and span tracing: recording, scoping, export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import Uncertain, evaluation_config, runtime
from repro.core.plan import clear_plan_cache
from repro.dists import Gaussian
from repro.runtime import RuntimeMetrics, Tracer, tracing
from repro.runtime.metrics import METRICS, active


@pytest.fixture(autouse=True)
def fresh_stats():
    runtime.reset_stats()
    yield
    runtime.reset_stats()


class TestStatsAfterExperiments:
    def test_fig09_and_a_conditional_populate_the_counters(self):
        from repro.experiments import fig09_evidence

        clear_plan_cache()  # force real compiles so the counter must move
        runtime.reset_stats()
        result = fig09_evidence.run(fast=True)
        assert result.claims  # the experiment itself still passes

        speed = Uncertain(Gaussian(5.0, 1.0))
        with evaluation_config(rng=np.random.default_rng(0)):
            assert bool(speed > 2.0)  # implicit conditional -> SPRT

        stats = runtime.stats()
        assert stats["plans"]["compiled"] > 0
        assert sum(e["samples"] for e in stats["engines"].values()) > 0
        assert stats["tests"]["runs"] >= 1
        assert stats["tests"]["sprt_steps"] > 0
        assert stats["tests"]["samples"] > 0
        assert stats["conditionals"]["runs"] >= 1

    def test_expectation_counters(self):
        value = Uncertain(Gaussian(1.0, 1.0))
        value.expected_value(500, np.random.default_rng(1))
        value.expected_value(adaptive=True, rng=np.random.default_rng(2))
        stats = runtime.stats()
        assert stats["expectations"]["runs"] == 2
        assert stats["expectations"]["adaptive_runs"] == 1
        assert stats["expectations"]["samples"] >= 500

    def test_plan_cache_hits_are_distinguished_from_compiles(self):
        from repro.core.plan import compile_plan

        value = Uncertain(Gaussian(0.0, 1.0)) + 1.0
        value.samples(10, rng=0)
        compiled_before = runtime.stats()["plans"]["compiled"]
        # Recompiling the same root serves the per-root cache, not a build.
        assert compile_plan(value.node) is value.plan
        stats = runtime.stats()
        assert stats["plans"]["compiled"] == compiled_before
        assert stats["plans"]["cache_hits"] >= 1


class TestMetricsScoping:
    def test_metrics_false_disables_recording(self):
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(metrics=False):
            assert active() is None
            value.samples(100, rng=0)
        assert runtime.stats()["engines"] == {}

    def test_metrics_instance_scopes_recording(self):
        scoped = RuntimeMetrics()
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(metrics=scoped):
            assert active() is scoped
            value.samples(123, rng=0)
        # The draw landed on the scoped instance, not the global registry.
        assert scoped.total_samples() == 123
        assert METRICS.total_samples() == 0

    def test_reset_stats_zeroes_everything(self):
        Uncertain(Gaussian(0.0, 1.0)).samples(50, rng=0)
        assert runtime.stats() != RuntimeMetrics().snapshot()
        runtime.reset_stats()
        assert runtime.stats() == RuntimeMetrics().snapshot()

    def test_parallel_counters(self):
        from repro.runtime.parallel import ParallelEngine

        value = Uncertain(Gaussian(0.0, 1.0)) + 0.0
        engine = ParallelEngine(workers=1, chunk_size=256)
        try:
            # sample() (not run()) is the instrumented entry point.
            engine.sample(value.plan, 1_024, np.random.default_rng(0))
        finally:
            engine.shutdown()
        stats = runtime.stats()
        assert stats["parallel"]["chunks"] == 4
        assert stats["engines"]["parallel"]["samples"] == 1_024


class TestTracing:
    def test_engine_spans_are_recorded(self):
        value = Uncertain(Gaussian(0.0, 1.0)) + 1.0
        with tracing() as tracer:
            value.samples(200, rng=0)
        names = [span.name for span in tracer.spans]
        assert "engine.numpy.sample" in names
        span = next(s for s in tracer.spans if s.name == "engine.numpy.sample")
        assert span.attrs["n"] == 200
        assert span.duration >= 0.0

    def test_test_spans_nest_engine_spans(self):
        value = Uncertain(Gaussian(5.0, 1.0))
        with tracing() as tracer:
            with evaluation_config(rng=np.random.default_rng(0)):
                bool(value > 2.0)
        by_name = {}
        for span in tracer.spans:
            by_name.setdefault(span.name, span)
        test_span = next(
            s for n, s in by_name.items() if n.startswith("test.")
        )
        engine_span = by_name["engine.numpy.sample"]
        assert engine_span.parent == test_span.id
        assert test_span.attrs["steps"] >= 1
        assert "decision" in test_span.attrs

    def test_to_json_schema_and_export(self, tmp_path):
        value = Uncertain(Gaussian(0.0, 1.0))
        with tracing() as tracer:
            value.samples(10, rng=0)
        doc = json.loads(tracer.to_json())
        assert doc["schema"] == "repro.trace/1"
        assert doc["spans"]
        for span in doc["spans"]:
            assert set(span) == {"id", "parent", "name", "start", "duration", "attrs"}

        path = tmp_path / "trace.json"
        tracer.export(path)
        assert json.loads(path.read_text()) == doc

    def test_tracing_scope_restores_previous_tracer(self):
        from repro.runtime import set_tracer
        from repro.runtime.trace import get_tracer

        outer = Tracer()
        set_tracer(outer)
        try:
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer
        finally:
            set_tracer(None)

    def test_tracing_off_records_nothing(self):
        tracer = Tracer()
        Uncertain(Gaussian(0.0, 1.0)).samples(10, rng=0)
        assert len(tracer) == 0
