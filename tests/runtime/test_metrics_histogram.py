"""Latency histogram bucket math and the Prometheus text exposition.

The service tier's observability rests on two claims tested directly
here: (1) the bounded-bucket histogram reconstructs p50/p99 from its
counters alone, with error bounded by bucket width; (2) the Prometheus
renderer emits well-formed ``histogram`` series (cumulative buckets, a
mandatory ``le="+Inf"``, ``_sum``/``_count``) for every engine.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.runtime.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    LatencyHistogram,
    RuntimeMetrics,
    render_histogram,
    render_prometheus,
)


class TestBucketMath:
    def test_observations_land_in_inclusive_upper_bound_bucket(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0, 4.0))
        hist.observe(1.0)   # le=1 bucket (inclusive upper edge)
        hist.observe(1.5)   # le=2
        hist.observe(2.0)   # le=2
        hist.observe(3.0)   # le=4
        hist.observe(9.0)   # overflow
        assert hist.counts == [1, 2, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(16.5)

    def test_cumulative_counts(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.6, 3.0, 100.0):
            hist.observe(v)
        d = hist.as_dict()
        assert d["cumulative"] == [1, 3, 4]  # le=1, le=2, le=4
        assert d["count"] == 5               # the +Inf bucket

    def test_quantile_interpolates_within_bucket(self):
        # 10 observations, all in the (1, 2] bucket: the q-quantile walks
        # linearly across that bucket — the histogram_quantile estimator.
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        for _ in range(10):
            hist.observe(1.5)
        assert hist.quantile(0.5) == pytest.approx(1.5)   # 5/10 through
        assert hist.quantile(1.0) == pytest.approx(2.0)   # bucket upper edge
        assert hist.quantile(0.1) == pytest.approx(1.1)

    def test_quantile_spans_buckets(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(50):
            hist.observe(0.5)   # le=1
        for _ in range(50):
            hist.observe(3.0)   # le=4
        # p50 falls exactly at the end of the first bucket.
        assert hist.quantile(0.5) == pytest.approx(1.0)
        # p75 is halfway through the (2, 4] bucket's 50 observations.
        assert hist.quantile(0.75) == pytest.approx(3.0)

    def test_overflow_clamps_to_last_bound(self):
        hist = LatencyHistogram(bounds=(1.0, 2.0))
        for _ in range(10):
            hist.observe(50.0)
        assert hist.quantile(0.99) == pytest.approx(2.0)

    def test_empty_histogram_is_nan(self):
        hist = LatencyHistogram()
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.as_dict()["p50"])

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=())
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(0.0, 1.0))

    def test_default_bounds_cover_service_range(self):
        # 100 microseconds to 30 seconds: the window the service serves in.
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(30.0)

    def test_quantile_accuracy_against_numpy(self):
        # End-to-end sanity: on a realistic latency sample the bucketed
        # estimate lands within one bucket of the exact quantile.
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-5.0, sigma=1.0, size=10_000)
        hist = LatencyHistogram()
        for v in values:
            hist.observe(float(v))
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            est = hist.quantile(q)
            idx = next(
                i for i, b in enumerate(DEFAULT_LATENCY_BOUNDS) if exact <= b
            )
            lower = DEFAULT_LATENCY_BOUNDS[idx - 1] if idx else 0.0
            assert lower <= est <= DEFAULT_LATENCY_BOUNDS[idx]


class TestEngineLatencyIntegration:
    def test_record_engine_feeds_histogram(self):
        metrics = RuntimeMetrics()
        metrics.record_engine("numpy", 1000, 0.004)
        metrics.record_engine("numpy", 1000, 0.006)
        snap = metrics.snapshot()
        latency = snap["engines"]["numpy"]["latency"]
        assert latency["count"] == 2
        assert latency["sum"] == pytest.approx(0.010)
        assert latency["p50"] > 0

    def test_engine_draws_populate_latency(self):
        # A real draw through an engine lands in that engine's histogram.
        import repro
        from repro.dists import Gaussian

        metrics = RuntimeMetrics()
        value = repro.uncertain(Gaussian(0.0, 1.0))
        with repro.evaluation_config(metrics=metrics, rng=0):
            value.samples(256)
        snap = metrics.snapshot()
        assert snap["engines"]["numpy"]["latency"]["count"] >= 1


class TestPrometheusRendering:
    def _histogram(self):
        hist = LatencyHistogram(bounds=(0.001, 0.01, 0.1))
        hist.observe(0.0005)
        hist.observe(0.05)
        hist.observe(5.0)
        return hist

    def test_render_histogram_series(self):
        lines = render_histogram("x_seconds", self._histogram().as_dict())
        assert 'x_seconds_bucket{le="0.001"} 1' in lines
        assert 'x_seconds_bucket{le="0.1"} 2' in lines
        assert 'x_seconds_bucket{le="+Inf"} 3' in lines
        assert any(line.startswith("x_seconds_sum") for line in lines)
        assert "x_seconds_count 3" in lines

    def test_render_histogram_carries_labels(self):
        lines = render_histogram(
            "x_seconds", self._histogram().as_dict(), labels={"kind": "pr"}
        )
        assert 'x_seconds_bucket{kind="pr",le="+Inf"} 3' in lines
        assert 'x_seconds_count{kind="pr"} 3' in lines

    def test_snapshot_renders_engine_labels(self):
        metrics = RuntimeMetrics()
        metrics.record_engine("fused", 4096, 0.002)
        text = metrics.render_prometheus()
        assert 'repro_engine_samples{engine="fused"} 4096' in text
        assert 'repro_engine_latency_seconds_bucket{engine="fused",le="+Inf"} 1' in text
        assert text.endswith("\n")

    def test_full_snapshot_renders_every_section(self):
        metrics = RuntimeMetrics()
        metrics.record_engine("numpy", 10, 0.001)
        text = render_prometheus(metrics.snapshot())
        assert "repro_plans_" in text
        # No malformed lines: every non-comment line is "name[{labels}] value".
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            assert name, line
            float(value)  # parses as a number
