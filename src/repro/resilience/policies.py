"""Policy vocabulary and exception taxonomy for the resilience layer.

This module is deliberately import-light (stdlib only): ``repro.core.sprt``
and ``repro.core.engines`` consult it, so it can depend on nothing in
``repro`` — the same layering rule as :mod:`repro.runtime.metrics`.

Two policy axes are defined (see ``docs/resilience.md`` for the catalogue):

- ``on_nonfinite`` — what an engine does when a batch contains NaN/Inf:
  ``"propagate"`` (IEEE semantics, today's behaviour and the default),
  ``"warn"``, ``"raise"``, or ``"resample"`` (redraw the poisoned rows,
  bounded by ``EvaluationConfig.nonfinite_retries``).
- ``on_inconclusive`` — what a conditional does when its hypothesis test
  truncates without significance: ``"best-guess"`` (the paper's ternary
  mapping to ``False``, today's behaviour and the default), ``"warn"``,
  or ``"raise"``.
"""

from __future__ import annotations

import dataclasses

#: Valid ``EvaluationConfig.on_nonfinite`` selections.
NONFINITE_POLICIES = ("propagate", "warn", "raise", "resample")
#: Valid ``EvaluationConfig.on_inconclusive`` selections.
INCONCLUSIVE_POLICIES = ("best-guess", "warn", "raise")


def validate_policy(name: str, value: str, allowed: tuple[str, ...]) -> str:
    if value not in allowed:
        raise ValueError(
            f"{name} must be one of {allowed}, got {value!r}"
        )
    return value


class ResilienceError(RuntimeError):
    """Base class for failures surfaced by the resilience layer."""


class NonFiniteError(ResilienceError):
    """Raised under ``on_nonfinite="raise"`` (or when ``"resample"``
    exhausts its retry cap) with per-slot attribution in the message."""

    def __init__(self, message: str, attributions: tuple = ()) -> None:
        super().__init__(message)
        #: tuple of :class:`~repro.resilience.health.NonFiniteAttribution`.
        self.attributions = tuple(attributions)


class NonFiniteWarning(UserWarning):
    """Issued under ``on_nonfinite="warn"`` when a batch contains NaN/Inf."""


class SourceFailure(ResilienceError):
    """A :class:`~repro.resilience.source.ResilientSource` ran out of
    options: retries exhausted (or breaker open) with no fallback."""


class InconclusiveError(ResilienceError):
    """Raised under ``on_inconclusive="raise"`` when a hypothesis test
    truncates without reaching significance."""

    def __init__(self, message: str, outcome: "Inconclusive | None" = None) -> None:
        super().__init__(message)
        self.outcome = outcome


class InconclusiveWarning(UserWarning):
    """Issued under ``on_inconclusive="warn"``."""


@dataclasses.dataclass(frozen=True)
class Inconclusive:
    """Structured record of a truncated hypothesis test.

    Attached to :class:`~repro.core.sprt.TestResult` (``result.inconclusive``)
    whenever a test hits its sample-size bound inside the indifference
    region, so callers can treat "undecided" as data instead of a silently
    coerced boolean.
    """

    threshold: float
    samples_used: int
    successes: int
    max_samples: int

    @property
    def p_hat(self) -> float:
        """Point estimate at truncation (0.5 — maximum ignorance — when no
        samples were drawn; see ``TestResult.p_hat``)."""
        if self.samples_used == 0:
            return 0.5
        return self.successes / self.samples_used

    def describe(self) -> str:
        return (
            f"test truncated at {self.samples_used}/{self.max_samples} samples "
            f"with p_hat={self.p_hat:.4f} inside the indifference region "
            f"around threshold={self.threshold}"
        )
