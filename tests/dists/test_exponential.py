"""Tests for Exponential and Gamma."""

import numpy as np
import pytest

from repro.dists import Exponential, Gamma


class TestExponential:
    def test_moments(self):
        e = Exponential(2.0)
        assert e.mean == 0.5
        assert e.variance == 0.25

    def test_memoryless_cdf(self):
        e = Exponential(1.0)
        # Pr[X > s+t] = Pr[X > s] Pr[X > t]
        s, t = 0.7, 1.3
        tail = lambda x: 1.0 - float(e.cdf(x))
        assert tail(s + t) == pytest.approx(tail(s) * tail(t))

    def test_samples_non_negative(self, rng):
        assert Exponential(0.5).sample_n(5_000, rng).min() >= 0.0

    def test_sampled_mean(self, fixed_rng):
        assert Exponential(4.0).sample_n(50_000, fixed_rng).mean() == pytest.approx(
            0.25, rel=0.03
        )

    def test_pdf_at_zero(self):
        assert float(Exponential(3.0).pdf(0.0)) == pytest.approx(3.0)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestGamma:
    def test_moments(self):
        g = Gamma(3.0, 2.0)
        assert g.mean == pytest.approx(1.5)
        assert g.variance == pytest.approx(0.75)

    def test_shape_one_is_exponential(self):
        g = Gamma(1.0, 2.0)
        e = Exponential(2.0)
        xs = np.linspace(0.01, 5.0, 50)
        assert np.allclose(g.pdf(xs), e.pdf(xs))

    def test_sampled_mean(self, fixed_rng):
        g = Gamma(5.0, 1.0)
        assert g.sample_n(50_000, fixed_rng).mean() == pytest.approx(5.0, rel=0.02)

    def test_cdf_monotone(self):
        g = Gamma(2.0, 1.0)
        xs = np.linspace(0.0, 10.0, 100)
        cdf = g.cdf(xs)
        assert np.all(np.diff(cdf) >= 0)

    def test_pdf_zero_for_negative(self):
        assert float(Gamma(2.0, 1.0).pdf(-0.5)) == 0.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            Gamma(0.0, 1.0)
        with pytest.raises(ValueError):
            Gamma(1.0, -1.0)
