"""Ancestral sampling over the Bayesian network (Section 4.2).

Because the network is a DAG, its nodes admit a topological order.  We
evaluate leaves first and propagate values upward, visiting each node exactly
once per joint sample — the memoisation that makes shared subexpressions
(Figure 8) statistically correct.

The implementation is batch-first: one evaluation pass computes ``n``
independent joint samples as numpy arrays, which is what the SPRT's batched
draws (Section 4.3) consume.  A single sample is a batch of one.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.graph import Node
from repro.rng import ensure_rng


class SamplingError(RuntimeError):
    """Raised when a sampling function misbehaves (wrong shape, NaN policy)."""


class SampleContext:
    """Memo table mapping nodes to their sampled values for one batch.

    A context represents ``n`` joint assignments to every random variable in
    the network.  Reusing a context across multiple roots (as the Game of
    Life's four rule conditionals do within one cell update) keeps shared
    variables consistent between those roots.
    """

    def __init__(self, n: int, rng: np.random.Generator | int | None = None) -> None:
        if n <= 0:
            raise ValueError(f"batch size must be positive, got {n}")
        self.n = int(n)
        self.rng = ensure_rng(rng)
        self._memo: dict[int, np.ndarray] = {}
        # Keep sampled nodes alive: id() keys are only unique while the
        # corresponding object is; pinning prevents aliasing after GC.
        self._pins: list[Node] = []

    def __contains__(self, node: Node) -> bool:
        return id(node) in self._memo

    def value_of(self, node: Node) -> np.ndarray:
        """Sampled batch for ``node``, evaluating lazily on first access."""
        key = id(node)
        if key not in self._memo:
            self._evaluate(node)
        return self._memo[key]

    def _evaluate(self, root: Node) -> None:
        """Iterative post-order evaluation (no recursion-depth limits)."""
        stack: list[tuple[Node, bool]] = [(root, False)]
        memo = self._memo
        while stack:
            node, expanded = stack.pop()
            key = id(node)
            if key in memo:
                continue
            if not expanded:
                stack.append((node, True))
                for parent in node.parents:
                    if id(parent) not in memo:
                        stack.append((parent, False))
            else:
                parent_values = [memo[id(p)] for p in node.parents]
                values = node.evaluate_batch(parent_values, self.n, self.rng)
                values = np.asarray(values)
                if values.shape[:1] != (self.n,):
                    raise SamplingError(
                        f"node {node!r} produced batch of shape {values.shape}, "
                        f"expected leading dimension {self.n}"
                    )
                memo[key] = values
                self._pins.append(node)


def sample_batch(
    root: Node, n: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Draw ``n`` independent joint samples of ``root``."""
    return SampleContext(n, rng).value_of(root)


def sample_once(root: Node, rng: np.random.Generator | int | None = None) -> Any:
    """Draw a single joint sample of ``root``."""
    return sample_batch(root, 1, rng)[0]


def bernoulli_sampler(root: Node, rng: np.random.Generator):
    """Adapt a boolean-valued node into the draw-k callable the tests use.

    Each call draws a fresh batch of joint samples — exactly the repeated
    batched sampling loop of Section 4.3.
    """

    def draw(k: int) -> np.ndarray:
        values = sample_batch(root, k, rng)
        return np.asarray(values, dtype=bool)

    return draw
