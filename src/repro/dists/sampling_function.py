"""Wrap an arbitrary user-provided sampling function as a Distribution.

This is the paper's extension point for expert developers (Section 4.1):
"`The expert developer ... derives the correct distribution and provides it
to Uncertain<T> as a sampling function`".  BayesLife's corrected sensor
(Section 5.2) is implemented exactly this way.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.dists.base import Distribution


class FunctionDistribution(Distribution):
    """Distribution defined by ``fn(rng) -> sample``.

    Optionally accepts a vectorised ``fn_n(n, rng) -> ndarray`` for speed and
    a ``log_pdf`` callable when the expert also knows the density.
    """

    def __init__(
        self,
        fn: Callable[[np.random.Generator], Any],
        fn_n: Callable[[int, np.random.Generator], np.ndarray] | None = None,
        log_pdf: Callable[[Any], Any] | None = None,
        discrete: bool = False,
    ) -> None:
        self._fn = fn
        self._fn_n = fn_n
        self._log_pdf = log_pdf
        self.discrete = discrete

    def sample(self, rng: np.random.Generator) -> Any:
        return self._fn(rng)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self._fn_n is not None:
            out = np.asarray(self._fn_n(n, rng))
            if out.shape[0] != n:
                raise ValueError(
                    f"vectorised sampling function returned {out.shape[0]} samples, wanted {n}"
                )
            return out
        first = self._fn(rng)
        if isinstance(first, (int, float, np.integer, np.floating, bool, np.bool_)):
            out = np.empty(n, dtype=float)
            out[0] = first
            for i in range(1, n):
                out[i] = self._fn(rng)
            return out
        out = np.empty(n, dtype=object)
        out[0] = first
        for i in range(1, n):
            out[i] = self._fn(rng)
        return out

    def log_pdf(self, x):
        if self._log_pdf is None:
            raise NotImplementedError("no density was provided for this sampling function")
        return self._log_pdf(x)
