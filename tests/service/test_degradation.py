"""Brownout degradation: the controller, the determinism contract, shedding.

The key property: degradation changes *how many* samples answer a
request, never *which* stream they come from.  A seeded request answered
at level k is bit-identical to solo evaluation of the same request with
``samples=effective`` at level 0.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro import Uncertain
from repro.dists import Gaussian
from repro.service import (
    BrownoutController,
    QueryRequest,
    Service,
    ServiceOverloaded,
    evaluate_request,
)
from repro.service.degradation import (
    DEFAULT_LEVELS,
    NO_DEGRADATION,
    DegradationDecision,
)


def speed_query() -> Uncertain:
    east = Uncertain(Gaussian(4.0, 1.0))
    north = Uncertain(Gaussian(4.0, 1.0))
    return (east * east + north * north) ** 0.5


def run(coro):
    return asyncio.run(coro)


def controller(**overrides) -> "tuple[BrownoutController, list[float]]":
    """A controller on a fake clock; advance time via the returned cell."""
    t = [0.0]
    defaults = dict(
        high_watermark=0.75,
        low_watermark=0.25,
        escalate_hold_s=1.0,
        recover_hold_s=5.0,
        clock=lambda: t[0],
    )
    defaults.update(overrides)
    return BrownoutController(**defaults), t


class TestBrownoutController:
    def test_escalates_one_level_per_dwell_under_pressure(self):
        ctl, t = controller()
        assert ctl.observe(80, 100) == 1  # first escalation is immediate
        assert ctl.observe(95, 100) == 1  # within the dwell: held
        t[0] = 1.0
        assert ctl.observe(95, 100) == 2
        t[0] = 2.0
        assert ctl.observe(95, 100) == 3
        t[0] = 3.0
        assert ctl.observe(100, 100) == 3  # already at max level
        assert ctl.at_max_level
        assert ctl.snapshot()["escalations"] == 3

    def test_hysteresis_band_holds_the_level(self):
        ctl, t = controller()
        ctl.observe(80, 100)
        assert ctl.level == 1
        for step in range(1, 20):
            t[0] = step * 10.0  # far beyond any hold time
            ctl.observe(50, 100)  # mid-band pressure
        assert ctl.level == 1

    def test_recovers_one_level_per_calm_hold(self):
        ctl, t = controller()
        ctl.observe(80, 100)
        t[0] = 1.0
        ctl.observe(80, 100)
        assert ctl.level == 2
        t[0] = 2.0
        ctl.observe(10, 100)  # calm starts; no instant recovery
        assert ctl.level == 2
        t[0] = 6.9  # 4.9s calm < recover_hold_s
        ctl.observe(10, 100)
        assert ctl.level == 2
        t[0] = 7.1
        assert ctl.observe(10, 100) == 1  # one step after a full hold
        t[0] = 12.2  # calm timer restarted at the recovery (7.1)
        ctl.observe(10, 100)  # second calm hold, second step
        assert ctl.level == 0
        assert ctl.snapshot()["recoveries"] == 2

    def test_pressure_spike_resets_the_calm_timer(self):
        ctl, t = controller()
        ctl.observe(80, 100)
        t[0] = 2.0
        ctl.observe(10, 100)  # calm begins
        t[0] = 4.0
        ctl.observe(50, 100)  # mid-band: calm timer resets
        t[0] = 8.0  # 6s since first calm, but only 4s since reset...
        ctl.observe(10, 100)  # ...and this restarts the timer again
        assert ctl.level == 1
        t[0] = 13.1
        ctl.observe(10, 100)
        assert ctl.level == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="factor 1.0"):
            BrownoutController(levels=(0.5, 0.25))
        with pytest.raises(ValueError, match="strictly decrease"):
            BrownoutController(levels=(1.0, 0.5, 0.5))
        with pytest.raises(ValueError, match="watermarks"):
            BrownoutController(high_watermark=0.2, low_watermark=0.4)
        with pytest.raises(ValueError, match="min_samples"):
            BrownoutController(min_samples=0)

    def test_snapshot_shape(self):
        ctl, _ = controller()
        snap = ctl.snapshot()
        assert snap == {
            "level": 0,
            "max_level": len(DEFAULT_LEVELS) - 1,
            "factor": 1.0,
            "peak_level": 0,
            "escalations": 0,
            "recoveries": 0,
            "transitions": 0,
        }


class TestDegradationDecision:
    def test_effective_is_pure_in_nominal_and_level(self):
        decision = DegradationDecision(level=2, factor=0.25, min_samples=16)
        assert decision.effective(1000) == 250
        assert decision.effective(1000) == 250  # stable across calls
        assert decision.effective(40) == 16  # floored at min_samples

    def test_apply_records_provenance_only_when_degrading(self):
        decision = DegradationDecision(level=1, factor=0.5, min_samples=16)
        effective, record = decision.apply(200)
        assert effective == 100
        assert record.level == 1
        assert record.nominal_samples == 200
        assert record.effective_samples == 100
        # min_samples can swallow the whole reduction: no record then.
        assert decision.apply(16) == (16, None)

    def test_identity_decision_never_degrades(self):
        assert NO_DEGRADATION.apply(64) == (64, None)


class TestBitIdentityUnderBrownout:
    def test_degraded_seeded_request_matches_solo_at_effective_budget(self):
        # The headline determinism claim: answer at level k == solo answer
        # with samples=effective, bit for bit, for every seed.
        value = speed_query()
        decision = DegradationDecision(level=2, factor=0.25, min_samples=16)
        for seed in range(8):
            request = QueryRequest(
                value=value, kind="samples", samples=256, seed=seed
            )
            degraded = evaluate_request(
                request, engine="numpy", degrade=decision
            )
            assert degraded.degraded
            assert degraded.degradation.effective_samples == 64
            solo = evaluate_request(
                QueryRequest(value=value, kind="samples", samples=64, seed=seed),
                engine="numpy",
            )
            assert np.array_equal(degraded.value, solo.value)

    def test_degraded_batch_matches_solo_at_effective_budget(self):
        value = speed_query()
        decision = DegradationDecision(level=1, factor=0.5, min_samples=16)
        seeds = list(range(10))

        async def scenario():
            async with Service(
                engine="numpy",
                window=0.001,
                brownout=BrownoutController(),
            ) as svc:
                svc.brownout._level = 1  # pin the level for the test
                return await asyncio.gather(*[
                    svc.samples(value, 128, seed=s) for s in seeds
                ])

        results = run(scenario())
        for seed, got in zip(seeds, results):
            assert got.degraded and got.degradation.level == 1
            assert got.degradation.effective_samples == decision.effective(128)
            solo = evaluate_request(
                QueryRequest(value=value, kind="samples", samples=64, seed=seed),
                engine="numpy",
            )
            assert np.array_equal(got.value, solo.value)


class TestServiceBrownoutIntegration:
    def test_flood_degrades_before_shedding(self):
        # A tiny queue bound plus an immediate-escalation controller: the
        # flood must produce degraded answers (brownout engaged), and any
        # shed requests carry the structured overload fields.
        value = speed_query()
        ctl = BrownoutController(
            high_watermark=0.1,
            low_watermark=0.05,
            escalate_hold_s=0.0,
            recover_hold_s=60.0,
        )

        async def scenario():
            async with Service(
                engine="numpy",
                window=0.005,
                max_pending=32,
                brownout=ctl,
            ) as svc:
                return await asyncio.gather(*[
                    svc.samples(value, 256, seed=s) for s in range(32)
                ], return_exceptions=True)

        results = run(scenario())
        answered = [r for r in results if not isinstance(r, Exception)]
        assert answered, "flood must not shed everything"
        assert any(r.degraded for r in answered)
        for r in answered:
            if r.degraded:
                assert r.degradation.effective_samples < 256
                assert r.degradation.nominal_samples == 256
        assert ctl.snapshot()["peak_level"] >= 1

    def test_shed_requests_carry_structured_fields(self):
        value = speed_query()

        async def scenario():
            async with Service(
                engine="numpy", window=0.02, max_pending=4
            ) as svc:
                return await asyncio.gather(*[
                    svc.samples(value, 64, seed=s) for s in range(64)
                ], return_exceptions=True)

        results = run(scenario())
        shed = [r for r in results if isinstance(r, ServiceOverloaded)]
        assert shed, "a 16x flood over max_pending=4 must shed"
        for err in shed:
            assert err.pending == err.max_pending == 4
            assert err.retry_after_hint > 0
            assert "request shed" in str(err)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_shedding_is_fifo_fair(self, workers):
        # The first max_pending submissions must never be shed: admission
        # is strictly arrival-ordered, so shed requests are exactly a
        # suffix-of-arrival set, never an early submitter starved by a
        # late one.
        value = speed_query()
        max_pending = 8

        async def scenario():
            async with Service(
                engine="numpy",
                window=0.05,  # long window: the flood lands in one batch
                max_pending=max_pending,
                workers=workers,
            ) as svc:
                outcomes = await asyncio.gather(*[
                    svc.samples(value, 32, seed=s) for s in range(48)
                ], return_exceptions=True)
            return outcomes

        outcomes = run(scenario())
        shed_idx = [
            i for i, r in enumerate(outcomes)
            if isinstance(r, ServiceOverloaded)
        ]
        assert shed_idx, "the flood must overrun max_pending"
        assert min(shed_idx) >= max_pending  # early arrivals always admitted
        for i, r in enumerate(outcomes):
            if i not in shed_idx:
                assert not isinstance(r, Exception)  # admitted => answered

    def test_stats_and_health_report_degradation(self):
        value = speed_query()
        ctl = BrownoutController(
            high_watermark=0.1,
            low_watermark=0.05,
            escalate_hold_s=0.0,
            recover_hold_s=60.0,
        )

        async def scenario():
            async with Service(
                engine="numpy",
                window=0.005,
                max_pending=32,
                brownout=ctl,
                bulkheads=True,
            ) as svc:
                await asyncio.gather(*[
                    svc.samples(value, 128, seed=s) for s in range(24)
                ], return_exceptions=True)
                return svc.stats(), svc.health()

        stats, health = run(scenario())
        section = stats["degradation"]
        assert section["degraded_requests"] > 0
        assert section["brownout"]["peak_level"] >= 1
        assert "groups" in section  # per-bulkhead breaker/occupancy states
        # After the drain the queue is empty but the level may still be
        # raised: that is the "degraded" health state.
        assert health["status"] in ("ok", "degraded")
        assert health["http"] == 200
        assert "degradation_level" in health

    def test_brownout_true_builds_a_default_controller(self):
        async def scenario():
            async with Service(engine="numpy", brownout=True) as svc:
                assert isinstance(svc.brownout, BrownoutController)
                assert svc.brownout.level == 0

        run(scenario())
