"""Finite mixture of component distributions."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.dists.base import Distribution, Support


class Mixture(Distribution):
    """Mixture of ``components`` with mixing ``weights``.

    Used by the road-snapping prior (Figure 10): location mass concentrates
    on roads with a diffuse off-road component.
    """

    def __init__(
        self, components: Sequence[Distribution], weights: Sequence[float]
    ) -> None:
        if len(components) == 0:
            raise ValueError("Mixture needs at least one component")
        if len(components) != len(weights):
            raise ValueError("components and weights must have equal length")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum to a positive value")
        self.components = list(components)
        self.weights = w / w.sum()

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        counts = rng.multinomial(n, self.weights)
        parts = [
            comp.sample_n(count, rng)
            for comp, count in zip(self.components, counts)
            if count > 0
        ]
        out = np.concatenate(parts)
        rng.shuffle(out)
        return out

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        parts = np.stack(
            [np.log(w) + c.log_pdf(x) for c, w in zip(self.components, self.weights)]
        )
        # logsumexp across components, guarding all -inf columns.
        mx = np.max(parts, axis=0)
        safe_mx = np.where(np.isfinite(mx), mx, 0.0)
        out = safe_mx + np.log(np.sum(np.exp(parts - safe_mx), axis=0))
        return np.where(np.isfinite(mx), out, -np.inf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return sum(
            w * c.cdf(x) for c, w in zip(self.components, self.weights)
        )

    @property
    def mean(self) -> float:
        return float(
            sum(w * c.mean for c, w in zip(self.components, self.weights))
        )

    @property
    def variance(self) -> float:
        m = self.mean
        second = sum(
            w * (c.variance + c.mean**2)
            for c, w in zip(self.components, self.weights)
        )
        return float(second - m**2)

    @property
    def support(self) -> Support:
        supports = [c.support for c in self.components]
        return Support(
            min(s.lower for s in supports), max(s.upper for s in supports)
        )
