"""Figure 6: computation compounds uncertainty (c = a + b is wider)."""

from __future__ import annotations

import math

from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.experiments.base import ExperimentResult, experiment
from repro.rng import default_rng


@experiment("fig06")
def run(seed: int = 6, fast: bool = True) -> ExperimentResult:
    """Measure the spread of a, b and c = a + b (the paper's Figure 6)."""
    rng = default_rng(seed)
    n = 20_000 if fast else 200_000
    a = Uncertain(Gaussian(4.0, 1.0))
    b = Uncertain(Gaussian(5.0, 1.0))
    c = a + b
    rows = [
        {"variable": "a", "sampled_sd": a.sd(n, rng), "analytic_sd": 1.0},
        {"variable": "b", "sampled_sd": b.sd(n, rng), "analytic_sd": 1.0},
        {"variable": "c = a+b", "sampled_sd": c.sd(n, rng), "analytic_sd": math.sqrt(2)},
    ]
    claims = {
        "c is more uncertain than a": rows[2]["sampled_sd"] > rows[0]["sampled_sd"],
        "c is more uncertain than b": rows[2]["sampled_sd"] > rows[1]["sampled_sd"],
        "c's spread matches sqrt(var_a + var_b)": abs(
            rows[2]["sampled_sd"] - math.sqrt(2)
        )
        < 0.05,
    }
    return ExperimentResult("fig06", "computation compounds uncertainty", rows, claims)
