"""Table 1 bench: operator conformance plus core runtime throughput.

The throughput benches quantify the design decisions DESIGN.md records:
lazy graph construction (building expressions costs nanoseconds, sampling
pays at conditionals) and vectorised batch sampling.
"""


from benchmarks.conftest import run_and_report
from repro.core.conditionals import evaluation_config
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian
from repro.rng import default_rng


def test_table1_operator_conformance(benchmark):
    run_and_report(benchmark, "table1", fast=True)


def test_throughput_lazy_graph_construction(benchmark):
    """Building a 100-node expression draws zero samples (lazy evaluation)."""
    a = Uncertain(Gaussian(0.0, 1.0))
    b = Uncertain(Gaussian(1.0, 1.0))

    def build():
        expr = a
        for _ in range(50):
            expr = (expr + b) * 0.5
        return expr

    expr = benchmark(build)
    from repro.core.graph import node_count

    assert node_count(expr.node) > 100


def test_throughput_batch_sampling(benchmark):
    """Vectorised ancestral sampling of a 20-node network, 10k joint samples."""
    a = Uncertain(Gaussian(0.0, 1.0))
    b = Uncertain(Gaussian(1.0, 1.0))
    expr = a
    for _ in range(9):
        expr = (expr + b) * 0.5
    rng = default_rng(5)

    samples = benchmark(lambda: expr.samples(10_000, rng))
    assert samples.shape == (10_000,)


def test_throughput_implicit_conditional(benchmark):
    """End-to-end cost of one implicit conditional (build + SPRT)."""
    a = Uncertain(Gaussian(1.0, 1.0))
    b = Uncertain(Gaussian(0.0, 1.0))

    def conditional():
        with evaluation_config(rng=default_rng(6)):
            return bool(a > b)

    assert benchmark(conditional) is True
