"""Property-based tests on the hypothesis tests (hypothesis library)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sprt import (
    FixedSampleTest,
    GroupSequentialTest,
    SPRT,
    TestDecision,
)
from repro.rng import default_rng


def stream(p: float, seed: int):
    rng = default_rng(seed)
    return lambda k: rng.random(k) < p


thresholds = st.floats(min_value=0.05, max_value=0.95)
seeds = st.integers(min_value=0, max_value=10_000)


@given(threshold=thresholds, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_sprt_decides_correctly_far_from_threshold(threshold, seed):
    test = SPRT(threshold=threshold, epsilon=0.05)
    high = min(threshold + 0.3, 0.995)
    low = max(threshold - 0.3, 0.005)
    assert test.run(stream(high, seed)).decision is TestDecision.ACCEPT_ALTERNATIVE
    assert test.run(stream(low, seed + 1)).decision is TestDecision.ACCEPT_NULL


@given(threshold=thresholds, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_sprt_sample_count_bounded_and_batched(threshold, seed):
    test = SPRT(threshold=threshold, batch_size=10, max_samples=4_000)
    result = test.run(stream(threshold, seed))
    assert 10 <= result.samples_used <= 4_000
    assert result.samples_used % 10 == 0 or result.samples_used == 4_000


@given(
    threshold=thresholds,
    seed=seeds,
    offset=st.floats(min_value=0.15, max_value=0.4),
)
@settings(max_examples=30, deadline=None)
def test_sprt_harder_cases_cost_at_least_as_much_on_average(threshold, seed, offset):
    test = SPRT(threshold=threshold, epsilon=0.05, max_samples=20_000)
    easy_p = min(threshold + 2 * offset, 0.999)
    hard_p = min(threshold + offset / 2, 0.999)
    easy = np.mean(
        [test.run(stream(easy_p, seed + i)).samples_used for i in range(5)]
    )
    hard = np.mean(
        [test.run(stream(hard_p, seed + i)).samples_used for i in range(5)]
    )
    assert hard >= easy * 0.5  # hard cases are never systematically cheaper


@given(threshold=thresholds, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_fixed_test_consistency_with_truth(threshold, seed):
    # With a decisive p and a large n, the naive fixed test agrees with
    # the ground truth ordering.
    test = FixedSampleTest(threshold=threshold, n=2_000)
    p = min(threshold + 0.25, 0.99)
    assert test.run(stream(p, seed)).decision is TestDecision.ACCEPT_ALTERNATIVE


@given(threshold=thresholds, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_group_sequential_respects_cap(threshold, seed):
    test = GroupSequentialTest(threshold=threshold, looks=4, group_size=50)
    result = test.run(stream(threshold, seed))
    assert result.samples_used <= 200
    assert result.samples_used % 50 == 0


@given(seed=seeds, p=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=40, deadline=None)
def test_result_phat_tracks_p(seed, p):
    test = FixedSampleTest(threshold=0.5, n=3_000)
    result = test.run(stream(p, seed))
    assert abs(result.p_hat - p) < 0.05
