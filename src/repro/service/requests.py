"""The service request schema: what a query over an uncertain value *is*.

The service tier accepts exactly the ergonomic query surface that
``Uncertain`` itself exposes (and ``repro.evaluate`` mirrors): the
explicit conditional ``pr``, the estimators ``expected_value`` /
``percentiles`` / ``confidence_interval`` / ``is_probable``, and raw
draws ``sample`` / ``samples``.  A :class:`QueryRequest` freezes one such
query — the value, the query kind, its statistical parameters, and the
request **seed** that makes the answer reproducible.

Determinism contract
--------------------

A request with ``seed=s`` is answered from the sample stream
``default_rng(SeedSequence(s))`` — its *own* generator, derived from the
seed alone.  Because the stream belongs to the request rather than to
whichever batch happened to absorb it, a batched answer is bit-identical
to the same request evaluated alone (``evaluate_request``), whatever the
coalescing window, batch composition, or worker count did.  A request
with ``seed=None`` opts out of the contract and may be answered from a
shared pooled draw (one bulk evaluation serving many requests) — the
cheap path for callers that only need *iid* samples, not *specific*
ones.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any

import numpy as np

from repro.core.uncertain import Uncertain

#: The blessed query kinds, mirroring the ``Uncertain`` method surface.
QUERY_KINDS = (
    "pr",
    "is_probable",
    "expected_value",
    "sample",
    "samples",
    "percentiles",
    "confidence_interval",
)

_request_ids = itertools.count(1)


@dataclasses.dataclass(frozen=True)
class QueryRequest:
    """One frozen query against an uncertain value.

    Parameters
    ----------
    value:
        The :class:`~repro.Uncertain` (or :class:`UncertainBool`) the
        query interrogates.  Its compiled plan's structural hash is the
        coalescing key: concurrent requests over isomorphic plans share
        one bulk evaluation.
    kind:
        One of :data:`QUERY_KINDS`.
    seed:
        Request seed (the determinism contract above).  ``None`` allows
        pooled shared draws.
    samples:
        Monte-Carlo sample count; ``None`` defers to the active
        configuration's kind-specific default (``ci_samples`` for the
        interval/evidence estimators, ``expectation_samples`` for
        ``expected_value``/``samples``, 1 for ``sample``).
    threshold:
        Evidence threshold for ``pr`` / ``is_probable``.
    level:
        Coverage level for ``confidence_interval``.
    divisions:
        Percentile divisions for ``percentiles`` (``divisions + 1``
        quantiles come back).
    deadline:
        Per-request wall-clock budget in seconds, measured from
        submission.  Unlike the service-wide ``deadline`` (which bounds
        the whole service lifetime), an expired request deadline
        cooperatively cancels *this request's* in-flight sampling at the
        next engine batch boundary
        (:class:`~repro.runtime.cancellation.EvaluationCancelled`).
    """

    value: Uncertain
    kind: str = "expected_value"
    seed: int | None = None
    samples: int | None = None
    threshold: float = 0.5
    level: float = 0.95
    divisions: int = 100
    deadline: float | None = None
    #: Monotonically increasing request id (diagnostics / tracing only).
    uid: int = dataclasses.field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise ValueError(
                f"unknown query kind {self.kind!r}; expected one of {QUERY_KINDS}"
            )
        if not isinstance(self.value, Uncertain):
            raise TypeError(
                f"value must be an Uncertain, got {type(self.value).__name__}"
            )
        if self.samples is not None and self.samples <= 0:
            raise ValueError(f"samples must be positive, got {self.samples}")
        if not 0.0 <= self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in [0, 1], got {self.threshold}"
            )
        if not 0.0 < self.level < 1.0:
            raise ValueError(f"level must be in (0, 1), got {self.level}")
        if self.divisions < 1:
            raise ValueError(
                f"divisions must be >= 1, got {self.divisions}"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive, got {self.deadline}"
            )

    # -- derived properties --------------------------------------------------

    def resolve_samples(self, config) -> int:
        """The Monte-Carlo sample count this request will consume."""
        if self.samples is not None:
            return int(self.samples)
        if self.kind == "sample":
            return 1
        if self.kind in ("expected_value", "samples"):
            return int(config.expectation_samples)
        return int(config.ci_samples)

    def rng(self) -> np.random.Generator:
        """The request's own generator (determinism contract).

        Requires a seed; pooled (seedless) requests draw from the
        coalescer's shared stream instead.
        """
        if self.seed is None:
            raise ValueError("seedless requests have no per-request stream")
        return np.random.default_rng(np.random.SeedSequence(int(self.seed)))

    def group_key(self) -> str:
        """The coalescing key: structural hash, or plan identity for
        opaque plans (lambdas / hardened sources never share shapes, but
        many requests against the *same* value still batch together)."""
        plan = self.value.plan
        key = plan.structural_hash
        if key is None:
            key = f"opaque:{id(plan)}"
        return key


@dataclasses.dataclass
class QueryResult:
    """The answer to one :class:`QueryRequest`, with batching provenance."""

    request: QueryRequest
    value: Any
    #: Monte-Carlo samples drawn for this request.
    samples_used: int
    #: Was this answered from a coalesced multi-request evaluation?
    batched: bool
    #: Requests sharing the bulk evaluation that produced this answer.
    batch_size: int
    #: Seconds from submission to completion (0.0 on the sync solo path).
    latency_s: float
    #: Engine name that executed the draw.
    engine: str
    #: Kind-specific extras (e.g. the measured ``evidence`` for ``pr``).
    extra: dict = dataclasses.field(default_factory=dict)
    #: Brownout provenance: ``None`` for an undegraded answer, else the
    #: frozen :class:`~repro.service.degradation.DegradationRecord`
    #: naming the level and the nominal vs effective sample counts.
    degradation: "object | None" = None

    @property
    def degraded(self) -> bool:
        """Was this answer produced under a brownout level > 0?"""
        return self.degradation is not None


def reduce_query(request: QueryRequest, values: np.ndarray) -> tuple[Any, dict]:
    """Reduce a sample batch to the request's answer.

    This is the *one* reduction used by every path — solo, per-request
    batched, and pooled — which is what makes batched answers bit-identical
    to solo ones: given the same sample array, the answer is the same
    object math.
    """
    kind = request.kind
    if kind in ("pr", "is_probable"):
        evidence = float(np.asarray(values, dtype=bool).mean())
        return bool(evidence > request.threshold), {"evidence": evidence}
    if kind == "expected_value":
        arr = np.asarray(values)
        if arr.dtype == object:
            return sum(values) / len(values), {}
        return float(arr.mean()) if arr.ndim == 1 else arr.mean(axis=0), {}
    if kind == "sample":
        return values[0], {}
    if kind == "samples":
        return np.asarray(values), {}
    if kind == "percentiles":
        grid = np.linspace(0.0, 1.0, request.divisions + 1)
        return np.quantile(np.asarray(values, dtype=float), grid), {}
    if kind == "confidence_interval":
        arr = np.asarray(values, dtype=float)
        tail = (1.0 - request.level) / 2.0
        return (
            float(np.quantile(arr, tail)),
            float(np.quantile(arr, 1.0 - tail)),
        ), {}
    raise ValueError(f"unknown query kind {kind!r}")  # pragma: no cover
