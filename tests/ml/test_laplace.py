"""Tests for the Gaussian (Laplace) PPD approximation."""

import numpy as np
import pytest

from repro.ml.images import make_dataset
from repro.ml.laplace import (
    laplace_parakeet,
    laplace_weight_posterior,
    output_jacobian,
    train_laplace_parakeet,
)
from repro.ml.mlp import MLP
from repro.rng import default_rng


@pytest.fixture(scope="module")
def small_task():
    x, t = make_dataset(400, rng=default_rng(0))
    return x, t


class TestOutputJacobian:
    def test_matches_finite_differences(self):
        mlp = MLP((3, 4, 1), rng=default_rng(1))
        x = default_rng(2).normal(size=(5, 3))
        jac = output_jacobian(mlp, x)
        assert jac.shape == (5, mlp.n_params)
        eps = 1e-6
        for idx in range(0, mlp.n_params, 5):
            w_plus = mlp.weights.copy()
            w_plus[idx] += eps
            w_minus = mlp.weights.copy()
            w_minus[idx] -= eps
            numeric = (mlp.forward(x, w_plus) - mlp.forward(x, w_minus)) / (2 * eps)
            assert np.allclose(jac[:, idx], numeric, rtol=1e-4, atol=1e-7)

    def test_single_output_required(self):
        mlp = MLP((3, 4, 2), rng=default_rng(3))
        with pytest.raises(ValueError):
            output_jacobian(mlp, np.zeros((2, 3)))


class TestLaplacePosterior:
    def test_shapes_and_positivity(self, small_task):
        x, t = small_task
        mlp = MLP((9, 8, 1), rng=default_rng(4))
        mlp.train_sgd(x, t, epochs=30, rng=default_rng(5))
        mean, var = laplace_weight_posterior(mlp, x, t)
        assert mean.shape == var.shape == (mlp.n_params,)
        assert np.all(var > 0)

    def test_more_data_tightens_posterior(self, small_task):
        x, t = small_task
        mlp = MLP((9, 8, 1), rng=default_rng(6))
        mlp.train_sgd(x, t, epochs=30, rng=default_rng(7))
        _, var_small = laplace_weight_posterior(mlp, x[:50], t[:50])
        _, var_large = laplace_weight_posterior(mlp, x, t)
        assert var_large.mean() < var_small.mean()

    def test_validation(self, small_task):
        x, t = small_task
        mlp = MLP((9, 8, 1), rng=default_rng(8))
        with pytest.raises(ValueError):
            laplace_weight_posterior(mlp, x, t, noise_sigma=0.0)


class TestLaplaceParakeet:
    def test_pool_and_predictions(self, small_task):
        x, t = small_task
        parakeet = train_laplace_parakeet(
            x, t, epochs=60, pool_size=15, rng=default_rng(9)
        )
        assert parakeet.weight_pool.shape[0] == 15
        ppd = parakeet.predict(x[0])
        assert ppd.sd(2_000, default_rng(10)) > 0.0

    def test_ppd_tracks_truth(self, small_task):
        x, t = small_task
        parakeet = train_laplace_parakeet(
            x, t, epochs=100, pool_size=20, rng=default_rng(11)
        )
        errors = [
            abs(parakeet.predict(x[i]).expected_value(1_000, default_rng(i)) - t[i])
            for i in range(8)
        ]
        assert np.mean(errors) < 0.15

    def test_pool_size_validation(self, small_task):
        x, t = small_task
        mlp = MLP((9, 8, 1), rng=default_rng(12))
        with pytest.raises(ValueError):
            laplace_parakeet(mlp, x, t, pool_size=0)

    def test_precision_recall_sweep_compatible(self, small_task):
        from repro.ml.evaluation import precision_recall_sweep

        x, t = small_task
        parakeet = train_laplace_parakeet(
            x, t, epochs=60, pool_size=15, rng=default_rng(13)
        )
        sweep = precision_recall_sweep(parakeet, x[:100], t[:100], alphas=(0.2, 0.8))
        assert sweep[0].recall >= sweep[1].recall - 0.05
