"""Goodput under overload: brownout degradation versus shed-only.

A 4x overload flood (four times ``max_pending`` same-shape speeding
queries, arriving in waves faster than the service can drain them) hits
two identically sized services:

- **shed-only**: no brownout controller — every request is answered at
  its full nominal sample budget, and the only pressure valve is hard
  shedding at the ``max_pending`` bound.
- **brownout**: a :class:`BrownoutController` walks the sample budget
  down through degradation levels as queue pressure rises, so batches
  drain faster, more of the flood is admitted, and shedding stays the
  last resort.

Goodput is successfully answered requests per second of wall time.  The
acceptance floor asserted here (and in CI's ``chaos-service`` job): the
brownout arm's goodput must beat the shed-only arm's.  Degraded answers
count toward goodput *because the paper's semantics make them correct
answers* — fewer samples widen the evidence, they do not bias it; every
degraded result carries its :class:`DegradationRecord` provenance.

Writes ``BENCH_degradation.json`` at the repo root with both arms,
the brownout trajectory, and a bit-identity probe showing a seeded
request degraded at a fixed level equals solo evaluation at the same
effective budget.  ``DEGRADATION_BENCH_SMOKE=1`` shrinks the flood for
CI smoke runs (assertions still hold).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host

from repro import Uncertain
from repro.dists import Gaussian
from repro.service import (
    BrownoutController,
    QueryRequest,
    Service,
    evaluate_request,
)
from repro.service.degradation import DegradationDecision

SMOKE = os.environ.get("DEGRADATION_BENCH_SMOKE", "") == "1"
MAX_PENDING = 32 if SMOKE else 64
WAVES = 8
OVERLOAD = 4  # flood size as a multiple of max_pending
FLOOD = OVERLOAD * MAX_PENDING
WAVE_GAP_S = 0.01
SAMPLES_PER_QUERY = 40_000 if SMOKE else 100_000
WINDOW_S = 0.002
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_degradation.json"

_MPS_TO_MPH = 2.23693629
_SIGMA_MPH = 2.0 * _MPS_TO_MPH
_WALK_MPH = 3.1


def walker_query():
    v_east = Uncertain(Gaussian(_WALK_MPH * 0.6, _SIGMA_MPH), label="vE")
    v_north = Uncertain(Gaussian(_WALK_MPH * 0.8, _SIGMA_MPH), label="vN")
    return (v_east * v_east + v_north * v_north) ** 0.5


def brownout_controller() -> BrownoutController:
    """Aggressive controller for the benchmark: escalate as soon as the
    queue shows pressure, hold the level for the whole flood."""
    return BrownoutController(
        high_watermark=0.3,
        low_watermark=0.1,
        escalate_hold_s=0.0,
        recover_hold_s=10.0,
        min_samples=64,
    )


async def _wave_flood(svc: Service):
    """Submit the flood in waves (arrival rate > drain rate), gather all."""
    pending = []
    per_wave = FLOOD // WAVES
    for wave in range(WAVES):
        pending.extend(
            asyncio.ensure_future(svc.samples(
                walker_query(), SAMPLES_PER_QUERY, seed=wave * per_wave + i
            ))
            for i in range(per_wave)
        )
        await asyncio.sleep(WAVE_GAP_S)
    return await asyncio.gather(*pending, return_exceptions=True)


def _run_arm(brownout: "BrownoutController | None"):
    async def scenario():
        async with Service(
            engine="numpy",
            window=WINDOW_S,
            max_pending=MAX_PENDING,
            brownout=brownout,
        ) as svc:
            # Warm the plan cache outside the timed region.
            await svc.samples(walker_query(), 8, seed=0)
            start = time.perf_counter()
            outcomes = await _wave_flood(svc)
            wall = time.perf_counter() - start
            return wall, outcomes, svc.stats()

    wall, outcomes, stats = asyncio.run(scenario())
    answered = [r for r in outcomes if not isinstance(r, Exception)]
    degraded = [r for r in answered if r.degraded]
    latencies = np.array([r.latency_s for r in answered]) if answered else (
        np.array([0.0])
    )
    arm = {
        "brownout": brownout is not None,
        "flood": FLOOD,
        "max_pending": MAX_PENDING,
        "overload_factor": OVERLOAD,
        "samples_per_query": SAMPLES_PER_QUERY,
        "wall_seconds": wall,
        "answered": len(answered),
        "shed": len(outcomes) - len(answered),
        "degraded": len(degraded),
        "goodput_rps": len(answered) / wall,
        "latency_p50_s": float(np.quantile(latencies, 0.50)),
        "latency_p99_s": float(np.quantile(latencies, 0.99)),
        "degradation": stats["degradation"],
    }
    if degraded:
        arm["effective_samples_min"] = min(
            r.degradation.effective_samples for r in degraded
        )
    return arm


def _bit_identity_probe() -> bool:
    """A seeded request degraded at a fixed level == solo at the same
    effective budget, bit for bit."""
    decision = DegradationDecision(level=2, factor=0.25, min_samples=64)
    value = walker_query()
    for seed in range(4):
        request = QueryRequest(
            value=value, kind="samples", samples=SAMPLES_PER_QUERY, seed=seed
        )
        degraded = evaluate_request(request, engine="numpy", degrade=decision)
        solo = evaluate_request(
            QueryRequest(
                value=value, kind="samples",
                samples=decision.effective(SAMPLES_PER_QUERY), seed=seed,
            ),
            engine="numpy",
        )
        if not np.array_equal(degraded.value, solo.value):
            return False
    return True


def test_goodput_under_overload(benchmark):
    deterministic = _bit_identity_probe()
    assert deterministic, "degraded seeded answers diverged from solo"

    shed_only = _run_arm(None)

    def brownout_arm():
        return _run_arm(brownout_controller())

    brownout = benchmark.pedantic(brownout_arm, rounds=1, iterations=1)

    result = {
        "workload": {
            "description": (
                "4x overload flood of same-shape GPS speed queries, "
                "waves faster than drain rate"
            ),
            "flood": FLOOD,
            "waves": WAVES,
            "max_pending": MAX_PENDING,
            "samples_per_query": SAMPLES_PER_QUERY,
            "smoke": SMOKE,
        },
        "shed_only": shed_only,
        "brownout": brownout,
        "goodput_ratio": brownout["goodput_rps"] / shed_only["goodput_rps"],
        "deterministic_at_fixed_level": deterministic,
    }
    stamp_host(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result, indent=2))

    # The flood must actually overload both arms...
    assert shed_only["shed"] > 0, "4x flood never overran the shed-only arm"
    # ...the brownout arm must actually engage...
    assert brownout["degraded"] > 0, "brownout never engaged under the flood"
    assert brownout["degradation"]["brownout"]["peak_level"] >= 1
    # ...and the headline claim: brownout goodput beats shed-only goodput.
    assert brownout["goodput_rps"] > shed_only["goodput_rps"], (
        f"brownout goodput {brownout['goodput_rps']:.1f} rps did not beat "
        f"shed-only {shed_only['goodput_rps']:.1f} rps"
    )
