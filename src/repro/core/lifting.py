"""Lifting arbitrary functions over uncertain values (Section 3.3).

A lifted operator may have any type — the paper's example is real division
of integers, ``Int -> Int -> Double``.  :func:`lift` turns any plain
function into one over ``Uncertain`` operands; :func:`apply` is the one-shot
form.  Plain operands are coerced to point masses, exactly as the operator
overloads do.
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.core.graph import ApplyNode
from repro.core.uncertain import Uncertain, UncertainBool, _as_node


def apply(
    fn: Callable[..., Any],
    *args: Any,
    vectorized: bool = False,
    boolean: bool = False,
    label: str | None = None,
) -> Uncertain:
    """Apply ``fn`` to uncertain (or plain) operands, building a graph node.

    ``vectorized=True`` promises that ``fn`` accepts equal-length numpy
    arrays and maps elementwise; otherwise ``fn`` is called per joint
    sample.  ``boolean=True`` marks the result as ``UncertainBool`` so it
    participates in conditional semantics.
    """
    nodes = tuple(_as_node(a) for a in args)
    node = ApplyNode(fn, nodes, vectorized=vectorized, label=label)
    cls = UncertainBool if boolean else Uncertain
    return cls.from_node(node)


def lift(
    fn: Callable[..., Any],
    vectorized: bool = False,
    boolean: bool = False,
) -> Callable[..., Uncertain]:
    """Return a version of ``fn`` operating over uncertain values.

    Example::

        distance = lift(haversine_m)
        dist = distance(location_a, location_b)  # Uncertain[float]
    """

    @functools.wraps(fn)
    def lifted(*args: Any) -> Uncertain:
        return apply(
            fn, *args, vectorized=vectorized, boolean=boolean,
            label=getattr(fn, "__name__", None),
        )

    return lifted
