"""Tests for priors and posterior construction (Section 3.5)."""

import numpy as np
import pytest

from repro.core.bayes import Prior, posterior
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, TruncatedGaussian, Uniform
from repro.rng import default_rng


class TestPrior:
    def test_from_distribution_weights(self):
        prior = Prior.from_distribution(Gaussian(0.0, 1.0))
        w = prior.weight(np.array([0.0, 3.0]))
        assert w[0] > w[1] > 0.0

    def test_from_weights_scalar_function(self):
        prior = Prior.from_weights(lambda v: 1.0 if v > 0 else 0.0)
        w = prior.weight(np.array([-1.0, 1.0]))
        assert list(w) == [0.0, 1.0]

    def test_vectorised_weight_function(self):
        prior = Prior.from_weights(lambda v: np.exp(-np.abs(v)))
        w = prior.weight(np.array([0.0, 1.0]))
        assert w[0] == pytest.approx(1.0)

    def test_object_values_fall_back_to_scalar_path(self):
        class Point:
            def __init__(self, x):
                self.x = x

        prior = Prior.from_weights(lambda p: abs(p.x))
        values = np.empty(2, dtype=object)
        values[:] = [Point(2.0), Point(-3.0)]
        assert list(prior.weight(values)) == [2.0, 3.0]

    def test_negative_weights_rejected(self):
        prior = Prior.from_weights(lambda v: -1.0)
        with pytest.raises(ValueError):
            prior.weight(np.array([1.0]))

    def test_non_finite_weights_rejected(self):
        prior = Prior.from_weights(lambda v: float("inf"))
        with pytest.raises(ValueError):
            prior.weight(np.array([1.0]))

    def test_combination_multiplies(self):
        a = Prior.from_weights(lambda v: 2.0, label="a")
        b = Prior.from_weights(lambda v: 3.0, label="b")
        combined = a & b
        assert np.allclose(combined.weight(np.array([1.0, 2.0])), 6.0)
        assert "a" in combined.label and "b" in combined.label

    def test_combination_type_check(self):
        a = Prior.from_weights(lambda v: 1.0)
        with pytest.raises(TypeError):
            _ = a & 3.0


class TestPosterior:
    def test_sir_pulls_toward_prior(self):
        estimate = Uncertain(Gaussian(10.0, 5.0))
        post = posterior(
            estimate, TruncatedGaussian(3.0, 1.5, 0.0, 6.0), rng=default_rng(1)
        )
        mean = post.expected_value(5_000, default_rng(2))
        assert 0.0 < mean < 6.5
        assert mean < 10.0

    def test_posterior_analytic_gaussian_case(self):
        # Gaussian likelihood x Gaussian prior has a closed-form posterior:
        # both N(0,1) -> posterior N(mu/2, 1/2) for likelihood centred at mu.
        estimate = Uncertain(Gaussian(2.0, 1.0))
        post = posterior(
            estimate, Gaussian(0.0, 1.0), n_proposals=40_000, rng=default_rng(3)
        )
        mean = post.expected_value(20_000, default_rng(4))
        sd = post.sd(20_000, default_rng(5))
        assert mean == pytest.approx(1.0, abs=0.05)
        assert sd == pytest.approx(np.sqrt(0.5), abs=0.05)

    def test_rejection_method(self):
        estimate = Uncertain(Gaussian(0.0, 2.0))
        post = posterior(
            estimate,
            Uniform(-1.0, 1.0),
            n_proposals=20_000,
            method="rejection",
            rng=default_rng(6),
        )
        samples = post.samples(2_000, default_rng(7))
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_sir_pool_size(self):
        estimate = Uncertain(Gaussian(0.0, 1.0))
        post = posterior(
            estimate, Gaussian(0.0, 1.0), n_proposals=500, pool_size=100,
            rng=default_rng(8),
        )
        # Result wraps an Empirical with the requested pool size.
        from repro.dists import Empirical

        leaf = post.node.dist
        assert isinstance(leaf, Empirical)
        assert len(leaf) == 100

    def test_contradictory_prior_raises(self):
        estimate = Uncertain(Gaussian(100.0, 0.1))
        prior = Prior.from_weights(lambda v: 1.0 if v < 0 else 0.0)
        with pytest.raises(ValueError, match="zero weight"):
            posterior(estimate, prior, n_proposals=100, rng=default_rng(9))

    def test_unknown_method_rejected(self):
        estimate = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(ValueError, match="unknown posterior method"):
            posterior(estimate, Gaussian(0, 1), method="magic", rng=default_rng(10))

    def test_invalid_n_proposals(self):
        with pytest.raises(ValueError):
            posterior(Uncertain(Gaussian(0, 1)), Gaussian(0, 1), n_proposals=0)

    def test_posterior_composes_with_operators(self):
        estimate = Uncertain(Gaussian(5.0, 2.0))
        post = posterior(estimate, Gaussian(5.0, 2.0), rng=default_rng(11))
        doubled = post * 2.0
        assert doubled.expected_value(5_000, default_rng(12)) == pytest.approx(
            10.0, abs=0.3
        )
