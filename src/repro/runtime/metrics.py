"""Process-global runtime metrics for the sampling runtime.

The plan/engine layer answers "what did this process spend its sampling
time on": how many plans were compiled (vs served from cache), how many
samples each engine drew and how long it took, how many SPRT batches the
conditionals consumed.  The counters live in a single process-global
:class:`RuntimeMetrics` registry (:data:`METRICS`), cheap enough to stay
on by default — recording is plain attribute arithmetic on the hot path,
locking only on snapshot/reset.

``repro.runtime.stats()`` returns a snapshot; selection is governed by
``EvaluationConfig.metrics``:

- ``True`` (default) — record into the global registry;
- ``False``/``None`` — record nothing;
- a :class:`RuntimeMetrics` instance — record into that instance (for
  scoped measurement, e.g. per-request accounting under
  ``evaluation_config(metrics=RuntimeMetrics())``).

This module must stay import-light (stdlib only): every ``repro.core``
module imports it, so it can depend on none of them.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable

#: Default latency bucket upper bounds in seconds: log-spaced 1-2.5-5 decades
#: from 100 µs to 10 s.  Bounded (17 buckets + overflow), so a histogram is a
#: fixed-size integer array no matter how many observations it absorbs —
#: p50/p99 stay derivable without storing or tracing individual latencies.
DEFAULT_LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005,
    0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0,
    10.0, 30.0,
)


class LatencyHistogram:
    """Bounded-bucket latency histogram (Prometheus ``histogram`` semantics).

    ``bounds[i]`` is the *inclusive* upper edge of bucket ``i``
    (Prometheus ``le``); one overflow bucket catches everything above the
    last bound.  :meth:`quantile` reconstructs percentiles by linear
    interpolation inside the target bucket — the same estimator as
    PromQL's ``histogram_quantile`` — so p50/p99 are derivable from the
    counters alone, with error bounded by bucket width.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: tuple = DEFAULT_LATENCY_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # [..buckets.., overflow]
        self.count = 0
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.sum += seconds

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile in seconds (``nan`` when empty).

        The target bucket is the first whose cumulative count reaches
        ``q * count``; the estimate interpolates linearly between its
        edges.  Observations in the overflow bucket clamp to the last
        finite bound (a deliberate *under*-estimate, as in Prometheus).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            previous = cumulative
            cumulative += n
            if cumulative >= rank:
                if i >= len(self.bounds):  # overflow bucket
                    return self.bounds[-1]
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i]
                fraction = (rank - previous) / n
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.bounds[-1]  # pragma: no cover - rank <= count always hits

    def as_dict(self) -> dict:
        cumulative, running = [], 0
        for n in self.counts[:-1]:
            running += n
            cumulative.append(running)
        return {
            "count": self.count,
            "sum": self.sum,
            "bounds": list(self.bounds),
            "cumulative": cumulative,  # per-bound cumulative counts (le=)
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
        }


class EngineStats:
    """Per-engine sampling counters (samples drawn, batches, wall time).

    ``latency`` is a bounded :class:`LatencyHistogram` of per-batch wall
    times, so p50/p99 engine latency is derivable from the counters
    without tracing (the seconds total alone only supports means).
    """

    __slots__ = ("batches", "samples", "seconds", "latency")

    def __init__(self) -> None:
        self.batches = 0
        self.samples = 0
        self.seconds = 0.0
        self.latency = LatencyHistogram()

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "samples": self.samples,
            "seconds": self.seconds,
            "latency": self.latency.as_dict(),
        }


class RuntimeMetrics:
    """Counter registry for the sampling runtime.

    One instance is process-global (:data:`METRICS`); independent
    instances can be installed per evaluation scope via
    ``evaluation_config(metrics=RuntimeMetrics())``.  Counters are plain
    attributes updated without a lock (the runtime records from the
    coordinating process only); :meth:`snapshot` and :meth:`reset` take a
    lock so concurrent readers see a consistent copy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    # -- recording (hot path: no locks, plain arithmetic) -------------------

    def record_compile(self) -> None:
        self.plans_compiled += 1

    def record_cache_hit(self) -> None:
        self.plan_cache_hits += 1

    def record_structural(self, hit: bool) -> None:
        """One fresh compile checked against the structural plan cache."""
        if hit:
            self.structural_hits += 1
        else:
            self.structural_misses += 1

    def record_fused(
        self, built: int = 0, rejected: int = 0, kernel_hits: int = 0,
        certified: int = 0, probed: int = 0,
    ) -> None:
        """Fused-backend events: kernels generated, verification rejections,
        plans served by an already-generated kernel (same shape), and how
        fresh kernels were admitted — statically certified stream-safe
        (probe run skipped) vs dynamically probe-verified."""
        self.fused_kernels_built += built
        self.fused_kernels_rejected += rejected
        self.fused_kernel_hits += kernel_hits
        self.fused_kernels_certified += certified
        self.fused_kernels_probed += probed

    def record_engine(self, engine: str, n: int, seconds: float) -> None:
        stats = self.engines.get(engine)
        if stats is None:
            stats = self.engines.setdefault(engine, EngineStats())
        stats.batches += 1
        stats.samples += int(n)
        stats.seconds += seconds
        stats.latency.observe(seconds)

    def record_test(self, kind: str, steps: int, samples: int) -> None:
        """One hypothesis-test run: ``steps`` batch draws, ``samples`` total."""
        self.sprt_tests += 1
        self.sprt_steps += int(steps)
        self.sprt_samples += int(samples)
        self.tests_by_kind[kind] = self.tests_by_kind.get(kind, 0) + 1

    def record_expectation(self, kind: str, samples: int) -> None:
        self.expectations += 1
        self.expectation_samples += int(samples)
        if kind == "adaptive":
            self.adaptive_expectations += 1

    def record_conditional(self, samples_used: int) -> None:
        self.conditionals += 1
        self.conditional_samples += int(samples_used)

    def record_parallel(
        self, chunks: int = 0, retries: int = 0, crashes: int = 0,
        fallbacks: int = 0, serial_rescues: int = 0,
        payload_skips: int = 0, payload_misses: int = 0,
        auto_serial: int = 0,
    ) -> None:
        self.parallel_chunks += chunks
        self.parallel_retries += retries
        self.worker_crashes += crashes
        self.parallel_fallbacks += fallbacks
        self.parallel_serial_rescues += serial_rescues
        self.parallel_payload_skips += payload_skips
        self.parallel_payload_misses += payload_misses
        self.parallel_auto_serial += auto_serial

    def record_ledger(
        self, hits: int = 0, misses: int = 0, suffix_extensions: int = 0,
        rows_reused: int = 0, rows_drawn: int = 0, evictions: int = 0,
        probes: int = 0, certified: int = 0, rejections: int = 0,
        bypasses: int = 0, invalidations: int = 0,
        bytes_now: int | None = None, entries_now: int | None = None,
    ) -> None:
        """Sample-ledger events (``repro.core.ledger``).

        Counters accumulate (cache hits, suffix extensions, reused vs
        freshly drawn rows, evictions, certify-or-probe outcomes);
        ``bytes_now``/``entries_now`` are gauges overwritten with the
        ledger's current footprint after each mutation.
        """
        self.ledger_hits += hits
        self.ledger_misses += misses
        self.ledger_suffix_extensions += suffix_extensions
        self.ledger_rows_reused += rows_reused
        self.ledger_rows_drawn += rows_drawn
        self.ledger_evictions += evictions
        self.ledger_probes += probes
        self.ledger_certified += certified
        self.ledger_rejections += rejections
        self.ledger_bypasses += bypasses
        self.ledger_invalidations += invalidations
        if bytes_now is not None:
            self.ledger_bytes = int(bytes_now)
        if entries_now is not None:
            self.ledger_entries = int(entries_now)

    # -- resilience layer ---------------------------------------------------

    def record_nonfinite(
        self, policy: str, rows: int = 0, resamples: int = 0
    ) -> None:
        """One batch containing non-finite samples, handled under ``policy``."""
        self.nonfinite_batches += 1
        self.nonfinite_rows += int(rows)
        self.nonfinite_resamples += int(resamples)
        self.nonfinite_by_policy[policy] = (
            self.nonfinite_by_policy.get(policy, 0) + 1
        )

    def record_source(
        self, retries: int = 0, failures: int = 0, fallbacks: int = 0,
        trips: int = 0, recoveries: int = 0,
    ) -> None:
        """ResilientSource events: retries, breaker trips, fallback draws."""
        self.source_retries += retries
        self.source_failures += failures
        self.source_fallbacks += fallbacks
        self.breaker_trips += trips
        self.breaker_recoveries += recoveries

    def record_degradation(
        self, transitions: int = 0, degraded: int = 0, shed: int = 0,
        cancelled: int = 0, bulkhead_rejections: int = 0,
        level_now: int | None = None, breakers_open_now: int | None = None,
    ) -> None:
        """Overload-control events from the service tier.

        Counters accumulate (brownout level transitions, requests
        answered degraded, shed at the queue bound, cancelled mid-flight,
        refused by a group bulkhead); ``level_now`` and
        ``breakers_open_now`` are gauges overwritten with the current
        brownout level / count of non-closed group breakers.
        """
        self.degradation_transitions += transitions
        self.degraded_requests += degraded
        self.shed_requests += shed
        self.cancelled_evaluations += cancelled
        self.bulkhead_rejections += bulkhead_rejections
        if level_now is not None:
            self.degradation_level = int(level_now)
        if breakers_open_now is not None:
            self.group_breakers_open = int(breakers_open_now)

    def record_inconclusive(self, policy: str) -> None:
        """One truncated hypothesis test, handled under ``policy``."""
        self.inconclusive_tests += 1
        self.inconclusive_by_policy[policy] = (
            self.inconclusive_by_policy.get(policy, 0) + 1
        )

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.plans_compiled = 0
            self.plan_cache_hits = 0
            self.structural_hits = 0
            self.structural_misses = 0
            self.fused_kernels_built = 0
            self.fused_kernels_rejected = 0
            self.fused_kernel_hits = 0
            self.fused_kernels_certified = 0
            self.fused_kernels_probed = 0
            self.engines: dict[str, EngineStats] = {}
            self.sprt_tests = 0
            self.sprt_steps = 0
            self.sprt_samples = 0
            self.tests_by_kind: dict[str, int] = {}
            self.expectations = 0
            self.expectation_samples = 0
            self.adaptive_expectations = 0
            self.conditionals = 0
            self.conditional_samples = 0
            self.parallel_chunks = 0
            self.parallel_retries = 0
            self.worker_crashes = 0
            self.parallel_fallbacks = 0
            self.parallel_serial_rescues = 0
            self.parallel_payload_skips = 0
            self.parallel_payload_misses = 0
            self.parallel_auto_serial = 0
            self.ledger_hits = 0
            self.ledger_misses = 0
            self.ledger_suffix_extensions = 0
            self.ledger_rows_reused = 0
            self.ledger_rows_drawn = 0
            self.ledger_evictions = 0
            self.ledger_probes = 0
            self.ledger_certified = 0
            self.ledger_rejections = 0
            self.ledger_bypasses = 0
            self.ledger_invalidations = 0
            self.ledger_bytes = 0
            self.ledger_entries = 0
            self.nonfinite_batches = 0
            self.nonfinite_rows = 0
            self.nonfinite_resamples = 0
            self.nonfinite_by_policy: dict[str, int] = {}
            self.source_retries = 0
            self.source_failures = 0
            self.source_fallbacks = 0
            self.breaker_trips = 0
            self.breaker_recoveries = 0
            self.inconclusive_tests = 0
            self.inconclusive_by_policy: dict[str, int] = {}
            self.degradation_transitions = 0
            self.degraded_requests = 0
            self.shed_requests = 0
            self.cancelled_evaluations = 0
            self.bulkhead_rejections = 0
            self.degradation_level = 0
            self.group_breakers_open = 0

    def snapshot(self) -> dict:
        """A consistent, JSON-serialisable copy of every counter.

        Schema (see ``docs/runtime.md``): top-level keys ``plans``,
        ``engines``, ``tests``, ``expectations``, ``conditionals``,
        ``parallel``, ``ledger``, ``health``, ``sources``, and
        ``degradation``.
        """
        with self._lock:
            return {
                "plans": {
                    "compiled": self.plans_compiled,
                    "cache_hits": self.plan_cache_hits,
                    "structural_hits": self.structural_hits,
                    "structural_misses": self.structural_misses,
                },
                "fused": {
                    "kernels_built": self.fused_kernels_built,
                    "kernels_rejected": self.fused_kernels_rejected,
                    "kernel_hits": self.fused_kernel_hits,
                    "kernels_certified": self.fused_kernels_certified,
                    "kernels_probed": self.fused_kernels_probed,
                },
                "engines": {
                    name: stats.as_dict() for name, stats in self.engines.items()
                },
                "tests": {
                    "runs": self.sprt_tests,
                    "sprt_steps": self.sprt_steps,
                    "samples": self.sprt_samples,
                    "by_kind": dict(self.tests_by_kind),
                    "inconclusive": self.inconclusive_tests,
                    "inconclusive_by_policy": dict(self.inconclusive_by_policy),
                },
                "expectations": {
                    "runs": self.expectations,
                    "samples": self.expectation_samples,
                    "adaptive_runs": self.adaptive_expectations,
                },
                "conditionals": {
                    "runs": self.conditionals,
                    "samples": self.conditional_samples,
                },
                "parallel": {
                    "chunks": self.parallel_chunks,
                    "retries": self.parallel_retries,
                    "worker_crashes": self.worker_crashes,
                    "serial_fallbacks": self.parallel_fallbacks,
                    "serial_rescues": self.parallel_serial_rescues,
                    "payload_skips": self.parallel_payload_skips,
                    "payload_misses": self.parallel_payload_misses,
                    "auto_serial": self.parallel_auto_serial,
                },
                "ledger": {
                    "hits": self.ledger_hits,
                    "misses": self.ledger_misses,
                    "suffix_extensions": self.ledger_suffix_extensions,
                    "rows_reused": self.ledger_rows_reused,
                    "rows_drawn": self.ledger_rows_drawn,
                    "evictions": self.ledger_evictions,
                    "probes": self.ledger_probes,
                    "certified": self.ledger_certified,
                    "rejections": self.ledger_rejections,
                    "bypasses": self.ledger_bypasses,
                    "invalidations": self.ledger_invalidations,
                    "bytes": self.ledger_bytes,
                    "entries": self.ledger_entries,
                },
                "health": {
                    "nonfinite_batches": self.nonfinite_batches,
                    "nonfinite_rows": self.nonfinite_rows,
                    "resamples": self.nonfinite_resamples,
                    "by_policy": dict(self.nonfinite_by_policy),
                },
                "sources": {
                    "retries": self.source_retries,
                    "failures": self.source_failures,
                    "fallbacks": self.source_fallbacks,
                    "breaker_trips": self.breaker_trips,
                    "breaker_recoveries": self.breaker_recoveries,
                },
                "degradation": {
                    "transitions": self.degradation_transitions,
                    "degraded_requests": self.degraded_requests,
                    "shed_requests": self.shed_requests,
                    "cancelled_evaluations": self.cancelled_evaluations,
                    "bulkhead_rejections": self.bulkhead_rejections,
                    "level": self.degradation_level,
                    "group_breakers_open": self.group_breakers_open,
                },
            }

    def total_samples(self) -> int:
        """Samples drawn across every engine (convenience for budgets)."""
        return sum(stats.samples for stats in self.engines.values())

    def render_prometheus(self, prefix: str = "repro") -> str:
        """This registry's counters in Prometheus text exposition format."""
        return render_prometheus(self.snapshot(), prefix=prefix)


# ---------------------------------------------------------------------------
# Prometheus text exposition (format version 0.0.4).  Stdlib-only by design:
# the service tier serves this from a plain http.server handler.
# ---------------------------------------------------------------------------


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: dict | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_histogram(
    name: str, hist_dict: dict, labels: dict | None = None
) -> list[str]:
    """Prometheus ``histogram`` series for a :class:`LatencyHistogram` dict.

    Emits cumulative ``<name>_bucket{le="..."}`` samples (including the
    mandatory ``le="+Inf"``), plus ``<name>_sum`` and ``<name>_count``.
    """
    labels = dict(labels or {})
    lines = []
    for bound, cumulative in zip(hist_dict["bounds"], hist_dict["cumulative"]):
        bucket_labels = dict(labels)
        bucket_labels["le"] = format(bound, "g")
        lines.append(
            f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
        )
    inf_labels = dict(labels)
    inf_labels["le"] = "+Inf"
    lines.append(f"{name}_bucket{_format_labels(inf_labels)} {hist_dict['count']}")
    lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(hist_dict['sum'])}")
    lines.append(f"{name}_count{_format_labels(labels)} {hist_dict['count']}")
    return lines


#: ``by_*`` snapshot keys rendered as labelled series: key -> label name.
_LABELLED_KEYS = {
    "by_kind": "kind",
    "by_policy": "policy",
    "inconclusive_by_policy": "policy",
}


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Flatten a :meth:`RuntimeMetrics.snapshot` into Prometheus text.

    Naming scheme: section and counter join with underscores
    (``repro_plans_compiled``), per-engine counters carry an
    ``engine=`` label (``repro_engine_samples{engine="fused"}``), and
    the per-engine latency histograms render as native Prometheus
    histograms (``repro_engine_latency_seconds_bucket{engine=...,le=...}``)
    so p50/p99 come out of ``histogram_quantile()`` — or out of
    :meth:`LatencyHistogram.quantile` offline.
    """
    lines: list[str] = []
    for section, payload in snapshot.items():
        if section == "engines":
            base = f"{prefix}_engine"
            lines.append(f"# TYPE {base}_latency_seconds histogram")
            for engine, stats in sorted(payload.items()):
                labels = {"engine": engine}
                for key in ("batches", "samples", "seconds"):
                    lines.append(
                        f"{base}_{key}{_format_labels(labels)} "
                        f"{_format_value(stats[key])}"
                    )
                lines.extend(
                    render_histogram(
                        f"{base}_latency_seconds", stats["latency"], labels
                    )
                )
            continue
        for key, value in payload.items():
            name = f"{prefix}_{section}_{key}"
            if isinstance(value, dict):
                label = _LABELLED_KEYS.get(key, "key")
                base = f"{prefix}_{section}_{key.replace('by_', '')}"
                for k, v in sorted(value.items()):
                    lines.append(
                        f"{base}{_format_labels({label: k})} {_format_value(v)}"
                    )
            else:
                lines.append(f"{name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


#: The process-global registry that ``repro.runtime.stats()`` reads.
METRICS = RuntimeMetrics()


# ---------------------------------------------------------------------------
# Sink resolution.  ``repro.core.conditionals`` binds a resolver returning
# the active config's ``metrics`` selection; until it does (or when running
# without a config), the global registry is used.
# ---------------------------------------------------------------------------

_resolver: Callable[[], object] | None = None


def bind_resolver(resolver: Callable[[], object]) -> None:
    """Install the callable that yields the active ``metrics`` selection."""
    global _resolver
    _resolver = resolver


def active() -> RuntimeMetrics | None:
    """The metrics sink the runtime should record into right now.

    ``None`` means recording is disabled for the active evaluation scope.
    """
    if _resolver is None:
        return METRICS
    selection = _resolver()
    if selection is True:
        return METRICS
    if not selection:
        return None
    return selection  # a RuntimeMetrics instance
