"""Parrot and Parakeet predictors (Section 5.3).

Parrot (Esmaeilzadeh et al.) trains one network and returns a point
estimate — a ``float``.  Parakeet trains a Bayesian neural network and
returns the posterior predictive distribution (PPD) as an
``Uncertain[float]``, so the developer can ask evidence questions like
``(s > 0.1).pr(0.8)``.

As in the paper, hybrid Monte Carlo runs *offline*: a fixed pool of weight
samples is captured in a training phase, and at runtime the PPD's sampling
function resamples precomputed network outputs.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.uncertain import Uncertain
from repro.dists.sampling_function import FunctionDistribution
from repro.ml.hmc import HMCConfig, HMCResult, hmc_sample
from repro.ml.mlp import MLP
from repro.rng import ensure_rng

#: Parrot's Sobel network topology: a 3x3 window in, one gradient out.
SOBEL_TOPOLOGY = (9, 8, 1)


@dataclasses.dataclass
class Parrot:
    """A single trained network: predictions are facts (floats)."""

    mlp: MLP

    def predict(self, window: np.ndarray) -> float:
        return float(self.mlp.forward(np.atleast_2d(window))[0])

    def predict_batch(self, windows: np.ndarray) -> np.ndarray:
        return self.mlp.forward(windows)


@dataclasses.dataclass
class Parakeet:
    """A Bayesian network ensemble: predictions are distributions.

    ``weight_pool`` holds the HMC posterior samples.  The posterior
    predictive distribution is ``p(t|x, D) = \\int p(t|x, w) p(w|D) dw``
    with ``p(t|x, w) = N(y(x; w), noise_sigma)``: a runtime PPD sample
    picks one posterior network from the pool and adds a fresh draw of the
    modelled observation noise.
    """

    mlp: MLP
    weight_pool: np.ndarray  # (n_networks, n_params)
    noise_sigma: float = 0.05
    diagnostics: HMCResult | None = None

    def __post_init__(self) -> None:
        if len(self.weight_pool) == 0:
            raise ValueError("Parakeet needs a non-empty posterior weight pool")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {self.noise_sigma}")

    def ppd_values(self, window: np.ndarray) -> np.ndarray:
        """Every posterior network's (noiseless) prediction for one input."""
        window = np.atleast_2d(np.asarray(window, dtype=float))
        return np.asarray(
            [float(self.mlp.forward(window, w)[0]) for w in self.weight_pool]
        )

    def predict(self, window: np.ndarray) -> Uncertain:
        """The posterior predictive distribution as an Uncertain value.

        The network outputs are precomputed into a fixed pool (the paper's
        offline-HMC strategy); the sampling function resamples the pool and
        adds the likelihood noise.
        """
        pool = self.ppd_values(window)
        sigma = self.noise_sigma

        def sample_many(n: int, rng: np.random.Generator) -> np.ndarray:
            picks = pool[rng.integers(0, len(pool), size=n)]
            return picks + rng.normal(0.0, sigma, size=n) if sigma else picks

        dist = FunctionDistribution(
            lambda rng: sample_many(1, rng)[0], fn_n=sample_many
        )
        return Uncertain(dist, label="parakeet_ppd")

    def ppd_matrix(self, windows: np.ndarray) -> np.ndarray:
        """PPD pools for a batch: shape (n_windows, n_networks).

        Used by the evaluation sweep, which needs every example's pool.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=float))
        return np.stack(
            [self.mlp.forward(windows, w) for w in self.weight_pool], axis=1
        )


def train_parrot(
    x: np.ndarray,
    t: np.ndarray,
    topology=SOBEL_TOPOLOGY,
    epochs: int = 300,
    rng=None,
) -> Parrot:
    """Train the single-network baseline with SGD."""
    rng = ensure_rng(rng)
    mlp = MLP(topology, rng=rng)
    mlp.train_sgd(x, t, epochs=epochs, rng=rng)
    return Parrot(mlp)


def train_parakeet(
    x: np.ndarray,
    t: np.ndarray,
    topology=SOBEL_TOPOLOGY,
    pretrain_epochs: int = 300,
    hmc_config: HMCConfig | None = None,
    rng=None,
) -> Parakeet:
    """Train the Bayesian ensemble: SGD pre-training, then HMC sampling."""
    rng = ensure_rng(rng)
    mlp = MLP(topology, rng=rng)
    mlp.train_sgd(x, t, epochs=pretrain_epochs, rng=rng)
    config = hmc_config or HMCConfig()
    result = hmc_sample(mlp, x, t, config=config, rng=rng)
    return Parakeet(mlp, result.samples, noise_sigma=config.noise_sigma, diagnostics=result)
