"""Synthetic walking traces with known ground truth.

Stand-in for the paper's 15-minute outdoor walk (DESIGN.md substitution #1).
The walker follows a smoothly varying heading at a speed that wanders around
a configurable mean with occasional pauses — enough texture that the speed
signal is non-trivial, while ground truth stays exactly known so accuracy
claims are checkable.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.gps.geo import GeoCoordinate
from repro.gps.units import mph_to_mps
from repro.rng import ensure_rng


@dataclasses.dataclass(frozen=True)
class WalkConfig:
    """Parameters of the synthetic walk."""

    duration_s: float = 900.0  # the paper walked for 15 minutes
    dt_s: float = 1.0  # GPS-Walking computes speed each second
    mean_speed_mph: float = 3.0  # average human walking speed (Section 2)
    speed_jitter_mph: float = 0.4  # slow wander of true speed
    pause_probability: float = 0.01  # chance per step of starting a pause
    pause_duration_s: float = 5.0
    heading_drift_rad: float = 0.05  # per-step heading random walk
    origin: GeoCoordinate = GeoCoordinate(47.6404, -122.1298)  # Redmond, WA


@dataclasses.dataclass(frozen=True)
class WalkTrace:
    """Ground-truth walk: positions, timestamps and true speeds."""

    config: WalkConfig
    timestamps: np.ndarray  # (n,) seconds
    positions: tuple[GeoCoordinate, ...]  # (n,)
    true_speeds_mph: np.ndarray  # (n-1,) speed over each interval

    def __len__(self) -> int:
        return len(self.positions)


def generate_walk(
    config: WalkConfig | None = None, rng: np.random.Generator | int | None = None
) -> WalkTrace:
    """Generate a seeded ground-truth walking trace."""
    config = config or WalkConfig()
    if config.dt_s <= 0 or config.duration_s < config.dt_s:
        raise ValueError("need dt_s > 0 and duration_s >= dt_s")
    rng = ensure_rng(rng)

    steps = int(round(config.duration_s / config.dt_s))
    mean_mps = mph_to_mps(config.mean_speed_mph)
    jitter_mps = mph_to_mps(config.speed_jitter_mph)

    positions = [config.origin]
    timestamps = [0.0]
    speeds_mph = []
    heading = rng.uniform(0.0, 2.0 * math.pi)
    speed_mps = mean_mps
    pause_left = 0.0

    for step in range(steps):
        t = (step + 1) * config.dt_s
        if pause_left > 0:
            pause_left -= config.dt_s
            step_speed = 0.0
        else:
            if rng.random() < config.pause_probability:
                pause_left = config.pause_duration_s
            # Mean-reverting speed wander keeps the walker near mean speed.
            speed_mps += 0.2 * (mean_mps - speed_mps) + jitter_mps * rng.normal() * 0.3
            speed_mps = max(0.0, speed_mps)
            step_speed = speed_mps
        heading += config.heading_drift_rad * rng.normal()
        d = step_speed * config.dt_s
        positions.append(
            positions[-1].offset_m(d * math.cos(heading), d * math.sin(heading))
        )
        timestamps.append(t)
        speeds_mph.append(step_speed / mph_to_mps(1.0))

    return WalkTrace(
        config=config,
        timestamps=np.asarray(timestamps),
        positions=tuple(positions),
        true_speeds_mph=np.asarray(speeds_mph),
    )
