"""The speeding-ticket uncertainty bug (Section 2, Figure 4).

A naive conditional ``Speed > 60`` on GPS-derived speed issues tickets from
random noise.  This example regenerates Figure 4's sweep and shows how the
explicit evidence operator fixes the bug.

Run with::

    python examples/speeding_ticket.py
"""

from repro.core.conditionals import evaluation_config
from repro.gps.ticket import speed_ci_95_mph, ticket_condition, ticket_probability
from repro.rng import default_rng


def main() -> None:
    print(f"95% speed CI at 4 m GPS accuracy: {speed_ci_95_mph(4.0):.1f} mph "
          "(paper: 12.7 mph)")
    p = ticket_probability(57.0, 4.0, n=100_000, rng=default_rng(0))
    print(f"Pr[ticket] at a true 57 mph with 4 m accuracy: {p:.0%} (paper: 32%)\n")

    # Figure 4's sweep.
    epsilons = (2.0, 4.0, 8.0, 16.0)
    speeds = range(50, 71, 2)
    header = "true speed  " + "  ".join(f"eps={e:>4.0f}m" for e in epsilons)
    print(header)
    rng = default_rng(1)
    for s in speeds:
        cells = "   ".join(
            f"{ticket_probability(s, e, n=20_000, rng=rng):7.2f}" for e in epsilons
        )
        print(f"{s:>7} mph  {cells}")

    # The fix: demand strong evidence before a consequential action.
    print("\nwith the explicit conditional (ticket only at 95% evidence):")
    with evaluation_config(rng=default_rng(2)):
        for true_speed in (57.0, 60.0, 63.0, 70.0):
            decision = ticket_condition(true_speed, 4.0).pr(0.95)
            print(f"  true {true_speed:4.0f} mph -> ticket: {decision}")


if __name__ == "__main__":
    main()
