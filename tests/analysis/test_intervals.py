"""Interval domain unit tests + the sampled-envelope soundness property.

The soundness property is the acceptance criterion for the abstract
interpreter: for *every* binary/unary operator transfer function, the
min/max of a large batch of joint samples must lie inside the inferred
interval.  We drive it over a grid of distributions (bounded, half-
bounded, unbounded, discrete, point masses) crossed with every operator
symbol the library's dunders can produce.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.intervals import (
    BINARY_TRANSFER,
    BOOL,
    FALSE,
    TOP,
    TRUE,
    UNARY_TRANSFER,
    Interval,
    infer_intervals,
)
from repro.core.lifting import lift
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Bernoulli, Beta, Exponential, Gaussian, Poisson, Uniform
from repro.rng import default_rng


def _root_interval(value: Uncertain) -> Interval:
    plan = compile_plan(value.node)
    return infer_intervals(plan)[plan.root_slot]


def _assert_envelope(value: Uncertain, n: int = 4_000, seed: int = 0) -> None:
    interval = _root_interval(value)
    samples = np.asarray(value.samples(n, default_rng(seed)), dtype=float)
    finite = samples[np.isfinite(samples)]
    if finite.size == 0:
        return  # all-NaN/inf batches (e.g. log of negatives) have no envelope
    assert finite.min() >= interval.lower - 1e-9, (
        f"sampled min {finite.min()} below inferred lower {interval.lower}"
    )
    assert finite.max() <= interval.upper + 1e-9, (
        f"sampled max {finite.max()} above inferred upper {interval.upper}"
    )


# A representative spread of supports: bounded, unit, half-line, real
# line, discrete, and point.
OPERANDS = {
    "uniform": lambda: Uncertain(Uniform(-2.0, 3.0)),
    "unit": lambda: Uncertain(Beta(2.0, 3.0)),
    "positive": lambda: Uncertain(Exponential(1.0)),
    "real": lambda: Uncertain(Gaussian(0.0, 1.0)),
    "counts": lambda: Uncertain(Poisson(3.0)),
    "point": lambda: Uncertain.pointmass(2.5),
    "negative_point": lambda: Uncertain.pointmass(-1.5),
}

ARITHMETIC = ["+", "-", "*", "/", "//", "%", "**"]
COMPARISONS = ["<", "<=", ">", ">=", "==", "!="]


def _combine(left: Uncertain, right: Uncertain, symbol: str) -> Uncertain:
    ops = {
        "+": lambda a, b: a + b,
        "-": lambda a, b: a - b,
        "*": lambda a, b: a * b,
        "/": lambda a, b: a / b,
        "//": lambda a, b: a // b,
        "%": lambda a, b: a % b,
        "**": lambda a, b: a ** b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
    }
    return ops[symbol](left, right)


class TestBinaryEnvelopes:
    @pytest.mark.parametrize("symbol", ARITHMETIC + COMPARISONS)
    @pytest.mark.parametrize("left_name", sorted(OPERANDS))
    @pytest.mark.parametrize("right_name", ["uniform", "positive", "point"])
    def test_sampled_envelope_within_interval(self, symbol, left_name, right_name):
        left = OPERANDS[left_name]()
        right = OPERANDS[right_name]()
        if symbol == "**":
            # Restrict to cases numpy can evaluate without complex results;
            # the analysis of NaN-producing pow is covered by UNC102 tests.
            if left_name in ("uniform", "real", "negative_point"):
                right = Uncertain.pointmass(2.0)
        value = _combine(left, right, symbol)
        _assert_envelope(value)

    @pytest.mark.parametrize("symbol", ["and", "or", "xor"])
    def test_logical_envelope(self, symbol):
        a = Uncertain(Gaussian(0, 1)) > 0.0
        b = Uncertain(Uniform(0, 1)) > 0.5
        value = {"and": a & b, "or": a | b, "xor": a ^ b}[symbol]
        _assert_envelope(value)

    def test_shared_subexpression_is_sound_but_imprecise(self):
        # x - x is exactly 0 concretely; the non-relational domain infers a
        # wider interval.  Soundness (0 inside) is required, precision not.
        x = Uncertain(Uniform(0.0, 1.0))
        interval = _root_interval(x - x)
        assert interval.contains(0.0)


class TestUnaryEnvelopes:
    @pytest.mark.parametrize("make", [
        lambda x: -x,
        lambda x: abs(x),
        lambda x: lift(math.sqrt)(abs(x) + 0.1),
        lambda x: lift(math.log)(abs(x) + 0.1),
        lambda x: lift(math.exp)(x),
        lambda x: lift(math.sin)(x),
        lambda x: lift(math.cos)(x),
        lambda x: lift(math.floor)(x),
        lambda x: lift(math.ceil)(x),
        lambda x: lift(math.log10)(abs(x) + 0.1),
        lambda x: lift(math.log2)(abs(x) + 0.1),
        lambda x: lift(math.log1p)(abs(x)),
    ])
    @pytest.mark.parametrize("operand", ["uniform", "positive", "real", "unit"])
    def test_sampled_envelope_within_interval(self, make, operand):
        value = make(OPERANDS[operand]())
        _assert_envelope(value)

    def test_not_envelope(self):
        cond = ~(Uncertain(Gaussian(0, 1)) > 0.0)
        _assert_envelope(cond)


class TestIntervalAlgebra:
    def test_point_and_top(self):
        assert Interval.point(3.0).is_point
        assert TOP.is_top and not TOP.is_bounded
        assert Interval(0.0, 1.0).is_bounded

    def test_empty_interval_rejected(self):
        with pytest.raises(ValueError):
            Interval(2.0, 1.0)

    def test_hull(self):
        assert Interval(0, 1).hull(Interval(5, 6)) == Interval(0, 6)

    def test_contains_zero(self):
        assert Interval(-1, 1).contains_zero
        assert not Interval(0.5, 2).contains_zero
        assert Interval(0.0, 2).contains_zero  # boundary counts

    def test_support_round_trip(self):
        from repro.dists.base import Support

        s = Support(0.0, 5.0)
        assert Interval.from_support(s).to_support() == s

    def test_division_by_zero_crossing_is_top(self):
        result = BINARY_TRANSFER["/"](Interval(1, 2), Interval(-1, 1))
        assert result.is_top

    def test_division_by_positive(self):
        result = BINARY_TRANSFER["/"](Interval(2, 4), Interval(1, 2))
        assert result == Interval(1.0, 4.0)

    def test_mod_sign_follows_divisor(self):
        assert BINARY_TRANSFER["%"](TOP, Interval(1, 5)) == Interval(0.0, 5.0)
        assert BINARY_TRANSFER["%"](TOP, Interval(-5, -1)) == Interval(-5.0, 0.0)

    def test_pow_even_exponent_includes_zero(self):
        result = BINARY_TRANSFER["**"](Interval(-2, 3), Interval.point(2.0))
        assert result == Interval(0.0, 9.0)

    def test_pow_negative_base_fractional_exponent_is_top(self):
        result = BINARY_TRANSFER["**"](Interval(-2, 3), Interval.point(0.5))
        assert result.is_top

    def test_comparison_decided(self):
        assert BINARY_TRANSFER["<"](Interval(0, 1), Interval(2, 3)) is TRUE
        assert BINARY_TRANSFER[">"](Interval(0, 1), Interval(2, 3)) is FALSE
        assert BINARY_TRANSFER["<"](Interval(0, 1), Interval(0.5, 3)) is BOOL

    def test_equality_of_identical_points(self):
        assert BINARY_TRANSFER["=="](Interval.point(2), Interval.point(2)) is TRUE
        assert BINARY_TRANSFER["!="](Interval.point(2), Interval.point(2)) is FALSE
        assert BINARY_TRANSFER["=="](Interval(0, 1), Interval(2, 3)) is FALSE

    def test_inf_minus_inf_resolves_conservatively(self):
        result = BINARY_TRANSFER["-"](TOP, TOP)
        assert result.is_top

    def test_unary_abs(self):
        assert UNARY_TRANSFER["abs"](Interval(-3, 2)) == Interval(0.0, 3.0)
        assert UNARY_TRANSFER["abs"](Interval(1, 2)) == Interval(1, 2)
        assert UNARY_TRANSFER["abs"](Interval(-4, -2)) == Interval(2, 4)

    def test_unary_log_of_nonpositive_lower(self):
        result = UNARY_TRANSFER["log"](Interval(-1.0, math.e))
        assert result.lower == -math.inf
        assert result.upper == pytest.approx(1.0)

    def test_unary_sqrt_unbounded_upper_stays_unbounded(self):
        result = UNARY_TRANSFER["sqrt"](Interval(0.0, math.inf))
        assert result == Interval(0.0, math.inf)

    def test_unary_exp_overflow_widens_to_inf(self):
        result = UNARY_TRANSFER["exp"](Interval(0.0, 1e6))
        assert result.upper == math.inf and result.lower == 1.0


class TestTransferAudit:
    """Direct audit of the tricky transfer functions at zero crossings.

    The envelope tests above exercise transfers through whole plans; this
    class hits ``**``, ``//``, ``%``, and ``abs`` head-on with randomized
    operand intervals (biased toward sign changes and zero endpoints) and
    checks every point of a dense concrete grid lands inside the inferred
    interval.
    """

    @staticmethod
    def _random_interval(rng: np.random.Generator) -> Interval:
        kind = rng.integers(0, 5)
        if kind == 0:  # zero-crossing
            return Interval(float(-rng.uniform(0.1, 4)), float(rng.uniform(0.1, 4)))
        if kind == 1:  # touches zero from above
            return Interval(0.0, float(rng.uniform(0.1, 4)))
        if kind == 2:  # touches zero from below
            return Interval(float(-rng.uniform(0.1, 4)), 0.0)
        if kind == 3:  # strictly positive
            lo = float(rng.uniform(0.1, 3))
            return Interval(lo, lo + float(rng.uniform(0.1, 3)))
        hi = float(-rng.uniform(0.05, 3))  # strictly negative
        return Interval(hi - float(rng.uniform(0.1, 3)), hi)

    @staticmethod
    def _grid(interval: Interval, n: int = 41) -> np.ndarray:
        pts = np.linspace(interval.lower, interval.upper, n)
        return np.append(pts, [interval.lower, interval.upper, 0.0]) if (
            interval.contains_zero) else pts

    @pytest.mark.parametrize("symbol", ["//", "%", "**"])
    @pytest.mark.parametrize("seed", range(20))
    def test_binary_transfer_contains_concrete_grid(self, symbol, seed):
        rng = np.random.default_rng(seed)
        left = self._random_interval(rng)
        right = self._random_interval(rng)
        if symbol == "**":
            # Match runtime semantics: float pow of a negative base with a
            # non-integer exponent is NaN, which has no envelope; audit
            # the real-valued region (integer exponents or positive base).
            if left.lower < 0:
                right = Interval.point(float(rng.integers(0, 4)))
        result = BINARY_TRANSFER[symbol](left, right)
        with np.errstate(all="ignore"):
            lx, ly = np.meshgrid(self._grid(left), self._grid(right))
            concrete = {
                "//": lambda a, b: a // b,
                "%": lambda a, b: np.mod(a, b),
                "**": lambda a, b: np.power(a, b),
            }[symbol](lx, ly).ravel()
        finite = concrete[np.isfinite(concrete)]
        if finite.size == 0:
            return
        assert finite.min() >= result.lower - 1e-9, (
            f"{left} {symbol} {right}: concrete min {finite.min()} "
            f"escapes inferred {result}"
        )
        assert finite.max() <= result.upper + 1e-9, (
            f"{left} {symbol} {right}: concrete max {finite.max()} "
            f"escapes inferred {result}"
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_abs_transfer_contains_concrete_grid(self, seed):
        rng = np.random.default_rng(seed)
        operand = self._random_interval(rng)
        result = UNARY_TRANSFER["abs"](operand)
        concrete = np.abs(self._grid(operand))
        assert concrete.min() >= result.lower - 1e-12
        assert concrete.max() <= result.upper + 1e-12

    def test_abs_zero_crossing_lower_is_zero(self):
        # The tight answer at a sign change is [0, max(|lo|, hi)], not the
        # naive endpoint image [|hi|, |lo|] hull.
        assert UNARY_TRANSFER["abs"](Interval(-2.0, 5.0)) == Interval(0.0, 5.0)
        assert UNARY_TRANSFER["abs"](Interval(-5.0, 2.0)) == Interval(0.0, 5.0)

    def test_floordiv_zero_crossing_divisor_is_top(self):
        assert BINARY_TRANSFER["//"](Interval(1, 2), Interval(-1, 1)).is_top

    def test_mod_zero_point_divisor(self):
        # x % 0 is NaN at runtime; the transfer must stay sound (any
        # superset of the empty concrete set), not crash.
        result = BINARY_TRANSFER["%"](Interval(1, 2), Interval.point(0.0))
        assert isinstance(result, Interval)

    def test_pow_zero_base_negative_exponent_widens_to_inf(self):
        # 0 ** -1 is inf at runtime: the result must include it.
        result = BINARY_TRANSFER["**"](
            Interval(0.0, 2.0), Interval.point(-1.0))
        assert result.upper == math.inf


class TestSeeding:
    def test_leaf_seeded_from_support(self):
        value = Uncertain(Uniform(2.0, 5.0))
        assert _root_interval(value) == Interval(2.0, 5.0)

    def test_point_mass_seeded_as_point(self):
        assert _root_interval(Uncertain.pointmass(7)) == Interval.point(7.0)

    def test_bool_point_mass(self):
        assert _root_interval(Uncertain.pointmass(True)) is TRUE
        assert _root_interval(Uncertain.pointmass(False)) is FALSE

    def test_non_numeric_point_mass_is_top(self):
        assert _root_interval(Uncertain.pointmass("hello")).is_top

    def test_bernoulli_is_unit_interval(self):
        interval = _root_interval(Uncertain(Bernoulli(0.3)))
        assert interval == Interval(0.0, 1.0)

    def test_opaque_apply_is_top(self):
        value = Uncertain(Uniform(0, 1)).map(lambda v: v * 100, label="mystery")
        assert _root_interval(value).is_top

    def test_recognised_apply_label_uses_transfer(self):
        value = lift(math.sqrt)(Uncertain(Uniform(0.0, 4.0)))
        assert _root_interval(value) == Interval(0.0, 2.0)
