"""Figure 16 bench: precision/recall versus the conditional threshold."""

from benchmarks.conftest import run_and_report


def test_fig16_precision_recall(benchmark):
    run_and_report(benchmark, "fig16", fast=True)
