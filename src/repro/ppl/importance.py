"""Likelihood weighting — a smarter inference baseline than rejection.

Rejection sampling discards whole executions; likelihood weighting
(importance sampling with the prior as proposal) instead *scores* each
execution by the probability of its observations, never wasting a run.
For the alarm model, observing ``alarm`` weights each execution by
Pr[alarm | earthquake, burglary] instead of rejecting 99.9% of them.

This strengthens the Figure 17 comparison: even against a better
generative-inference baseline, Uncertain<T>'s conditional sampling answers
its (narrower) question with far fewer model evaluations.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable

import numpy as np

from repro.rng import ensure_rng


class WeightedTrace:
    """Execution handle for likelihood-weighted models.

    ``flip_observed``/``factor`` accumulate log-weight instead of
    rejecting; unobserved choices sample forward as usual.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self.log_weight = 0.0

    def flip(self, p: float, name: str = "flip") -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        return bool(self._rng.random() < p)

    def flip_observed(self, p: float, observed: bool, name: str = "flip") -> bool:
        """A flip whose outcome is pinned by observation: weight by its
        probability instead of sampling."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        prob = p if observed else 1.0 - p
        self.log_weight += math.log(prob) if prob > 0 else -math.inf
        return observed

    def factor(self, log_prob: float, name: str = "factor") -> None:
        """Multiply the execution's weight by exp(log_prob)."""
        self.log_weight += log_prob


@dataclasses.dataclass
class WeightedResult:
    """Weighted posterior samples plus diagnostics."""

    samples: list[Any]
    log_weights: np.ndarray
    executions: int

    @property
    def weights(self) -> np.ndarray:
        lw = self.log_weights - self.log_weights.max()
        w = np.exp(lw)
        return w / w.sum()

    @property
    def effective_sample_size(self) -> float:
        w = self.weights
        return float(1.0 / np.sum(w**2))

    def estimate(self) -> float:
        """Weighted posterior mean of a numeric/boolean query value."""
        values = np.array([float(s) for s in self.samples])
        return float(np.dot(self.weights, values))


def likelihood_weighting(
    model: Callable[[WeightedTrace], Any],
    n_samples: int,
    rng=None,
) -> WeightedResult:
    """Run ``model`` ``n_samples`` times, collecting weighted samples."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = ensure_rng(rng)
    samples: list[Any] = []
    log_weights: list[float] = []
    for _ in range(n_samples):
        trace = WeightedTrace(rng)
        samples.append(model(trace))
        log_weights.append(trace.log_weight)
    return WeightedResult(samples, np.asarray(log_weights), n_samples)


#: Sensor reliability for the noisy-alarm variant below.
ALARM_SENSOR_TPR = 0.99  # Pr[sensor fires | alarm]
ALARM_SENSOR_FPR = 0.0001  # Pr[sensor fires | no alarm]


def alarm_model_weighted(trace: WeightedTrace) -> bool:
    """A noisy-sensor variant of Figure 17 in likelihood-weighting form.

    With a *deterministic* observation (``observe(alarm)``) likelihood
    weighting degenerates to rejection — executions that cannot produce
    the evidence get zero weight.  Real deployments observe a noisy alarm
    *sensor*; then every execution carries positive weight
    (``flip_observed``) and none is wasted.
    """
    earthquake = trace.flip(0.0001, "earthquake")
    burglary = trace.flip(0.001, "burglary")
    alarm = earthquake or burglary
    fire_prob = ALARM_SENSOR_TPR if alarm else ALARM_SENSOR_FPR
    trace.flip_observed(fire_prob, True, "alarmSensor")
    if earthquake:
        return trace.flip(0.7, "phoneWorking")
    return trace.flip(0.99, "phoneWorking")


def exact_noisy_alarm_posterior() -> float:
    """Enumerated Pr[phoneWorking | alarmSensor] for the noisy variant."""
    p_eq, p_bg = 0.0001, 0.001
    numerator = 0.0
    denominator = 0.0
    for eq in (True, False):
        for bg in (True, False):
            p_world = (p_eq if eq else 1 - p_eq) * (p_bg if bg else 1 - p_bg)
            alarm = eq or bg
            p_sensor = ALARM_SENSOR_TPR if alarm else ALARM_SENSOR_FPR
            p_phone = 0.7 if eq else 0.99
            denominator += p_world * p_sensor
            numerator += p_world * p_sensor * p_phone
    return numerator / denominator
