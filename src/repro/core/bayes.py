"""Improving estimates with priors (Section 3.5).

Bayes' theorem combines an estimation process (the likelihood — the
``Uncertain`` computation itself, available only as a sampling function)
with domain knowledge (the prior).  Because the likelihood has no density,
we compute posteriors by *weighted resampling* (sampling importance
resampling, SIR): draw proposals from the estimate, weight each by the prior
density at its value, and resample proportional to weight.  A rejection
variant is provided for comparison.

Priors are compositional: ``prior_a & prior_b`` multiplies densities, which
is the "mix and match priors from different sources (maps, calendars,
physics)" composition the paper calls for as future work.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.dists.base import Distribution
from repro.dists.empirical import Empirical
from repro.rng import ensure_rng


class Prior:
    """Domain knowledge as a non-negative weight over sample values.

    Construct from a distribution (its density becomes the weight), or from
    an arbitrary weight function for knowledge with no normalised density
    (e.g. "on a road" scores from a map).
    """

    def __init__(self, weight_fn: Callable[[Any], float], label: str = "prior") -> None:
        self._weight_fn = weight_fn
        self.label = label

    @classmethod
    def from_distribution(cls, dist: Distribution, label: str | None = None) -> "Prior":
        return cls(dist.pdf, label or f"prior[{type(dist).__name__}]")

    @classmethod
    def from_weights(cls, weight_fn: Callable[[Any], float], label: str = "prior") -> "Prior":
        return cls(weight_fn, label)

    def weight(self, values: np.ndarray) -> np.ndarray:
        """Vector of non-negative weights for a batch of sample values."""
        try:
            raw = self._weight_fn(values)
            arr = np.asarray(raw, dtype=float)
            if arr.shape != np.shape(values):
                raise TypeError  # fall through to the scalar path
        except (TypeError, ValueError, AttributeError):
            arr = np.array([float(self._weight_fn(v)) for v in values])
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError(f"{self.label} produced negative or non-finite weights")
        return arr

    def __and__(self, other: "Prior") -> "Prior":
        """Product of independent knowledge sources."""
        if not isinstance(other, Prior):
            return NotImplemented

        def combined(values):
            return self.weight(np.asarray(values)) * other.weight(np.asarray(values))

        return Prior(combined, f"({self.label} & {other.label})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Prior({self.label})"


def posterior(
    estimate,
    prior: Prior | Distribution,
    n_proposals: int = 10_000,
    pool_size: int | None = None,
    method: str = "sir",
    rng=None,
):
    """Improve an uncertain estimate with a prior, returning a new Uncertain.

    ``estimate`` is any ``Uncertain`` value; ``prior`` a :class:`Prior` or a
    distribution with a density.  ``method`` selects:

    - ``"sir"`` — sampling importance resampling: weight ``n_proposals``
      draws by the prior and resample ``pool_size`` of them (default: same
      size).  Deterministic sample budget.
    - ``"rejection"`` — accept proposals with probability proportional to
      weight (bound estimated from the proposal batch).  Unbiased but with a
      stochastic, possibly small, yield.

    The result wraps an :class:`~repro.dists.empirical.Empirical` pool, so it
    composes with further computation like any other uncertain value.
    """
    from repro.core.uncertain import Uncertain

    if isinstance(prior, Distribution):
        prior = Prior.from_distribution(prior)
    if n_proposals <= 0:
        raise ValueError(f"n_proposals must be positive, got {n_proposals}")
    rng = ensure_rng(rng)
    proposals = estimate.samples(n_proposals, rng)
    weights = prior.weight(proposals)
    total = weights.sum()
    if total <= 0:
        raise ValueError(
            f"prior {prior.label} assigned zero weight to every proposal; "
            "it likely contradicts the estimate's support"
        )
    if method == "sir":
        probs = weights / total
        size = pool_size if pool_size is not None else n_proposals
        idx = rng.choice(n_proposals, size=size, p=probs)
        pool = proposals[idx]
    elif method == "rejection":
        bound = weights.max()
        accept = rng.random(n_proposals) < weights / bound
        pool = proposals[accept]
        if len(pool) == 0:
            raise ValueError("rejection sampling accepted no proposals")
    else:
        raise ValueError(f"unknown posterior method {method!r}")
    return Uncertain(Empirical(pool))
