"""Tests for the synthetic walk generator."""

import numpy as np
import pytest

from repro.gps.geo import enu_distance_m
from repro.gps.trace import WalkConfig, generate_walk
from repro.gps.units import mph_to_mps
from repro.rng import default_rng


class TestGenerateWalk:
    def test_lengths(self):
        trace = generate_walk(WalkConfig(duration_s=60.0), rng=default_rng(0))
        assert len(trace) == 61
        assert len(trace.timestamps) == 61
        assert len(trace.true_speeds_mph) == 60

    def test_positions_consistent_with_speeds(self):
        trace = generate_walk(WalkConfig(duration_s=120.0), rng=default_rng(1))
        for i in range(30):
            d = enu_distance_m(trace.positions[i], trace.positions[i + 1])
            expected = mph_to_mps(trace.true_speeds_mph[i]) * trace.config.dt_s
            assert d == pytest.approx(expected, abs=1e-6)

    def test_mean_speed_near_config(self):
        trace = generate_walk(
            WalkConfig(duration_s=900.0, pause_probability=0.0), rng=default_rng(2)
        )
        assert np.mean(trace.true_speeds_mph) == pytest.approx(3.0, abs=0.5)

    def test_speeds_plausible(self):
        trace = generate_walk(WalkConfig(duration_s=900.0), rng=default_rng(3))
        assert trace.true_speeds_mph.min() >= 0.0
        assert trace.true_speeds_mph.max() < 7.0

    def test_pauses_produce_zero_speed(self):
        cfg = WalkConfig(duration_s=600.0, pause_probability=0.2, pause_duration_s=5.0)
        trace = generate_walk(cfg, rng=default_rng(4))
        assert np.sum(trace.true_speeds_mph == 0.0) > 10

    def test_deterministic_given_seed(self):
        a = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(5))
        b = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(5))
        assert a.positions == b.positions

    def test_different_seeds_differ(self):
        a = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(6))
        b = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(7))
        assert a.positions != b.positions

    def test_timestamps_uniform(self):
        trace = generate_walk(WalkConfig(duration_s=10.0, dt_s=0.5), rng=default_rng(8))
        assert np.allclose(np.diff(trace.timestamps), 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_walk(WalkConfig(duration_s=0.5, dt_s=1.0))
        with pytest.raises(ValueError):
            generate_walk(WalkConfig(dt_s=0.0))
