"""Tests for ancestral sampling and joint-sample memoisation."""

import operator

import numpy as np
import pytest

from repro.core.engines import get_engine
from repro.core.graph import BinaryOpNode, LeafNode, PointMassNode
from repro.core.plan import compile_plan
from repro.core.sampling import (
    SampleContext,
    SamplingError,
    bernoulli_sampler,
)
from repro.dists import Gaussian
from repro.dists.sampling_function import FunctionDistribution


def sample_batch(node, n, rng):
    # The v2.0 replacement for the removed module-level helper: compile
    # the node's plan and run it on the default engine.
    return get_engine("numpy").sample(compile_plan(node), n, rng)


class TestSampleContext:
    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            SampleContext(0)

    def test_memoisation_within_context(self, rng):
        leaf = LeafNode(Gaussian(0.0, 1.0))
        ctx = SampleContext(100, rng)
        first = ctx.value_of(leaf)
        second = ctx.value_of(leaf)
        assert first is second

    def test_contains(self, rng):
        leaf = LeafNode(Gaussian(0.0, 1.0))
        ctx = SampleContext(10, rng)
        assert leaf not in ctx
        ctx.value_of(leaf)
        assert leaf in ctx

    def test_shared_leaf_consistent_across_roots(self, rng):
        # x - x must be exactly zero even when the two roots are sampled
        # through the same context separately.
        x = LeafNode(Gaussian(0.0, 1.0))
        double = BinaryOpNode(operator.add, x, x, "+")
        ctx = SampleContext(50, rng)
        xs = ctx.value_of(x)
        doubles = ctx.value_of(double)
        assert np.allclose(doubles, 2 * xs)

    def test_fresh_context_resamples(self, fixed_rng):
        leaf = LeafNode(Gaussian(0.0, 1.0))
        a = SampleContext(10, fixed_rng).value_of(leaf)
        b = SampleContext(10, fixed_rng).value_of(leaf)
        assert not np.allclose(a, b)


class TestSampleBatch:
    def test_shape(self, rng):
        leaf = LeafNode(Gaussian(0.0, 1.0))
        assert sample_batch(leaf, 17, rng).shape == (17,)

    def test_single_draw_scalar(self, rng):
        assert isinstance(float(sample_batch(PointMassNode(3.0), 1, rng)[0]), float)

    def test_diamond_sharing_statistics(self, fixed_rng):
        # Var[x + x] = 4 Var[x]; a wrong (resampling) implementation
        # yields 2 Var[x].
        x = LeafNode(Gaussian(0.0, 1.0))
        y = BinaryOpNode(operator.add, x, x, "+")
        samples = sample_batch(y, 50_000, fixed_rng)
        assert np.var(samples) == pytest.approx(4.0, rel=0.05)

    def test_independent_leaves_are_independent(self, fixed_rng):
        a = LeafNode(Gaussian(0.0, 1.0))
        b = LeafNode(Gaussian(0.0, 1.0))
        total = BinaryOpNode(operator.add, a, b, "+")
        samples = sample_batch(total, 50_000, fixed_rng)
        assert np.var(samples) == pytest.approx(2.0, rel=0.05)

    def test_bad_vectorised_leaf_shape_raises(self, rng):
        bad = LeafNode(
            FunctionDistribution(lambda r: 0.0, fn_n=lambda n, r: np.zeros(n + 1))
        )
        with pytest.raises(ValueError):
            sample_batch(bad, 5, rng)

    def test_misbehaving_node_raises_sampling_error(self, rng):
        from repro.core.graph import Node

        class BadNode(Node):
            def __init__(self):
                super().__init__((), "bad")

            def evaluate_batch(self, parent_values, n, rng):
                return np.zeros(n + 3)  # wrong leading dimension

        with pytest.raises(SamplingError, match="expected leading dimension"):
            sample_batch(BadNode(), 5, rng)

    def test_multidim_leaf_allowed(self, rng):
        # Leading dimension must be the batch; trailing dims may carry
        # structure (e.g. the planar GPS offsets).
        leaf = LeafNode(
            FunctionDistribution(
                lambda r: r.normal(size=2), fn_n=lambda n, r: r.normal(size=(n, 2))
            )
        )
        assert sample_batch(leaf, 8, rng).shape == (8, 2)


class TestBernoulliSampler:
    def test_draws_requested_count(self, rng):
        cond = BinaryOpNode(
            operator.gt, LeafNode(Gaussian(1.0, 1.0)), PointMassNode(0.0), ">"
        )
        draw = bernoulli_sampler(cond, rng)
        out = draw(25)
        assert out.shape == (25,) and out.dtype == bool

    def test_fresh_batches_differ(self, fixed_rng):
        cond = BinaryOpNode(
            operator.gt, LeafNode(Gaussian(0.0, 1.0)), PointMassNode(0.0), ">"
        )
        draw = bernoulli_sampler(cond, fixed_rng)
        a, b = draw(100), draw(100)
        assert not np.array_equal(a, b)
