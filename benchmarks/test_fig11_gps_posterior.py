"""Figures 11-12 bench: the Rayleigh GPS posterior and GPS.GetLocation."""

from benchmarks.conftest import run_and_report


def test_fig11_gps_posterior(benchmark):
    run_and_report(benchmark, "fig11", fast=True)
