"""Tests for expert-specified joint distributions (Section 3.3 override)."""

import numpy as np
import pytest

from repro.core.joint import ComponentNode, correlated_gaussians, joint
from repro.core.sampling import SampleContext
from repro.dists import MultivariateGaussian
from repro.dists.sampling_function import FunctionDistribution
from repro.rng import default_rng


class TestJoint:
    def test_components_share_one_leaf(self):
        x, y = correlated_gaussians([0.0, 0.0], np.eye(2))
        assert x.node.parents[0] is y.node.parents[0]

    def test_marginals_correct(self, fixed_rng):
        cov = np.array([[4.0, 0.0], [0.0, 1.0]])
        x, y = correlated_gaussians([1.0, -1.0], cov)
        assert x.expected_value(20_000, default_rng(0)) == pytest.approx(1.0, abs=0.05)
        assert x.sd(20_000, default_rng(1)) == pytest.approx(2.0, rel=0.05)
        assert y.sd(20_000, default_rng(2)) == pytest.approx(1.0, rel=0.05)

    def test_correlation_respected_in_computation(self, fixed_rng):
        # Perfectly correlated components: their difference is ~0.
        cov = np.array([[1.0, 0.999], [0.999, 1.0]])
        x, y = correlated_gaussians([0.0, 0.0], cov)
        diff = x - y
        assert diff.sd(20_000, fixed_rng) < 0.08

    def test_anticorrelation(self, fixed_rng):
        cov = np.array([[1.0, -0.9], [-0.9, 1.0]])
        x, y = correlated_gaussians([0.0, 0.0], cov)
        total = x + y
        # Var[x+y] = 1 + 1 - 1.8 = 0.2.
        assert total.var(20_000, fixed_rng) == pytest.approx(0.2, rel=0.15)

    def test_joint_sample_consistent_within_context(self, rng):
        x, y = correlated_gaussians([0.0, 0.0], np.array([[1.0, 1.0], [1.0, 1.0]]) + 1e-9 * np.eye(2))
        ctx = SampleContext(100, rng)
        xs = ctx.value_of(x.node)
        ys = ctx.value_of(y.node)
        assert np.allclose(xs, ys, atol=1e-3)

    def test_labels(self):
        x, y = joint(MultivariateGaussian([0, 0], np.eye(2)), ["east", "north"])
        assert x.node.label == "east"
        assert y.node.label == "north"

    def test_dimension_inferred(self):
        components = joint(MultivariateGaussian([0, 0, 0], np.eye(3)))
        assert len(components) == 3

    def test_int_labels(self):
        components = joint(MultivariateGaussian([0, 0], np.eye(2)), 2)
        assert len(components) == 2

    def test_scalar_distribution_rejected(self):
        scalar = FunctionDistribution(lambda r: 0.0, fn_n=lambda n, r: np.zeros(n))
        with pytest.raises(ValueError, match="vector-valued"):
            joint(scalar)

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            joint(MultivariateGaussian([0, 0], np.eye(2)), 0)

    def test_component_index_out_of_range(self, rng):
        from repro.core.graph import LeafNode
        from repro.core.uncertain import Uncertain

        leaf = LeafNode(MultivariateGaussian([0, 0], np.eye(2)))
        bad = Uncertain.from_node(ComponentNode(leaf, 5))
        with pytest.raises(IndexError):
            bad.samples(3, rng)

    def test_object_vector_components(self, rng):
        pairs = FunctionDistribution(lambda r: (r.random(), "tag"))
        first, second = joint(pairs, ["value", "tag"])
        assert isinstance(first.sample(rng), float)
        assert second.sample(rng) == "tag"

    def test_conditional_over_joint(self):
        from repro.core.conditionals import evaluation_config

        cov = np.array([[1.0, 0.95], [0.95, 1.0]])
        x, y = correlated_gaussians([0.0, 0.1], cov)
        with evaluation_config(rng=default_rng(3)):
            # y is slightly above x and strongly correlated: |y - x| is tiny
            # but consistently positive in mean.
            assert not bool((x - y) > 1.0)
