"""Figure 4 bench: speeding-ticket probability across speed and accuracy."""

from benchmarks.conftest import run_and_report


def test_fig04_ticket_probability(benchmark):
    run_and_report(benchmark, "fig04", fast=True)
