"""Uncertain<T>: a first-order type for uncertain data.

A full Python reproduction of Bornholt, Mytkowicz & McKinley (ASPLOS 2014).

The package exposes the paper's primary abstraction, :class:`repro.Uncertain`,
together with the substrates the paper's evaluation depends on:

- :mod:`repro.dists` — probability distributions represented as sampling
  functions (Section 3.2 of the paper).
- :mod:`repro.core` — the uncertain type itself: Bayesian-network
  construction via operator overloading, ancestral sampling, hypothesis-test
  conditionals, and prior-based estimate improvement (Sections 3 and 4).
- :mod:`repro.evaluate` — the unified evaluation API: configuration
  (engine, budgets, metrics), estimators, engine registry.
- :mod:`repro.runtime` — the sampling runtime: the parallel process-pool
  engine, runtime metrics (``repro.runtime.stats()``), span tracing.
- :mod:`repro.resilience` — the resilience layer: numerical-health
  policies (``on_nonfinite``), flaky-source hardening
  (:class:`~repro.resilience.ResilientSource`), and the deterministic
  chaos harness (see ``docs/resilience.md``).
- :mod:`repro.service` — the async service tier: an asyncio evaluation
  front end whose batching coalescer merges concurrent same-shape
  queries into shared bulk evaluations, with admission control,
  backpressure and a Prometheus-style metrics endpoint (see
  ``docs/service.md``).
- :mod:`repro.gps` — the GPS sensor model and GPS-Walking case study
  (Section 5.1).
- :mod:`repro.life` — the noisy-sensor Game of Life case study (Section 5.2).
- :mod:`repro.ml` — the Parakeet Bayesian neural-network case study
  (Section 5.3).
- :mod:`repro.ppl` — a small generative probabilistic-programming baseline
  used for the related-work comparison (Section 6, Figure 17).
- :mod:`repro.experiments` — drivers that regenerate every figure in the
  paper's evaluation.

``__all__`` below is the blessed stable surface: the type and its
constructors, the hypothesis tests, the unified evaluation configuration,
and the runtime errors.  Everything else is reached through its namespace
(``repro.evaluate``, ``repro.runtime``, ``repro.service``, ...); the old
module-level sampling entry points (``sample_once``/``sample_batch``/
``execute_plan``), deprecated since v1.1, were **removed in v2.0** — see
``docs/api.md`` for migration.
"""

from repro.core.uncertain import Uncertain, UncertainBool, uncertain
from repro.core.lifting import apply as apply_lifted
from repro.core.lifting import lift
from repro.core.bayes import Prior, posterior
from repro.core.conditionals import EvaluationConfig, evaluation_config
from repro.core.sprt import (
    FixedSampleTest,
    GroupSequentialTest,
    HypothesisTest,
    SPRT,
    TestDecision,
)
from repro.core.sampling import (
    DeadlineExceeded,
    SampleBudgetExceeded,
    SamplingError,
)
from repro.resilience import (
    Inconclusive,
    InconclusiveError,
    NonFiniteError,
    SourceFailure,
)

# The evaluate/runtime namespaces load after core: repro.runtime.parallel
# imports repro.core and registers the "parallel" engine as a side effect.
from repro import runtime
from repro import evaluate
from repro import resilience
from repro import service

__version__ = "2.2.0"

__all__ = [
    # the type
    "Uncertain",
    "UncertainBool",
    "uncertain",
    "lift",
    "apply_lifted",
    # priors
    "Prior",
    "posterior",
    # unified evaluation surface
    "EvaluationConfig",
    "evaluation_config",
    "evaluate",
    "runtime",
    "service",
    # hypothesis tests
    "HypothesisTest",
    "SPRT",
    "FixedSampleTest",
    "GroupSequentialTest",
    "TestDecision",
    # runtime errors
    "SamplingError",
    "SampleBudgetExceeded",
    "DeadlineExceeded",
    # resilience layer
    "resilience",
    "Inconclusive",
    "InconclusiveError",
    "NonFiniteError",
    "SourceFailure",
    "__version__",
]
