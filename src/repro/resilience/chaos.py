"""Deterministic chaos harness: seedable fault injection for the pipeline.

Production resilience claims are worthless if the failure scenarios that
back them cannot be replayed.  This module makes every injected fault a
pure function of a seed and a call counter:

- :class:`ChaosDistribution` wraps any distribution and injects NaN
  bursts, raised exceptions (:class:`InjectedFault`) and latency stalls.
  Injection decisions come from ``default_rng((seed, call_index))`` —
  never from the sampling generator — so an injected run draws *exactly*
  the samples the clean run would have drawn, and two runs with the same
  seed inject identically.
- **Worker kills** use the sentinel-file protocol (see
  :func:`arm_kill_sentinel`): the first worker to observe the sentinel
  deletes it and dies with ``os._exit``, so the retried chunk succeeds.
  Because :class:`~repro.runtime.parallel.ParallelEngine` retries crashed
  chunks with their original chunk seeds, kill scenarios are bit-identical
  across worker counts — the determinism the chaos suite asserts.
- :class:`ChaosEngine` wraps a registered execution engine and injects
  the same fault classes at the engine boundary (one decision per batch),
  for scenarios where the *executor*, not the source, misbehaves.

Everything here is picklable (faults must survive the trip into pool
workers): configure with module-level callables and sentinel paths, not
closures.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.engines import ExecutionEngine, get_engine
from repro.dists.base import Distribution
from repro.runtime import trace as _trace


class InjectedFault(RuntimeError):
    """An exception raised on purpose by the chaos harness."""


def arm_kill_sentinel(path) -> str:
    """Create the sentinel file that triggers a single worker kill."""
    path = str(path)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("armed")
    return path


def _consume_kill_sentinel(path: str, once: bool) -> bool:
    """True when this process should die now (sentinel observed)."""
    if not os.path.exists(path):
        return False
    if once:
        try:
            os.unlink(path)
        except FileNotFoundError:
            # A sibling worker raced us to the kill; carry on sampling.
            return False
    return True


class ChaosDistribution(Distribution):
    """Wrap ``inner`` with seed-deterministic fault injection.

    Parameters
    ----------
    inner:
        The well-behaved distribution to corrupt.
    seed:
        Chaos seed.  Injection decisions are drawn from
        ``default_rng((seed, call_index))``, independent per call and
        fully reproducible; the sampling generator is never consumed.
    nan_rate:
        Per-call probability of a NaN burst.
    nan_burst:
        Fraction of the batch corrupted by a burst (at least one row).
    error_rate:
        Per-call probability of raising :class:`InjectedFault` *before*
        any sample is drawn.
    latency_s / latency_rate:
        Stall duration and per-call probability of stalling (used to
        drive draws past a configured ``deadline``).
    kill_sentinel / kill_once:
        Path to an armed sentinel file (:func:`arm_kill_sentinel`); a
        process observing it dies with ``os._exit(1)``.  ``kill_once``
        (default) deletes the sentinel first so retries succeed.
    """

    def __init__(
        self,
        inner: Distribution,
        seed: int = 0,
        nan_rate: float = 0.0,
        nan_burst: float = 0.25,
        error_rate: float = 0.0,
        latency_s: float = 0.0,
        latency_rate: float = 1.0,
        kill_sentinel: str | None = None,
        kill_once: bool = True,
    ) -> None:
        for name, p in (
            ("nan_rate", nan_rate),
            ("error_rate", error_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if not 0.0 < nan_burst <= 1.0:
            raise ValueError(f"nan_burst must be in (0, 1], got {nan_burst}")
        self.inner = inner
        self.seed = int(seed)
        self.nan_rate = float(nan_rate)
        self.nan_burst = float(nan_burst)
        self.error_rate = float(error_rate)
        self.latency_s = float(latency_s)
        self.latency_rate = float(latency_rate)
        self.kill_sentinel = kill_sentinel
        self.kill_once = kill_once
        self.calls = 0

    @property
    def discrete(self) -> bool:  # type: ignore[override]
        return self.inner.discrete

    @property
    def support(self):
        return self.inner.support

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        self.calls += 1
        chaos = np.random.default_rng((self.seed, self.calls))
        if self.kill_sentinel is not None and _consume_kill_sentinel(
            self.kill_sentinel, self.kill_once
        ):
            os._exit(1)  # hard worker death: no exception, no cleanup
        if self.latency_s > 0.0 and chaos.random() < self.latency_rate:
            time.sleep(self.latency_s)
        if self.error_rate > 0.0 and chaos.random() < self.error_rate:
            _trace.event("chaos.raise", call=self.calls)
            raise InjectedFault(
                f"injected failure on call {self.calls} (seed {self.seed})"
            )
        out = self.inner.sample_n(n, rng)
        if self.nan_rate > 0.0 and chaos.random() < self.nan_rate:
            out = np.array(out, dtype=float, copy=True)
            k = max(1, int(round(self.nan_burst * n)))
            idx = chaos.choice(n, size=min(k, n), replace=False)
            out[idx] = np.nan
            _trace.event("chaos.nan_burst", call=self.calls, rows=int(len(idx)))
        return out


class ChaosEngine(ExecutionEngine):
    """An :class:`~repro.core.engines.ExecutionEngine` that misbehaves.

    Wraps a registered engine (by name or instance) and, with
    seed-deterministic per-batch decisions, stalls or raises before
    delegating.  Register it (``register_engine(ChaosEngine(...), name=
    "chaos")``) or pass the instance as an ``engine=`` override.
    """

    name = "chaos"

    def __init__(
        self,
        inner: str = "numpy",
        seed: int = 0,
        error_rate: float = 0.0,
        latency_s: float = 0.0,
        latency_rate: float = 1.0,
        storm_calls: int = 0,
    ) -> None:
        if storm_calls < 0:
            raise ValueError(f"storm_calls must be >= 0, got {storm_calls}")
        self.inner = get_engine(inner)
        self.seed = int(seed)
        self.error_rate = float(error_rate)
        self.latency_s = float(latency_s)
        self.latency_rate = float(latency_rate)
        #: Latency storm: the first ``storm_calls`` batches stall
        #: *unconditionally* (no chaos-RNG coin flip), so a storm of a
        #: known length is scriptable — the overload/cancellation tests
        #: need "every batch is slow for a while", not "some batches are
        #: slow sometimes".
        self.storm_calls = int(storm_calls)
        self.calls = 0

    def _misbehave(self) -> None:
        self.calls += 1
        chaos = np.random.default_rng((self.seed, self.calls))
        if self.latency_s > 0.0 and (
            self.calls <= self.storm_calls
            or chaos.random() < self.latency_rate
        ):
            time.sleep(self.latency_s)
        if self.error_rate > 0.0 and chaos.random() < self.error_rate:
            _trace.event("chaos.engine.raise", call=self.calls)
            raise InjectedFault(
                f"injected engine failure on batch {self.calls} "
                f"(seed {self.seed})"
            )

    def run(self, plan, n, rng, memo=None, telemetry=None):
        self._misbehave()
        return self.inner.run(plan, n, rng, memo=memo, telemetry=telemetry)

    def sample(self, plan, n, rng, memo=None, telemetry=None):
        self._misbehave()
        return self.inner.sample(plan, n, rng, memo=memo, telemetry=telemetry)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ChaosEngine inner={self.inner.name!r} seed={self.seed}>"


# ---------------------------------------------------------------------------
# Canned scenarios for the overload/degradation suite.
# ---------------------------------------------------------------------------


def latency_storm(
    stall_s: float = 0.05,
    batches: int = 8,
    inner: str = "numpy",
    seed: int = 0,
) -> ChaosEngine:
    """A :class:`ChaosEngine` whose first ``batches`` runs each stall
    ``stall_s`` seconds unconditionally, then behave normally.

    The canonical overload scenario: every in-flight evaluation is slow
    for a bounded storm, which drives queue pressure up (brownout
    escalation), trips per-request deadlines mid-run (cooperative
    cancellation), and then clears so recovery is observable.
    """
    return ChaosEngine(
        inner=inner, seed=seed, latency_s=stall_s,
        latency_rate=0.0, storm_calls=batches,
    )


def flood_requests(
    value,
    count: int,
    *,
    kind: str = "expected_value",
    samples: int | None = None,
    seeds: bool = False,
    deadline: float | None = None,
):
    """``count`` identical service requests over ``value`` — the flood.

    With ``seeds=True`` every request gets a distinct seed (each costs
    its own engine run: the worst-case flood); seedless floods coalesce
    into pooled draws.  ``deadline`` attaches a per-request deadline so
    a flood under a latency storm exercises cancellation too.
    """
    from repro.service.requests import QueryRequest  # avoid a hard layer dep

    return [
        QueryRequest(
            value=value, kind=kind, samples=samples,
            seed=(1000 + i) if seeds else None, deadline=deadline,
        )
        for i in range(count)
    ]
