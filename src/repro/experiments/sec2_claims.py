"""Section 2's quantitative claims about compounded GPS error."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.gps.ticket import speed_ci_95_mph, speed_distribution_mph, ticket_probability
from repro.rng import default_rng


@experiment("sec2")
def run(seed: int = 2, fast: bool = True) -> ExperimentResult:
    """Check the two headline numbers of Section 2.

    1. "When the locations have a 95% confidence interval of 4 m, speed
       has a 95% confidence interval of 12.7 mph."
    2. "If your actual speed is 57 mph and GPS accuracy is 4 m, this
       conditional gives a 32% probability of a ticket."
    """
    rng = default_rng(seed)
    n = 50_000 if fast else 500_000
    ci = speed_ci_95_mph(4.0)
    # Cross-check the closed form against the sampled distribution at zero
    # true speed: the 95th percentile of apparent speed.
    still = speed_distribution_mph(0.0, 4.0)
    sampled_ci = float(still.ci(0.90, n, rng)[1])  # one-sided 95th percentile
    p_ticket = ticket_probability(57.0, 4.0, n=n, rng=rng)
    rows = [
        {
            "claim": "95% speed CI at eps=4m (paper: 12.7 mph)",
            "closed_form": ci,
            "sampled": sampled_ci,
        },
        {
            "claim": "Pr[ticket] at 57 mph, eps=4m (paper: 32%)",
            "closed_form": float("nan"),
            "sampled": p_ticket,
        },
    ]
    claims = {
        "speed CI reproduces 12.7 mph": abs(ci - 12.7) < 0.1,
        "closed form matches sampling": abs(ci - sampled_ci) < 0.3,
        "ticket probability is ~32%": 0.2 < p_ticket < 0.45,
    }
    return ExperimentResult(
        "sec2", "compounded-error quantitative claims", rows, claims
    )
