"""Compilation of Bayesian networks into reusable evaluation plans.

The paper's runtime samples the Uncertain<T> network "much like a JIT"
(Section 4.2).  The seed implementation re-walked the DAG on every batch:
each SPRT batch draw built a fresh memo table, re-discovered the
topological order, and paid per-node ``id()``-dict overhead.  This module
performs that discovery exactly once: :func:`compile_plan` lowers a
:class:`~repro.core.graph.Node` DAG into an :class:`EvaluationPlan` — a
flat, topologically ordered program whose instructions reference their
operands by *slot index* instead of by dictionary lookup.

Key properties:

- **Shared subexpressions become shared slots.**  Each distinct node gets
  exactly one slot, so `x + x` reads the same slot twice — the SSA-like
  dependence analysis of Figure 8, now resolved at compile time.  The plan
  holds strong references to its nodes, which also removes the seed's
  GC-pinning workaround (``id()`` keys are only unique while the object is
  alive; slots are unique forever).
- **Plans are cached per root node.**  The cache is keyed on graph
  identity (the root object) and is weak: when a graph dies, its plan is
  collected.  :func:`invalidate_plan` / :func:`clear_plan_cache` provide
  the explicit invalidation path.
- **Plan order matches the seed interpreter's traversal order**, so the
  compiled engines consume the RNG stream in exactly the same sequence —
  seed-for-seed identical samples (see ``tests/core/test_plan.py``).

Execution of a plan is the job of an engine (:mod:`repro.core.engines`).
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Callable, Iterator

from repro.core.graph import BinaryOpNode, Node, UnaryOpNode, iter_nodes
from repro.core.structural import STRUCTURAL_CACHE
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace

#: Sentinel distinguishing "structural hash not computed yet" from the
#: legitimate ``None`` result of an opaque (unshareable) plan.
_UNSET = object()


@dataclasses.dataclass
class PlanTelemetry:
    """Counters describing plan compilation and execution activity.

    Install a sink with ``evaluation_config(plan_telemetry=PlanTelemetry())``
    (or :meth:`EvaluationConfig.enable_plan_telemetry`); engines then record
    into it.  This is the Figure 14(b)-style instrumentation for the
    sampling runtime itself rather than for the hypothesis tests.
    """

    #: Number of plans lowered from a ``Node`` DAG.
    plans_compiled: int = 0
    #: Number of :func:`compile_plan` calls satisfied from the cache.
    plan_cache_hits: int = 0
    #: Fresh compiles whose *shape* was already in the structural cache
    #: (an isomorphic plan compiled earlier — possibly by another session).
    structural_hits: int = 0
    #: Fresh compiles registering a new shape in the structural cache.
    structural_misses: int = 0
    #: Number of batch executions (one per ``engine.sample`` / context fill).
    batches_executed: int = 0
    #: Number of node evaluations across all batches.
    nodes_evaluated: int = 0
    #: Total samples produced for root nodes (sum of batch sizes).
    samples_generated: int = 0
    #: Wall-clock seconds spent evaluating nodes, keyed by node kind
    #: (``LeafNode``, ``BinaryOpNode``, ...).
    node_seconds: dict[str, float] = dataclasses.field(default_factory=dict)

    def record_node(self, kind: str, seconds: float) -> None:
        self.nodes_evaluated += 1
        self.node_seconds[kind] = self.node_seconds.get(kind, 0.0) + seconds

    def record_batch(self, n: int) -> None:
        self.batches_executed += 1
        self.samples_generated += int(n)

    def reset(self) -> None:
        self.plans_compiled = 0
        self.plan_cache_hits = 0
        self.structural_hits = 0
        self.structural_misses = 0
        self.batches_executed = 0
        self.nodes_evaluated = 0
        self.samples_generated = 0
        self.node_seconds = {}

    def as_dict(self) -> dict:
        return {
            "plans_compiled": self.plans_compiled,
            "plan_cache_hits": self.plan_cache_hits,
            "structural_hits": self.structural_hits,
            "structural_misses": self.structural_misses,
            "batches_executed": self.batches_executed,
            "nodes_evaluated": self.nodes_evaluated,
            "samples_generated": self.samples_generated,
            "node_seconds": dict(self.node_seconds),
        }


#: Instruction tags, chosen at compile time so the hot loop can dispatch
#: without re-inspecting node types.
OP_SOURCE = 0  # no parents: leaves, point masses (needs n and rng)
OP_UNARY = 1  # UnaryOpNode: values[out] = op(values[a])
OP_BINARY = 2  # BinaryOpNode: values[out] = op(values[a], values[b])
OP_GENERAL = 3  # anything else: node.evaluate_batch(parent values, n, rng)


class PlanStep:
    """One instruction of a compiled plan.

    ``slot`` is this step's output slot (== its index in ``plan.steps``);
    ``parent_slots`` are the operand slots; ``opcode`` is one of the ``OP_*``
    tags above.
    """

    __slots__ = ("node", "slot", "parent_slots", "opcode", "kind")

    def __init__(self, node: Node, slot: int, parent_slots: tuple[int, ...]) -> None:
        self.node = node
        self.slot = slot
        self.parent_slots = parent_slots
        self.kind = type(node).__name__
        if not parent_slots:
            self.opcode = OP_SOURCE
        elif type(node) is BinaryOpNode:
            self.opcode = OP_BINARY
        elif type(node) is UnaryOpNode:
            self.opcode = OP_UNARY
        else:
            self.opcode = OP_GENERAL

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ops = getattr(self, "ops", None)
        if ops:
            # Fused super-ops (repro.core.fused) list their constituent
            # operations so traces and describe() stay debuggable.
            return (
                f"<{type(self).__name__} {self.slot}: {self.kind} "
                f"[{', '.join(ops)}] <- {self.parent_slots}>"
            )
        return f"<PlanStep {self.slot}: {self.kind} {self.node.label!r} <- {self.parent_slots}>"


class EvaluationPlan:
    """A ``Node`` DAG lowered into a flat, topologically ordered program.

    ``steps[i]`` writes slot ``i``; parents always occupy lower slots, so a
    single forward pass evaluates the whole network.  The root's value is
    in ``steps[-1]`` (``root_slot``).
    """

    __slots__ = (
        "root",
        "steps",
        "slot_of",
        "root_slot",
        "leaf_slots",
        "optimization_level",
        "provenance",
        "_program",
        "_structural",
        "_optimized",
        "_fused",
        "__weakref__",
    )

    def __init__(self, root: Node) -> None:
        self.root = root
        slot_of: dict[Node, int] = {}
        steps: list[PlanStep] = []
        for node in iter_nodes(root):
            slot = len(steps)
            parent_slots = tuple(slot_of[p] for p in node.parents)
            steps.append(PlanStep(node, slot, parent_slots))
            slot_of[node] = slot
        self.steps: tuple[PlanStep, ...] = tuple(steps)
        self.slot_of = slot_of
        self.root_slot = slot_of[root]
        self.leaf_slots = tuple(s.slot for s in steps if not s.parent_slots)
        #: 0 for a raw lowering; set by :meth:`optimized` (and preserved
        #: through pickling) on plans produced by the optimizer pipeline.
        self.optimization_level = 0
        #: Compiler provenance trail: pass-by-pass
        #: :class:`~repro.core.optimizer.PassRecord` entries plus
        #: :class:`~repro.analysis.certify.CertificationRecord` entries
        #: from the static stream-safety certifier (rewrite + kernel).
        self.provenance: tuple = ()
        self._program = None
        self._structural = _UNSET
        self._optimized = None
        self._fused = None

    @property
    def program(self) -> tuple[tuple, ...]:
        """Specialized instruction tuples for the hot execution loop.

        Each entry front-loads everything a step needs — opcode, the bound
        callable, output slot, operand slots, and the node (for error
        reporting) — so engines dispatch without per-step attribute
        lookups.  Built lazily and cached on the plan.
        """
        if self._program is None:
            entries = []
            for s in self.steps:
                if s.opcode == OP_BINARY:
                    a, b = s.parent_slots
                    entries.append((OP_BINARY, s.node.op, s.slot, a, b, s.node))
                elif s.opcode == OP_UNARY:
                    entries.append(
                        (OP_UNARY, s.node.op, s.slot, s.parent_slots[0], s.node)
                    )
                elif s.opcode == OP_SOURCE:
                    entries.append((OP_SOURCE, s.node.evaluate_batch, s.slot, s.node))
                else:
                    entries.append(
                        (
                            OP_GENERAL,
                            s.node.evaluate_batch,
                            s.slot,
                            s.parent_slots,
                            s.node,
                        )
                    )
            self._program = tuple(entries)
        return self._program

    # -- compiler pipeline ---------------------------------------------------

    @property
    def structural_hash(self) -> str | None:
        """Canonical structural key of this plan's shape (lazy, cached).

        ``None`` marks an opaque plan (lambdas, user sampling functions)
        that can never be shared structurally.  Computed through the
        process-global :class:`~repro.core.structural.StructuralCache`,
        so equal shapes across sessions resolve to the same key.
        """
        if self._structural is _UNSET:
            key, _hit = STRUCTURAL_CACHE.key_for(self)
            self._structural = key
        return self._structural

    def optimized(self, level: int = 2) -> "EvaluationPlan":
        """This plan lowered through the optimizer pipeline at ``level``.

        Cached per level; returns ``self`` when ``level`` is 0, when this
        plan is already at (or above) the requested level, or when no
        pass changes the graph.  See :mod:`repro.core.optimizer` for the
        pass order and the bit-identity contract.
        """
        if not level or self.optimization_level >= level:
            return self
        cache = self._optimized
        if cache is None:
            cache = self._optimized = {}
        plan = cache.get(level)
        if plan is None:
            from repro.core.optimizer import optimize_plan

            plan, records = optimize_plan(self, level)
            if plan is not self:
                plan.optimization_level = level
            plan.provenance = records
            cache[level] = plan
        return plan

    def certification_records(self) -> tuple:
        """Stream-safety :class:`CertificationRecord` entries in provenance.

        One ``stream-certify`` record per optimizer rewrite and one
        ``kernel-certify`` record per fused-kernel admission decision;
        empty for plans that were never optimized or fused.
        """
        return tuple(
            r for r in self.provenance
            if getattr(r, "subject", None) in (
                "optimizer-rewrite", "fused-kernel",
            )
        )

    # -- introspection ------------------------------------------------------

    @property
    def num_slots(self) -> int:
        return len(self.steps)

    @property
    def node_count(self) -> int:
        return len(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self) -> Iterator[PlanStep]:
        return iter(self.steps)

    def op_histogram(self) -> dict[str, int]:
        """Number of steps per node kind (useful for telemetry displays)."""
        hist: dict[str, int] = {}
        for step in self.steps:
            hist[step.kind] = hist.get(step.kind, 0) + 1
        return hist

    def __reduce__(self):
        # Plans serialise as their root graph and recompile on load: the
        # lowering is cheap and deterministic, and shipping the graph keeps
        # the payload small (no steps/program/bound methods).  This is what
        # lets ParallelEngine send a plan to worker processes once.  The
        # optimization level and structural hash travel along so an
        # optimized plan does not silently unpickle as a raw one (the
        # optimized *root* is shipped, so no pass re-runs on load) and
        # receivers key their per-shape caches identically to the sender.
        return (_rebuild_plan, (self.root, self.optimization_level, self.structural_hash))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EvaluationPlan {self.num_slots} slots, root "
            f"{self.root.label!r} @ {self.root_slot}>"
        )


def _rebuild_plan(
    root: Node, optimization_level: int = 0, structural_hash=_UNSET
) -> "EvaluationPlan":
    """Unpickle target: recompile (and re-cache) the plan for ``root``.

    The sender's optimization level and structural key are re-seeded on
    the rebuilt plan: the shipped root already *is* the optimized root,
    so marking the level prevents engines from re-running the passes, and
    adopting the sender's structural key lets hash-keyed caches (fused
    kernels, worker-side plan caches) hit without re-fingerprinting.
    """
    plan = compile_plan(root)
    if structural_hash is not _UNSET:
        plan._structural = structural_hash
    if optimization_level and plan.optimization_level < optimization_level:
        plan.optimization_level = optimization_level
    return plan


# ---------------------------------------------------------------------------
# Plan cache: keyed on graph identity by storing the plan on the root node
# itself (``Node._compiled_plan``), so plan lifetime equals graph lifetime
# and nothing needs pinning.  A weak registry of planned roots supports the
# cache-wide operations.  Nodes are immutable after construction, so a
# cached plan can never go stale; the explicit invalidation path exists for
# exotic callers (e.g. a node class that mutates its distribution in place).
# ---------------------------------------------------------------------------

_PLANNED_ROOTS: "weakref.WeakSet[Node]" = weakref.WeakSet()


def compile_plan(
    root: Node,
    telemetry: PlanTelemetry | None = None,
    analyze: "Callable[[EvaluationPlan], object] | None" = None,
) -> EvaluationPlan:
    """Lower ``root``'s DAG into an :class:`EvaluationPlan`, cached per root.

    Repeated calls with the same root object return the same plan, which is
    what amortises graph traversal across the SPRT's repeated batch draws.

    ``analyze``, when given, is invoked once per *fresh* compile (never on
    cache hits) with the new plan — the hook
    :mod:`repro.analysis` uses to surface UNC101-class diagnostics exactly
    once per cached plan (see
    :meth:`~repro.core.conditionals.EvaluationConfig.enable_plan_analysis`).
    Its return value is ignored; exceptions propagate to the caller.
    """
    plan = root._compiled_plan
    metrics = _metrics.active()
    if plan is not None:
        if telemetry is not None:
            telemetry.plan_cache_hits += 1
        if metrics is not None:
            metrics.record_cache_hit()
        return plan
    with _trace.span("plan.compile", root=root.label) as span_attrs:
        plan = EvaluationPlan(root)
        span_attrs["slots"] = len(plan.steps)
        # Stage 2: register the plan's shape in the structural cache.  A
        # hit means an isomorphic plan (possibly from another session)
        # already compiled — the signal the structural counters expose.
        key, structural_hit = STRUCTURAL_CACHE.key_for(plan)
        plan._structural = key
        span_attrs["structural_hash"] = key
    root._compiled_plan = plan
    _PLANNED_ROOTS.add(root)
    if telemetry is not None:
        telemetry.plans_compiled += 1
        if key is not None:
            if structural_hit:
                telemetry.structural_hits += 1
            else:
                telemetry.structural_misses += 1
    if metrics is not None:
        metrics.record_compile()
        if key is not None:
            metrics.record_structural(structural_hit)
    if analyze is not None:
        analyze(plan)
    return plan


def _invalidate_ledger(plan) -> None:
    """Drop sample-ledger entries derived from ``plan``, if the ledger is
    live.  Resolved through ``sys.modules`` so processes that never used
    the ledger (parallel workers, import-light tools) don't import it."""
    import sys

    ledger_mod = sys.modules.get("repro.core.ledger")
    if ledger_mod is not None and plan is not None:
        ledger_mod.LEDGER.invalidate_entries(plan)


def invalidate_plan(root: Node) -> bool:
    """Drop the cached plan for ``root``; returns whether one existed.

    Cached sample columns derived from the plan (the cross-query ledger,
    :mod:`repro.core.ledger`) are invalidated with it.
    """
    had = root._compiled_plan is not None
    if had:
        _invalidate_ledger(root._compiled_plan)
    root._compiled_plan = None
    _PLANNED_ROOTS.discard(root)
    return had


def clear_plan_cache() -> None:
    """Drop every cached plan (all future draws recompile).

    Ledger entries keyed by the dropped plans' shapes are dropped too.
    """
    for node in list(_PLANNED_ROOTS):
        if node._compiled_plan is not None:
            _invalidate_ledger(node._compiled_plan)
        node._compiled_plan = None
    _PLANNED_ROOTS.clear()


def plan_cache_size() -> int:
    """Number of live cached plans (diagnostics)."""
    return sum(1 for node in _PLANNED_ROOTS if node._compiled_plan is not None)
