"""The noisy-sensor Game of Life case study (Section 5.2, Figure 14).

Conway's Game of Life supplies ground truth: each cell senses its
neighbours through sensors we artificially corrupt with zero-mean Gaussian
noise, and we measure how often each strategy makes the wrong
survive/die/birth decision.

- :mod:`repro.life.engine` — the exact Game of Life (the "discrete perfect
  sensors" that define ground truth).
- :mod:`repro.life.sensors` — the noisy sensor layer and BayesLife's
  MAP-corrected sensor.
- :mod:`repro.life.variants` — NaiveLife, SensorLife and BayesLife cell
  deciders.
- :mod:`repro.life.evaluation` — the Figure 14 sweep: decision-error rates
  and samples per cell update across noise amplitudes.
"""

from repro.life.engine import Board, random_board, step_board, true_decision
from repro.life.sensors import corrected_sensor_sum, noisy_sensor_readings, sensor_sum
from repro.life.variants import (
    BayesLife,
    LifeVariant,
    NaiveLife,
    SensorLife,
    UpdateOutcome,
)
from repro.life.evaluation import LifePoint, evaluate_variants, run_generation

__all__ = [
    "Board",
    "random_board",
    "step_board",
    "true_decision",
    "noisy_sensor_readings",
    "sensor_sum",
    "corrected_sensor_sum",
    "LifeVariant",
    "NaiveLife",
    "SensorLife",
    "BayesLife",
    "UpdateOutcome",
    "LifePoint",
    "evaluate_variants",
    "run_generation",
]
