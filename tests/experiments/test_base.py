"""Tests for the experiment infrastructure."""

import pytest

from repro.experiments.base import (
    ExperimentResult,
    experiment,
    registry,
    render_table,
    run_experiment,
)


class TestRenderTable:
    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_alignment_and_headers(self):
        table = render_table([{"name": "a", "value": 1.23456}, {"name": "bb", "value": 2}])
        lines = table.split("\n")
        assert lines[0].startswith("name")
        assert "1.235" in table  # 4 significant digits
        assert len(lines) == 4

    def test_missing_keys_blank(self):
        table = render_table([{"a": 1, "b": 2}, {"a": 3}])
        assert table.count("\n") == 3


class TestExperimentResult:
    def test_render_includes_claims(self):
        result = ExperimentResult(
            "figX", "demo", [{"k": 1}], {"holds": True, "fails": False}, notes="n"
        )
        text = result.render()
        assert "[x] holds" in text
        assert "[ ] fails" in text
        assert "note: n" in text
        assert not result.all_claims_hold

    def test_all_claims_hold(self):
        result = ExperimentResult("figX", "demo", [], {"a": True})
        assert result.all_claims_hold


class TestRegistry:
    def test_known_experiments_registered(self):
        import repro.experiments  # noqa: F401

        for expected in (
            "fig01", "fig03", "fig04", "fig06", "fig08", "fig09", "fig11",
            "fig13", "fig14", "fig15", "fig16", "fig17", "sec2", "table1",
            "ext_geofence", "ext_fusion", "ext_life_dynamics", "ext_hardware",
            "ext_baselines",
        ):
            assert expected in registry

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_decorator_registers(self):
        @experiment("zztest")
        def run(seed=0, fast=True):
            return ExperimentResult("zztest", "t", [])

        try:
            assert run_experiment("zztest").experiment_id == "zztest"
        finally:
            del registry["zztest"]
