"""Free-running noisy Game of Life dynamics (extension experiment).

Figure 14 couples every variant to the exact board each generation so that
decision errors are well-defined.  This module answers the follow-on
question the paper leaves open: what happens when a noisy variant's errors
*compound* — each generation applied to its own (possibly wrong) board?

We track two divergence measures against the exact evolution from the same
seed: per-generation board disagreement (fraction of differing cells) and
population-size drift.  BayesLife's near-zero per-decision error should
keep its trajectory pinned to the truth for many generations, while
NaiveLife's 8%+ error rate scrambles the board within a few.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.conditionals import evaluation_config
from repro.life.engine import Board, neighbor_states, random_board, step_board
from repro.life.variants import LifeVariant
from repro.rng import ensure_rng


@dataclasses.dataclass
class DivergenceTrace:
    """Per-generation divergence of a free-running noisy board."""

    variant: str
    sigma: float
    disagreement: np.ndarray  # (generations,) fraction of differing cells
    population_true: np.ndarray  # (generations,)
    population_noisy: np.ndarray  # (generations,)

    @property
    def final_disagreement(self) -> float:
        return float(self.disagreement[-1])

    def generations_until(self, threshold: float) -> int:
        """First generation whose disagreement exceeds ``threshold``
        (or the trace length if it never does)."""
        above = np.nonzero(self.disagreement > threshold)[0]
        return int(above[0]) if len(above) else len(self.disagreement)


def step_noisy_board(
    board: Board, variant: LifeVariant, rng: np.random.Generator
) -> Board:
    """One generation decided entirely by the noisy variant."""
    rows, cols = board.shape
    out = np.zeros_like(board)
    for r in range(rows):
        for c in range(cols):
            states = neighbor_states(board, r, c)
            outcome = variant.decide(bool(board[r, c]), states, rng)
            out[r, c] = outcome.will_be_alive
    return out


def run_free_dynamics(
    variant: LifeVariant,
    sigma: float,
    rows: int = 12,
    cols: int = 12,
    generations: int = 10,
    density: float = 0.35,
    max_samples: int = 300,
    rng=None,
) -> DivergenceTrace:
    """Evolve truth and the noisy variant side by side from one seed."""
    rng = ensure_rng(rng)
    true_board = random_board(rows, cols, density, rng)
    noisy_board = true_board.copy()
    disagreement = []
    pop_true = []
    pop_noisy = []
    with evaluation_config(rng=rng, max_samples=max_samples):
        for _ in range(generations):
            true_board = step_board(true_board)
            noisy_board = step_noisy_board(noisy_board, variant, rng)
            disagreement.append(float(np.mean(true_board != noisy_board)))
            pop_true.append(int(true_board.sum()))
            pop_noisy.append(int(noisy_board.sum()))
    return DivergenceTrace(
        variant=variant.name,
        sigma=sigma,
        disagreement=np.asarray(disagreement),
        population_true=np.asarray(pop_true),
        population_noisy=np.asarray(pop_noisy),
    )


def compare_free_dynamics(
    sigma: float,
    variant_factories=None,
    rng=None,
    **protocol,
) -> list[DivergenceTrace]:
    """Run all variants from identical seeds and return their traces."""
    from repro.life.variants import BayesLife, NaiveLife, SensorLife

    if variant_factories is None:
        variant_factories = [NaiveLife, SensorLife, BayesLife]
    rng = ensure_rng(rng)
    seed = int(rng.integers(0, 2**63))
    return [
        run_free_dynamics(
            factory(sigma), sigma, rng=np.random.default_rng(seed), **protocol
        )
        for factory in variant_factories
    ]
