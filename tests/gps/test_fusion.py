"""Tests for the particle-filter sensor fusion."""

import numpy as np
import pytest

from repro.gps.fusion import FusionResult, MotionModel, ParticleFilter, track_walk
from repro.gps.geo import GeoCoordinate
from repro.gps.sensor import GpsFix, GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


def fix_at(east, north, eps=4.0, t=0.0):
    return GpsFix(ORIGIN.offset_m(east, north), eps, t)


class TestMotionModel:
    def test_speed_capped(self):
        model = MotionModel(max_speed_mph=5.0)
        positions = np.zeros((500, 2))
        headings = np.zeros(500)
        new_pos, _ = model.propagate(positions, headings, 1.0, default_rng(0))
        distances = np.linalg.norm(new_pos, axis=1)
        from repro.gps.units import mph_to_mps

        assert distances.max() <= mph_to_mps(5.0) + 1e-9

    def test_heading_diffusion(self):
        model = MotionModel(heading_sigma_rad=0.5)
        _, headings = model.propagate(
            np.zeros((200, 2)), np.zeros(200), 1.0, default_rng(1)
        )
        assert headings.std() == pytest.approx(0.5, rel=0.2)


class TestParticleFilter:
    def test_initial_cloud_matches_fix_posterior(self):
        pf = ParticleFilter(fix_at(0, 0, eps=4.0), n_particles=2_000, rng=default_rng(2))
        radii = np.linalg.norm(pf.positions, axis=1)
        assert np.mean(radii <= 4.0) == pytest.approx(0.95, abs=0.02)

    def test_update_pulls_toward_fix(self):
        pf = ParticleFilter(fix_at(0, 0), n_particles=500, rng=default_rng(3))
        for t in range(1, 6):
            pf.predict(1.0)
            pf.update(fix_at(20.0, 0.0, eps=3.0, t=float(t)))
        mean = pf.mean_position()
        east, north = mean.enu_m(ORIGIN)
        assert east == pytest.approx(20.0, abs=5.0)

    def test_resampling_triggers(self):
        pf = ParticleFilter(fix_at(0, 0), n_particles=200, rng=default_rng(4))
        pf.predict(1.0)
        pf.update(fix_at(50.0, 0.0, eps=2.0, t=1.0))  # very surprising fix
        assert pf.resample_count >= 1
        assert pf.effective_sample_size > 100  # reset after resampling

    def test_location_is_uncertain_geocoordinate(self):
        pf = ParticleFilter(fix_at(0, 0), rng=default_rng(5))
        loc = pf.location()
        sample = loc.sample(default_rng(6))
        assert isinstance(sample, GeoCoordinate)

    def test_location_composes_with_geofence(self):
        from repro.core.conditionals import evaluation_config
        from repro.gps.geofence import Geofence

        pf = ParticleFilter(fix_at(50.0, 40.0, eps=3.0), rng=default_rng(7))
        park = Geofence.rectangle(ORIGIN, 100.0, 80.0)
        with evaluation_config(rng=default_rng(8)):
            assert park.contains(pf.location()).pr(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ParticleFilter(fix_at(0, 0), n_particles=5)
        with pytest.raises(ValueError):
            ParticleFilter(fix_at(0, 0), resample_threshold=0.0)
        pf = ParticleFilter(fix_at(0, 0), rng=default_rng(9))
        with pytest.raises(ValueError):
            pf.predict(0.0)


class TestTrackWalk:
    def test_fusion_beats_raw_fixes_with_glitchy_sensor(self):
        trace = generate_walk(WalkConfig(duration_s=120.0), rng=default_rng(10))
        sensor = GpsSensor(
            6.0,
            rng=default_rng(11),
            correlation=0.0,
            glitch_probability=0.03,
            glitch_scale_m=25.0,
        )
        result = track_walk(trace, sensor, n_particles=300, rng=default_rng(12))
        assert isinstance(result, FusionResult)
        assert result.improvement > 1.1  # history + physics must help

    def test_error_series_lengths(self):
        trace = generate_walk(WalkConfig(duration_s=20.0), rng=default_rng(13))
        sensor = GpsSensor(4.0, rng=default_rng(14))
        result = track_walk(trace, sensor, n_particles=100, rng=default_rng(15))
        assert len(result.raw_errors_m) == len(result.fused_errors_m) == 20
