"""Figure 3 bench: naive GPS speed computation produces absurd speeds."""

from benchmarks.conftest import run_and_report


def test_fig03_naive_speed(benchmark):
    run_and_report(benchmark, "fig03", fast=True)
