"""Parallel plan execution across a persistent process pool (Section 4.2).

The paper frames sampling as embarrassingly parallel — every joint sample
of the Bayesian network is independent — so a batch of ``n`` samples can
be sharded into chunks and executed on separate cores.  This module adds
:class:`ParallelEngine`, an :class:`~repro.core.engines.ExecutionEngine`
that does exactly that over a persistent ``ProcessPoolExecutor``.

Determinism model (the part worth reading twice):

- A batch of ``n`` is split by :func:`chunk_layout` into chunks whose
  boundaries depend **only on n and the configured chunk size — never on
  the worker count**.  Sizing is adaptive in ``n`` (roughly ``n /
  MAX_CHUNKS``, floored at :data:`MIN_CHUNK` so tiny SPRT batches never
  pay IPC), but deliberately *not* adaptive in ``workers``: that is what
  makes ``workers=1`` and ``workers=8`` bit-identical.
- Chunk ``i`` is executed by the serial inner engine (``NumpyEngine`` by
  default) with its own generator, spawned as child ``i`` of the caller's
  RNG via ``np.random.SeedSequence.spawn`` — the same parent-child
  derivation :func:`repro.rng.spawn` uses.  The batch is the
  concatenation of the chunk streams, so the result is a pure function of
  ``(plan, n, seed, chunk_size)``: independent of worker count, of
  parallel-vs-serial execution, and of scheduling order.

The stream therefore *differs* from ``NumpyEngine`` run unsharded with
the same generator (one undivided stream vs. a concatenation of spawned
streams) — but running ``NumpyEngine`` chunk-by-chunk over the same
layout and spawned seeds reproduces ``ParallelEngine`` exactly, which is
what the determinism suite asserts.

Worker protocol: the plan is pickled **once** in the parent (cached per
plan) and shipped to the pool **once per plan key** — the key is the
plan's structural hash when it has one, so isomorphic plans (and every
later batch over the same plan) travel as tiny descriptors
``(plan_key, None, n, seed, inner)``.  Workers keep a small plan cache
keyed by ``plan_key``; a worker that has not seen the key yet (a freshly
spawned pool process) raises :class:`PlanPayloadMissing`, and the parent
transparently re-sends those chunks *with* the payload — a cache-warming
round trip, not a failure, so it never consumes the crash-retry budget.
Unpicklable plans (lambdas in ``FunctionDistribution`` / ``ApplyNode``)
fall back to serial in-process execution with the *same* sharded seeding,
preserving results, and warn once per plan.

Failure handling: a worker crash (segfault, ``os._exit``, OOM kill)
breaks the pool; every unfinished chunk is retried on a freshly built
pool up to ``max_retries`` rounds.  Exhausting the retry budget either
surfaces as :class:`~repro.core.sampling.SamplingError` (the default) or
— with ``serial_fallback=True`` — rescues the still-failed chunks by
running them serially in-process with their *original* spawned seeds, so
the degraded batch is bit-identical to the healthy one.  A per-run
``deadline`` and a cumulative ``sample_budget`` raise
:class:`~repro.core.sampling.DeadlineExceeded` /
:class:`~repro.core.sampling.SampleBudgetExceeded`.
"""

from __future__ import annotations

import atexit
import itertools
import os
import pickle
import warnings
import weakref
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, TimeoutError
from time import monotonic, perf_counter

import numpy as np

from repro.core.engines import ExecutionEngine, get_engine, register_engine
from repro.core.plan import EvaluationPlan
from repro.core.sampling import (
    DeadlineExceeded,
    SampleBudgetExceeded,
    SamplingError,
)
from repro.runtime import cancellation as _cancel
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace

#: Smallest chunk worth shipping to a worker; batches at or below this run
#: serially in-process (SPRT batches of k=10 must never pay pool IPC).
MIN_CHUNK = 8_192
#: Upper bound on chunks per batch (keeps descriptor traffic bounded while
#: leaving enough chunks to balance load across any sane worker count).
MAX_CHUNKS = 64


def chunk_layout(n: int, chunk_size: int | None = None) -> list[int]:
    """Deterministic chunk sizes for a batch of ``n`` joint samples.

    With ``chunk_size=None`` the size adapts to ``n`` alone:
    ``max(MIN_CHUNK, ceil(n / MAX_CHUNKS))``.  Worker count is *never* an
    input — see the module docstring's determinism model.  Changing
    ``chunk_size`` changes the sample stream exactly like changing the
    seed would.
    """
    if n <= 0:
        raise ValueError(f"batch size must be positive, got {n}")
    if chunk_size is None:
        chunk_size = max(MIN_CHUNK, -(-n // MAX_CHUNKS))
    elif chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    full, rest = divmod(n, chunk_size)
    sizes = [chunk_size] * full
    if rest:
        sizes.append(rest)
    return sizes


def spawn_chunk_seeds(rng: np.random.Generator, k: int) -> list:
    """``k`` child ``SeedSequence``s derived from ``rng``'s seed sequence.

    Spawning advances the parent's spawn counter (not the bit generator),
    so repeated batches through one generator get fresh, independent
    streams while two generators built from the same seed agree.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:  # exotic bit generator: derive entropy from the stream
        seed_seq = np.random.SeedSequence(int(rng.integers(0, 2**63)))
    return seed_seq.spawn(k)


# ---------------------------------------------------------------------------
# Worker side.  Executed in the pool processes; keeps a bounded cache of
# unpickled plans so each worker deserialises a plan at most once.
# ---------------------------------------------------------------------------

_WORKER_PLAN_CACHE_LIMIT = 8
_worker_plans: "OrderedDict[str, EvaluationPlan]" = OrderedDict()


class PlanPayloadMissing(RuntimeError):
    """A worker was handed a plan key it has never seen, with no payload.

    Raised inside pool processes and unpickled in the parent, which
    responds by re-submitting the affected chunks with the payload
    attached (without consuming the crash-retry budget).
    """


def _run_chunk(plan_key: str, payload: "bytes | None", n: int, seed_seq, inner: str):
    plan = _worker_plans.get(plan_key)
    if plan is None:
        if payload is None:
            raise PlanPayloadMissing(plan_key)
        plan = pickle.loads(payload)
        _worker_plans[plan_key] = plan
        while len(_worker_plans) > _WORKER_PLAN_CACHE_LIMIT:
            _worker_plans.popitem(last=False)
    else:
        _worker_plans.move_to_end(plan_key)
    engine = get_engine(inner)
    values = engine.run(plan, n, np.random.default_rng(seed_seq))
    return values[plan.root_slot]


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------

_plan_ids = itertools.count(1)
_live_engines: "weakref.WeakSet[ParallelEngine]" = weakref.WeakSet()


@atexit.register
def _shutdown_all() -> None:  # pragma: no cover - interpreter teardown
    for engine in list(_live_engines):
        engine.shutdown()


class ParallelEngine(ExecutionEngine):
    """Shard batches across a persistent process pool (registered as
    ``"parallel"``; select with ``evaluation_config(engine="parallel")``).

    Parameters
    ----------
    workers:
        Pool size; defaults to ``os.cpu_count()``.  ``workers=0`` (or 1)
        keeps the sharded determinism model but executes every chunk
        serially in-process — useful as a reference and for debugging.
        When the *default* resolves to a single CPU, the engine degrades
        to that serial path automatically (same stream, no pool build),
        warning once and counting ``parallel.auto_serial`` in the
        runtime metrics.
    chunk_size:
        Fixed chunk size, or ``None`` for the adaptive-in-``n`` default.
        Part of the stream definition: changing it changes the samples.
    inner:
        Name of the registered serial engine that executes each chunk.
    max_retries:
        Rounds of crash recovery per batch (default 1: failed chunks are
        retried once on a fresh pool, then ``SamplingError`` — or the
        serial rescue, see ``serial_fallback``).
    serial_fallback:
        When ``True``, exhausting ``max_retries`` degrades gracefully:
        chunks that still have no result are executed serially
        in-process with their original spawned seeds (preserving the
        chunked RNG stream bit-for-bit), a ``RuntimeWarning`` is issued
        and the rescue is counted in the runtime metrics.  Default
        ``False`` keeps the fail-fast ``SamplingError``.
    sample_budget:
        Cumulative cap on samples this engine instance may draw;
        exceeding it raises ``SampleBudgetExceeded``.
    deadline:
        Per-``run`` wall-clock limit in seconds; raises
        ``DeadlineExceeded`` when chunks are still pending at expiry.
    mp_context:
        ``multiprocessing`` context or start-method name (default: the
        platform default, ``fork`` on Linux).
    """

    name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        chunk_size: int | None = None,
        inner: str = "numpy",
        max_retries: int = 1,
        serial_fallback: bool = False,
        sample_budget: int | None = None,
        deadline: float | None = None,
        mp_context=None,
    ) -> None:
        self.workers = (os.cpu_count() or 1) if workers is None else int(workers)
        #: Auto-sized onto a host with nothing to parallelise across: every
        #: batch takes the serial path (same sharded stream, zero pool
        #: overhead) and the degradation is surfaced once per engine via a
        #: warning plus the ``parallel.auto_serial`` metric.
        self._auto_single = workers is None and self.workers <= 1
        self._warned_auto_serial = False
        self.chunk_size = chunk_size
        self.inner = inner
        self.max_retries = int(max_retries)
        self.serial_fallback = bool(serial_fallback)
        self.sample_budget = sample_budget
        self.deadline = deadline
        if isinstance(mp_context, str):
            import multiprocessing

            mp_context = multiprocessing.get_context(mp_context)
        self._mp_context = mp_context
        self._executor: ProcessPoolExecutor | None = None
        self._payloads: "weakref.WeakKeyDictionary[EvaluationPlan, tuple]" = (
            weakref.WeakKeyDictionary()
        )
        #: Plan keys whose payload the *current* pool has already received;
        #: cleared whenever the pool is discarded (fresh workers start with
        #: empty caches).
        self._shipped: set[str] = set()
        self._samples_drawn = 0
        _live_engines.add(self)

    # -- pool lifecycle -----------------------------------------------------

    def _pool(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=max(1, self.workers), mp_context=self._mp_context
            )
        return self._executor

    def _discard_pool(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._shipped.clear()

    def shutdown(self) -> None:
        """Tear down the worker pool (a later run lazily rebuilds it)."""
        self._discard_pool()

    @property
    def samples_drawn(self) -> int:
        """Cumulative samples drawn by this engine instance (budget basis)."""
        return self._samples_drawn

    # -- plan payloads ------------------------------------------------------

    def _payload_for(self, plan: EvaluationPlan) -> tuple:
        """``(plan_key, pickled_bytes | None)`` — pickled once per plan.

        The key is the plan's structural hash when it has one, so
        isomorphic plans (fresh graphs per session, rebuilt roots) share
        one worker-side cache entry and pay the payload transfer once per
        *shape*; opaque plans get a throwaway per-plan key.
        """
        entry = self._payloads.get(plan)
        if entry is None:
            try:
                data = pickle.dumps(plan, protocol=pickle.HIGHEST_PROTOCOL)
            except Exception as exc:
                warnings.warn(
                    f"evaluation plan for {plan.root!r} is not picklable "
                    f"({type(exc).__name__}: {exc}); ParallelEngine falls back "
                    "to serial in-process execution (same sharded stream). "
                    "Use module-level functions instead of lambdas/closures "
                    "in lifted code to enable parallel sampling",
                    RuntimeWarning,
                    stacklevel=4,
                )
                data = None
            key = plan.structural_hash
            if key is None or data is None:
                key = f"plan-{next(_plan_ids)}"
            entry = (key, data)
            self._payloads[plan] = entry
        return entry

    # -- execution ----------------------------------------------------------

    def run(self, plan, n, rng, memo=None, telemetry=None):
        if self.sample_budget is not None and (
            self._samples_drawn + n > self.sample_budget
        ):
            raise SampleBudgetExceeded(
                f"ParallelEngine sample budget exhausted: {self._samples_drawn} "
                f"drawn + {n} requested > budget {self.sample_budget}"
            )
        if memo is not None:
            # Shared-context draws need the memo filled with every node's
            # batch under one joint assignment; that is inherently a
            # single-stream operation, so defer to the inner engine with
            # the caller's RNG (exactly NumpyEngine semantics).
            values = get_engine(self.inner).run(
                plan, n, rng, memo=memo, telemetry=telemetry
            )
            self._samples_drawn += n
            return values
        root = self._sample_sharded(plan, int(n), rng, telemetry)
        self._samples_drawn += n
        values: list = [None] * len(plan.steps)
        values[plan.root_slot] = root
        return values

    def _sample_sharded(self, plan, n, rng, telemetry) -> np.ndarray:
        chunks = chunk_layout(n, self.chunk_size)
        seeds = spawn_chunk_seeds(rng, len(chunks))
        if telemetry is not None:
            telemetry.record_batch(n)
        metric = _metrics.active()
        plan_key, payload = self._payload_for(plan)
        serial = payload is None or len(chunks) == 1 or self.workers <= 1
        auto_serial = (
            serial and self._auto_single
            and payload is not None and len(chunks) > 1
        )
        if metric is not None:
            metric.record_parallel(
                chunks=len(chunks),
                fallbacks=int(payload is None),
                auto_serial=int(auto_serial),
            )
        if auto_serial and not self._warned_auto_serial:
            self._warned_auto_serial = True
            warnings.warn(
                "ParallelEngine auto-sized to a single-CPU host "
                "(os.cpu_count() <= 1); executing chunks serially in-process "
                "with the same sharded stream instead of paying process-pool "
                "overhead. Pass workers= explicitly to force a pool",
                RuntimeWarning,
                stacklevel=4,
            )
        if serial:
            # Chunk boundaries are the cancellation boundaries: the
            # ambient token is polled between chunks (the inner engine
            # also polls it per program step within each chunk).
            inner = get_engine(self.inner)
            token = _cancel.current()
            parts: list = []
            rows_done = 0
            for done, (size, seed) in enumerate(zip(chunks, seeds)):
                if token is not None:
                    token.check(
                        chunks_done=done, chunks=len(chunks),
                        rows_done=rows_done,
                    )
                parts.append(
                    inner.run(plan, size, np.random.default_rng(seed))[
                        plan.root_slot
                    ]
                )
                rows_done += size
            return parts[0] if len(parts) == 1 else np.concatenate(parts)
        return self._dispatch(plan, plan_key, payload, chunks, seeds, metric)

    def _dispatch(self, plan, plan_key, payload, chunks, seeds, metric) -> np.ndarray:
        deadline_at = None if self.deadline is None else monotonic() + self.deadline
        token = _cancel.current()
        results: list = [None] * len(chunks)

        def _cancel_check() -> None:
            # Workers run in separate processes where the ambient token
            # does not exist; the parent polls it while collecting chunk
            # results and abandons the pool on cancellation (stragglers
            # die with the discarded pool, nothing is awaited further).
            if token is not None and token.cancelled:
                self._discard_pool()
                token.check(
                    chunks_done=sum(r is not None for r in results),
                    chunks=len(chunks),
                    rows_done=sum(
                        size for size, r in zip(chunks, results)
                        if r is not None
                    ),
                )
        todo = list(range(len(chunks)))
        rounds = 0
        last_error: BaseException | None = None
        send_payload = plan_key not in self._shipped
        with _trace.span(
            "parallel.dispatch", chunks=len(chunks), workers=self.workers
        ) as span_attrs:
            while todo:
                start = perf_counter()
                chunk_payload = payload if send_payload else None
                if chunk_payload is None and metric is not None:
                    metric.record_parallel(payload_skips=len(todo))
                futures = {
                    i: self._pool().submit(
                        _run_chunk,
                        plan_key,
                        chunk_payload,
                        chunks[i],
                        seeds[i],
                        self.inner,
                    )
                    for i in todo
                }
                failed: list[int] = []
                missed: list[int] = []
                broken = False
                for i, future in futures.items():
                    _cancel_check()
                    timeout = None
                    if deadline_at is not None:
                        timeout = max(0.0, deadline_at - monotonic())
                    if token is not None and token.deadline_at is not None:
                        left = max(0.0, token.deadline_at - monotonic())
                        timeout = left if timeout is None else min(timeout, left)
                    try:
                        results[i] = future.result(timeout=timeout)
                    except TimeoutError:
                        if deadline_at is None and token is not None:
                            # Only the token's deadline can have set this
                            # timeout; promote the expiry explicitly so
                            # the race at the exact boundary cannot fall
                            # through to the engine-deadline error below.
                            token.cancel("deadline")
                        _cancel_check()  # token deadline: EvaluationCancelled
                        self._discard_pool()  # drop stragglers with the pool
                        raise DeadlineExceeded(
                            f"parallel sampling exceeded its {self.deadline}s "
                            f"deadline with {sum(r is None for r in results)} "
                            f"of {len(chunks)} chunks unfinished"
                        ) from None
                    except PlanPayloadMissing:
                        # A fresh worker process has an empty plan cache:
                        # warm it by re-sending with the payload.  Not a
                        # crash — does not consume the retry budget.
                        missed.append(i)
                    except BrokenExecutor as exc:
                        broken = True
                        failed.append(i)
                        last_error = exc
                if broken:
                    # A dead worker poisons the whole pool: rebuild it and
                    # retry every chunk that has no result yet.  Rebuilding
                    # also cleared ``_shipped``, so payloads travel again.
                    self._discard_pool()
                    send_payload = True
                    if metric is not None:
                        metric.record_parallel(crashes=1, retries=len(failed))
                if missed:
                    send_payload = True
                    if metric is not None:
                        metric.record_parallel(payload_misses=len(missed))
                if not failed:
                    if not missed:
                        break
                    todo = missed
                    continue
                rounds += 1
                if rounds > self.max_retries:
                    if not self.serial_fallback:
                        raise SamplingError(
                            f"{len(failed)} sampling chunk(s) crashed the worker "
                            f"pool {rounds} times (chunk indices {failed}); giving "
                            "up after max_retries="
                            f"{self.max_retries}"
                        ) from last_error
                    # Graceful degradation: run the still-failed chunks
                    # serially in-process with their original spawned
                    # seeds — the concatenated stream is bit-identical to
                    # the one a healthy pool would have produced.
                    warnings.warn(
                        f"{len(failed)} sampling chunk(s) crashed the worker "
                        f"pool {rounds} times; rescuing them serially "
                        "in-process (serial_fallback=True preserves the "
                        "chunked sample stream)",
                        RuntimeWarning,
                        stacklevel=5,
                    )
                    inner = get_engine(self.inner)
                    for i in failed + missed:
                        results[i] = inner.run(
                            plan, chunks[i], np.random.default_rng(seeds[i])
                        )[plan.root_slot]
                    if metric is not None:
                        metric.record_parallel(serial_rescues=len(failed))
                    _trace.event(
                        "parallel.serial_rescue",
                        chunks=len(failed),
                        rounds=rounds,
                    )
                    break
                todo = failed + missed
            span_attrs["seconds"] = perf_counter() - start
            span_attrs["retry_rounds"] = rounds
        if payload is not None:
            self._shipped.add(plan_key)
        return np.concatenate(results)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ParallelEngine workers={self.workers} "
            f"chunk_size={self.chunk_size or 'auto'} inner={self.inner!r}>"
        )


register_engine(ParallelEngine())
