"""CES-style ``prob<T>`` (Thrun, ICRA 2000) — exact discrete distributions.

CES stores a list of ``(value, probability)`` pairs per variable and
combines them exactly under arithmetic.  The paper adopts its
generic-type idea but rejects its representation: it is restricted to
simple discrete distributions, and — measurably — the support size
multiplies under every binary operation, so computation blows up where
sampling functions stay O(1) per sample.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np


class ProbT:
    """An exact finite distribution: values with probabilities."""

    def __init__(self, pairs: Iterable[tuple[Any, float]]) -> None:
        merged: dict[Any, float] = {}
        total = 0.0
        for value, p in pairs:
            if p < 0:
                raise ValueError(f"negative probability {p} for value {value!r}")
            if p == 0.0:
                continue
            merged[value] = merged.get(value, 0.0) + p
            total += p
        if not merged:
            raise ValueError("prob<T> needs at least one value with mass")
        self.pairs: dict[Any, float] = {v: p / total for v, p in merged.items()}

    @classmethod
    def point(cls, value: Any) -> "ProbT":
        return cls([(value, 1.0)])

    @classmethod
    def uniform(cls, values: Iterable[Any]) -> "ProbT":
        values = list(values)
        return cls([(v, 1.0 / len(values)) for v in values])

    @property
    def support_size(self) -> int:
        return len(self.pairs)

    def probability(self, value: Any) -> float:
        return self.pairs.get(value, 0.0)

    # -- exact combination (the blow-up) -----------------------------------

    def combine(self, other: "ProbT", op: Callable[[Any, Any], Any]) -> "ProbT":
        """Exact convolution under an arbitrary binary operator.

        Cost (and, generically, support size) is
        ``support(self) * support(other)``.
        """
        return ProbT(
            (op(a, b), pa * pb)
            for a, pa in self.pairs.items()
            for b, pb in other.pairs.items()
        )

    def __add__(self, other: "ProbT") -> "ProbT":
        return self.combine(other, lambda a, b: a + b)

    def __sub__(self, other: "ProbT") -> "ProbT":
        return self.combine(other, lambda a, b: a - b)

    def __mul__(self, other: "ProbT") -> "ProbT":
        return self.combine(other, lambda a, b: a * b)

    def map(self, fn: Callable[[Any], Any]) -> "ProbT":
        return ProbT((fn(v), p) for v, p in self.pairs.items())

    # -- queries -------------------------------------------------------------

    def expected_value(self) -> float:
        return float(sum(v * p for v, p in self.pairs.items()))

    def pr_greater(self, threshold: float) -> float:
        """Exact evidence Pr[X > t] — CES *can* answer this, for discrete X."""
        return float(sum(p for v, p in self.pairs.items() if v > threshold))

    def sample(self, rng: np.random.Generator) -> Any:
        values = list(self.pairs)
        probs = np.fromiter(self.pairs.values(), dtype=float, count=len(values))
        return values[rng.choice(len(values), p=probs)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{v!r}: {p:.3g}" for v, p in list(self.pairs.items())[:4])
        more = "..." if len(self.pairs) > 4 else ""
        return f"ProbT({{{inner}{more}}})"
