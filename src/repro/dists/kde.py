"""Gaussian kernel density estimate fitted to data.

An *empirical model* in the paper's Section 3.2 taxonomy: when no
theoretical error model exists, the expert fits one from observations.  KDE
both smooths an observed sample pool into a density (so it can serve as a
prior) and remains a sampling function.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.dists.base import Distribution, Support


def silverman_bandwidth(data: np.ndarray) -> float:
    """Silverman's rule-of-thumb bandwidth."""
    n = len(data)
    sd = float(np.std(data))
    iqr = float(np.subtract(*np.percentile(data, [75, 25])))
    spread = min(sd, iqr / 1.349) if iqr > 0 else sd
    if spread == 0:
        spread = 1.0
    return 0.9 * spread * n ** (-1.0 / 5.0)


class KernelDensity(Distribution):
    """Gaussian KDE over a 1-D dataset."""

    def __init__(
        self,
        data: Sequence[float],
        bandwidth: float | None = None,
        allow_nonfinite: bool = False,
    ) -> None:
        arr = np.asarray(data, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("KernelDensity needs a non-empty 1-D dataset")
        # Non-finite observations poison the bandwidth rule and every
        # sample drawn near them; screen at construction (same contract as
        # Empirical).
        if not allow_nonfinite:
            bad = int(np.count_nonzero(~np.isfinite(arr)))
            if bad:
                raise ValueError(
                    f"KernelDensity dataset contains {bad} non-finite "
                    f"value(s) out of {arr.size}; clean the data or pass "
                    "allow_nonfinite=True to keep them"
                )
        self.data = arr
        self.bandwidth = (
            float(bandwidth) if bandwidth is not None else silverman_bandwidth(arr)
        )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = rng.integers(0, len(self.data), size=n)
        return self.data[idx] + rng.normal(0.0, self.bandwidth, size=n)

    def log_pdf(self, x):
        x = np.atleast_1d(np.asarray(x, dtype=float))
        z = (x[:, None] - self.data[None, :]) / self.bandwidth
        log_kernels = -0.5 * z * z - math.log(
            self.bandwidth * math.sqrt(2 * math.pi)
        )
        mx = np.max(log_kernels, axis=1, keepdims=True)
        out = (
            mx[:, 0]
            + np.log(np.mean(np.exp(log_kernels - mx), axis=1))
        )
        return out if out.size > 1 else float(out[0])

    @property
    def mean(self) -> float:
        return float(np.mean(self.data))

    @property
    def variance(self) -> float:
        return float(np.var(self.data) + self.bandwidth**2)

    @property
    def support(self) -> Support:
        # Gaussian kernels have unbounded tails.
        return Support(-math.inf, math.inf)
