"""Split-draw bit-identity: the sample ledger's load-bearing RNG property.

The ledger's stream mode assumes numpy bulk draws are *prefix-stable*:
``sample_n(n, rng)`` followed by ``sample_n(N - n, rng)`` on the same
generator equals one ``sample_n(N, rng)``.  That holds for every family
whose batch is a single bulk RNG call, and provably fails for families
that issue several interleaved bulk calls per batch (KernelDensity draws
component indices and noise; Mixture draws selectors and components), so
this module pins the *exact* expectation per family — including the
expected failures.  If a numpy upgrade changes bulk-draw semantics, these
tests fail loudly and name the family.

The second half checks the same property one level up, where the ledger
actually operates: engine runs of compiled plans, on both the numpy and
fused engines.
"""

import numpy as np
import pytest

from repro.core.conditionals import evaluation_config
from repro.core.engines import get_engine
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Cauchy,
    DiscreteUniform,
    Empirical,
    Exponential,
    FunctionDistribution,
    Gamma,
    Gaussian,
    KernelDensity,
    Laplace,
    LogNormal,
    Mixture,
    MultivariateGaussian,
    PointMass,
    Poisson,
    Rayleigh,
    StudentT,
    Triangular,
    TruncatedGaussian,
    Uniform,
    VonMises,
    Weibull,
)
from repro.rng import default_rng

#: Every public Distribution family with a representative instance and
#: whether a split draw must be bit-identical to a full draw.  A family
#: missing here is a test failure (see test_every_family_is_covered).
FAMILY_EXPECTATIONS = [
    ("Gaussian", Gaussian(1.0, 2.0), True),
    ("TruncatedGaussian", TruncatedGaussian(0.0, 1.0, -1.0, 2.0), True),
    ("MultivariateGaussian",
     MultivariateGaussian([0.0, 1.0], [[1.0, 0.2], [0.2, 1.0]]), True),
    ("Uniform", Uniform(-1.0, 3.0), True),
    ("DiscreteUniform", DiscreteUniform(0, 10), True),
    ("Bernoulli", Bernoulli(0.3), True),
    ("Binomial", Binomial(20, 0.4), True),
    ("Rayleigh", Rayleigh(2.0), True),
    ("Exponential", Exponential(1.5), True),
    ("Gamma", Gamma(2.0, 1.0), True),
    ("Beta", Beta(2.0, 5.0), True),
    ("Poisson", Poisson(4.0), True),
    ("Categorical", Categorical([1.0, 2.0, 3.0], [0.2, 0.3, 0.5]), True),
    ("PointMass", PointMass(7.0), True),
    ("Triangular", Triangular(0.0, 1.0, 4.0), True),
    ("LogNormal", LogNormal(0.0, 0.5), True),
    ("StudentT", StudentT(5.0), True),
    ("Empirical", Empirical([1.0, 2.0, 3.0, 4.0, 5.0]), True),
    ("Weibull", Weibull(1.5, 2.0), True),
    ("Laplace", Laplace(0.0, 1.0), True),
    ("Cauchy", Cauchy(0.0, 1.0), True),
    ("VonMises", VonMises(0.0, 2.0), True),
    ("FunctionDistribution",
     FunctionDistribution(
         lambda rng: float(rng.standard_normal()),
         fn_n=lambda n, rng: rng.standard_normal(n),
     ), True),
    # Multi-call batches: component indices and values come from separate
    # bulk draws whose interleaving depends on the batch size, so a split
    # draw CANNOT equal a full draw.  The ledger must keep treating these
    # as non-extensible (replay mode); if numpy ever made these pass, the
    # certify gate could be widened — hence the exact False assertion.
    ("Mixture",
     Mixture([Gaussian(-2.0, 0.5), Gaussian(2.0, 0.5)], [0.4, 0.6]), False),
    ("KernelDensity", KernelDensity([0.0, 1.0, 2.0, 3.0]), False),
]

SPLITS = [(1, 31), (13, 19), (31, 1)]


def _split_matches(dist, n_head: int, n_tail: int, seed: int) -> bool:
    full = dist.sample_n(n_head + n_tail, default_rng(seed))
    rng = default_rng(seed)
    head = dist.sample_n(n_head, rng)
    tail = dist.sample_n(n_tail, rng)
    parts = np.concatenate([np.atleast_1d(head), np.atleast_1d(tail)])
    full = np.atleast_1d(full)
    if parts.shape != full.shape or parts.dtype != full.dtype:
        return False
    equal_nan = np.asarray(full).dtype.kind in "fc"
    return bool(np.array_equal(parts, full, equal_nan=equal_nan))


class TestFamilySplitDraw:
    @pytest.mark.parametrize(
        "name,dist,expected",
        FAMILY_EXPECTATIONS,
        ids=[name for name, _, _ in FAMILY_EXPECTATIONS],
    )
    def test_split_draw_matches_expectation(self, name, dist, expected):
        results = [
            _split_matches(dist, h, t, seed)
            for h, t in SPLITS
            for seed in (20140301, 8675309)
        ]
        if expected:
            assert all(results), (
                f"{name}: draw(n)+draw(N-n) diverged from draw(N); the "
                "sample ledger's stream mode is unsound for this family"
            )
        else:
            # Degenerate splits (e.g. a 1-row tail) can coincide; what
            # matters is that at least one split diverges, which is what
            # makes the family non-extensible for the ledger.
            assert not all(results), (
                f"{name}: split draws now match full draws — numpy's bulk "
                "draw semantics changed; revisit the ledger certify gate"
            )

    def test_every_family_is_covered(self):
        import repro.dists as dists

        covered = {name for name, _, _ in FAMILY_EXPECTATIONS}
        public = {
            name for name in dists.__all__
            if isinstance(getattr(dists, name), type)
            and issubclass(getattr(dists, name), dists.Distribution)
            and getattr(dists, name) is not dists.Distribution
        }
        assert public <= covered, (
            f"families missing a split-draw expectation: {public - covered}"
        )


class TestEngineSplitRun:
    """The same property at the level the ledger operates on: full plans."""

    @pytest.mark.parametrize("engine", ["numpy", "fused"])
    def test_single_draw_plan_extends(self, engine):
        u = Uncertain(Gaussian(5.0, 2.0)) * 1.5 + 3.0
        plan = compile_plan(u.node)
        with evaluation_config(engine=engine):
            eng = get_engine(engine)
            full = eng.sample(plan, 40, default_rng(3))
            rng = default_rng(3)
            head = eng.sample(plan, 15, rng)
            tail = eng.sample(plan, 25, rng)
        assert np.array_equal(np.concatenate([head, tail]), full)

    @pytest.mark.parametrize("engine", ["numpy", "fused"])
    def test_shared_leaf_plan_extends(self, engine):
        z = Uncertain(Gaussian(0.0, 1.0))
        u = z + z  # one stochastic draw feeding two plan references
        plan = compile_plan(u.node)
        with evaluation_config(engine=engine):
            eng = get_engine(engine)
            full = eng.sample(plan, 40, default_rng(5))
            rng = default_rng(5)
            head = eng.sample(plan, 15, rng)
            tail = eng.sample(plan, 25, rng)
        assert np.array_equal(np.concatenate([head, tail]), full)

    @pytest.mark.parametrize("engine", ["numpy", "fused"])
    def test_two_leaf_plan_does_not_extend(self, engine):
        u = Uncertain(Gaussian(0.0, 1.0)) + Uncertain(Uniform(0.0, 1.0))
        plan = compile_plan(u.node)
        with evaluation_config(engine=engine):
            eng = get_engine(engine)
            full = eng.sample(plan, 40, default_rng(7))
            rng = default_rng(7)
            head = eng.sample(plan, 15, rng)
            tail = eng.sample(plan, 25, rng)
        assert not np.array_equal(np.concatenate([head, tail]), full), (
            "a two-leaf plan produced extension-stable streams; the ledger "
            "certify gate's replay classification is stale"
        )
