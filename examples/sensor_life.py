"""SensorLife (Section 5.2): Conway's Game of Life on noisy sensors.

Runs NaiveLife, SensorLife and BayesLife against ground truth over a range
of noise amplitudes and prints the Figure 14 table: decision error rates
and sampling cost per cell update.

Run with::

    python examples/sensor_life.py
"""

from repro.life.evaluation import evaluate_variants
from repro.rng import default_rng


def main() -> None:
    sigmas = (0.05, 0.1, 0.2, 0.3, 0.4)
    print("evaluating NaiveLife / SensorLife / BayesLife "
          f"at sigma in {sigmas} (reduced protocol)...")
    points = evaluate_variants(
        sigmas,
        rng=default_rng(14),
        rows=12, cols=12, generations=6, runs=3, max_samples=300,
    )

    print(f"\n{'variant':<12} {'sigma':>5} {'error rate':>12} "
          f"{'joint samples/update':>21} {'sensor samples/update':>22}")
    for p in points:
        print(
            f"{p.variant:<12} {p.sigma:>5.2f} "
            f"{p.error_rate:>9.3f}±{p.error_ci95:.3f} "
            f"{p.joint_samples_per_update:>21.1f} "
            f"{p.sensor_samples_per_update:>22.1f}"
        )

    print(
        "\nShape (paper Figure 14): NaiveLife worst at every noise level; "
        "SensorLife's errors scale with noise; BayesLife nearly perfect "
        "below sigma=0.4 while also sampling less than SensorLife."
    )


if __name__ == "__main__":
    main()
