"""Positive and negative tests for every lint rule (UNC201-UNC204),
suppression comments, taint inference, and the reporters."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import (
    LintSummary,
    default_selection,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

PRELUDE = """\
import math
from repro import Uncertain, lift, uncertain
from repro.dists import Gaussian
"""


def lint(body: str, **kwargs) -> list:
    return lint_source(PRELUDE + textwrap.dedent(body), path="t.py", **kwargs)


def rules(body: str, **kwargs) -> list[str]:
    return [d.rule for d in lint(body, **kwargs)]


class TestUNC201Coercion:
    def test_positive_float(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)
        """) == ["UNC201"]

    def test_positive_int_of_expression(self):
        assert rules("""
            x = uncertain(Gaussian(0, 1))
            y = int(x * 2 + 1)
        """) == ["UNC201"]

    def test_positive_bool(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            b = bool(x > 0)
        """) == ["UNC201"]

    def test_negative_plain_float(self):
        assert rules("""
            t = 3.5
            y = float(t)
        """) == []

    def test_negative_collapsed_first(self):
        # expected_value() returns a plain float; coercing that is fine.
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x.expected_value())
        """) == []

    def test_negative_reassigned_to_plain(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            x = 3.0
            y = float(x)
        """) == []


class TestUNC202EstimateAsFact:
    def test_positive_if(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            if x.expected_value() > 4.0:
                pass
        """) == ["UNC202"]

    def test_positive_E_alias(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            if x.E() > 4.0:
                pass
        """) == ["UNC202"]

    def test_positive_while(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            while x.expected_value() < 10:
                pass
        """) == ["UNC202"]

    def test_negative_branch_on_evidence(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            if (x > 4.0).pr(0.9):
                pass
        """) == []

    def test_negative_expected_value_outside_branch(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            m = x.expected_value()
        """) == []

    def test_negative_unrelated_method(self):
        assert rules("""
            reading = object()
            if reading.expected_value() > 4.0:
                pass
        """) == []


class TestUNC203MathOnUncertain:
    def test_positive_sqrt(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = math.sqrt(x)
        """) == ["UNC203"]

    def test_positive_log_of_expression(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = math.log(x + 1)
        """) == ["UNC203"]

    def test_negative_lifted(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            usqrt = lift(math.sqrt)
            y = usqrt(x)
        """) == []

    def test_negative_plain_operand(self):
        assert rules("""
            y = math.sqrt(4.0)
        """) == []

    def test_lifted_result_is_tainted(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            usqrt = lift(math.sqrt)
            y = usqrt(x)
            z = float(y)
        """) == ["UNC201"]


class TestUNC204ImplicitConditionalInLoop:
    BODY = """
        x = Uncertain(Gaussian(0, 1))
        for _ in range(10):
            if x > 4.0:
                pass
    """

    def test_opt_in_disabled_by_default(self):
        assert rules(self.BODY) == []
        assert "UNC204" not in default_selection()

    def test_positive_when_enabled(self):
        assert rules(self.BODY, select=default_selection(True)) == ["UNC204"]

    def test_positive_while_loop(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            while True:
                if x > 0:
                    break
        """, select=default_selection(True)) == ["UNC204"]

    def test_negative_explicit_pr(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            for _ in range(10):
                if (x > 4.0).pr(0.95):
                    pass
        """, select=default_selection(True)) == []

    def test_negative_outside_loop(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            if x > 4.0:
                pass
        """, select=default_selection(True)) == []

    def test_negative_loop_in_nested_function_scope(self):
        # The loop is in the outer scope; the branch is in a fresh function
        # scope with loop_depth reset.
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            for _ in range(10):
                def probe():
                    if x > 4.0:
                        pass
        """, select=default_selection(True)) == []


class TestUNC205ChainedComparison:
    def test_positive_middle_operand(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            ok = 0.0 < x < 1.0
        """) == ["UNC205"]

    def test_positive_uncertain_bound(self):
        assert rules("""
            lo = Uncertain(Gaussian(0, 1))
            ok = lo < 3.0 < 5.0
        """) == ["UNC205"]

    def test_positive_three_way_chain(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            ok = 0.0 <= x <= 1.0 <= 2.0
        """) == ["UNC205"]

    def test_message_suggests_explicit_conjunction(self):
        (diag,) = lint("""
            x = Uncertain(Gaussian(0, 1))
            ok = 0.0 < x < 1.0
        """)
        assert "(a < x) & (x < b)" in diag.message

    def test_negative_simple_comparison(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            ok = x < 1.0
        """) == []

    def test_negative_certain_chain(self):
        assert rules("""
            t = 0.5
            ok = 0.0 < t < 1.0
        """) == []

    def test_suppressed_with_rule_id(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            ok = 0.0 < x < 1.0  # unc: ignore[UNC205]
        """) == []


class TestSuppression:
    def test_bare_ignore(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)  # unc: ignore
        """) == []

    def test_rule_specific_ignore(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)  # unc: ignore[UNC201]
        """) == []

    def test_mismatched_rule_id_does_not_suppress(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)  # unc: ignore[UNC203]
        """) == ["UNC201"]

    def test_multiple_rule_ids(self):
        assert rules("""
            x = Uncertain(Gaussian(0, 1))
            y = float(math.sqrt(x))  # unc: ignore[UNC201, UNC203]
        """) == []


class TestInfrastructure:
    def test_syntax_error_reported_not_raised(self):
        (diag,) = lint_source("def broken(:\n", path="bad.py")
        assert diag.rule == "UNC200" and diag.severity == "error"

    def test_select_restricts_rules(self):
        body = """
            x = Uncertain(Gaussian(0, 1))
            y = float(x)
            z = math.sqrt(x)
        """
        assert rules(body, select={"UNC203"}) == ["UNC203"]

    def test_findings_sorted_by_line(self):
        findings = lint("""
            x = Uncertain(Gaussian(0, 1))
            a = math.sqrt(x)
            b = float(x)
        """)
        assert [d.rule for d in findings] == ["UNC203", "UNC201"]
        assert findings[0].line < findings[1].line

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "bad.py").write_text(
            PRELUDE + "x = Uncertain(Gaussian(0, 1))\ny = float(x)\n"
        )
        (tmp_path / "pkg" / "good.py").write_text("a = 1\n")
        findings = lint_paths([tmp_path])
        assert [d.rule for d in findings] == ["UNC201"]
        assert findings[0].path.endswith("bad.py")

    def test_summary_counts_and_failing(self):
        findings = lint("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)
            z = math.sqrt(x)
        """)
        summary = LintSummary.of(findings)
        assert summary.errors == 1 and summary.warnings == 1
        assert summary.failing
        assert not LintSummary.of([]).failing


class TestReporters:
    def _findings(self):
        return lint("""
            x = Uncertain(Gaussian(0, 1))
            y = float(x)
        """)

    def test_render_text(self):
        text = render_text(self._findings())
        assert "t.py:6:5: UNC201 error:" in text
        assert "found 1 issue(s): 1 error(s)" in text

    def test_render_text_empty(self):
        assert render_text([]) == "no issues found"

    def test_render_json(self):
        payload = json.loads(render_json(self._findings(), mode="lint"))
        assert payload["version"] == 1
        assert payload["mode"] == "lint"
        (finding,) = payload["findings"]
        assert finding["rule"] == "UNC201"
        assert finding["path"] == "t.py"
