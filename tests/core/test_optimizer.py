"""Tests for the optimizer pipeline (stage 1 of the plan compiler).

The load-bearing property is the bit-identity contract: every accepted
rewrite must leave the RNG stream untouched, so an optimized plan sampled
on any engine equals the unoptimized plan sampled on the reference
interpreter, seed for seed.
"""

import pickle

import numpy as np
import pytest

from repro.core.conditionals import evaluation_config
from repro.core.engines import InterpreterEngine, NumpyEngine
from repro.core.graph import PointMassNode
from repro.core.optimizer import (
    constant_fold,
    eliminate_common_subexpressions,
    is_stochastic,
    optimize_plan,
    resolve_level,
)
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.dists.uniform import Uniform


def records_by_name(plan):
    return {r.name: r for r in plan.provenance}


class TestResolveLevel:
    @pytest.mark.parametrize(
        "value,expected",
        [(True, 2), (False, 0), (0, 0), (None, 0), (1, 1), (2, 2), (7, 2)],
    )
    def test_mapping(self, value, expected):
        assert resolve_level(value) == expected


class TestConstantFolding:
    def test_folds_point_mass_chain(self):
        const = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
        y = Uncertain(Gaussian(1.5, 0.3)) * const
        plan = compile_plan(y.node)
        opt = plan.optimized(1)
        assert len(opt.steps) == len(plan.steps) - 2
        record = records_by_name(opt)["constant-fold"]
        assert record.rewrites
        folded = [
            s.node for s in opt.steps if type(s.node) is PointMassNode
        ]
        assert len(folded) == 1
        assert folded[0].value == pytest.approx(3600.0 / 1609.344)

    def test_folded_value_preserves_dtype(self):
        const = Uncertain.pointmass(2) + Uncertain.pointmass(3)
        y = Uncertain(Gaussian(0.0, 1.0)) + const
        opt = compile_plan(y.node).optimized(1)
        pm = next(s.node for s in opt.steps if type(s.node) is PointMassNode)
        reference = (np.full(1, 2) + np.full(1, 3))[0]
        assert pm.value == reference
        assert np.asarray(pm.value).dtype == reference.dtype

    def test_apply_is_a_fold_barrier(self):
        const = Uncertain.pointmass(4.0).map(np.sqrt, vectorized=True) + 1.0
        y = Uncertain(Gaussian(0.0, 1.0)) + const
        plan = compile_plan(y.node)
        opt = plan.optimized(2)
        # Nothing folded: the constant chain passes through an ApplyNode.
        assert len(opt.steps) == len(plan.steps)
        record = records_by_name(opt)["constant-fold"]
        assert record.rejected
        assert "impure" in record.rejected[0]

    def test_bit_identity_after_folding(self):
        const = (Uncertain.pointmass(2.0) * 3.0) + 1.0
        y = (Uncertain(Gaussian(0.0, 1.0)) + const) * Uncertain(Uniform(0, 1))
        plan = compile_plan(y.node)
        opt = plan.optimized(2)
        assert len(opt.steps) < len(plan.steps)
        for seed in (0, 1, 12345):
            a = NumpyEngine().run(plan, 64, np.random.default_rng(seed))[
                plan.root_slot
            ]
            b = NumpyEngine().run(opt, 64, np.random.default_rng(seed))[
                opt.root_slot
            ]
            c = InterpreterEngine().run(plan, 64, np.random.default_rng(seed))[
                plan.root_slot
            ]
            np.testing.assert_array_equal(a, b)
            np.testing.assert_array_equal(a, c)


class TestCSE:
    def test_merges_duplicate_deterministic_nodes(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        # (x + 1) built twice from the same leaf: structurally identical
        # deterministic nodes over the same input.
        a = x + 1.0
        b = x + 1.0
        y = a * b
        plan = compile_plan(y.node)
        opt = plan.optimized(2)
        assert len(opt.steps) < len(plan.steps)
        record = records_by_name(opt)["cse"]
        assert record.rewrites

    def test_cse_changes_nothing_statistically_vs_manual_sharing(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        dup = (x + 1.0) * (x + 1.0)
        shared_term = x + 1.0
        shared = shared_term * shared_term
        p_dup = compile_plan(dup.node).optimized(2)
        p_shared = compile_plan(shared.node)
        assert len(p_dup.steps) == len(p_shared.steps)
        for seed in (3, 99):
            a = NumpyEngine().run(p_dup, 32, np.random.default_rng(seed))[
                p_dup.root_slot
            ]
            b = NumpyEngine().run(p_shared, 32, np.random.default_rng(seed))[
                p_shared.root_slot
            ]
            np.testing.assert_array_equal(a, b)

    def test_never_merges_stochastic_leaves(self):
        # Two independent Gaussians with identical parameters must stay
        # independent: x1 - x2 has variance 2, not 0.
        x1 = Uncertain(Gaussian(0.0, 1.0))
        x2 = Uncertain(Gaussian(0.0, 1.0))
        y = x1 - x2
        opt = compile_plan(y.node).optimized(2)
        assert len(opt.leaf_slots) == 2
        out = NumpyEngine().run(opt, 50_000, np.random.default_rng(5))[
            opt.root_slot
        ]
        assert float(np.var(out)) == pytest.approx(2.0, rel=0.05)

    def test_direct_pass_api(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = (x + 1.0) * (x + 1.0)
        root, record = eliminate_common_subexpressions(y.node)
        assert record.name == "cse"
        assert record.nodes_after < record.nodes_before

    def test_is_stochastic(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert is_stochastic(x.node)
        assert not is_stochastic(Uncertain.pointmass(1.0).node)
        assert not is_stochastic((x + 1.0).node)


class TestPipeline:
    def test_noop_returns_same_plan_object(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x + x
        plan = compile_plan(y.node)
        opt, records = optimize_plan(plan, 2)
        assert opt is plan
        assert [r.name for r in records] == [
            "constant-fold", "cse", "dead-slot-elim",
        ]

    def test_level_zero_is_identity(self):
        y = Uncertain(Gaussian(0.0, 1.0)) + (
            Uncertain.pointmass(1.0) + 2.0
        )
        plan = compile_plan(y.node)
        assert plan.optimized(0) is plan

    def test_optimized_is_cached_per_level(self):
        y = Uncertain(Gaussian(0.0, 1.0)) + (
            Uncertain.pointmass(1.0) + 2.0
        )
        plan = compile_plan(y.node)
        assert plan.optimized(2) is plan.optimized(2)

    def test_provenance_records_slot_delta(self):
        y = Uncertain(Gaussian(0.0, 1.0)) + (
            Uncertain.pointmass(1.0) + 2.0
        )
        opt = compile_plan(y.node).optimized(2)
        dse = records_by_name(opt)["dead-slot-elim"]
        assert dse.nodes_before > dse.nodes_after
        assert opt.optimization_level == 2

    def test_leaf_order_is_preserved(self):
        parts = [Uncertain(Gaussian(float(i), 1.0)) for i in range(5)]
        y = parts[0] + (parts[1] * (Uncertain.pointmass(2.0) + 1.0))
        for p in parts[2:]:
            y = y - p
        plan = compile_plan(y.node)
        opt = plan.optimized(2)
        original = [s.node for s in plan.steps if is_stochastic(s.node)]
        optimized = [s.node for s in opt.steps if is_stochastic(s.node)]
        assert original == optimized

    def test_rewrite_provenance_carries_stream_certificate(self):
        y = Uncertain(Gaussian(0.0, 1.0)) + (
            Uncertain.pointmass(1.0) + 2.0
        )
        opt = compile_plan(y.node).optimized(2)
        record = records_by_name(opt)["stream-certify"]
        assert record.certified
        assert record.subject == "optimizer-rewrite"
        # The PassRecord consumers must keep working alongside it.
        assert records_by_name(opt)["dead-slot-elim"].nodes_after > 0
        assert opt.certification_records() == (record,)

    def test_config_optimize_knob_controls_sampling(self):
        const = Uncertain.pointmass(2.0) * 3.0
        y = Uncertain(Gaussian(0.0, 1.0)) + const
        # Identical streams with the optimizer on, off, and at level 1.
        draws = {}
        for knob in (True, False, 1):
            with evaluation_config(optimize=knob):
                draws[knob] = y.samples(16, rng=np.random.default_rng(11))
        np.testing.assert_array_equal(draws[True], draws[False])
        np.testing.assert_array_equal(draws[True], draws[1])

    def test_memoised_context_draws_stay_unoptimized(self):
        from repro.core.sampling import SampleContext

        const = Uncertain.pointmass(2.0) * 3.0
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x + const
        ctx = SampleContext(n=8, rng=np.random.default_rng(2))
        y_vals = y.sample_with(ctx)
        x_vals = x.sample_with(ctx)
        # The shared leaf is consistent between the two roots, which
        # requires the memo keys (user nodes) to survive — i.e. the
        # unoptimized plan.
        np.testing.assert_array_equal(y_vals, x_vals + 6.0)


class TestPickleRoundTrip:
    def test_optimized_plan_survives_pickling(self):
        const = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
        y = Uncertain(Gaussian(1.5, 0.3)) * const
        opt = compile_plan(y.node).optimized(2)
        clone = pickle.loads(pickle.dumps(opt))
        assert clone.optimization_level == opt.optimization_level
        assert clone.structural_hash == opt.structural_hash
        assert len(clone.steps) == len(opt.steps)
        a = NumpyEngine().run(opt, 16, np.random.default_rng(4))[opt.root_slot]
        b = NumpyEngine().run(clone, 16, np.random.default_rng(4))[
            clone.root_slot
        ]
        np.testing.assert_array_equal(a, b)

    def test_raw_plan_pickles_at_level_zero(self):
        y = Uncertain(Gaussian(0.0, 1.0)) + 1.0
        plan = compile_plan(y.node)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.optimization_level == 0
        assert clone.structural_hash == plan.structural_hash
