"""Figure 15: the posterior predictive distribution of the Sobel network."""

from __future__ import annotations

import functools

import numpy as np

from repro.experiments.base import ExperimentResult, experiment
from repro.ml.evaluation import EDGE_THRESHOLD
from repro.ml.hmc import HMCConfig
from repro.ml.images import make_dataset
from repro.ml.parakeet import train_parakeet, train_parrot
from repro.rng import default_rng


@functools.lru_cache(maxsize=2)
def trained_models(seed: int, fast: bool):
    """Train Parrot and Parakeet once per (seed, protocol); both figure 15
    and figure 16 reuse the result."""
    n_train = 2_000 if fast else 5_000
    x_train, t_train = make_dataset(n_train, rng=default_rng(seed))
    x_eval, t_eval = make_dataset(500, rng=default_rng(seed + 1))
    parrot = train_parrot(
        x_train, t_train, epochs=150 if fast else 300, rng=default_rng(seed + 2)
    )
    hmc = HMCConfig(
        n_samples=30 if fast else 40,
        thin=5 if fast else 10,
        burn_in=100 if fast else 200,
    )
    parakeet = train_parakeet(
        x_train,
        t_train,
        pretrain_epochs=150 if fast else 300,
        hmc_config=hmc,
        rng=default_rng(seed + 3),
    )
    return x_train, t_train, x_eval, t_eval, parrot, parakeet


@experiment("fig15")
def run(seed: int = 15, fast: bool = True) -> ExperimentResult:
    """Reproduce Figure 15's anatomy on an interesting evaluation input.

    The paper shows a test input where Parrot's single prediction differs
    significantly from the true output, while the PPD spreads over other
    plausible predictions and assigns only partial evidence (~70%) to the
    edge conditional.  We pick the evaluation example where Parrot errs
    most across the 0.1 threshold and report the same quantities.
    """
    _, _, x_eval, t_eval, parrot, parakeet = trained_models(seed, fast)
    preds = parrot.predict_batch(x_eval)
    truth = np.asarray(t_eval)
    # Pick the paper's kind of example: Parrot's decision disagrees with the
    # truth while the PPD assigns *partial* evidence (the figure shows ~70%).
    from scipy.stats import norm

    ppd_all = parakeet.ppd_matrix(x_eval)
    evidence_all = np.mean(
        norm.sf(EDGE_THRESHOLD, loc=ppd_all, scale=max(parakeet.noise_sigma, 1e-9)),
        axis=1,
    )
    disagree = (preds > EDGE_THRESHOLD) != (truth > EDGE_THRESHOLD)
    pool = np.where(disagree)[0] if disagree.any() else np.arange(len(truth))
    idx = int(pool[np.argmin(np.abs(evidence_all[pool] - 0.7))])

    ppd = parakeet.predict(x_eval[idx])
    rng = default_rng(seed + 4)
    evidence = (ppd > EDGE_THRESHOLD).evidence(20_000, rng)
    rows = [
        {"quantity": "true sobel output", "value": float(truth[idx])},
        {"quantity": "Parrot's single prediction", "value": float(preds[idx])},
        {"quantity": "PPD mean", "value": float(ppd.expected_value(20_000, rng))},
        {"quantity": "PPD standard deviation", "value": float(ppd.sd(20_000, rng))},
        {"quantity": "evidence Pr[s > 0.1]", "value": float(evidence)},
        {
            "quantity": "Parrot edge decision",
            "value": float(preds[idx] > EDGE_THRESHOLD),
        },
        {"quantity": "true edge", "value": float(truth[idx] > EDGE_THRESHOLD)},
    ]
    claims = {
        "the PPD has real spread (distribution, not a point)": rows[3]["value"]
        > 0.005,
        "the evidence for the conditional is partial (not 0 or 1)": 0.02
        < evidence
        < 0.98,
        "Parrot's point decision disagrees with the truth on this input": rows[5][
            "value"
        ]
        != rows[6]["value"],
    }
    return ExperimentResult(
        "fig15", "PPD vs Parrot point prediction", rows, claims
    )
