"""Extension experiment: particle-filter fusion vs raw GPS fixes."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.gps.fusion import track_walk
from repro.gps.sensor import GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.rng import default_rng


@experiment("ext_fusion")
def run(seed: int = 21, fast: bool = True) -> ExperimentResult:
    """History + physics (the paper's future-work priors) as a filter.

    A pedestrian motion model fused with the Rayleigh fix likelihood
    should track a glitchy receiver substantially better than the raw
    fixes, and the filtered location remains an Uncertain value.
    """
    duration = 120.0 if fast else 600.0
    trace = generate_walk(WalkConfig(duration_s=duration), rng=default_rng(seed))
    rows = []
    improvements = []
    for label, sensor_kwargs in (
        ("iid 6m", dict(epsilon_m=6.0)),
        (
            "glitchy 6m",
            dict(epsilon_m=6.0, glitch_probability=0.03, glitch_scale_m=25.0),
        ),
    ):
        sensor = GpsSensor(rng=default_rng(seed + 1), **sensor_kwargs)
        result = track_walk(
            trace, sensor, n_particles=300, rng=default_rng(seed + 2)
        )
        rows.append(
            {
                "sensor": label,
                "raw_rmse_m": result.raw_rmse_m,
                "fused_rmse_m": result.fused_rmse_m,
                "improvement": result.improvement,
            }
        )
        improvements.append(result.improvement)
    claims = {
        "fusion improves tracking under iid noise": improvements[0] > 1.05,
        "fusion improves tracking under glitches": improvements[1] > 1.2,
        "fused error is below the raw error in both regimes": all(
            r["fused_rmse_m"] < r["raw_rmse_m"] for r in rows
        ),
    }
    return ExperimentResult(
        "ext_fusion", "sensor fusion: motion model + GPS likelihood", rows, claims
    )
