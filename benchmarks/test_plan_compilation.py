"""Microbenchmarks for the three-stage plan compiler.

Two workloads, both shaped like the paper's SPRT conditional (Section
4.3) — many small sequential batches (k=10) over a non-trivial network:

- ``sprt_compiled`` (the original bench): compiled numpy engine vs. the
  per-batch graph interpreter on a 24-node comparison network; asserts
  the compiled engine is at least 1.5x faster.
- ``fig08_fused``: the Figure 8 / GPS walking-speed expression over
  mixed distributions, run per "session" on fresh isomorphic graphs to
  exercise the structural plan cache, then timed on the interpreter,
  the optimized numpy engine, and the fused-kernel engine; asserts the
  fused engine is >= 5x the interpreter AND strictly faster than numpy.

Both write their numbers into sections of ``BENCH_plan.json`` at the
repo root (read-modify-write, so each test updates only its section).
"""

from __future__ import annotations

import json
import operator
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host

from repro.core.conditionals import evaluation_config
from repro.core.engines import get_engine
from repro.core.graph import BinaryOpNode, LeafNode, node_count
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Exponential, Gaussian, Uniform
from repro.rng import default_rng
from repro.runtime.metrics import RuntimeMetrics

BATCHES = 150
BATCH_K = 10
REPEATS = 7
SESSIONS = 8
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan.json"


def _update_results(section: str, payload: dict) -> None:
    """Merge one bench section into BENCH_plan.json without clobbering."""
    data: dict = {}
    if RESULT_PATH.exists():
        try:
            loaded = json.loads(RESULT_PATH.read_text())
            if isinstance(loaded, dict):
                data = loaded
        except (OSError, ValueError):
            pass
    data[section] = payload
    stamp_host(data)
    RESULT_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _sprt_shaped_root() -> BinaryOpNode:
    """A >= 20-node comparison network: a 12-leaf sum tested against a
    shared leaf, mimicking `usum(sensors) > threshold`."""
    leaves = [LeafNode(Gaussian(0.0, 1.0)) for _ in range(12)]
    acc = leaves[0]
    for leaf in leaves[1:]:
        acc = BinaryOpNode(operator.add, acc, leaf, "+")
    return BinaryOpNode(operator.gt, acc, leaves[0], ">")


def _run_batches(engine, plan, seed: int) -> np.ndarray:
    rng = default_rng(seed)
    chunks = [engine.sample(plan, BATCH_K, rng) for _ in range(BATCHES)]
    return np.concatenate(chunks)


def _best_time(engine, plan) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _run_batches(engine, plan, seed=0)
        best = min(best, time.perf_counter() - start)
    return best


def test_plan_compilation_speedup(benchmark):
    root = _sprt_shaped_root()
    nodes = node_count(root)
    assert nodes >= 20

    plan = compile_plan(root)
    compiled_engine = get_engine("numpy")
    interpreter = get_engine("interpreter")

    # Correctness before speed: both engines must emit the same stream.
    assert np.array_equal(
        _run_batches(compiled_engine, plan, seed=1),
        _run_batches(interpreter, plan, seed=1),
    )

    # Warm up (plan program specialization, allocator), then time.
    _run_batches(compiled_engine, plan, seed=0)
    compiled_s = _best_time(compiled_engine, plan)
    interpreted_s = _best_time(interpreter, plan)
    speedup = interpreted_s / compiled_s

    result = {
        "workload": {
            "nodes": nodes,
            "batches": BATCHES,
            "batch_k": BATCH_K,
            "repeats": REPEATS,
        },
        "compiled_engine": compiled_engine.name,
        "interpreted_engine": interpreter.name,
        "compiled_seconds": compiled_s,
        "interpreted_seconds": interpreted_s,
        "speedup": speedup,
        "compiled_batches_per_second": BATCHES / compiled_s,
        "interpreted_batches_per_second": BATCHES / interpreted_s,
    }
    _update_results("sprt_compiled", result)
    print()
    print(
        f"plan compilation: {nodes} nodes, {BATCHES} batches of k={BATCH_K}: "
        f"compiled {compiled_s * 1e3:.2f} ms, interpreted "
        f"{interpreted_s * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )

    benchmark.pedantic(
        lambda: _run_batches(compiled_engine, plan, seed=0), rounds=3, iterations=1
    )
    assert speedup >= 1.5, (
        f"compiled engine only {speedup:.2f}x faster than the interpreter "
        f"(need >= 1.5x); see {RESULT_PATH}"
    )


def _mean(fixes):
    acc = fixes[0]
    for f in fixes[1:]:
        acc = acc + f
    return acc / float(len(fixes))


WINDOW = 16  # GPS fixes per moving-average window (1 Hz receiver)


def _sliding_means(fixes):
    """Previous/current window means sharing the common middle sum.

    ``prev = (f0 + common) / w`` and ``cur = (common + fw) / w`` where
    ``common = f1 + ... + f(w-1)`` — the ``(y + x) + x`` sharing pattern
    of Figure 8, exactly as sliding-window user code writes it.
    """
    w = float(len(fixes) - 1)
    common = fixes[1]
    for f in fixes[2:-1]:
        common = common + f
    return (fixes[0] + common) / w, (common + fixes[-1]) / w


def _fig08_root():
    """GPS walking-speed detection in the Figure 8 dependence shape.

    The paper's GPS example (Fig. 5) smoothed over a window of fixes:
    each coordinate's previous/current position is a 16-fix moving
    average and the two windows *share* the 15-fix middle sum — the
    ``(y+x)+x`` sharing pattern of Figure 8 at scale.  The workload
    exercises every compiler stage the way real GPS code does: 34
    same-family Gaussian fixes (one coalesced bulk draw for the fused
    backend), degree→radian/earth-radius/mph→m·s⁻¹ unit-conversion
    chains built from named point-mass constants (constant-fold bait),
    repeated window divisors (structurally identical point masses, CSE
    bait), and the distance through a lifted ``np.sqrt``.  The seed
    interpreter re-walks the whole ~100-node DAG per batch; the
    optimized engines run the folded slot program and the fused engine
    collapses it into one generated kernel.
    """
    lat_fixes = [
        Uncertain(Gaussian(47.6097, 2.5e-5)) for _ in range(WINDOW + 1)
    ]
    lon_fixes = [
        Uncertain(Gaussian(-122.3331, 2.5e-5)) for _ in range(WINDOW + 1)
    ]
    prev_lat, cur_lat = _sliding_means(lat_fixes)
    prev_lon, cur_lon = _sliding_means(lon_fixes)
    dt = Uncertain(Uniform(0.9, 1.1))
    drift = Uncertain(Exponential(4.0))

    deg2rad = Uncertain.pointmass(np.pi) / Uncertain.pointmass(180.0)
    # IUGG mean earth radius R1 = (2a + b) / 3 from the WGS84 axes.
    earth_r = (
        Uncertain.pointmass(2.0) * Uncertain.pointmass(6_378_137.0)
        + Uncertain.pointmass(6_356_752.3)
    ) / Uncertain.pointmass(3.0)
    cos_lat = Uncertain.pointmass(0.6756)  # cos(47.6°), flat-earth step
    dy = (cur_lat * deg2rad - prev_lat * deg2rad) * earth_r
    dx = (cur_lon * deg2rad - prev_lon * deg2rad) * (earth_r * cos_lat)
    dist_m = (dx * dx + dy * dy).map(np.sqrt, vectorized=True)
    speed_mps = (dist_m + drift) / dt
    # Threshold stated in mph (the paper's 4 mph walk test), converted to
    # the native m/s of the speed estimate through named constants.
    threshold_mps = (
        Uncertain.pointmass(4.0)
        * (Uncertain.pointmass(1.609344) * Uncertain.pointmass(1000.0))
        / Uncertain.pointmass(3600.0)
    )
    return (speed_mps > threshold_mps).node


def _run_batches_raw(engine, plan, seed: int) -> np.ndarray:
    """Like :func:`_run_batches` but through the raw ``run`` entry point
    (engines.py: "``run`` stays raw for callers that benchmark")."""
    rng = default_rng(seed)
    root = plan.root_slot
    chunks = [engine.run(plan, BATCH_K, rng)[root] for _ in range(BATCHES)]
    return np.concatenate(chunks)


def _best_time_raw(engine, plan) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _run_batches_raw(engine, plan, seed=0)
        best = min(best, time.perf_counter() - start)
    return best


def test_fused_fig08_speedup(benchmark):
    # One fresh isomorphic graph per "session": the structural cache must
    # recognise the repeated shape so fused kernels amortise across them.
    metrics = RuntimeMetrics()
    with evaluation_config(metrics=metrics):
        plans = [compile_plan(_fig08_root()) for _ in range(SESSIONS)]
    nodes = node_count(plans[0].root)
    assert nodes >= 20
    plan_stats = metrics.snapshot()["plans"]
    structural_hits = plan_stats["structural_hits"]
    structural_misses = plan_stats["structural_misses"]
    assert structural_hits >= SESSIONS - 1

    plan = plans[0]
    opt = plan.optimized(2)
    fused = get_engine("fused")
    compiled = get_engine("numpy")
    interpreter = get_engine("interpreter")

    # Correctness before speed: all three backends, one stream.  The
    # fused and numpy engines run the optimized plan, the seed
    # interpreter re-walks the raw DAG — the bit-identity contract
    # spans the optimizer, the codegen, and the engines.
    reference = _run_batches_raw(interpreter, plan, seed=1)
    assert np.array_equal(_run_batches_raw(compiled, opt, seed=1), reference)
    assert np.array_equal(_run_batches_raw(fused, opt, seed=1), reference)

    _run_batches_raw(fused, opt, seed=0)  # warm-up: codegen + verification
    _run_batches_raw(compiled, opt, seed=0)
    fused_s = _best_time_raw(fused, opt)
    compiled_s = _best_time_raw(compiled, opt)
    interpreted_s = _best_time_raw(interpreter, plan)
    fused_speedup = interpreted_s / fused_s
    compiled_speedup = interpreted_s / compiled_s

    result = {
        "workload": {
            "nodes": nodes,
            "sessions": SESSIONS,
            "batches": BATCHES,
            "batch_k": BATCH_K,
            "repeats": REPEATS,
        },
        "interpreted_seconds": interpreted_s,
        "compiled_seconds": compiled_s,
        "fused_seconds": fused_s,
        "speedup_compiled_vs_interpreter": compiled_speedup,
        "speedup_fused_vs_interpreter": fused_speedup,
        "speedup_fused_vs_compiled": compiled_s / fused_s,
        "structural_cache": {
            "sessions": SESSIONS,
            "hits": structural_hits,
            "misses": structural_misses,
            "hit_rate": structural_hits
            / max(1, structural_hits + structural_misses),
        },
    }
    _update_results("fig08_fused", result)
    print()
    print(
        f"fig08 fused: {nodes} nodes, {BATCHES} batches of k={BATCH_K}: "
        f"interpreted {interpreted_s * 1e3:.2f} ms, compiled "
        f"{compiled_s * 1e3:.2f} ms, fused {fused_s * 1e3:.2f} ms "
        f"({fused_speedup:.1f}x vs interpreter, "
        f"{compiled_s / fused_s:.1f}x vs numpy); structural cache "
        f"{structural_hits}/{structural_hits + structural_misses} hits"
    )

    benchmark.pedantic(
        lambda: _run_batches_raw(fused, opt, seed=0), rounds=3, iterations=1
    )
    assert fused_speedup >= 5.0, (
        f"fused engine only {fused_speedup:.2f}x faster than the "
        f"interpreter (need >= 5x); see {RESULT_PATH}"
    )
    assert fused_s < compiled_s, (
        f"fused engine ({fused_s * 1e3:.2f} ms) must beat the numpy "
        f"engine ({compiled_s * 1e3:.2f} ms); see {RESULT_PATH}"
    )


def test_plan_cache_amortises_compilation(benchmark):
    """Compiling once must dominate: repeated compile_plan calls on the
    same root are cache hits, not re-lowering."""
    root = _sprt_shaped_root()
    first = compile_plan(root)
    result = benchmark(lambda: compile_plan(root))
    assert result is first
