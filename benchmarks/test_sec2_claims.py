"""Section 2 bench: the compounded-error quantitative claims."""

from benchmarks.conftest import run_and_report


def test_sec2_claims(benchmark):
    run_and_report(benchmark, "sec2", fast=True)
