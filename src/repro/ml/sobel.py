"""The Sobel operator — ground truth for the Parakeet case study.

The Sobel operator estimates the gradient of image intensity at a pixel
from its 3x3 neighbourhood.  Edge detectors report an edge when the
gradient magnitude is large; the paper's conditional is ``s(p) > 0.1``.
"""

from __future__ import annotations

import numpy as np

#: Horizontal and vertical Sobel kernels.
SOBEL_X = np.array([[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]])
SOBEL_Y = SOBEL_X.T

#: Maximum possible |gx| (= |gy|) for intensities in [0, 1]; used to
#: normalise magnitudes into [0, 1] so the 0.1 threshold is meaningful.
_MAX_COMPONENT = 4.0
_MAX_MAGNITUDE = np.sqrt(2.0) * _MAX_COMPONENT


def sobel_magnitude(window: np.ndarray) -> float | np.ndarray:
    """Normalised gradient magnitude of one or many 3x3 windows.

    ``window`` is (3, 3) for a single pixel or (n, 9)/(n, 3, 3) for a
    batch; intensities are expected in [0, 1] and outputs lie in [0, 1].
    """
    w = np.asarray(window, dtype=float)
    single = w.shape == (3, 3)
    w = w.reshape(-1, 3, 3)
    gx = np.tensordot(w, SOBEL_X, axes=([1, 2], [0, 1]))
    gy = np.tensordot(w, SOBEL_Y, axes=([1, 2], [0, 1]))
    mag = np.hypot(gx, gy) / _MAX_MAGNITUDE
    return float(mag[0]) if single else mag


def sobel_map(image: np.ndarray) -> np.ndarray:
    """Gradient-magnitude map of a full image (interior pixels only)."""
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or min(image.shape) < 3:
        raise ValueError(f"need a 2-D image at least 3x3, got shape {image.shape}")
    rows, cols = image.shape
    windows = np.lib.stride_tricks.sliding_window_view(image, (3, 3))
    return np.asarray(sobel_magnitude(windows.reshape(-1, 3, 3))).reshape(
        rows - 2, cols - 2
    )


def extract_windows(image: np.ndarray) -> np.ndarray:
    """All interior 3x3 windows of an image, flattened to (n, 9)."""
    image = np.asarray(image, dtype=float)
    windows = np.lib.stride_tricks.sliding_window_view(image, (3, 3))
    return windows.reshape(-1, 9)
