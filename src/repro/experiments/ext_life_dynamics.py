"""Extension experiment: compounding errors in free-running noisy Life."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.life.dynamics import compare_free_dynamics
from repro.rng import default_rng


@experiment("ext_life_dynamics")
def run(seed: int = 22, fast: bool = True) -> ExperimentResult:
    """What Figure 14 doesn't show: decision errors compound.

    Each variant evolves its *own* board; we measure how quickly each
    trajectory diverges from the exact evolution of the same seed.
    """
    protocol = (
        dict(rows=10, cols=10, generations=6, max_samples=200)
        if fast
        else dict(rows=20, cols=20, generations=15, max_samples=500)
    )
    sigma = 0.2
    traces = compare_free_dynamics(sigma, rng=default_rng(seed), **protocol)
    rows = [
        {
            "variant": t.variant,
            "sigma": t.sigma,
            "final_disagreement": t.final_disagreement,
            "generations_below_5pct": t.generations_until(0.05),
            "final_population_drift": abs(
                int(t.population_noisy[-1]) - int(t.population_true[-1])
            ),
        }
        for t in traces
    ]
    by = {r["variant"]: r for r in rows}
    claims = {
        "NaiveLife diverges from the exact evolution": by["NaiveLife"][
            "final_disagreement"
        ]
        > 0.05,
        "BayesLife diverges least": by["BayesLife"]["final_disagreement"]
        == min(r["final_disagreement"] for r in rows),
        "BayesLife stays pinned to truth longest": by["BayesLife"][
            "generations_below_5pct"
        ]
        >= max(r["generations_below_5pct"] for r in rows),
    }
    return ExperimentResult(
        "ext_life_dynamics", "compounding decisions in free-running Life", rows, claims
    )
