"""Tests for network pretty-printing and DOT export."""

import pytest

from repro.core.uncertain import Uncertain
from repro.core.viz import describe, summary, to_dot
from repro.dists import Gaussian


@pytest.fixture
def shared_expr():
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return (y + x) + x


class TestDescribe:
    def test_marks_leaves(self, shared_expr):
        text = describe(shared_expr)
        assert "(leaf)" in text
        assert "X" in text and "Y" in text

    def test_shared_nodes_marked(self, shared_expr):
        text = describe(shared_expr)
        assert "@shared" in text
        # X appears once in full, once as a reference.
        assert text.count("X #") == 1

    def test_max_depth_guard(self):
        expr = Uncertain(Gaussian(0, 1))
        for _ in range(30):
            expr = expr + 1.0
        text = describe(expr, max_depth=5)
        assert "max depth reached" in text

    def test_accepts_raw_node(self, shared_expr):
        assert describe(shared_expr.node) == describe(shared_expr)

    def test_rejects_non_node(self):
        with pytest.raises(TypeError):
            describe(42)


class TestToDot:
    def test_valid_structure(self, shared_expr):
        dot = to_dot(shared_expr)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert dot.count("->") == 4  # Y->A, X->A, A->B, X->B

    def test_leaves_shaded(self, shared_expr):
        dot = to_dot(shared_expr)
        assert dot.count("fillcolor") == 2  # X and Y

    def test_quotes_escaped(self):
        u = Uncertain(Gaussian(0, 1), label='with "quotes"')
        assert '\\"' not in to_dot(u)  # replaced, not escaped
        assert "'quotes'" in to_dot(u)


class TestSummary:
    def test_counts(self, shared_expr):
        info = summary(shared_expr)
        assert info == {"nodes": 4, "leaves": 2, "depth": 2, "root": "+"}

    def test_single_leaf(self):
        info = summary(Uncertain(Gaussian(0, 1)))
        assert info["nodes"] == 1 and info["depth"] == 0
