"""Cauchy distribution — a pathological stress case for sampling runtimes.

The Cauchy has no mean or variance, which makes it an excellent failure
probe: the expected-value operator must not silently pretend to converge,
and conditionals must still work (evidence is always well defined).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, REAL_LINE, Support


class Cauchy(Distribution):
    """Cauchy(loc, scale)."""

    def __init__(self, loc: float = 0.0, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.loc = float(loc)
        self.scale = float(scale)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self.loc + self.scale * rng.standard_cauchy(size=n)

    def log_pdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / self.scale
        return -np.log1p(z * z) - math.log(math.pi * self.scale)

    def cdf(self, x):
        z = (np.asarray(x, dtype=float) - self.loc) / self.scale
        return 0.5 + np.arctan(z) / math.pi

    @property
    def mean(self) -> float:
        raise NotImplementedError("the Cauchy distribution has no mean")

    @property
    def variance(self) -> float:
        raise NotImplementedError("the Cauchy distribution has no variance")

    @property
    def median(self) -> float:
        return self.loc

    @property
    def support(self) -> Support:
        return REAL_LINE
