"""Exponential and Gamma distributions."""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.dists.base import Distribution, NON_NEGATIVE, Support


class Exponential(Distribution):
    """Exponential(rate) over non-negative reals; mean = 1/rate."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    def bulk_draw_spec(self):
        # ``rng.exponential(scale, n)`` is ``scale * standard_exponential``
        # per value, so the affine form (loc 0) is bit-identical.
        return ("standard_exponential", 0.0, 1.0 / self.rate)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, math.log(self.rate) - self.rate * x, -np.inf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-self.rate * x), 0.0)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def variance(self) -> float:
        return 1.0 / self.rate**2

    @property
    def support(self) -> Support:
        return NON_NEGATIVE


class Gamma(Distribution):
    """Gamma(shape, rate) with density proportional to x^(k-1) e^(-rate x)."""

    def __init__(self, shape: float, rate: float) -> None:
        if shape <= 0 or rate <= 0:
            raise ValueError(f"shape and rate must be positive, got {shape}, {rate}")
        self.shape = float(shape)
        self.rate = float(rate)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore", invalid="ignore"):
            lp = (
                self.shape * math.log(self.rate)
                - special.gammaln(self.shape)
                + (self.shape - 1) * np.log(x)
                - self.rate * x
            )
        return np.where(x > 0, lp, -np.inf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x > 0, special.gammainc(self.shape, self.rate * x), 0.0)

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        return self.shape / self.rate**2

    @property
    def support(self) -> Support:
        return NON_NEGATIVE
