"""Tests for the Sobel operator and the synthetic image corpus."""

import numpy as np
import pytest

from repro.ml.images import make_dataset, synthetic_image
from repro.ml.sobel import extract_windows, sobel_magnitude, sobel_map
from repro.rng import default_rng


class TestSobelMagnitude:
    def test_flat_window_has_zero_gradient(self):
        assert sobel_magnitude(np.full((3, 3), 0.7)) == pytest.approx(0.0, abs=1e-12)

    def test_vertical_edge(self):
        window = np.array([[0, 0, 1], [0, 0, 1], [0, 0, 1]], dtype=float)
        # gx = 4, gy = 0 -> magnitude 4 / (4 sqrt 2) = 1/sqrt2.
        assert sobel_magnitude(window) == pytest.approx(1 / np.sqrt(2))

    def test_horizontal_edge_symmetry(self):
        v = np.array([[0, 0, 1], [0, 0, 1], [0, 0, 1]], dtype=float)
        h = v.T
        assert sobel_magnitude(v) == pytest.approx(sobel_magnitude(h))

    def test_normalisation_bound(self, rng):
        windows = rng.random((500, 3, 3))
        mags = sobel_magnitude(windows)
        assert np.all(mags >= 0.0) and np.all(mags <= 1.0)

    def test_batch_flat_input(self):
        flat = np.zeros((5, 9))
        assert np.all(sobel_magnitude(flat) == 0.0)

    def test_rotation_invariance_of_diagonal(self):
        window = np.array([[1, 1, 0], [1, 0, 0], [0, 0, 0]], dtype=float)
        rotated = np.rot90(window).copy()
        assert sobel_magnitude(window) == pytest.approx(sobel_magnitude(rotated))


class TestSobelMap:
    def test_shape(self):
        image = np.zeros((10, 12))
        assert sobel_map(image).shape == (8, 10)

    def test_detects_edge_location(self):
        image = np.zeros((9, 9))
        image[:, 5:] = 1.0
        smap = sobel_map(image)
        # The interior columns adjacent to the step carry the gradient.
        assert smap[:, 3].max() > 0.3
        assert np.all(smap[:, 0] == 0.0)

    def test_small_image_rejected(self):
        with pytest.raises(ValueError):
            sobel_map(np.zeros((2, 5)))

    def test_extract_windows_count(self):
        image = np.zeros((5, 6))
        assert extract_windows(image).shape == (3 * 4, 9)


class TestSyntheticImage:
    def test_range(self):
        image = synthetic_image(32, rng=default_rng(0))
        assert image.min() >= 0.0 and image.max() <= 1.0

    def test_contains_edges(self):
        image = synthetic_image(48, rng=default_rng(1))
        assert sobel_map(image).max() > 0.2

    def test_deterministic(self):
        a = synthetic_image(24, rng=default_rng(2))
        b = synthetic_image(24, rng=default_rng(2))
        assert np.array_equal(a, b)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            synthetic_image(4)


class TestMakeDataset:
    def test_shapes(self):
        x, t = make_dataset(200, rng=default_rng(3))
        assert x.shape == (200, 9)
        assert t.shape == (200,)

    def test_targets_are_sobel_of_inputs(self):
        x, t = make_dataset(50, rng=default_rng(4))
        recomputed = sobel_magnitude(x.reshape(-1, 3, 3))
        assert np.allclose(t, recomputed)

    def test_mix_of_edges_and_flats(self):
        _, t = make_dataset(2_000, rng=default_rng(5))
        assert 0.05 < np.mean(t > 0.1) < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            make_dataset(0)
