"""Pass 1: graph diagnostics over a compiled evaluation plan.

:func:`analyze_plan` runs the interval abstract interpreter
(:mod:`repro.analysis.intervals`) over an
:class:`~repro.core.plan.EvaluationPlan` and reports the uncertainty bugs
that are visible *before any sampling runs*:

- **UNC101** — ``/``, ``//`` or ``%`` whose divisor's support contains 0:
  joint samples will silently produce ``inf``/NaN (the paper's Section 2
  "silently compounding error" bug, in its sharpest form).
- **UNC102** — ``log``/``sqrt``-family functions whose operand support
  crosses the domain boundary, so some samples are NaN.
- **UNC103** — a comparison whose operands' supports are ordered or
  disjoint: ``Pr[cond]`` is provably 0 or 1, so the SPRT at every
  conditional on it is wasted work (and an explicit ``.pr(alpha)`` can
  never change the answer).
- **UNC104** — a self-comparison of the *same* node (``x == x``):
  shared-variable semantics (Figure 8) make it a tautology.
- **UNC105** — a sub-DAG built only from point masses: every joint sample
  recomputes a constant; folding it would shrink the plan (reported with
  the estimated slot saving).
- **UNC106** — a comparison the interval domain reports as undecided but
  the affine (dependence-tracking) domain decides: correlation between
  the operands collapses the difference to one side of zero, so the SPRT
  is wasted work and only visible as such with dependence tracking.
- **UNC107** — spurious independence: the two operands of a comparison,
  ``-`` or ``/`` are *structurally identical* sub-DAGs drawing from
  *disjoint* stochastic leaves — almost always a reconstruction of a
  value that was meant to share its ancestors (the inverse of the
  Figure 8 bug).

Diagnostics are data, not text: the same records feed the text/JSON
reporters, ``Uncertain.diagnose()``, and the opt-in compile-time hook
(:func:`warn_on_diagnostics`).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any

from repro.analysis.intervals import (
    BOOL,
    COMPARISON_SYMBOLS,
    DIVISION_SYMBOLS,
    DOMAIN_BOUNDARIES,
    Interval,
    infer_intervals,
)
from repro.analysis.rules import ALL_RULES, ERROR, severity_at_least
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    Node,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import EvaluationPlan, compile_plan


class UncertaintyWarning(UserWarning):
    """Runtime warning carrying a compile-time uncertainty diagnostic."""


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding from either static pass.

    Graph diagnostics carry ``slot``/``node_uid``/``node_label``; source
    lints carry ``path``/``line``/``col``.  ``data`` holds rule-specific
    structured extras (intervals, estimated savings, ...).
    """

    rule: str
    severity: str
    message: str
    # -- graph pass location -----------------------------------------------
    slot: int | None = None
    node_uid: int | None = None
    node_label: str | None = None
    # -- lint pass location ------------------------------------------------
    path: str | None = None
    line: int | None = None
    col: int | None = None
    data: dict[str, Any] = dataclasses.field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        out = {"rule": self.rule, "severity": self.severity, "message": self.message}
        if self.path is not None:
            out.update(path=self.path, line=self.line, col=self.col)
        else:
            out.update(slot=self.slot, node_uid=self.node_uid,
                       node_label=self.node_label)
        if self.data:
            out["data"] = dict(self.data)
        return out

    def location(self) -> str:
        if self.path is not None:
            return f"{self.path}:{self.line}:{self.col}"
        return f"slot {self.slot} ({self.node_label!r} #{self.node_uid})"


def _diag(rule_id: str, message: str, step, **data: Any) -> Diagnostic:
    rule = ALL_RULES[rule_id]
    return Diagnostic(
        rule=rule.id,
        severity=rule.severity,
        message=message,
        slot=step.slot,
        node_uid=step.node.uid,
        node_label=step.node.label,
        data=data,
    )


# ---------------------------------------------------------------------------
# Individual rule checks.  Each takes the plan plus the inferred intervals
# and yields diagnostics; analyze_plan stitches them together.
# ---------------------------------------------------------------------------


def _check_division(plan: EvaluationPlan, intervals: list[Interval]):
    for step in plan.steps:
        node = step.node
        if isinstance(node, BinaryOpNode) and node.label in DIVISION_SYMBOLS:
            divisor = intervals[step.parent_slots[1]]
            if divisor.contains_zero:
                yield _diag(
                    "UNC101",
                    f"divisor of {node.label!r} has support "
                    f"{divisor} which contains 0; samples can be inf/NaN",
                    step,
                    divisor_support=[divisor.lower, divisor.upper],
                )


def _check_domains(plan: EvaluationPlan, intervals: list[Interval]):
    for step in plan.steps:
        node = step.node
        if isinstance(node, (UnaryOpNode, ApplyNode)) and len(step.parent_slots) == 1:
            escapes = DOMAIN_BOUNDARIES.get(node.label)
            if escapes is not None:
                operand = intervals[step.parent_slots[0]]
                if escapes(operand):
                    yield _diag(
                        "UNC102",
                        f"{node.label!r} applied to support {operand}, which "
                        "crosses the function's domain boundary; some "
                        "samples will be NaN",
                        step,
                        operand_support=[operand.lower, operand.upper],
                    )
        elif isinstance(node, BinaryOpNode) and node.label == "**":
            base = intervals[step.parent_slots[0]]
            exponent = intervals[step.parent_slots[1]]
            fractional = not (
                exponent.is_point and float(exponent.lower).is_integer()
            )
            if base.lower < 0 and fractional:
                yield _diag(
                    "UNC102",
                    f"'**' with base support {base} (negative values) and a "
                    "non-integer exponent; some samples will be NaN",
                    step,
                    base_support=[base.lower, base.upper],
                    exponent_support=[exponent.lower, exponent.upper],
                )


def _check_decidable(plan: EvaluationPlan, intervals: list[Interval]):
    for step in plan.steps:
        node = step.node
        if not (isinstance(node, BinaryOpNode) and node.label in COMPARISON_SYMBOLS):
            continue
        left, right = node.parents
        if left is right:
            # UNC104 owns the self-comparison case.
            continue
        result = intervals[step.slot]
        if result.is_point:
            verdict = "true" if result.lower == 1.0 else "false"
            yield _diag(
                "UNC103",
                f"comparison {node.label!r} is statically {verdict}: operand "
                f"supports {intervals[step.parent_slots[0]]} vs "
                f"{intervals[step.parent_slots[1]]} never overlap the "
                "other way, so Pr is exactly "
                f"{'1' if verdict == 'true' else '0'} and the SPRT is "
                "wasted work",
                step,
                decided=verdict == "true",
            )


_ALWAYS_TRUE_SELF = frozenset({"==", "<=", ">="})
_ALWAYS_FALSE_SELF = frozenset({"<", ">", "!="})


def _check_self_comparison(plan: EvaluationPlan, intervals: list[Interval]):
    for step in plan.steps:
        node = step.node
        if not (isinstance(node, BinaryOpNode) and node.label in COMPARISON_SYMBOLS):
            continue
        left, right = node.parents
        if left is not right:
            continue
        verdict = node.label in _ALWAYS_TRUE_SELF
        yield _diag(
            "UNC104",
            f"self-comparison 'x {node.label} x' on a shared node is always "
            f"{str(verdict).lower()} under joint-sample semantics (Figure 8)",
            step,
            decided=verdict,
        )


def _check_constant_folding(plan: EvaluationPlan, intervals: list[Interval]):
    # A node is constant when its whole sub-DAG is point masses combined by
    # deterministic ops (Binary/Unary/Apply draw no randomness: their
    # evaluate_batch never touches the rng).
    constant: dict[int, bool] = {}
    subtree_slots: dict[int, int] = {}
    for step in plan.steps:
        node = step.node
        if isinstance(node, PointMassNode):
            constant[step.slot] = True
            subtree_slots[step.slot] = 1
        elif isinstance(node, (BinaryOpNode, UnaryOpNode, ApplyNode)) and step.parent_slots:
            if all(constant.get(s, False) for s in step.parent_slots):
                constant[step.slot] = True
                # Count distinct slots in the constant sub-DAG.
                seen: set[int] = set()
                stack = [step.slot]
                while stack:
                    s = stack.pop()
                    if s in seen:
                        continue
                    seen.add(s)
                    stack.extend(plan.steps[s].parent_slots)
                subtree_slots[step.slot] = len(seen)
            else:
                constant[step.slot] = False
        else:
            constant[step.slot] = False
    # Maximal constant nodes: constant, non-leaf, and not consumed solely
    # by other constant nodes (or they are the root).
    consumers: dict[int, list[int]] = {}
    for step in plan.steps:
        for parent_slot in step.parent_slots:
            consumers.setdefault(parent_slot, []).append(step.slot)
    for step in plan.steps:
        slot = step.slot
        if not constant.get(slot) or isinstance(step.node, PointMassNode):
            continue
        used_by = consumers.get(slot, [])
        if used_by and all(constant.get(c, False) for c in used_by):
            continue
        saving = subtree_slots[slot] - 1
        value = intervals[slot]
        value_note = f" (value {value.lower:g})" if value.is_point else ""
        # The optimizer's constant-fold pass performs this exact rewrite —
        # except across ApplyNode, which it treats as a fold barrier
        # (lifted user functions may be impure).
        barrier = _has_apply_barrier(plan, slot)
        level = _optimizer_level()
        if level >= 1 and not barrier:
            message = (
                f"sub-DAG rooted at {step.node.label!r} is built only from "
                f"point masses{value_note}; folded by pass constant-fold "
                f"(optimize={level}): {saving} slot(s) eliminated from the "
                "executed program"
            )
            folded = True
        elif level >= 1:
            message = (
                f"sub-DAG rooted at {step.node.label!r} is built only from "
                f"point masses{value_note}, but contains a lifted function "
                "(a constant-fold barrier: it may be impure), so the "
                f"optimizer leaves its {saving} slot(s) in place"
            )
            folded = False
        else:
            message = (
                f"sub-DAG rooted at {step.node.label!r} is built only from "
                f"point masses{value_note}; folding it to one constant "
                f"would save {saving} slot(s) per joint sample (enable "
                "with evaluation_config(optimize=1))"
            )
            folded = False
        yield _diag(
            "UNC105",
            message,
            step,
            slots_saved=saving,
            folded=folded,
            fold_pass="constant-fold",
        )


def _check_correlated_comparisons(plan: EvaluationPlan,
                                  intervals: list[Interval], forms):
    """UNC106: comparisons only the dependence-tracking domain decides."""
    for step in plan.steps:
        node = step.node
        if not (isinstance(node, BinaryOpNode) and node.label in COMPARISON_SYMBOLS):
            continue
        left, right = node.parents
        if left is right:
            continue  # UNC104 owns self-comparisons.
        if intervals[step.slot].is_point:
            continue  # UNC103 owns interval-decidable comparisons.
        result = forms[step.slot].range
        if not result.is_point:
            continue
        a, b = step.parent_slots
        shared = sorted(forms[a].symbols & forms[b].symbols)
        verdict = "true" if result.lower == 1.0 else "false"
        yield _diag(
            "UNC106",
            f"comparison {node.label!r} is statically {verdict}, but only "
            "the dependence-tracking affine domain can see it: the operands "
            f"share {len(shared)} stochastic leaf slot(s) and their "
            "difference collapses to one side of zero, so Pr is exactly "
            f"{'1' if verdict == 'true' else '0'} and the SPRT is wasted "
            "work (invisible to interval analysis)",
            step,
            decided=verdict == "true",
            shared_leaf_slots=shared,
        )


def _stochastic_leaf_slots(plan: EvaluationPlan) -> list[frozenset[int]]:
    out: list[frozenset[int]] = [frozenset()] * len(plan.steps)
    for step in plan.steps:
        if step.parent_slots:
            acc: set[int] = set()
            for s in step.parent_slots:
                acc |= out[s]
            out[step.slot] = frozenset(acc)
        elif not isinstance(step.node, PointMassNode):
            out[step.slot] = frozenset((step.slot,))
    return out


def _subtree_fingerprint(plan: EvaluationPlan, slot: int, cache: dict):
    """An exact local fingerprint of the sub-DAG below ``slot``.

    Reachable slots are renumbered locally (ascending slot order is a
    valid topological order), so two sub-DAGs get equal fingerprints iff
    they are isomorphic *as DAGs* — unlike Merkle-style subtree hashing
    this distinguishes ``x + x`` from ``x1 + x2``.  Returns ``None`` for
    structurally opaque nodes (unhashable params or callables).
    """
    if slot in cache:
        return cache[slot]
    from repro.core.structural import StructuralOpaque, node_token

    reachable: set[int] = set()
    stack = [slot]
    while stack:
        s = stack.pop()
        if s in reachable:
            continue
        reachable.add(s)
        stack.extend(plan.steps[s].parent_slots)
    ordered = sorted(reachable)
    local = {s: i for i, s in enumerate(ordered)}
    tokens = []
    try:
        for s in ordered:
            step = plan.steps[s]
            parents = tuple(local[p] for p in step.parent_slots)
            tokens.append(node_token(step.node, parents))
        fingerprint = tuple(tokens)
    except StructuralOpaque:
        fingerprint = None
    cache[slot] = fingerprint
    return fingerprint


_UNC107_SYMBOLS = COMPARISON_SYMBOLS | {"-", "/"}


def _check_spurious_independence(plan: EvaluationPlan,
                                 intervals: list[Interval]):
    """UNC107: identical reconstructions compared as if independent."""
    stochastic = _stochastic_leaf_slots(plan)
    cache: dict = {}
    for step in plan.steps:
        node = step.node
        if not (isinstance(node, BinaryOpNode) and node.label in _UNC107_SYMBOLS):
            continue
        if len(step.parent_slots) != 2:
            continue
        a, b = step.parent_slots
        if a == b:
            continue
        # Both operands must be composite (an iid leaf pair like
        # Gaussian - Gaussian is idiomatic, not a bug) and stochastic.
        if not plan.steps[a].parent_slots or not plan.steps[b].parent_slots:
            continue
        if not stochastic[a] or not stochastic[b]:
            continue
        if stochastic[a] & stochastic[b]:
            continue  # genuinely shared ancestors: dependence is modeled.
        fp_a = _subtree_fingerprint(plan, a, cache)
        if fp_a is None or fp_a != _subtree_fingerprint(plan, b, cache):
            continue
        yield _diag(
            "UNC107",
            f"operands of {node.label!r} are structurally identical "
            f"sub-DAGs ({len(fp_a)} node(s) each) built from disjoint "
            "stochastic leaves; if they are meant to be the same quantity, "
            "reuse one value so the dependence is modeled (rebuilding it "
            "samples an independent copy and silently changes the "
            "distribution of the result)",
            step,
            subtree_nodes=len(fp_a),
            left_leaf_slots=sorted(stochastic[a]),
            right_leaf_slots=sorted(stochastic[b]),
        )


def _has_apply_barrier(plan: EvaluationPlan, slot: int) -> bool:
    """Does the sub-DAG below ``slot`` contain an ``ApplyNode``?"""
    seen: set[int] = set()
    stack = [slot]
    while stack:
        s = stack.pop()
        if s in seen:
            continue
        seen.add(s)
        if isinstance(plan.steps[s].node, ApplyNode):
            return True
        stack.extend(plan.steps[s].parent_slots)
    return False


def _optimizer_level() -> int:
    """The optimizer level active in the ambient evaluation config."""
    from repro.core.conditionals import get_config
    from repro.core.optimizer import resolve_level

    return resolve_level(get_config().optimize)


def analyze_plan(plan: EvaluationPlan) -> list[Diagnostic]:
    """Run every graph rule over ``plan``; returns diagnostics in slot order."""
    from repro.analysis.affine import infer_affine

    intervals = infer_intervals(plan)
    forms = infer_affine(plan, intervals)
    diagnostics: list[Diagnostic] = []
    for check in (
        _check_division,
        _check_domains,
        _check_decidable,
        _check_self_comparison,
        _check_constant_folding,
    ):
        diagnostics.extend(check(plan, intervals))
    diagnostics.extend(_check_correlated_comparisons(plan, intervals, forms))
    diagnostics.extend(_check_spurious_independence(plan, intervals))
    diagnostics.sort(key=lambda d: (d.slot or 0, d.rule))
    return diagnostics


def analyze(value) -> list[Diagnostic]:
    """Analyze an ``Uncertain`` value or raw graph ``Node``.

    Compiles (or reuses) the evaluation plan for the value's network and
    runs :func:`analyze_plan` over it.
    """
    node = getattr(value, "node", value)
    if not isinstance(node, Node):
        raise TypeError(
            f"expected an Uncertain or Node, got {type(value).__name__}"
        )
    return analyze_plan(compile_plan(node))


def warn_on_diagnostics(plan: EvaluationPlan, floor: str = ERROR) -> list[Diagnostic]:
    """``analyze=`` hook for :func:`~repro.core.plan.compile_plan`.

    Emits one :class:`UncertaintyWarning` per diagnostic at or above
    ``floor`` severity.  Because ``compile_plan`` only invokes the hook on
    fresh compiles (cache misses), each cached plan warns at most once.
    """
    diagnostics = analyze_plan(plan)
    for diagnostic in diagnostics:
        if severity_at_least(diagnostic.severity, floor):
            warnings.warn(
                UncertaintyWarning(
                    f"{diagnostic.rule} at {diagnostic.location()}: "
                    f"{diagnostic.message}"
                ),
                stacklevel=3,
            )
    return diagnostics


def inferred_supports(value) -> dict[int, Interval]:
    """Map node uid -> inferred interval for an ``Uncertain``/``Node``.

    Exposed for the CLI's ``graph`` subcommand and for tests; ``BOOL``
    intervals mark evidence-valued slots.
    """
    node = getattr(value, "node", value)
    plan = compile_plan(node)
    intervals = infer_intervals(plan)
    return {step.node.uid: intervals[step.slot] for step in plan.steps}


__all__ = [
    "Diagnostic",
    "UncertaintyWarning",
    "analyze",
    "analyze_plan",
    "inferred_supports",
    "warn_on_diagnostics",
    "BOOL",
]
