"""Figure 17's alarm model and the Uncertain<T> cost comparison.

The generative program::

    earthquake  = Bernoulli(0.0001)
    burglary    = Bernoulli(0.001)
    alarm       = earthquake or burglary
    phoneWorking = Bernoulli(0.7) if earthquake else Bernoulli(0.99)
    observe(alarm)
    query(phoneWorking)

Pr[alarm] ~ 0.11%, so a rejection sampler executes the model ~900 times per
posterior sample.  Uncertain<T> answers a different, cheaper question — the
*conditional* distribution of a concrete instance — and its SPRT draws only
as many samples as the conditional needs.  ``run_alarm_comparison``
measures both costs on the same machine.
"""

from __future__ import annotations

import dataclasses

from repro.core.conditionals import evaluation_config
from repro.core.uncertain import UncertainBool
from repro.dists.bernoulli import Bernoulli
from repro.ppl.language import RejectionResult, Trace, rejection_query
from repro.rng import ensure_rng


def alarm_model(trace: Trace) -> bool:
    """The Figure 17 program, transliterated."""
    earthquake = trace.flip(0.0001, "earthquake")
    burglary = trace.flip(0.001, "burglary")
    alarm = earthquake or burglary
    if earthquake:
        phone_working = trace.flip(0.7, "phoneWorking")
    else:
        phone_working = trace.flip(0.99, "phoneWorking")
    trace.observe(alarm, "alarm")
    return phone_working


def exact_phone_working_posterior() -> float:
    """Closed-form Pr[phoneWorking | alarm] for the Figure 17 model."""
    p_eq, p_bg = 0.0001, 0.001
    p_alarm = 1.0 - (1.0 - p_eq) * (1.0 - p_bg)
    p_joint = p_eq * 0.7 + (1.0 - p_eq) * p_bg * 0.99
    return p_joint / p_alarm


def exact_alarm_probability() -> float:
    """Closed-form Pr[alarm] (the paper's 0.11%)."""
    return 1.0 - (1.0 - 0.0001) * (1.0 - 0.001)


@dataclasses.dataclass
class AlarmComparison:
    """Costs of answering a question in each paradigm."""

    rejection: RejectionResult
    rejection_estimate: float
    exact_posterior: float
    uncertain_samples: int
    uncertain_decision: bool


def run_alarm_comparison(
    n_posterior_samples: int = 100, rng=None
) -> AlarmComparison:
    """Measure rejection-query cost versus an Uncertain conditional.

    The generative side draws ``n_posterior_samples`` posterior samples of
    ``phoneWorking | alarm`` (the paper measured 20 s for 100 samples in
    Church).  The Uncertain side asks the kind of question applications
    actually ask of estimated data — "is the phone more likely than not to
    be working?" over the conditional distribution — and we record how few
    samples the SPRT needs.
    """
    rng = ensure_rng(rng)
    rejection = rejection_query(alarm_model, n_posterior_samples, rng=rng)

    phone_working = UncertainBool(Bernoulli(exact_phone_working_posterior()))
    with evaluation_config(rng=rng) as cfg:
        decision = bool(phone_working)
        samples_used = cfg.samples_drawn

    return AlarmComparison(
        rejection=rejection,
        rejection_estimate=rejection.estimate(),
        exact_posterior=exact_phone_working_posterior(),
        uncertain_samples=samples_used,
        uncertain_decision=decision,
    )
