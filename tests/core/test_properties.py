"""Property-based tests on the Uncertain algebra (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, PointMass
from repro.rng import default_rng

small = st.floats(min_value=-100, max_value=100, allow_nan=False)
sigma = st.floats(min_value=0.01, max_value=10, allow_nan=False)
nonzero = st.floats(min_value=0.5, max_value=100, allow_nan=False)


@given(a=small, b=small)
@settings(max_examples=50, deadline=None)
def test_pointmass_arithmetic_is_exact(a, b):
    rng = default_rng(0)
    ua, ub = Uncertain(PointMass(a)), Uncertain(PointMass(b))
    assert (ua + ub).sample(rng) == a + b
    assert (ua - ub).sample(rng) == a - b
    assert (ua * ub).sample(rng) == a * b


@given(a=small, b=nonzero)
@settings(max_examples=50, deadline=None)
def test_pointmass_division_is_exact(a, b):
    rng = default_rng(0)
    assert (Uncertain(PointMass(a)) / b).sample(rng) == a / b


@given(mu=small, s=sigma)
@settings(max_examples=25, deadline=None)
def test_self_subtraction_identically_zero(mu, s):
    x = Uncertain(Gaussian(mu, s))
    samples = (x - x).samples(50, default_rng(1))
    assert np.all(samples == 0.0)


@given(mu=small, s=sigma)
@settings(max_examples=25, deadline=None)
def test_self_division_identically_one(mu, s):
    x = Uncertain(Gaussian(mu + 200.0, s))  # bounded away from zero
    samples = (x / x).samples(50, default_rng(2))
    assert np.allclose(samples, 1.0)


@given(mu=small, s=sigma, k=small)
@settings(max_examples=25, deadline=None)
def test_shift_moves_mean_exactly(mu, s, k):
    x = Uncertain(Gaussian(mu, s))
    shifted = x + k
    n = 4_000
    est = shifted.expected_value(n, default_rng(3))
    tolerance = 6 * s / math.sqrt(n) + 1e-6
    assert abs(est - (mu + k)) < tolerance


@given(mu=small, s=sigma)
@settings(max_examples=25, deadline=None)
def test_comparison_complement_sums_to_one(mu, s):
    x = Uncertain(Gaussian(mu, s))
    t = mu + s / 2
    rng = default_rng(4)
    p = (x > t).evidence(4_000, rng)
    q = (x <= t).evidence(4_000, rng)
    assert abs((p + q) - 1.0) < 0.05


@given(mu=small, s=sigma)
@settings(max_examples=25, deadline=None)
def test_demorgan_on_evidence(mu, s):
    x = Uncertain(Gaussian(mu, s))
    lo, hi = mu - s, mu + s
    rng = default_rng(5)
    inside = ((x > lo) & (x < hi)).evidence(4_000, rng)
    outside = (~((x > lo) & (x < hi))).evidence(4_000, rng)
    assert abs(inside + outside - 1.0) < 0.05


@given(mu=small, s=sigma)
@settings(max_examples=25, deadline=None)
def test_var_of_double_is_four_times(mu, s):
    x = Uncertain(Gaussian(mu, s))
    doubled = x + x
    v = doubled.var(4_000, default_rng(6))
    assert 3.0 * s**2 < v < 5.2 * s**2


@given(value=small)
@settings(max_examples=50, deadline=None)
def test_scalar_coercion_matches_pointmass(value):
    rng = default_rng(7)
    x = Uncertain(PointMass(1.0))
    via_scalar = (x + value).sample(rng)
    via_pointmass = (x + Uncertain(PointMass(value))).sample(rng)
    assert via_scalar == via_pointmass


@given(mu=small, s=sigma)
@settings(max_examples=15, deadline=None)
def test_abs_is_non_negative(mu, s):
    x = Uncertain(Gaussian(mu, s))
    assert np.all(abs(x).samples(100, default_rng(8)) >= 0.0)


@given(
    mus=st.lists(small, min_size=2, max_size=6),
)
@settings(max_examples=20, deadline=None)
def test_sum_of_pointmasses_is_exact(mus):
    rng = default_rng(9)
    total = Uncertain(PointMass(0.0))
    for mu in mus:
        total = total + Uncertain(PointMass(mu))
    assert total.sample(rng) == sum(mus) or abs(total.sample(rng) - sum(mus)) < 1e-9
