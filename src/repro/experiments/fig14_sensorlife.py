"""Figure 14: SensorLife accuracy and sampling cost versus noise."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.life.evaluation import evaluate_variants
from repro.rng import default_rng

SIGMAS = (0.05, 0.1, 0.2, 0.3, 0.4)


@experiment("fig14")
def run(seed: int = 14, fast: bool = True) -> ExperimentResult:
    """The Figure 14 sweep (reduced protocol when ``fast``).

    Paper protocol: 20x20 board, 25 generations, 50 runs per noise level.
    Fast protocol: 12x12, 6 generations, 3 runs — every qualitative
    ordering survives the reduction.
    """
    protocol = (
        dict(rows=12, cols=12, generations=6, runs=3, max_samples=300)
        if fast
        else dict(rows=20, cols=20, generations=25, runs=50, max_samples=1_000)
    )
    points = evaluate_variants(SIGMAS, rng=default_rng(seed), **protocol)
    rows = [
        {
            "variant": p.variant,
            "sigma": p.sigma,
            "error_rate": p.error_rate,
            "error_ci95": p.error_ci95,
            "joint_samples_per_update": p.joint_samples_per_update,
            "sensor_samples_per_update": p.sensor_samples_per_update,
        }
        for p in points
    ]

    def series(variant: str, key: str) -> list[float]:
        return [r[key] for r in rows if r["variant"] == variant]

    naive_err = series("NaiveLife", "error_rate")
    sensor_err = series("SensorLife", "error_rate")
    bayes_err = series("BayesLife", "error_rate")
    naive_cost = series("NaiveLife", "joint_samples_per_update")
    sensor_cost = series("SensorLife", "joint_samples_per_update")
    bayes_cost = series("BayesLife", "joint_samples_per_update")

    claims = {
        "SensorLife is more accurate than NaiveLife at every noise level": all(
            s < n for s, n in zip(sensor_err, naive_err)
        ),
        "SensorLife's errors scale with noise": sensor_err[-1] > sensor_err[0],
        "BayesLife makes (almost) no mistakes at low-to-moderate noise": all(
            b <= 0.01 for b in bayes_err[:3]
        ),
        "BayesLife is at least as accurate as SensorLife everywhere": all(
            b <= s + 0.01 for b, s in zip(bayes_err, sensor_err)
        ),
        "NaiveLife draws one joint sample per update": all(
            c == 1.0 for c in naive_cost
        ),
        # The cost curve can dip at the highest noise level (saturated
        # conditionals become decisive again), so compare the noisy regime
        # as a whole against the quiet one, as the paper's plot shows.
        "SensorLife needs more samples as noise grows": (
            sum(sensor_cost[2:]) / len(sensor_cost[2:]) > sensor_cost[0]
        ),
        "BayesLife needs fewer samples than SensorLife": all(
            b < s for b, s in zip(bayes_cost, sensor_cost)
        ),
    }
    return ExperimentResult(
        "fig14", "noisy Game of Life: accuracy and sampling cost", rows, claims
    )
