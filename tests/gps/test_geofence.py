"""Tests for geofencing with uncertain locations."""

import pytest

from repro.core.conditionals import evaluation_config
from repro.core.uncertain import UncertainBool
from repro.gps.geo import GeoCoordinate
from repro.gps.geofence import Geofence, entry_events_naive, entry_events_uncertain
from repro.gps.sensor import GpsFix, gps_posterior
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


@pytest.fixture
def park() -> Geofence:
    return Geofence.rectangle(ORIGIN, 100.0, 80.0)


class TestExactContainment:
    def test_inside(self, park):
        assert park.contains_point(ORIGIN.offset_m(50.0, 40.0))

    def test_outside(self, park):
        assert not park.contains_point(ORIGIN.offset_m(150.0, 40.0))
        assert not park.contains_point(ORIGIN.offset_m(50.0, -10.0))

    def test_concave_polygon(self):
        # L-shaped fence: the notch is outside.
        fence = Geofence(
            [
                ORIGIN,
                ORIGIN.offset_m(100.0, 0.0),
                ORIGIN.offset_m(100.0, 100.0),
                ORIGIN.offset_m(50.0, 100.0),
                ORIGIN.offset_m(50.0, 50.0),
                ORIGIN.offset_m(0.0, 50.0),
            ]
        )
        assert fence.contains_point(ORIGIN.offset_m(25.0, 25.0))
        assert fence.contains_point(ORIGIN.offset_m(75.0, 75.0))
        assert not fence.contains_point(ORIGIN.offset_m(25.0, 75.0))

    def test_plain_coordinate_returns_bool(self, park):
        assert isinstance(park.contains(ORIGIN.offset_m(1.0, 1.0)), bool)

    def test_too_few_corners(self):
        with pytest.raises(ValueError):
            Geofence([ORIGIN, ORIGIN.offset_m(1, 1)])

    def test_rectangle_validation(self):
        with pytest.raises(ValueError):
            Geofence.rectangle(ORIGIN, 0.0, 10.0)


class TestUncertainContainment:
    def test_returns_uncertain_bool(self, park):
        loc = gps_posterior(GpsFix(ORIGIN.offset_m(50, 40), 4.0, 0.0))
        assert isinstance(park.contains(loc), UncertainBool)

    def test_deep_inside_high_evidence(self, park):
        loc = gps_posterior(GpsFix(ORIGIN.offset_m(50, 40), 4.0, 0.0))
        assert park.contains(loc).evidence(2_000, default_rng(0)) > 0.99

    def test_boundary_graded_evidence(self, park):
        # A fix exactly on the fence line: ~half the mass is inside.
        loc = gps_posterior(GpsFix(ORIGIN.offset_m(0.0, 40.0), 4.0, 0.0))
        evidence = park.contains(loc).evidence(4_000, default_rng(1))
        assert 0.3 < evidence < 0.7

    def test_explicit_conditional(self, park):
        loc = gps_posterior(GpsFix(ORIGIN.offset_m(0.0, 40.0), 4.0, 0.0))
        with evaluation_config(rng=default_rng(2)):
            assert not park.contains(loc).pr(0.95)


class TestEntryEvents:
    def _jittery_fixes(self, n=40):
        # A user standing still just outside the west fence; fixes jitter
        # across the boundary.
        rng = default_rng(3)
        true = ORIGIN.offset_m(-1.0, 40.0)
        return [
            true.offset_m(rng.normal(0, 3.0), rng.normal(0, 3.0)) for _ in range(n)
        ]

    def test_naive_generates_event_storm(self, park):
        fixes = self._jittery_fixes()
        naive_events = entry_events_naive(park, fixes)
        assert len(naive_events) >= 3  # repeated spurious entries

    def test_uncertain_suppresses_storm(self, park):
        # A fix can land far enough inside to genuinely carry > 95%
        # evidence, so "no events" is too strong — but the storm must be
        # drastically thinner than the naive one.
        fixes = self._jittery_fixes()
        naive_events = entry_events_naive(park, fixes)
        locations = [gps_posterior(GpsFix(f, 6.0, float(i))) for i, f in enumerate(fixes)]
        with evaluation_config(rng=default_rng(4)):
            events = entry_events_uncertain(park, locations, evidence=0.95)
        assert len(events) <= len(naive_events) // 3

    def test_uncertain_still_detects_real_entry(self, park):
        # Walk decisively into the middle of the park.
        path = [ORIGIN.offset_m(-20.0 + 10.0 * i, 40.0) for i in range(10)]
        locations = [gps_posterior(GpsFix(p, 3.0, float(i))) for i, p in enumerate(path)]
        with evaluation_config(rng=default_rng(5)):
            events = entry_events_uncertain(park, locations, evidence=0.9)
        assert len(events) == 1

    def test_evidence_validation(self, park):
        with pytest.raises(ValueError):
            entry_events_uncertain(park, [], evidence=1.0)
