"""Empirical distribution over a fixed pool of samples.

Parakeet (Section 5.3) runs hybrid Monte Carlo offline and keeps a fixed
pool of posterior samples; at runtime the sampling function resamples that
pool.  This class is that mechanism, generalised.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.dists.base import Distribution, Support


class Empirical(Distribution):
    """Uniform resampling from a fixed pool of observed values."""

    discrete = True

    def __init__(self, pool: Sequence[Any], allow_nonfinite: bool = False) -> None:
        if len(pool) == 0:
            raise ValueError("Empirical needs a non-empty sample pool")
        arr = np.asarray(pool)
        if arr.dtype == object and arr.ndim != 1:
            raise ValueError("object pools must be one-dimensional")
        # A NaN/Inf smuggled into the pool resurfaces in *every* downstream
        # computation (the Section 2 "silently compounding error" bug), so
        # numeric pools are screened at construction time unless the caller
        # explicitly opts in.
        if not allow_nonfinite and arr.dtype.kind in "fc":
            bad = int(np.count_nonzero(~np.isfinite(arr)))
            if bad:
                raise ValueError(
                    f"Empirical pool contains {bad} non-finite value(s) out "
                    f"of {arr.size}; clean the data or pass "
                    "allow_nonfinite=True to keep them"
                )
        self.pool = arr

    def __len__(self) -> int:
        return len(self.pool)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = rng.integers(0, len(self.pool), size=n)
        return self.pool[idx]

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        pool = np.sort(self.pool.astype(float))
        return np.searchsorted(pool, x, side="right") / len(pool)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the pool."""
        return float(np.quantile(self.pool.astype(float), q))

    @property
    def mean(self) -> float:
        return float(np.mean(self.pool.astype(float)))

    @property
    def variance(self) -> float:
        return float(np.var(self.pool.astype(float)))

    @property
    def support(self) -> Support:
        vals = self.pool.astype(float)
        return Support(float(vals.min()), float(vals.max()))
