"""Synthetic image corpus for training and evaluating the Sobel networks.

The paper trains on 5000 examples and evaluates on a separate 500
(substitution #3 in DESIGN.md: any image corpus with a realistic mix of
edges and smooth regions exercises the same generalization-error
phenomenon).  We compose smooth random fields with hard-edged geometric
shapes so the window dataset contains genuine edges, genuine flats, and
everything between.
"""

from __future__ import annotations

import numpy as np

from repro.ml.sobel import extract_windows, sobel_magnitude
from repro.rng import ensure_rng


def _smooth_field(size: int, rng: np.random.Generator, passes: int = 4) -> np.ndarray:
    """Low-frequency random field in [0, 1] via repeated box blurring."""
    field = rng.random((size, size))
    kernel = np.ones(5) / 5.0
    for _ in range(passes):
        field = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, field
        )
        field = np.apply_along_axis(
            lambda col: np.convolve(col, kernel, mode="same"), 0, field
        )
    lo, hi = field.min(), field.max()
    return (field - lo) / (hi - lo) if hi > lo else field


def synthetic_image(size: int = 48, n_shapes: int = 4, rng=None) -> np.ndarray:
    """A grayscale image mixing smooth gradients and hard-edged shapes."""
    if size < 8:
        raise ValueError(f"size must be at least 8, got {size}")
    rng = ensure_rng(rng)
    image = 0.5 * _smooth_field(size, rng)
    for _ in range(n_shapes):
        intensity = rng.uniform(0.3, 1.0)
        if rng.random() < 0.5:  # axis-aligned rectangle
            r0, c0 = rng.integers(0, size - 4, size=2)
            r1 = rng.integers(r0 + 2, min(r0 + size // 2, size))
            c1 = rng.integers(c0 + 2, min(c0 + size // 2, size))
            image[r0:r1, c0:c1] = intensity
        else:  # filled disc
            cr, cc = rng.integers(4, size - 4, size=2)
            radius = rng.integers(2, size // 4)
            rr, cc_grid = np.ogrid[:size, :size]
            mask = (rr - cr) ** 2 + (cc_grid - cc) ** 2 <= radius**2
            image[mask] = intensity
    return np.clip(image, 0.0, 1.0)


def make_dataset(
    n_examples: int,
    image_size: int = 48,
    images: int | None = None,
    rng=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample ``n_examples`` (window, sobel) pairs from synthetic images.

    Returns ``(x, t)`` with ``x`` of shape (n, 9) and ``t`` of shape (n,).
    """
    if n_examples <= 0:
        raise ValueError(f"n_examples must be positive, got {n_examples}")
    rng = ensure_rng(rng)
    images = images if images is not None else max(4, n_examples // 500)
    xs = []
    for _ in range(images):
        xs.append(extract_windows(synthetic_image(image_size, rng=rng)))
    pool = np.concatenate(xs)
    idx = rng.choice(len(pool), size=n_examples, replace=len(pool) < n_examples)
    x = pool[idx]
    t = np.asarray(sobel_magnitude(x.reshape(-1, 3, 3)))
    return x, t
