"""Tests for Empirical, Mixture, KernelDensity and FunctionDistribution."""

import numpy as np
import pytest

from repro.dists import (
    Empirical,
    FunctionDistribution,
    Gaussian,
    KernelDensity,
    Mixture,
    Uniform,
)
from repro.dists.base import NON_NEGATIVE, Support


class TestEmpirical:
    def test_samples_from_pool(self, rng):
        e = Empirical([1.0, 2.0, 3.0])
        assert set(np.unique(e.sample_n(1_000, rng))) <= {1.0, 2.0, 3.0}

    def test_moments_are_pool_moments(self):
        pool = [1.0, 2.0, 3.0, 4.0]
        e = Empirical(pool)
        assert e.mean == pytest.approx(2.5)
        assert e.variance == pytest.approx(np.var(pool))

    def test_quantile(self):
        e = Empirical(np.arange(101, dtype=float))
        assert e.quantile(0.5) == pytest.approx(50.0)

    def test_cdf(self):
        e = Empirical([1.0, 2.0, 3.0, 4.0])
        assert float(e.cdf(2.0)) == pytest.approx(0.5)

    def test_len(self):
        assert len(Empirical([1, 2, 3])) == 3

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_support(self):
        s = Empirical([5.0, -2.0, 3.0]).support
        assert s.lower == -2.0 and s.upper == 5.0


class TestMixture:
    def test_mean_is_weighted(self):
        m = Mixture([Gaussian(0.0, 1.0), Gaussian(10.0, 1.0)], [0.25, 0.75])
        assert m.mean == pytest.approx(7.5)

    def test_variance_includes_spread_of_means(self):
        m = Mixture([Gaussian(-5.0, 1.0), Gaussian(5.0, 1.0)], [0.5, 0.5])
        assert m.variance == pytest.approx(26.0)

    def test_sampling_hits_both_modes(self, fixed_rng):
        m = Mixture([Gaussian(-10.0, 0.1), Gaussian(10.0, 0.1)], [0.5, 0.5])
        s = m.sample_n(10_000, fixed_rng)
        assert np.mean(s > 0) == pytest.approx(0.5, abs=0.02)

    def test_pdf_is_weighted_sum(self):
        g1, g2 = Gaussian(0.0, 1.0), Gaussian(3.0, 1.0)
        m = Mixture([g1, g2], [0.3, 0.7])
        x = 1.2
        expected = 0.3 * float(g1.pdf(x)) + 0.7 * float(g2.pdf(x))
        assert float(m.pdf(x)) == pytest.approx(expected)

    def test_cdf_is_weighted_sum(self):
        g1, g2 = Gaussian(0.0, 1.0), Gaussian(3.0, 1.0)
        m = Mixture([g1, g2], [0.5, 0.5])
        assert float(m.cdf(1.5)) == pytest.approx(
            0.5 * float(g1.cdf(1.5)) + 0.5 * float(g2.cdf(1.5))
        )

    def test_support_is_union_hull(self):
        m = Mixture([Uniform(0.0, 1.0), Uniform(5.0, 6.0)], [0.5, 0.5])
        assert m.support.lower == 0.0 and m.support.upper == 6.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Gaussian(0, 1)], [0.5, 0.5])
        with pytest.raises(ValueError):
            Mixture([Gaussian(0, 1)], [-1.0])


class TestKernelDensity:
    def test_mean_matches_data(self):
        data = [1.0, 2.0, 3.0]
        assert KernelDensity(data, bandwidth=0.1).mean == pytest.approx(2.0)

    def test_samples_near_data(self, rng):
        kde = KernelDensity([0.0, 10.0], bandwidth=0.1)
        s = kde.sample_n(1_000, rng)
        near = (np.abs(s) < 1.0) | (np.abs(s - 10.0) < 1.0)
        assert near.mean() > 0.99

    def test_pdf_positive_off_data(self):
        # Gaussian kernels give positive density away from the data
        # (until floating-point underflow in the far tail).
        kde = KernelDensity([0.0, 1.0])
        assert float(kde.pdf(3.0)) > 0.0

    def test_pdf_integrates_to_one(self):
        kde = KernelDensity([0.0, 1.0, 2.0], bandwidth=0.5)
        xs = np.linspace(-5.0, 7.0, 4_001)
        assert np.trapezoid(kde.pdf(xs), xs) == pytest.approx(1.0, abs=1e-3)

    def test_silverman_default(self):
        kde = KernelDensity(np.linspace(0, 1, 100))
        assert kde.bandwidth > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelDensity([])
        with pytest.raises(ValueError):
            KernelDensity([1.0], bandwidth=-0.5)


class TestFunctionDistribution:
    def test_scalar_sampling(self, rng):
        d = FunctionDistribution(lambda r: r.normal(5.0, 0.1))
        s = d.sample_n(500, rng)
        assert s.mean() == pytest.approx(5.0, abs=0.05)

    def test_vectorised_path(self, rng):
        d = FunctionDistribution(
            lambda r: r.normal(), fn_n=lambda n, r: r.normal(size=n)
        )
        assert d.sample_n(100, rng).shape == (100,)

    def test_object_sampling(self, rng):
        d = FunctionDistribution(lambda r: {"x": r.random()})
        out = d.sample_n(5, rng)
        assert out.dtype == object and isinstance(out[0], dict)

    def test_bad_vectorised_shape_rejected(self, rng):
        d = FunctionDistribution(lambda r: 0.0, fn_n=lambda n, r: np.zeros(n + 1))
        with pytest.raises(ValueError):
            d.sample_n(10, rng)

    def test_log_pdf_passthrough(self):
        d = FunctionDistribution(lambda r: 0.0, log_pdf=lambda x: -1.0)
        assert d.log_pdf(0.0) == -1.0

    def test_log_pdf_missing(self):
        d = FunctionDistribution(lambda r: 0.0)
        with pytest.raises(NotImplementedError):
            d.log_pdf(0.0)

    def test_default_support_is_unbounded(self):
        d = FunctionDistribution(lambda r: 0.0)
        assert d.support.lower == -np.inf and d.support.upper == np.inf

    def test_declared_support_tuple(self):
        d = FunctionDistribution(lambda r: r.random(), support=(0.0, 1.0))
        assert d.support == Support(0.0, 1.0)
        assert d.support.is_bounded

    def test_declared_support_object(self):
        d = FunctionDistribution(lambda r: abs(r.normal()), support=NON_NEGATIVE)
        assert d.support is NON_NEGATIVE

    def test_invalid_support_rejected(self):
        with pytest.raises(ValueError):
            FunctionDistribution(lambda r: 0.0, support=(2.0, 1.0))

    def test_declared_support_feeds_interval_analysis(self, rng):
        # The whole point of declaring a support: a user sampling function
        # with a positive support proves a downstream division safe.
        from repro.analysis import analyze
        from repro.core.uncertain import Uncertain

        dt = Uncertain(
            FunctionDistribution(lambda r: 1.0 + r.random(), support=(1.0, 2.0))
        )
        distance = Uncertain(FunctionDistribution(lambda r: 100 * r.random()))
        speed = distance / dt
        assert [d.rule for d in analyze(speed)] == []

        undeclared_dt = Uncertain(FunctionDistribution(lambda r: 1.0 + r.random()))
        assert [d.rule for d in analyze(distance / undeclared_dt)] == ["UNC101"]
