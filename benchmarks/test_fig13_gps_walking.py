"""Figures 5 & 13 bench: GPS-Walking — naive vs Uncertain vs prior."""

from benchmarks.conftest import run_and_report


def test_fig13_gps_walking(benchmark):
    run_and_report(benchmark, "fig13", fast=True)
