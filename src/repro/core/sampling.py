"""Ancestral sampling over the Bayesian network (Section 4.2).

Because the network is a DAG, its nodes admit a topological order.  We
evaluate leaves first and propagate values upward, visiting each node exactly
once per joint sample — the memoisation that makes shared subexpressions
(Figure 8) statistically correct.

This module is a thin facade over the compilation/execution layer:
:func:`repro.core.plan.compile_plan` lowers a graph once into a flat,
topologically ordered :class:`~repro.core.plan.EvaluationPlan` (cached per
root), and an :class:`~repro.core.engines.ExecutionEngine` (selected by the
ambient :class:`~repro.core.conditionals.EvaluationConfig`) runs it.
Repeated draws — the SPRT's batches, ``expected_value``, ``pr()`` — pay
graph traversal zero times after the first.

The implementation is batch-first: one evaluation pass computes ``n``
independent joint samples as numpy arrays, which is what the SPRT's batched
draws (Section 4.3) consume.  A single sample is a batch of one.

.. versionchanged:: 2.0
   The module-level entry points ``sample_once``, ``sample_batch`` and
   ``execute_plan`` — deprecated since v1.1 — were removed.  Use the
   unified evaluation API instead: ``Uncertain.sample`` /
   ``Uncertain.samples`` / ``Uncertain.sample_with`` with engine
   selection and budgets on
   :class:`~repro.core.conditionals.EvaluationConfig` (see
   ``docs/api.md`` for migration notes).
"""

from __future__ import annotations

from time import monotonic

import numpy as np

from repro.core import conditionals as _cond
from repro.core.engines import ExecutionEngine, get_engine
from repro.core.graph import Node
from repro.core.plan import EvaluationPlan, compile_plan
from repro.rng import ensure_rng
from repro.runtime import cancellation as _cancel


class SamplingError(RuntimeError):
    """Raised when a sampling function misbehaves (wrong shape, NaN policy)."""


class SampleBudgetExceeded(SamplingError):
    """A configured ``sample_budget`` would be exceeded by this draw."""


class DeadlineExceeded(SamplingError):
    """A configured wall-clock ``deadline`` expired before this draw."""


def _resolve_engine(engine: "str | ExecutionEngine | None") -> ExecutionEngine:
    if engine is None:
        engine = _cond.get_config().engine
    return get_engine(engine)


def _execute_plan(
    plan: EvaluationPlan,
    n: int,
    rng: np.random.Generator | int | None = None,
    memo: dict[Node, np.ndarray] | None = None,
    engine: "str | ExecutionEngine | None" = None,
    use_ledger: bool = True,
) -> np.ndarray:
    """Internal, warning-free plan execution used by every runtime caller.

    Enforces the active configuration's ``sample_budget`` and ``deadline``
    (every draw in the process funnels through here), resolves the engine
    (explicit argument beats the ambient config), and delegates to the
    engine's instrumented ``sample``.

    When ``config.sample_cache`` is enabled, eligible draws are served
    from the cross-query :class:`~repro.core.ledger.SampleLedger` (cached
    prefix + freshly drawn suffix; admission charged inside the ledger
    for the suffix only).  Sequential-batch callers — the SPRT loop,
    adaptive expectation — must pass ``use_ledger=False`` and read
    through a :meth:`~repro.core.ledger.SampleLedger.open_window` handle
    instead, because a ledger prefix read would hand every batch the
    *same* rows.
    """
    if n <= 0:
        raise ValueError(f"batch size must be positive, got {n}")
    n = int(n)
    config = _cond.get_config()
    if use_ledger and memo is None and config.sample_cache:
        from repro.core.ledger import LEDGER

        rows = LEDGER.serve(plan, n, rng, engine, config)
        if rows is not None:
            return rows
    if config.deadline is not None and monotonic() > config.deadline_at:
        raise DeadlineExceeded(
            f"evaluation deadline of {config.deadline}s expired before a "
            f"draw of {n} samples"
        )
    if config.sample_budget is not None:
        if config.samples_executed + n > config.sample_budget:
            raise SampleBudgetExceeded(
                f"sample budget exhausted: {config.samples_executed} drawn + "
                f"{n} requested > budget {config.sample_budget}"
            )
    config.samples_executed += n
    eng = get_engine(engine if engine is not None else config.engine)
    if config.deadline is not None and _cancel.current() is None:
        # The pre-draw check above only catches a deadline that expired
        # *between* draws; installing a deadline token lets the engines
        # stop a long draw at their next batch boundary too.  An already-
        # installed token (the service tier's per-request one) wins.
        with _cancel.scope(_cancel.CancellationToken(
            deadline_at=config.deadline_at
        )):
            try:
                return eng.sample(plan, n, ensure_rng(rng), memo=memo,
                                  telemetry=config.plan_telemetry)
            except _cancel.EvaluationCancelled as exc:
                raise DeadlineExceeded(
                    f"evaluation deadline of {config.deadline}s expired "
                    f"mid-draw at {exc.progress or 'start'}"
                ) from exc
    return eng.sample(plan, n, ensure_rng(rng), memo=memo,
                      telemetry=config.plan_telemetry)


class SampleContext:
    """One batch of ``n`` joint assignments to every sampled variable.

    A context represents ``n`` joint assignments to the random variables of
    any graphs evaluated through it.  Reusing a context across multiple
    roots (as the Game of Life's four rule conditionals do within one cell
    update) keeps shared variables consistent between those roots.

    Internally the context is a memo table keyed by node object — the node
    *is* the variable (Figure 8) — filled by executing each root's cached
    plan with the shared memo.  Keying on the objects themselves (rather
    than the seed's ``id()`` integers) also keeps every sampled node alive
    for the lifetime of the context, so no separate GC pinning is needed.
    """

    def __init__(
        self,
        n: int,
        rng: np.random.Generator | int | None = None,
        engine: "str | ExecutionEngine | None" = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"batch size must be positive, got {n}")
        self.n = int(n)
        self.rng = ensure_rng(rng)
        self._engine = engine
        self._values: dict[Node, np.ndarray] = {}

    def __contains__(self, node: Node) -> bool:
        return node in self._values

    def value_of(
        self, node: Node, engine: "str | ExecutionEngine | None" = None
    ) -> np.ndarray:
        """Sampled batch for ``node``, evaluating lazily on first access.

        ``engine`` overrides, for this evaluation only, the engine chosen
        at context construction (which itself overrides the ambient
        configuration).
        """
        batch = self._values.get(node)
        if batch is None:
            config = _cond.get_config()
            plan = compile_plan(
                node,
                telemetry=config.plan_telemetry,
                analyze=config.plan_analyzer,
            )
            if engine is None:
                engine = self._engine
            batch = _execute_plan(
                plan, self.n, self.rng, memo=self._values, engine=engine
            )
        return batch


def bernoulli_sampler(root: Node, rng: np.random.Generator):
    """Adapt a boolean-valued node into the draw-k callable the tests use.

    Each call draws a fresh batch of joint samples — exactly the repeated
    batched sampling loop of Section 4.3.  The plan is compiled once, up
    front, so the SPRT's sequential batches amortise traversal to zero.
    """
    config = _cond.get_config()
    plan = compile_plan(
        root, telemetry=config.plan_telemetry, analyze=config.plan_analyzer
    )
    window = None
    if config.sample_cache:
        from repro.core.ledger import LEDGER

        window = LEDGER.open_window(plan, rng, None, config)

    def draw(k: int) -> np.ndarray:
        if window is not None:
            rows = window.draw(k)
            if rows is not None:
                return np.asarray(rows, dtype=bool)
        return np.asarray(
            _execute_plan(plan, k, rng, use_ledger=False), dtype=bool
        )

    return draw
