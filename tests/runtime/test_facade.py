"""The unified evaluation API: façade surface, v2.0 removals, engine routing."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Uncertain, evaluate, evaluation_config
from repro.core.engines import NumpyEngine, register_engine
from repro.dists import Gaussian
from repro.runtime import RuntimeMetrics


class RecordingEngine(NumpyEngine):
    """A NumpyEngine that counts how often the runtime routed through it."""

    name = "recording-test"

    def __init__(self) -> None:
        self.calls = 0
        self.samples_requested = 0

    def run(self, plan, n, rng, memo=None, telemetry=None):
        self.calls += 1
        self.samples_requested += int(n)
        return super().run(plan, n, rng, memo=memo, telemetry=telemetry)


@pytest.fixture()
def recording_engine():
    engine = RecordingEngine()
    register_engine(engine)
    return engine


class TestRemovedEntryPoints:
    """The v1.1-deprecated module-level samplers are gone in v2.0."""

    def test_legacy_names_removed_from_sampling(self):
        import repro.core.sampling as sampling

        for legacy in ("sample_once", "sample_batch", "execute_plan"):
            assert not hasattr(sampling, legacy), legacy

    def test_legacy_imports_fail(self):
        with pytest.raises(ImportError):
            from repro.core.sampling import sample_batch  # noqa: F401

    def test_removal_documented_in_module(self):
        import repro.core.sampling as sampling

        assert "removed" in sampling.__doc__
        assert "docs/api.md" in sampling.__doc__

    def test_blessed_paths_do_not_warn(self):
        import warnings

        value = Uncertain(Gaussian(0.0, 1.0))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            value.sample(rng=0)
            value.samples(10, rng=0)
            value.expected_value(100, np.random.default_rng(0))


class TestExpectedValueAlias:
    def test_E_is_the_same_function(self):
        assert Uncertain.E is Uncertain.expected_value

    def test_E_matches_expected_value(self):
        value = Uncertain(Gaussian(3.0, 1.0))
        rng_a, rng_b = np.random.default_rng(5), np.random.default_rng(5)
        assert value.E(500, rng_a) == value.expected_value(500, rng_b)

    def test_adaptive_passthrough(self):
        value = Uncertain(Gaussian(3.0, 1.0))
        est = value.E(adaptive=True, rng=np.random.default_rng(6), tolerance=0.1)
        assert est == pytest.approx(3.0, abs=0.3)

    def test_adaptive_rejects_fixed_n(self):
        value = Uncertain(Gaussian(3.0, 1.0))
        with pytest.raises(TypeError):
            value.E(100, adaptive=True)

    def test_adaptive_options_require_adaptive(self):
        value = Uncertain(Gaussian(3.0, 1.0))
        with pytest.raises(TypeError):
            value.E(100, tolerance=0.1)


class TestEstimatorDefaults:
    def test_sd_and_var_use_estimator_samples(self):
        scoped = RuntimeMetrics()
        value = Uncertain(Gaussian(0.0, 2.0))
        with evaluation_config(estimator_samples=777, metrics=scoped, rng=0):
            value.sd()
            value.var()
        assert scoped.total_samples() == 2 * 777

    def test_ci_uses_ci_samples(self):
        scoped = RuntimeMetrics()
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(ci_samples=555, metrics=scoped, rng=0):
            lo, hi = value.ci(0.9)
        assert scoped.total_samples() == 555
        assert lo < 0 < hi

    def test_explicit_n_still_wins(self):
        scoped = RuntimeMetrics()
        value = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(estimator_samples=777, metrics=scoped, rng=0):
            value.sd(n=50)
        assert scoped.total_samples() == 50

    def test_invalid_n_rejected(self):
        value = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(ValueError):
            value.sd(n=0)


class TestCustomEngineRouting:
    """Satellite regression: a registered engine is honoured end-to-end."""

    def test_per_call_override_on_samples(self, recording_engine):
        value = Uncertain(Gaussian(0.0, 1.0))
        out = value.samples(64, rng=0, engine="recording-test")
        assert recording_engine.calls == 1
        assert recording_engine.samples_requested == 64
        assert len(out) == 64

    def test_config_engine_routes_every_draw_path(self, recording_engine):
        value = Uncertain(Gaussian(4.0, 1.0))
        with evaluation_config(engine="recording-test", rng=0):
            value.sample()
            value.samples(32)
            bool(value > 2.0)  # SPRT batches route through it too
        assert recording_engine.calls >= 3
        assert recording_engine.samples_requested >= 33

    def test_sample_with_engine_override(self, recording_engine):
        from repro.core.sampling import SampleContext

        x = Uncertain(Gaussian(0.0, 1.0), label="X")
        y = x + 1.0
        context = SampleContext(8, rng=np.random.default_rng(0))
        xv = x.sample_with(context, engine="recording-test")
        yv = y.sample_with(context, engine="recording-test")
        assert recording_engine.calls >= 1
        # Shared context: the two roots saw one joint assignment.
        assert yv == pytest.approx(xv + 1.0)

    def test_results_match_numpy_engine(self, recording_engine):
        value = Uncertain(Gaussian(0.0, 1.0)) + 2.0
        via_custom = value.samples(100, rng=9, engine="recording-test")
        via_numpy = value.samples(100, rng=9, engine="numpy")
        assert np.array_equal(via_custom, via_numpy)


class TestFacadeSurface:
    def test_evaluate_namespace_is_complete(self):
        for name in evaluate.__all__:
            assert hasattr(evaluate, name), name

    def test_config_alias(self):
        assert evaluate.config is evaluate.evaluation_config

    def test_repro_all_is_trimmed(self):
        for legacy in ("sample_once", "sample_batch", "execute_plan"):
            assert legacy not in repro.__all__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_config_carries_runtime_knobs(self):
        from repro import EvaluationConfig

        config = EvaluationConfig(
            engine="numpy", sample_budget=10, deadline=1.0, metrics=False
        )
        assert config.engine == "numpy"
        assert config.sample_budget == 10
        assert config.deadline == 1.0
        assert config.metrics is False
        assert config.deadline_at is not None

    def test_facade_quickstart(self):
        # The docstring's shape: configure, draw, estimate, observe.
        value = Uncertain(Gaussian(2.0, 0.5))
        with evaluate.config(engine="numpy", sample_budget=100_000, rng=0):
            draws = value.samples(1_000)
            estimate = evaluate.expected_value(value, 1_000)
        assert len(draws) == 1_000
        assert estimate == pytest.approx(2.0, abs=0.2)
        assert isinstance(evaluate.stats(), dict)
