"""Sensor fusion: tracking a walker through GPS glitches.

Combines the library's pieces end to end: a ground-truth walk, a glitchy
correlated GPS receiver, a particle filter whose motion model encodes
pedestrian physics, and a geofence consuming the *fused* location as an
Uncertain value.

Run with::

    python examples/fused_tracking.py
"""


from repro.core.conditionals import evaluation_config
from repro.gps.fusion import ParticleFilter, track_walk
from repro.gps.geofence import Geofence
from repro.gps.sensor import GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.rng import default_rng


def main() -> None:
    trace = generate_walk(WalkConfig(duration_s=180.0), rng=default_rng(1))

    def glitchy_sensor() -> GpsSensor:
        return GpsSensor(
            epsilon_m=6.0,
            rng=default_rng(2),
            correlation=0.5,
            glitch_probability=0.03,
            glitch_scale_m=25.0,
        )

    print("tracking a 3-minute walk through a glitchy receiver...")
    result = track_walk(trace, glitchy_sensor(), n_particles=400, rng=default_rng(3))
    print(f"  raw fix RMSE   : {result.raw_rmse_m:5.2f} m "
          f"(worst {result.raw_errors_m.max():5.1f} m)")
    print(f"  fused RMSE     : {result.fused_rmse_m:5.2f} m "
          f"(worst {result.fused_errors_m.max():5.1f} m)")
    print(f"  improvement    : {result.improvement:4.2f}x")

    # The fused location is an Uncertain value: ask it questions.
    print("\nre-running the filter to interrogate its final state...")
    sensor = glitchy_sensor()
    fixes = [
        sensor.measure(p, float(t))
        for p, t in zip(trace.positions, trace.timestamps)
    ]
    pf = ParticleFilter(fixes[0], n_particles=400, rng=default_rng(4))
    for prev, fix in zip(fixes, fixes[1:]):
        pf.predict(fix.timestamp - prev.timestamp)
        pf.update(fix)

    location = pf.location()
    home = Geofence.rectangle(trace.positions[-1].offset_m(-30, -30), 60.0, 60.0)
    inside = home.contains(location)
    print(f"  Pr[user within 30 m of their true endpoint] ~ "
          f"{inside.evidence(4_000, default_rng(5)):.2f}")
    with evaluation_config(rng=default_rng(6)):
        print(f"  confident at the 90% level? {inside.pr(0.9)}")


if __name__ == "__main__":
    main()
