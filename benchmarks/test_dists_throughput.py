"""Throughput benches for the distribution substrate.

Sampling functions are the foundation of the whole runtime (Section 3.2);
these benches keep the vectorised leaf-sampling paths honest.
"""

import numpy as np
import pytest

from repro.dists import (
    Bernoulli,
    Empirical,
    Gaussian,
    KernelDensity,
    Mixture,
    Rayleigh,
    TruncatedGaussian,
)
from repro.rng import default_rng

N = 100_000


@pytest.mark.parametrize(
    "dist",
    [
        Gaussian(0.0, 1.0),
        Rayleigh(1.634),
        Bernoulli(0.3),
        TruncatedGaussian(3.0, 1.5, 0.0, 10.0),
        Empirical(np.linspace(0, 1, 1_000)),
        Mixture([Gaussian(-1, 0.5), Gaussian(1, 0.5)], [0.5, 0.5]),
        KernelDensity(np.linspace(0, 1, 200)),
    ],
    ids=lambda d: type(d).__name__,
)
def test_sampling_throughput(benchmark, dist):
    rng = default_rng(1)
    samples = benchmark(lambda: dist.sample_n(N, rng))
    assert samples.shape == (N,)
