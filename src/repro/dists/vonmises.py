"""Von Mises distribution — circular noise for headings and bearings.

GPS headings and compass readings are angles; Gaussian noise on a circle is
properly the von Mises distribution.  Included for heading-aware extensions
of the GPS case study.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.dists.base import Distribution, Support


class VonMises(Distribution):
    """VonMises(mu, kappa) on (-pi, pi]; kappa -> 0 is circular-uniform."""

    def __init__(self, mu: float, kappa: float) -> None:
        if kappa < 0:
            raise ValueError(f"kappa must be non-negative, got {kappa}")
        self.mu = float(mu)
        self.kappa = float(kappa)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.vonmises(self.mu, self.kappa, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        return (
            self.kappa * np.cos(x - self.mu)
            - math.log(2 * math.pi)
            - np.log(special.i0(self.kappa))
        )

    @property
    def mean(self) -> float:
        """Circular mean direction."""
        return self.mu

    @property
    def variance(self) -> float:
        """Circular variance 1 - I1(k)/I0(k)."""
        if self.kappa == 0:
            return 1.0
        return 1.0 - float(special.i1(self.kappa) / special.i0(self.kappa))

    @property
    def support(self) -> Support:
        return Support(-math.pi, math.pi)
