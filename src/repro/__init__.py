"""Uncertain<T>: a first-order type for uncertain data.

A full Python reproduction of Bornholt, Mytkowicz & McKinley (ASPLOS 2014).

The package exposes the paper's primary abstraction, :class:`repro.Uncertain`,
together with the substrates the paper's evaluation depends on:

- :mod:`repro.dists` — probability distributions represented as sampling
  functions (Section 3.2 of the paper).
- :mod:`repro.core` — the uncertain type itself: Bayesian-network
  construction via operator overloading, ancestral sampling, hypothesis-test
  conditionals, and prior-based estimate improvement (Sections 3 and 4).
- :mod:`repro.gps` — the GPS sensor model and GPS-Walking case study
  (Section 5.1).
- :mod:`repro.life` — the noisy-sensor Game of Life case study (Section 5.2).
- :mod:`repro.ml` — the Parakeet Bayesian neural-network case study
  (Section 5.3).
- :mod:`repro.ppl` — a small generative probabilistic-programming baseline
  used for the related-work comparison (Section 6, Figure 17).
- :mod:`repro.experiments` — drivers that regenerate every figure in the
  paper's evaluation.
"""

from repro.core.uncertain import Uncertain, UncertainBool, uncertain
from repro.core.lifting import apply as apply_lifted
from repro.core.lifting import lift
from repro.core.bayes import Prior, posterior
from repro.core.sprt import (
    FixedSampleTest,
    GroupSequentialTest,
    HypothesisTest,
    SPRT,
    TestDecision,
)
from repro.core.sampling import SamplingError

__version__ = "1.0.0"

__all__ = [
    "Uncertain",
    "UncertainBool",
    "uncertain",
    "lift",
    "apply_lifted",
    "Prior",
    "posterior",
    "HypothesisTest",
    "SPRT",
    "FixedSampleTest",
    "GroupSequentialTest",
    "TestDecision",
    "SamplingError",
    "__version__",
]
