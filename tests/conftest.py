"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import default_rng


@pytest.fixture
def rng(request) -> np.random.Generator:
    """Deterministic per-test generator (seeded from the test's node id)."""
    seed = abs(hash(request.node.nodeid)) % (2**31)
    return default_rng(seed)


@pytest.fixture
def fixed_rng() -> np.random.Generator:
    """A generator with a fixed, test-independent seed."""
    return default_rng(12345)
