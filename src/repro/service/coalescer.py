"""Cross-request batching: merge same-shape queries into shared evaluations.

The coalescer is the synchronous heart of the service tier (the asyncio
front end in :mod:`repro.service.service` only decides *when* to call it).
Given a batch of :class:`~repro.service.requests.QueryRequest` objects it:

1. **Groups** requests by their plan's structural hash.  Structurally
   isomorphic plans — same shape, same distribution parameters — compile
   to interchangeable programs, so one group shares a single compiled,
   optimized plan (the leader's) and, on the fused engine, a single
   generated kernel.  Opaque plans (lambdas, hardened sources) group by
   plan identity instead, so a hot value still batches with itself.

2. **Evaluates** each group once per *stream*:

   - Seeded requests each own the stream ``default_rng(SeedSequence(seed))``
     (the request-level analogue of the parallel engine's chunk streams),
     so the group runs the shared plan once per seeded request.  The solo
     path (:func:`evaluate_request`) derives the identical stream from the
     identical seed and runs the identical plan program — batched answers
     are bit-identical to solo answers *by construction*, not by test.
   - Seedless requests pool: the group draws ``sum(n_i)`` rows in **one**
     engine run from the coalescer's stream and slices the rows across
     requests.  This is the cheap path — one kernel launch answers many
     queries — at the cost of per-request reproducibility.

3. **Reduces** each request's sample array with the same
   :func:`~repro.service.requests.reduce_query` used everywhere, and
   isolates failures: a request whose source feed trips its circuit
   breaker (or whose chaos-injected engine call dies) fails *alone*;
   the coalescer falls back to per-request evaluation for the survivors
   rather than failing the whole group.  Per-request retries re-derive
   the request stream from the seed, so a retried answer is still
   bit-identical — fault injection consumes breaker/chaos state, never
   the request's sample stream.
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict
from typing import Sequence

import numpy as np

from repro.core import conditionals as _cond
from repro.core.engines import ExecutionEngine, get_engine
from repro.core.sampling import DeadlineExceeded, SampleBudgetExceeded
from repro.rng import ensure_rng
from repro.runtime import cancellation as _cancel
from repro.runtime.cancellation import CancellationToken, EvaluationCancelled

from repro.service.degradation import NO_DEGRADATION, DegradationDecision
from repro.service.requests import QueryRequest, QueryResult, reduce_query

__all__ = [
    "BatchOutcome",
    "CoalescerStats",
    "evaluate_batch",
    "evaluate_request",
]


@dataclasses.dataclass
class CoalescerStats:
    """What one ``evaluate_batch`` call did — fed into service metrics."""

    requests: int = 0
    groups: int = 0
    #: Requests answered from a group of >= 2 (shared plan/kernel).
    coalesced_requests: int = 0
    #: Seedless requests answered by slicing one pooled engine run.
    pooled_requests: int = 0
    #: Engine runs actually issued (the amortisation denominator).
    engine_runs: int = 0
    #: Joint samples drawn across all runs.
    samples_drawn: int = 0
    #: Groups whose bulk evaluation failed and fell back per-request.
    group_fallbacks: int = 0
    #: Requests that ultimately failed (exception outcome).
    failures: int = 0
    #: Pooled seedless rows served from the cross-query sample ledger
    #: instead of a fresh engine run (``config.sample_cache`` on).
    ledger_served: int = 0
    #: Requests answered at a brownout level > 0 (reduced sample budget).
    degraded_requests: int = 0
    #: Requests cancelled mid-flight (deadline / client disconnect).
    cancelled: int = 0
    #: Requests refused by a group bulkhead (open breaker / at limit).
    bulkhead_rejections: int = 0


#: One entry per request: either a ``QueryResult`` or the exception that
#: answered it.  Order matches the input batch.
BatchOutcome = list  # list[QueryResult | BaseException]


def _engine_name(engine: "str | ExecutionEngine") -> str:
    return engine if isinstance(engine, str) else type(engine).__name__


def _draw(plan, n: int, rng, engine) -> np.ndarray:
    """One instrumented engine run of the shared plan."""
    eng = get_engine(engine)
    config = _cond.get_config()
    return eng.sample(plan, int(n), rng, telemetry=config.plan_telemetry)


def _admit(config, n: int) -> None:
    """Admission control: the existing budget/deadline semantics.

    Reuses :class:`EvaluationConfig`'s ``sample_budget`` / ``deadline``
    accounting (the same fields ``_execute_plan`` enforces) so a service
    shares one vocabulary with solo evaluation.
    """
    if config.deadline is not None and time.monotonic() > config.deadline_at:
        raise DeadlineExceeded(
            f"evaluation deadline of {config.deadline}s expired before a "
            f"draw of {n} samples"
        )
    if config.sample_budget is not None:
        if config.samples_executed + n > config.sample_budget:
            raise SampleBudgetExceeded(
                f"sample budget exhausted: {config.samples_executed} drawn + "
                f"{n} requested > budget {config.sample_budget}"
            )
    config.samples_executed += n


def evaluate_request(
    request: QueryRequest,
    *,
    engine: "str | ExecutionEngine | None" = None,
    config: "_cond.EvaluationConfig | None" = None,
    rng: "np.random.Generator | None" = None,
    token: "CancellationToken | None" = None,
    degrade: "DegradationDecision | None" = None,
    _batched: bool = False,
    _batch_size: int = 1,
    _plan=None,
) -> QueryResult:
    """Solo evaluation: one request, its own stream, the shared reduction.

    This is the reference the determinism contract is stated against —
    the batched path produces answers bit-identical to this function for
    any seeded request, and a request answered at brownout level *k* is
    bit-identical to this function called with ``degrade`` frozen at the
    same level (the effective sample count is pure in ``(nominal,
    level)``).  ``rng`` is only accepted for seedless requests (callers
    that want solo evaluation with an external stream); ``token``
    installs a cooperative cancellation scope around the draw.
    """
    config = config if config is not None else _cond.get_config()
    engine = engine if engine is not None else config.engine
    plan = _plan if _plan is not None else request.value.plan
    decision = degrade if degrade is not None else NO_DEGRADATION
    n, record = decision.apply(request.resolve_samples(config))
    _admit(config, n)
    if request.seed is not None:
        rng = request.rng()
    elif rng is None:
        rng = ensure_rng(None)
    with _cancel.scope(token):
        values = _draw(plan, n, rng, engine)
    answer, extra = reduce_query(request, values)
    return QueryResult(
        request=request,
        value=answer,
        samples_used=n,
        batched=_batched,
        batch_size=_batch_size,
        latency_s=0.0,
        engine=_engine_name(engine),
        extra=extra,
        degradation=record,
    )


def _pool_token(members, tokens) -> "CancellationToken | None":
    """Aggregate cancellation for one pooled engine run.

    A pooled run answers *every* member from one draw, so it may only be
    deadline-cancelled when that hurts nobody still waiting: the run's
    deadline is the **latest** member deadline, and only when every
    member carries one.  Explicit per-member cancellations do not stop a
    pooled run (the batchmates still need the rows)."""
    if tokens is None:
        return None
    deadlines = []
    for i, _ in members:
        token = tokens.get(i)
        if token is None or token.deadline_at is None:
            return None
        deadlines.append(token.deadline_at)
    return CancellationToken(deadline_at=max(deadlines)) if deadlines else None


def _result(req, answer, extra, n, size, engine, record) -> QueryResult:
    return QueryResult(
        request=req, value=answer, samples_used=n, batched=size > 1,
        batch_size=size, latency_s=0.0, engine=_engine_name(engine),
        extra=extra, degradation=record,
    )


def _evaluate_group(
    group: "list[tuple[int, QueryRequest]]",
    outcomes: BatchOutcome,
    stats: CoalescerStats,
    *,
    engine,
    config,
    pool_rng,
    retries: int,
    degrade: "DegradationDecision | None" = None,
    tokens: "dict[int, CancellationToken] | None" = None,
    bulkhead=None,
) -> None:
    """Answer one structural group, isolating per-request failures."""
    plan = group[0][1].value.plan  # the leader's compiled (cached) plan
    size = len(group)
    decision = degrade if degrade is not None else NO_DEGRADATION

    def token_for(i):
        return tokens.get(i) if tokens is not None else None

    def mark_cancelled(i, exc) -> None:
        outcomes[i] = exc
        stats.cancelled += 1

    def degraded(req) -> "tuple[int, object]":
        n, record = decision.apply(req.resolve_samples(config))
        if record is not None:
            stats.degraded_requests += 1
        return n, record

    # Requests whose token already tripped while queued (expired deadline,
    # disconnected client) are answered without drawing anything.
    live: "list[tuple[int, QueryRequest]]" = []
    for i, req in group:
        token = token_for(i)
        if token is not None and token.cancelled:
            mark_cancelled(i, EvaluationCancelled(
                f"request {req.uid} cancelled before evaluation "
                f"({token.reason})", reason=token.reason or "cancelled",
            ))
        else:
            live.append((i, req))
    if not live:
        return

    # Bulkhead admission: a tripped or saturated group fails fast —
    # *this* group only; the caller keeps serving every other group.
    if bulkhead is not None:
        rejection = bulkhead.try_enter()
        if rejection is not None:
            for i, _ in live:
                outcomes[i] = rejection
                stats.bulkhead_rejections += 1
            return
    bulk_outcome: "bool | None" = True  # fed to the breaker on exit

    seeded = [(i, r) for i, r in live if r.seed is not None]
    pooled = [(i, r) for i, r in live if r.seed is None]

    try:
        try:
            # Seeded requests: one run of the shared plan per request
            # stream.  Cancellation is per-request — an expired deadline
            # stops that request's run at the next engine batch boundary
            # and never touches its batchmates' streams.
            for i, req in seeded:
                n, record = degraded(req)
                _admit(config, n)
                try:
                    with _cancel.scope(token_for(i)):
                        values = _draw(plan, n, req.rng(), engine)
                except EvaluationCancelled as exc:
                    mark_cancelled(i, exc)
                    continue
                stats.engine_runs += 1
                stats.samples_drawn += n
                answer, extra = reduce_query(req, values)
                outcomes[i] = _result(req, answer, extra, n, size, engine, record)
            # Seedless requests: ONE pooled run sliced across requests.
            # With the sample ledger on, the pooled run is served from
            # (and feeds) the cross-query cache — repeated same-shape
            # floods reuse rows instead of redrawing.  Seeded requests
            # above deliberately bypass the ledger: their per-request
            # streams are the solo bit-identity contract.
            if pooled:
                sizing = [degraded(r) for _, r in pooled]
                counts = [n for n, _ in sizing]
                total = int(sum(counts))
                rows = None
                if config.sample_cache:
                    from repro.core.ledger import LEDGER

                    rows = LEDGER.serve(plan, total, pool_rng, engine, config)
                if rows is not None:
                    stats.ledger_served += total
                else:
                    _admit(config, total)
                    try:
                        with _cancel.scope(_pool_token(pooled, tokens)):
                            rows = _draw(plan, total, pool_rng, engine)
                    except EvaluationCancelled as exc:
                        # Every member's deadline has passed: the whole
                        # pooled cohort is cancelled, not faulted.
                        for i, _ in pooled:
                            if outcomes[i] is None:
                                mark_cancelled(i, exc)
                        rows = None
                    if rows is not None:
                        stats.engine_runs += 1
                        stats.samples_drawn += total
                if rows is not None:
                    offset = 0
                    for (i, req), (n, record) in zip(pooled, sizing):
                        values = rows[offset:offset + n]
                        offset += n
                        answer, extra = reduce_query(req, values)
                        outcomes[i] = _result(
                            req, answer, extra, n, size, engine, record
                        )
                        stats.pooled_requests += 1
            if size > 1:
                stats.coalesced_requests += size
            return
        except (SampleBudgetExceeded, DeadlineExceeded):
            raise  # admission failures abort the group; the service maps them
        except EvaluationCancelled as exc:
            # Defensive: a cancellation that escaped the per-request
            # scopes (e.g. raised by a custom engine outside any scope)
            # answers the still-open requests; it is not a group fault.
            for i, _ in live:
                if outcomes[i] is None:
                    mark_cancelled(i, exc)
            return
        except Exception:
            # Bulk evaluation died mid-group (flaky source, chaos-injected
            # fault, ...).  Fall back to per-request evaluation so one bad
            # request — or one transient fault — cannot fail its batchmates.
            stats.group_fallbacks += 1
            bulk_outcome = False

        for i, req in group:
            if outcomes[i] is not None:
                continue  # answered before the fault
            last: BaseException | None = None
            for _ in range(retries + 1):
                try:
                    outcomes[i] = evaluate_request(
                        req, engine=engine, config=config, rng=pool_rng,
                        token=token_for(i), degrade=decision,
                        _batched=size > 1, _batch_size=size,
                    )
                    stats.engine_runs += 1
                    stats.samples_drawn += outcomes[i].samples_used
                    last = None
                    break
                except (SampleBudgetExceeded, DeadlineExceeded):
                    raise
                except EvaluationCancelled as exc:
                    mark_cancelled(i, exc)
                    last = None
                    break
                except Exception as exc:  # noqa: BLE001 — isolate per request
                    last = exc
            if last is not None:
                outcomes[i] = last
                stats.failures += 1
        if size > 1:
            stats.coalesced_requests += size
    finally:
        if bulkhead is not None:
            bulkhead.exit(bulk_outcome)


def evaluate_batch(
    requests: Sequence[QueryRequest],
    *,
    engine: "str | ExecutionEngine | None" = None,
    config: "_cond.EvaluationConfig | None" = None,
    pool_rng: "np.random.Generator | int | None" = None,
    retries: int = 1,
    stats: CoalescerStats | None = None,
    degrade: "DegradationDecision | None" = None,
    tokens: "dict[int, CancellationToken] | None" = None,
    bulkheads=None,
) -> BatchOutcome:
    """Answer a batch of requests, coalescing same-shape plans.

    Returns one outcome per request, in request order: a
    :class:`QueryResult` on success or the exception that answered it.
    Admission failures (:class:`SampleBudgetExceeded`,
    :class:`DeadlineExceeded`) become per-request outcomes too — they
    reject the remainder of the batch request-by-request rather than
    raising out of the coalescer.

    Overload-control hooks (all optional, all ``None`` by default so the
    bare coalescer behaves exactly as before):

    - ``degrade`` — a frozen per-batch
      :class:`~repro.service.degradation.DegradationDecision`; every
      request's sample budget is scaled through it and degraded answers
      carry a :class:`~repro.service.degradation.DegradationRecord`;
    - ``tokens`` — ``{batch index: CancellationToken}``; a tripped token
      answers its request with :class:`EvaluationCancelled` (before the
      draw, or mid-run at the next engine batch boundary);
    - ``bulkheads`` — a
      :class:`~repro.service.degradation.BulkheadRegistry`; each
      structural group is admitted through its own bulkhead, so a
      tripped group fails fast while healthy groups keep serving.
    """
    config = config if config is not None else _cond.get_config()
    engine = engine if engine is not None else config.engine
    pool_rng = ensure_rng(pool_rng)
    stats = stats if stats is not None else CoalescerStats()
    stats.requests += len(requests)

    outcomes: BatchOutcome = [None] * len(requests)
    groups: dict[str, list[tuple[int, QueryRequest]]] = defaultdict(list)
    for i, req in enumerate(requests):
        try:
            groups[req.group_key()].append((i, req))
        except Exception as exc:  # un-compilable value: fail that request
            outcomes[i] = exc
            stats.failures += 1

    stats.groups += len(groups)
    for key, group in groups.items():
        try:
            _evaluate_group(
                group, outcomes, stats,
                engine=engine, config=config, pool_rng=pool_rng,
                retries=retries, degrade=degrade, tokens=tokens,
                bulkhead=bulkheads.get(key) if bulkheads is not None else None,
            )
        except (SampleBudgetExceeded, DeadlineExceeded) as exc:
            for i, _ in group:
                if outcomes[i] is None:
                    outcomes[i] = exc
                    stats.failures += 1
    return outcomes
