"""Cross-module integration tests: full pipelines through the public API."""

import pytest

import repro
from repro import Uncertain, lift, posterior
from repro.core.conditionals import evaluation_config
from repro.dists import Gaussian
from repro.gps import GpsSensor, WalkConfig, generate_walk
from repro.gps.priors import walking_speed_prior
from repro.gps.walking import run_naive_walking, run_uncertain_walking
from repro.rng import default_rng


class TestPublicApi:
    def test_package_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "2.2.0"

    def test_readme_style_quickstart(self):
        # The README's quickstart must keep working.
        speed = Uncertain(Gaussian(3.5, 1.0))
        with evaluation_config(rng=default_rng(0)):
            assert bool(speed > 2.0)
            assert not (speed > 3.4).pr(0.9)
        assert speed.expected_value(2_000, default_rng(1)) == pytest.approx(
            3.5, abs=0.1
        )


class TestGpsPipeline:
    def test_end_to_end_walk(self):
        trace = generate_walk(WalkConfig(duration_s=30.0), rng=default_rng(2))

        def sensor():
            return GpsSensor(
                4.0, rng=default_rng(3), correlation=0.9, glitch_probability=0.05,
                glitch_scale_m=20.0,
            )

        naive = run_naive_walking(trace, sensor())
        improved = run_uncertain_walking(
            trace, sensor(), prior=walking_speed_prior(), rng=default_rng(4)
        )
        assert improved.speeds_mph.max() <= naive.speeds_mph.max() + 1.0
        assert len(naive.decisions) == len(improved.decisions) == 30

    def test_speed_network_composes_with_prior_and_conditional(self):
        from repro.gps.geo import GeoCoordinate
        from repro.gps.sensor import GpsFix
        from repro.gps.walking import uncertain_speed_mph

        origin = GeoCoordinate(47.64, -122.13)
        f1 = GpsFix(origin, 4.0, 0.0)
        f2 = GpsFix(origin.offset_m(2.0, 0.0), 4.0, 1.0)
        speed = uncertain_speed_mph(f1, f2)
        better = posterior(speed, walking_speed_prior(), rng=default_rng(5))
        with evaluation_config(rng=default_rng(6)):
            assert not (better > 10.0).pr(0.5)


class TestLiftedGeometryPipeline:
    def test_lifted_distance_between_uncertain_points(self):

        from repro.gps.geo import GeoCoordinate, enu_distance_m

        origin = GeoCoordinate(47.0, -122.0)

        def noisy_point(east, north, sigma):
            def sample(rng):
                return origin.offset_m(
                    east + rng.normal(0, sigma), north + rng.normal(0, sigma)
                )

            return Uncertain(sample)

        a = noisy_point(0.0, 0.0, 1.0)
        b = noisy_point(30.0, 40.0, 1.0)
        distance = lift(enu_distance_m)(a, b)
        est = distance.expected_value(2_000, default_rng(7))
        assert est == pytest.approx(50.0, rel=0.05)


class TestLifePipeline:
    def test_one_noisy_generation_against_truth(self):
        from repro.life.engine import random_board
        from repro.life.evaluation import run_generation
        from repro.life.variants import BayesLife

        board = random_board(8, 8, rng=default_rng(8))
        with evaluation_config(rng=default_rng(9), max_samples=300):
            wrong, updates, _, _ = run_generation(
                board, BayesLife(0.1), default_rng(10)
            )
        assert updates == 64
        assert wrong <= 1


class TestChainedComputation:
    def test_deep_pipeline_keeps_semantics(self):
        # A long chain mixing arithmetic, lifting, priors and conditionals.
        raw = Uncertain(Gaussian(10.0, 2.0))
        calibrated = (raw - 1.0) * 1.1
        smoothed = posterior(calibrated, Gaussian(9.0, 3.0), rng=default_rng(11))
        ratio = smoothed / 3.0
        with evaluation_config(rng=default_rng(12)):
            assert bool(ratio > 2.0)
            assert not (ratio > 5.0).pr(0.5)
        assert 2.0 < ratio.expected_value(2_000, default_rng(13)) < 5.0
