"""Ablation: HMC posterior vs Gaussian (Laplace) PPD approximation.

Section 5.3 weighs hybrid Monte Carlo (accurate, expensive, needs tuning)
against a Gaussian approximation (cheap, possibly inappropriate).  Both
plug into the same Parakeet runtime here; the bench times the cheap
pipeline and checks that both PPDs support the Figure 16 tradeoff.
"""


from repro.ml.evaluation import precision_recall_sweep
from repro.ml.hmc import HMCConfig
from repro.ml.images import make_dataset
from repro.ml.laplace import train_laplace_parakeet
from repro.ml.parakeet import train_parakeet
from repro.rng import default_rng


def test_ablation_hmc_vs_laplace_ppd(benchmark):
    x_train, t_train = make_dataset(1_000, rng=default_rng(30))
    x_eval, t_eval = make_dataset(300, rng=default_rng(31))

    laplace = benchmark.pedantic(
        lambda: train_laplace_parakeet(
            x_train, t_train, epochs=100, pool_size=25, rng=default_rng(32)
        ),
        rounds=1,
        iterations=1,
    )
    hmc = train_parakeet(
        x_train,
        t_train,
        pretrain_epochs=100,
        hmc_config=HMCConfig(n_samples=25, thin=4, burn_in=80),
        rng=default_rng(33),
    )

    alphas = (0.2, 0.5, 0.8)
    laplace_sweep = precision_recall_sweep(laplace, x_eval, t_eval, alphas=alphas)
    hmc_sweep = precision_recall_sweep(hmc, x_eval, t_eval, alphas=alphas)

    print("\nalpha  laplace(P/R)      hmc(P/R)")
    for lp, hp in zip(laplace_sweep, hmc_sweep):
        print(
            f"{lp.alpha:5.1f}  {lp.precision:.2f}/{lp.recall:.2f}"
            f"        {hp.precision:.2f}/{hp.recall:.2f}"
        )

    # Both PPDs must expose the developer-selectable tradeoff...
    for sweep in (laplace_sweep, hmc_sweep):
        assert sweep[0].recall >= sweep[-1].recall - 0.05
        assert sweep[-1].precision >= sweep[0].precision - 0.05
    # ...and agree roughly on the middle operating point.
    mid_l, mid_h = laplace_sweep[1], hmc_sweep[1]
    assert abs(mid_l.precision - mid_h.precision) < 0.2
