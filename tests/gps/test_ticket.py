"""Tests for the speeding-ticket model (Figure 4, Section 2)."""

import pytest

from repro.gps.ticket import (
    speed_ci_95_mph,
    speed_distribution_mph,
    ticket_condition,
    ticket_probability,
)
from repro.rng import default_rng


class TestSpeedCI:
    def test_papers_headline_number(self):
        # 4 m accuracy -> ~12.7 mph 95% speed CI (Section 2).
        assert speed_ci_95_mph(4.0) == pytest.approx(12.7, abs=0.1)

    def test_scales_linearly_with_accuracy(self):
        assert speed_ci_95_mph(8.0) == pytest.approx(2 * speed_ci_95_mph(4.0))

    def test_scales_inversely_with_dt(self):
        assert speed_ci_95_mph(4.0, dt_s=2.0) == pytest.approx(
            speed_ci_95_mph(4.0) / 2
        )


class TestSpeedDistribution:
    def test_high_speed_low_noise_is_tight(self, fixed_rng):
        speed = speed_distribution_mph(60.0, 2.0)
        assert speed.expected_value(10_000, fixed_rng) == pytest.approx(60.0, rel=0.01)

    def test_zero_speed_still_positive(self, fixed_rng):
        speed = speed_distribution_mph(0.0, 4.0)
        samples = speed.samples(1_000, fixed_rng)
        assert samples.min() >= 0.0
        assert samples.mean() > 0.0  # noise creates apparent movement

    def test_validation(self):
        with pytest.raises(ValueError):
            speed_distribution_mph(-1.0, 4.0)
        with pytest.raises(ValueError):
            speed_distribution_mph(50.0, 0.0)
        with pytest.raises(ValueError):
            speed_distribution_mph(50.0, 4.0, dt_s=0.0)


class TestTicketProbability:
    def test_papers_headline_cell(self):
        p = ticket_probability(57.0, 4.0, n=50_000, rng=default_rng(0))
        assert 0.2 < p < 0.45  # paper: 32%

    def test_monotone_in_speed(self):
        rng = default_rng(1)
        ps = [
            ticket_probability(s, 4.0, n=20_000, rng=rng) for s in (50, 57, 63, 70)
        ]
        assert ps == sorted(ps)

    def test_worse_accuracy_hurts_innocent_drivers(self):
        rng = default_rng(2)
        p_good = ticket_probability(55.0, 2.0, n=20_000, rng=rng)
        p_bad = ticket_probability(55.0, 16.0, n=20_000, rng=rng)
        assert p_bad > p_good

    def test_condition_is_uncertain_bool(self):
        from repro.core.uncertain import UncertainBool

        assert isinstance(ticket_condition(57.0, 4.0), UncertainBool)

    def test_explicit_evidence_protects_borderline_drivers(self):
        # The paper's fix: demand strong evidence before ticketing.
        from repro.core.conditionals import evaluation_config

        cond = ticket_condition(57.0, 4.0)
        with evaluation_config(rng=default_rng(3)):
            assert not cond.pr(0.9)
