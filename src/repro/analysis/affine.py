"""Affine-form (zonotope) abstract interpretation over compiled plans.

The interval domain in :mod:`repro.analysis.intervals` is non-relational:
it cannot see that the two operands of ``x - x`` are the *same* random
variable, so it infers ``[lo-hi, hi-lo]`` instead of ``[0, 0]``.  This
module layers a second, dependence-tracking domain on top of it.  Each
slot's abstract value is an *affine form*

    ``center + sum(coeffs[s] * eta_s) + residual``

where ``eta_s`` is one *noise symbol* per stochastic leaf slot ``s`` —
the (joint-sample) value drawn at that leaf, ranging over the leaf's
declared support (possibly unbounded) — and ``residual`` is an interval
soundly bounding every term the linear part cannot express.  Because the
coefficients are carried symbolically, linear arithmetic cancels
*exactly*: ``x - x`` has every coefficient equal to zero and concretizes
to ``[0, 0]`` even for a Gaussian with infinite support, and
``(a + b) - a`` keeps exactly ``b``'s support.

Soundness and relative precision are both by construction:

- every transfer function over-approximates the concrete operation
  (multiplication bounds its nonlinear cross term with the interval
  product of the operands' deviations), and
- every result range is *clamped* by the interval domain's answer for
  the same slot (the meet of two sound bounds is sound), so the affine
  range is never wider than the interval range.

Both properties are fuzzed over randomized fig08-style plans in
``tests/analysis/test_affine.py``.

The domain powers graph rules UNC106/UNC107
(:mod:`repro.analysis.diagnostics`), the ``UNC100`` static bound report
in ``Uncertain.diagnose(bounds=True)``, and second-moment reasoning via
:func:`sd_bounds`: for independent leaves,
``sd <= sqrt(sum(c_s**2 * Var[eta_s])) + rad(residual)``, tightened by
Popoviciu's inequality whenever the clamped range is bounded.
"""

from __future__ import annotations

import math

from repro.analysis.intervals import (
    BINARY_TRANSFER,
    BOOL,
    COMPARISON_SYMBOLS,
    FALSE,
    TRUE,
    Interval,
    infer_intervals,
)
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
)
from repro.core.plan import EvaluationPlan

_INF = math.inf
_ZERO = Interval(0.0, 0.0)
_iadd = BINARY_TRANSFER["+"]
_isub = BINARY_TRANSFER["-"]
_imul = BINARY_TRANSFER["*"]

__all__ = [
    "AffineForm",
    "infer_affine",
    "decide_comparison",
    "leaf_variances",
    "sd_bounds",
]


def _meet(a: Interval, b: Interval) -> Interval:
    """Intersection of two sound bounds (still sound).

    An empty meet can only arise from float-rounding skew between the
    two domains; in that case keep ``b`` (the interval domain's answer),
    which is sound on its own.
    """
    lo = max(a.lower, b.lower)
    hi = min(a.upper, b.upper)
    if lo > hi:
        return b
    return Interval(lo, hi)


def _scaled(iv: Interval, k: float) -> Interval:
    return _imul(iv, Interval(k, k)) if k != 1.0 else iv


class AffineForm:
    """One slot's abstract value: ``center + Σ coeffs[s]·η_s + residual``.

    ``coeffs`` maps stochastic leaf slots to their exact first-order
    coefficients (zeros are dropped); ``range`` is the concretization
    clamped by the interval domain's result for the same slot.
    """

    __slots__ = ("center", "coeffs", "residual", "range")

    def __init__(self, center: float, coeffs: dict[int, float],
                 residual: Interval, range_: Interval) -> None:
        self.center = center
        self.coeffs = coeffs
        self.residual = residual
        self.range = range_

    @classmethod
    def from_interval(cls, interval: Interval) -> "AffineForm":
        """Degenerate form carrying no dependence information."""
        return cls(0.0, {}, interval, interval)

    @classmethod
    def constant(cls, value: float) -> "AffineForm":
        return cls(float(value), {}, _ZERO, Interval(float(value), float(value)))

    @property
    def symbols(self) -> frozenset[int]:
        return frozenset(self.coeffs)

    @property
    def is_linear(self) -> bool:
        return self.residual.is_point and self.residual.lower == 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = "".join(f" + {c!r}*eta{s}" for s, c in sorted(self.coeffs.items()))
        return f"<AffineForm {self.center!r}{terms} + {self.residual!r} in {self.range!r}>"


def _concretize(center: float, coeffs: dict[int, float], residual: Interval,
                symbol_ranges: dict[int, Interval]) -> Interval:
    if not math.isfinite(center):
        return Interval(-_INF, _INF)
    out = Interval(center, center)
    for s, c in coeffs.items():
        out = _iadd(out, _scaled(symbol_ranges[s], c))
    return _iadd(out, residual)


def _finish(center: float, coeffs: dict[int, float], residual: Interval,
            clamp: Interval, symbol_ranges: dict[int, Interval]) -> AffineForm:
    coeffs = {s: c for s, c in coeffs.items() if c != 0.0}
    if not math.isfinite(center) or any(math.isnan(c) for c in coeffs.values()):
        return AffineForm.from_interval(clamp)
    rng = _meet(_concretize(center, coeffs, residual, symbol_ranges), clamp)
    return AffineForm(center, coeffs, residual, rng)


# -- linear transfer -------------------------------------------------------


def _lin(x: AffineForm, y: AffineForm, sign: float):
    """Exact linear combination ``x + sign*y`` (sign in {+1.0, -1.0})."""
    center = x.center + sign * y.center
    coeffs = dict(x.coeffs)
    for s, c in y.coeffs.items():
        coeffs[s] = coeffs.get(s, 0.0) + sign * c
    residual = _iadd(x.residual, _scaled(y.residual, sign))
    return center, coeffs, residual


def _aff_mul(x: AffineForm, y: AffineForm, clamp: Interval,
             symbol_ranges: dict[int, Interval]) -> AffineForm:
    cx, cy = x.center, y.center
    if not (math.isfinite(cx) and math.isfinite(cy)):
        return AffineForm.from_interval(clamp)
    coeffs = {s: cy * c for s, c in x.coeffs.items()}
    for s, c in y.coeffs.items():
        coeffs[s] = coeffs.get(s, 0.0) + cx * c
    # x = cx + Dx, y = cy + Dy with Dx = (linear + residual) deviations, so
    # x*y = cx*cy + cx*Dy + cy*Dx + Dx*Dy; the linear parts of cx*Dy and
    # cy*Dx stay symbolic, everything else lands in the residual.
    dx = _isub(x.range, Interval(cx, cx))
    dy = _isub(y.range, Interval(cy, cy))
    residual = _iadd(_iadd(_scaled(y.residual, cx), _scaled(x.residual, cy)),
                     _imul(dx, dy))
    return _finish(cx * cy, coeffs, residual, clamp, symbol_ranges)


def _aff_scale(x: AffineForm, k: float, clamp: Interval,
               symbol_ranges: dict[int, Interval]) -> AffineForm:
    coeffs = {s: c * k for s, c in x.coeffs.items()}
    return _finish(x.center * k, coeffs, _scaled(x.residual, k),
                   clamp, symbol_ranges)


def decide_comparison(symbol: str, diff_range: Interval) -> Interval:
    """Decide ``left <sym> right`` from a sound range of ``left - right``."""
    lo, hi = diff_range.lower, diff_range.upper
    if symbol == "<":
        return TRUE if hi < 0.0 else FALSE if lo >= 0.0 else BOOL
    if symbol == "<=":
        return TRUE if hi <= 0.0 else FALSE if lo > 0.0 else BOOL
    if symbol == ">":
        return TRUE if lo > 0.0 else FALSE if hi <= 0.0 else BOOL
    if symbol == ">=":
        return TRUE if lo >= 0.0 else FALSE if hi < 0.0 else BOOL
    if symbol == "==":
        if lo == 0.0 == hi:
            return TRUE
        return FALSE if not diff_range.contains_zero else BOOL
    if symbol == "!=":
        if lo == 0.0 == hi:
            return FALSE
        return TRUE if not diff_range.contains_zero else BOOL
    return BOOL


def _aff_compare(symbol: str, x: AffineForm, y: AffineForm, clamp: Interval,
                 symbol_ranges: dict[int, Interval]) -> AffineForm:
    center, coeffs, residual = _lin(x, y, -1.0)
    coeffs = {s: c for s, c in coeffs.items() if c != 0.0}
    diff = _meet(_concretize(center, coeffs, residual, symbol_ranges),
                 _isub(x.range, y.range))
    decision = _meet(decide_comparison(symbol, diff), clamp)
    return AffineForm.from_interval(decision)


def _aff_binary(symbol: str, x: AffineForm, y: AffineForm, clamp: Interval,
                symbol_ranges: dict[int, Interval]) -> AffineForm:
    if symbol == "+":
        return _finish(*_lin(x, y, 1.0), clamp, symbol_ranges)
    if symbol == "-":
        return _finish(*_lin(x, y, -1.0), clamp, symbol_ranges)
    if symbol == "*":
        return _aff_mul(x, y, clamp, symbol_ranges)
    if symbol == "/" and y.range.is_point and y.range.lower != 0.0:
        # y's range is a sound point => y is the constant k on every joint
        # sample, so division is an exact linear rescale.
        return _aff_scale(x, 1.0 / y.range.lower, clamp, symbol_ranges)
    if symbol in COMPARISON_SYMBOLS:
        return _aff_compare(symbol, x, y, clamp, symbol_ranges)
    # **, //, %, logical ops, division by a genuinely uncertain divisor:
    # fall back to the (already computed) interval result.
    return AffineForm.from_interval(clamp)


def _aff_unary(label: str, x: AffineForm, clamp: Interval,
               symbol_ranges: dict[int, Interval]) -> AffineForm:
    if label == "neg":
        coeffs = {s: -c for s, c in x.coeffs.items()}
        return _finish(-x.center, coeffs, _scaled(x.residual, -1.0),
                       clamp, symbol_ranges)
    if label in {"abs", "absolute", "fabs"}:
        if x.range.lower >= 0.0:
            return AffineForm(x.center, dict(x.coeffs), x.residual, x.range)
        if x.range.upper <= 0.0:
            coeffs = {s: -c for s, c in x.coeffs.items()}
            return _finish(-x.center, coeffs, _scaled(x.residual, -1.0),
                           clamp, symbol_ranges)
    return AffineForm.from_interval(clamp)


# -- the interpreter -------------------------------------------------------


def infer_affine(plan: EvaluationPlan,
                 intervals: list[Interval] | None = None) -> list[AffineForm]:
    """One :class:`AffineForm` per plan slot, clamped by the interval pass."""
    if intervals is None:
        intervals = infer_intervals(plan)
    forms: list[AffineForm] = [None] * len(plan.steps)  # type: ignore[list-item]
    symbol_ranges: dict[int, Interval] = {}
    for step in plan.steps:
        node, slot = step.node, step.slot
        clamp = intervals[slot]
        if isinstance(node, LeafNode):
            symbol_ranges[slot] = clamp
            forms[slot] = AffineForm(0.0, {slot: 1.0}, _ZERO, clamp)
        elif isinstance(node, PointMassNode):
            forms[slot] = (AffineForm.constant(clamp.lower) if clamp.is_point
                           else AffineForm.from_interval(clamp))
        elif isinstance(node, BinaryOpNode) and len(step.parent_slots) == 2:
            a, b = step.parent_slots
            forms[slot] = _aff_binary(node.label, forms[a], forms[b],
                                      clamp, symbol_ranges)
        elif (isinstance(node, (UnaryOpNode, ApplyNode))
              and len(step.parent_slots) == 1):
            forms[slot] = _aff_unary(node.label, forms[step.parent_slots[0]],
                                     clamp, symbol_ranges)
        else:
            forms[slot] = AffineForm.from_interval(clamp)
    return forms


# -- second moments --------------------------------------------------------


def leaf_variances(plan: EvaluationPlan) -> dict[int, float]:
    """Per-leaf-slot variance: analytic when declared, else Popoviciu.

    A bounded support ``[lo, hi]`` bounds the variance by
    ``((hi - lo) / 2) ** 2``; an unbounded support without a declared
    variance yields ``inf``.
    """
    out: dict[int, float] = {}
    for step in plan.steps:
        node = step.node
        if not isinstance(node, LeafNode):
            continue
        var = _INF
        try:
            var = float(node.dist.variance)
        except Exception:
            try:
                support = node.dist.support
                lo, hi = float(support.lower), float(support.upper)
                if math.isfinite(lo) and math.isfinite(hi):
                    var = ((hi - lo) / 2.0) ** 2
            except Exception:
                pass
        out[step.slot] = var
    return out


def sd_bounds(plan: EvaluationPlan,
              forms: list[AffineForm] | None = None) -> list[float]:
    """A sound standard-deviation upper bound per slot (may be ``inf``).

    Distinct leaves are independent, so the linear part contributes
    ``sqrt(sum(c**2 * Var[eta_s]))``; the residual is a bounded shift
    contributing at most its radius; a bounded clamped range tightens via
    Popoviciu regardless.
    """
    if forms is None:
        forms = infer_affine(plan)
    variances = leaf_variances(plan)
    bounds: list[float] = []
    for form in forms:
        linear_var = 0.0
        for s, c in form.coeffs.items():
            var = variances.get(s, _INF)
            if var == _INF:
                linear_var = _INF
                break
            linear_var += c * c * var
        sd = math.sqrt(linear_var) if linear_var < _INF else _INF
        sd += form.residual.width / 2.0 if form.residual.is_bounded else _INF
        if form.range.is_bounded:
            sd = min(sd, form.range.width / 2.0)
        bounds.append(sd)
    return bounds
