"""Preset priors for GPS data (Section 3.5).

The paper has expert library developers ship preset priors for common
situations — walking speeds, driving speeds, "on a road".  Applications
select and combine them rather than writing statistics.
"""

from __future__ import annotations

import math
from typing import Iterable

import networkx as nx

from repro.core.bayes import Prior
from repro.dists.gaussian import TruncatedGaussian
from repro.gps.geo import GeoCoordinate


def walking_speed_prior(
    mean_mph: float = 3.0, sigma_mph: float = 1.5, max_mph: float = 10.0
) -> Prior:
    """Prior over plausible human walking speeds.

    "Humans are incredibly unlikely to walk at 60 mph or even 10 mph"
    (Section 5.1) — a truncated Gaussian over [0, max] with mass around the
    average walking pace encodes exactly that.
    """
    dist = TruncatedGaussian(mean_mph, sigma_mph, 0.0, max_mph)
    return Prior.from_distribution(dist, label="walking-speed")


def driving_speed_prior(
    mean_mph: float = 35.0, sigma_mph: float = 15.0, max_mph: float = 90.0
) -> Prior:
    """Preset prior for driving, one of the paper's example library presets."""
    dist = TruncatedGaussian(mean_mph, sigma_mph, 0.0, max_mph)
    return Prior.from_distribution(dist, label="driving-speed")


# ---------------------------------------------------------------------------
# Road snapping (Figure 10)
# ---------------------------------------------------------------------------


def build_road_graph(segments: Iterable[tuple[GeoCoordinate, GeoCoordinate]]) -> nx.Graph:
    """A road network as a graph whose edges carry segment geometry."""
    graph = nx.Graph()
    for i, (a, b) in enumerate(segments):
        ka, kb = (a.latitude, a.longitude), (b.latitude, b.longitude)
        graph.add_node(ka, coordinate=a)
        graph.add_node(kb, coordinate=b)
        graph.add_edge(ka, kb, index=i, start=a, end=b)
    if graph.number_of_edges() == 0:
        raise ValueError("road graph needs at least one segment")
    return graph


def _point_segment_distance_m(
    p: GeoCoordinate, a: GeoCoordinate, b: GeoCoordinate
) -> float:
    """Distance from ``p`` to segment ``ab`` in the local tangent plane."""
    px, py = p.enu_m(a)
    bx, by = b.enu_m(a)
    seg_len_sq = bx * bx + by * by
    if seg_len_sq == 0.0:
        return math.hypot(px, py)
    t = max(0.0, min(1.0, (px * bx + py * by) / seg_len_sq))
    return math.hypot(px - t * bx, py - t * by)


def distance_to_roads_m(point: GeoCoordinate, roads: nx.Graph) -> float:
    """Distance from ``point`` to the nearest road segment."""
    return min(
        _point_segment_distance_m(point, data["start"], data["end"])
        for _, _, data in roads.edges(data=True)
    )


def road_prior(
    roads: nx.Graph, sigma_m: float = 5.0, off_road_weight: float = 0.05
) -> Prior:
    """Prior assigning high probability near roads, low elsewhere.

    This achieves the paper's "road-snapping" behaviour (Figure 10): the
    location posterior shifts towards the nearest road unless GPS evidence
    to the contrary is strong.  ``off_road_weight`` keeps the prior proper
    away from roads so pedestrians cutting corners are not impossible.
    """
    if sigma_m <= 0:
        raise ValueError(f"sigma_m must be positive, got {sigma_m}")
    if not 0 <= off_road_weight <= 1:
        raise ValueError(f"off_road_weight must be in [0, 1], got {off_road_weight}")

    def weight(location: GeoCoordinate) -> float:
        d = distance_to_roads_m(location, roads)
        return off_road_weight + (1 - off_road_weight) * math.exp(
            -(d * d) / (2 * sigma_m * sigma_m)
        )

    return Prior.from_weights(weight, label="on-road")
