"""Host metadata stamped into every ``BENCH_*.json``.

Perf numbers from different containers are only comparable when the
artifact says what hardware and library versions produced them; every
benchmark writer merges :func:`host_metadata` under a ``"host"`` key.
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np


def host_metadata() -> dict:
    """CPU count, interpreter, numpy version, and platform of this host."""
    return {
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": os.path.basename(sys.executable),
    }


def stamp_host(data: dict) -> dict:
    """Merge host metadata into a bench-results dict (in place)."""
    data["host"] = host_metadata()
    return data
