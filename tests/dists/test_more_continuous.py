"""Tests for Weibull, Laplace, Cauchy and VonMises."""

import math

import numpy as np
import pytest

from repro.dists import Cauchy, Laplace, VonMises, Weibull
from repro.rng import default_rng


class TestWeibull:
    def test_shape_one_is_exponential(self):
        from repro.dists import Exponential

        w = Weibull(1.0, 2.0)
        e = Exponential(0.5)
        xs = np.linspace(0.1, 5.0, 20)
        assert np.allclose(w.pdf(xs), e.pdf(xs))

    def test_moments(self):
        w = Weibull(2.0, 1.0)
        assert w.mean == pytest.approx(math.gamma(1.5))
        assert w.variance == pytest.approx(math.gamma(2.0) - math.gamma(1.5) ** 2)

    def test_sampled_mean(self, fixed_rng):
        w = Weibull(1.5, 3.0)
        assert w.sample_n(50_000, fixed_rng).mean() == pytest.approx(w.mean, rel=0.02)

    def test_cdf_median(self):
        w = Weibull(2.0, 1.0)
        median = (math.log(2)) ** 0.5
        assert float(w.cdf(median)) == pytest.approx(0.5)

    def test_support(self, rng):
        assert Weibull(0.8, 1.0).sample_n(2_000, rng).min() >= 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Weibull(0.0, 1.0)
        with pytest.raises(ValueError):
            Weibull(1.0, -1.0)


class TestLaplace:
    def test_moments(self):
        lap = Laplace(2.0, 3.0)
        assert lap.mean == 2.0
        assert lap.variance == 18.0

    def test_cdf_at_mu(self):
        assert float(Laplace(1.0, 2.0).cdf(1.0)) == pytest.approx(0.5)

    def test_pdf_peak(self):
        lap = Laplace(0.0, 1.0)
        assert float(lap.pdf(0.0)) == pytest.approx(0.5)

    def test_heavier_tail_than_gaussian(self):
        from repro.dists import Gaussian

        assert float(Laplace(0, 1).pdf(5.0)) > float(Gaussian(0, 1).pdf(5.0))

    def test_sampled_variance(self, fixed_rng):
        lap = Laplace(0.0, 1.0)
        assert np.var(lap.sample_n(50_000, fixed_rng)) == pytest.approx(2.0, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            Laplace(0.0, 0.0)


class TestCauchy:
    def test_no_moments(self):
        with pytest.raises(NotImplementedError):
            _ = Cauchy().mean
        with pytest.raises(NotImplementedError):
            _ = Cauchy().variance

    def test_median(self):
        c = Cauchy(3.0, 2.0)
        assert c.median == 3.0
        assert float(c.cdf(3.0)) == pytest.approx(0.5)

    def test_quartiles(self):
        c = Cauchy(0.0, 1.0)
        assert float(c.cdf(1.0)) == pytest.approx(0.75)

    def test_conditionals_still_work(self):
        # No mean, but evidence is always defined.
        from repro.core.uncertain import Uncertain

        u = Uncertain(Cauchy(2.0, 1.0))
        assert (u > 2.0).evidence(20_000, default_rng(0)) == pytest.approx(0.5, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            Cauchy(scale=0.0)


class TestVonMises:
    def test_samples_in_circle(self, rng):
        s = VonMises(0.0, 2.0).sample_n(2_000, rng)
        assert s.min() >= -math.pi and s.max() <= math.pi

    def test_concentration(self, fixed_rng):
        tight = VonMises(0.0, 50.0).sample_n(5_000, fixed_rng)
        loose = VonMises(0.0, 0.5).sample_n(5_000, fixed_rng)
        assert np.std(tight) < np.std(loose)

    def test_kappa_zero_is_uniform(self):
        v = VonMises(0.0, 0.0)
        assert v.variance == 1.0
        xs = np.array([-2.0, 0.0, 2.0])
        assert np.allclose(v.pdf(xs), 1.0 / (2 * math.pi))

    def test_pdf_peak_at_mu(self):
        v = VonMises(1.0, 4.0)
        assert float(v.pdf(1.0)) > float(v.pdf(0.0))

    def test_circular_variance_decreases_with_kappa(self):
        assert VonMises(0, 10.0).variance < VonMises(0, 1.0).variance

    def test_validation(self):
        with pytest.raises(ValueError):
            VonMises(0.0, -1.0)
