"""The unified evaluation API: one namespace for "how do I run this".

Historically the runtime's knobs were scattered: engine selection on
``execute_plan``, sample sizes hard-coded in estimators, telemetry on a
separate object, and three module-level sampling entry points.  This
module is the single blessed surface for controlling evaluation:

- **configure** — :class:`EvaluationConfig` carries every knob in one
  constructor (``engine=``, ``sample_budget=``, ``deadline=``,
  ``metrics=``, plus the statistical parameters); scope overrides with
  :func:`config` (the ``evaluation_config`` context manager)::

      from repro import evaluate

      with evaluate.config(engine="parallel", sample_budget=2_000_000):
          if speed > 4:          # SPRT batches draw through the pool
              ...

- **draw** — values are sampled through their own methods
  (``Uncertain.sample`` / ``samples`` / ``sample_with``), every one
  accepting an ``engine=`` override; the long-deprecated module-level
  ``sample_once`` / ``sample_batch`` / ``execute_plan`` were removed in
  v2.0 (migration notes in ``docs/api.md``).
- **estimate** — :func:`expected_value` (with ``adaptive=``) and
  :func:`expected_value_adaptive`, plus the ergonomic query surface
  mirrored from the value methods: :func:`percentiles`,
  :func:`confidence_interval`, :func:`is_probable` — the same four
  queries the async service tier (:mod:`repro.service`) accepts over
  its request schema.
- **observe** — :func:`stats` / :func:`reset_stats` for the runtime
  counters, :class:`Tracer` / :func:`tracing` for span traces
  (``docs/runtime.md`` documents both schemas).
- **extend** — :func:`register_engine` / :func:`get_engine` /
  :func:`available_engines` for custom execution engines;
  :class:`ParallelEngine` is the built-in process-pool engine.
"""

from __future__ import annotations

from repro.core.conditionals import (
    EvaluationConfig,
    evaluation_config,
    evaluation_config as config,
    get_config,
    set_config,
)
from repro.core.engines import (
    ExecutionEngine,
    InterpreterEngine,
    NumpyEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.expectation import expected_value, expected_value_adaptive
from repro.core.sampling import (
    DeadlineExceeded,
    SampleBudgetExceeded,
    SampleContext,
    SamplingError,
)
from repro.runtime import (
    RuntimeMetrics,
    Tracer,
    reset_stats,
    set_tracer,
    stats,
    tracing,
)
from repro.runtime.parallel import ParallelEngine


def percentiles(value, n=None, *, samples=None, rng=None, engine=None):
    """Percentile curve of an uncertain value — ``Uncertain.percentiles``.

    Module-level spelling so estimation code can stay in the façade
    namespace; identical semantics (cached plans, ambient budgets,
    ``engine=`` override) to the method.
    """
    return value.percentiles(n, samples=samples, rng=rng, engine=engine)


def confidence_interval(value, level=0.95, *, samples=None, rng=None, engine=None):
    """Central credible interval — ``Uncertain.confidence_interval``."""
    return value.confidence_interval(
        level, samples=samples, rng=rng, engine=engine
    )


def is_probable(value, threshold=0.5, rng=None):
    """Hypothesis-tested truthiness — ``Uncertain.is_probable``."""
    return value.is_probable(threshold, rng=rng)


def clear_caches() -> None:
    """Drop every process-global evaluation cache in one call.

    Clears, in dependency order: the per-root compiled-plan cache and the
    sample-ledger entries it keys (:func:`repro.core.plan.clear_plan_cache`),
    the structural plan LRU, the fused-kernel cache, and — explicitly, in
    case entries outlive their plans — the cross-query sample ledger.
    After this call no evaluation state survives: every future draw
    recompiles, regenerates kernels, and redraws samples.
    """
    from repro.core.fused import clear_kernel_cache
    from repro.core.ledger import clear_ledger
    from repro.core.plan import clear_plan_cache
    from repro.core.structural import clear_structural_cache

    clear_plan_cache()
    clear_structural_cache()
    clear_kernel_cache()
    clear_ledger()


__all__ = [
    # configure
    "EvaluationConfig",
    "config",
    "evaluation_config",
    "get_config",
    "set_config",
    # draw
    "SampleContext",
    "SamplingError",
    "SampleBudgetExceeded",
    "DeadlineExceeded",
    # estimate
    "expected_value",
    "expected_value_adaptive",
    "percentiles",
    "confidence_interval",
    "is_probable",
    # observe
    "clear_caches",
    "stats",
    "reset_stats",
    "RuntimeMetrics",
    "Tracer",
    "tracing",
    "set_tracer",
    # extend
    "ExecutionEngine",
    "NumpyEngine",
    "InterpreterEngine",
    "ParallelEngine",
    "register_engine",
    "get_engine",
    "available_engines",
]
