"""Cross-query sample ledger: incremental sample reuse across queries.

The compiler stack made *compilation* pay-once; this module does the same
for *sampling*.  A typical analyst flow interrogates one uncertain value
repeatedly — ``pr(...)`` via the SPRT, then ``expected_value()``, then
``confidence_interval()`` — and before the ledger every query redrew its
samples from scratch.  The :class:`SampleLedger` caches realized sample
columns per (plan structural hash × seed lineage × engine) and serves a
query needing ``N`` rows by reusing the cached prefix of length ``n`` and
drawing only the ``N − n`` suffix.

Bit-identity contract
---------------------

Every row range the ledger serves is bit-identical to the same range of a
single fresh engine run from the entry's lineage stream start.  Two entry
modes uphold that contract, chosen by a certify-or-probe gate at entry
creation (the PR 6 certifier pattern, sticky per plan shape × engine):

- **stream** — the plan's RNG consumption is *prefix-stable*: running
  ``n`` rows and then ``N − n`` more on the same generator equals one
  ``N``-row run (numpy bulk draws are sequential, so this holds whenever
  the plan makes exactly one bulk draw call per batch).  The entry keeps
  one growing column plus the live generator positioned after it; any
  query is a slice, extension draws only the suffix.
- **replay** — multi-draw plans interleave per-leaf streams differently
  at different batch sizes, so suffix extension is impossible on *any*
  engine that honours the reference stream.  The entry instead memoizes
  one full fresh-from-lineage-start run per distinct ``N`` — each cached
  column literally *is* a fresh ``N``-row run, so the contract holds
  trivially and repeated exact-``N`` queries (the analyst-session shape)
  are free.

The gate certifies statically when the plan's canonical draw sequence
(:func:`repro.analysis.certify.plan_draw_sequence`) is a single trusted
bulk-family event (or empty), and otherwise runs a dynamic probe: a
split run is compared against a full run across *every* plan slot —
comparing only the root would pass vacuously on boolean plans whose
output is constant.

Seed lineage
------------

- An explicit integer seed — or the *pristine* generator ``ensure_rng``
  builds from one — gives the strongest contract: the entry's stream
  starts exactly where the caller's would, so every served query is
  bit-identical to what the same call would return with the ledger off.
- An already-advanced :class:`~numpy.random.Generator` (typically the
  ambient ``config.rng``) is identified by its
  :class:`~numpy.random.SeedSequence` origin (entropy + spawn key); the
  entry's stream is *forked* from that origin under a ledger-private
  spawn tag, without consuming or observing the caller's stream.  Served
  rows are reproducible and i.i.d. but are drawn from the derived
  stream, not from the advancing ambient one — the documented trade for
  cross-query reuse (``docs/performance.md``).

Safety gating (always falls back to a fresh engine run, never errors):
opaque plans (no structural hash), memo-carrying draws, the parallel
engine (chunk-seeded streams are not prefix-stable by construction),
unknown engines, exotic bit generators without a seed sequence, and any
draw under ``on_nonfinite="resample"`` (row repair consumes extra stream)
all bypass the ledger.  Budget/deadline admission mirrors
``sampling._execute_plan`` but charges only newly drawn suffix rows.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import monotonic

import numpy as np

from repro.core import conditionals as _cond
from repro.core.engines import ExecutionEngine, get_engine
from repro.core.optimizer import resolve_level
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace

__all__ = [
    "LedgerEntry",
    "LedgerWindow",
    "SampleLedger",
    "LEDGER",
    "clear_ledger",
    "ledger_stats",
]

#: Byte budget used when ``sample_cache=True`` (no explicit budget).
DEFAULT_MAX_BYTES = 64 * 1024 * 1024

#: Spawn-key tag appended when forking a ledger stream from a live
#: generator's seed-sequence origin.  Any fixed uint32 works; a dedicated
#: tag guarantees the forked stream never collides with user ``spawn()``
#: children of the same origin.
_LEDGER_SPAWN_TAG = 0x1ED6E9

#: Engines whose ``run`` honours the reference single-stream consumption
#: order (the repo-wide bit-identity contract).  The parallel engine is
#: excluded by design: its chunk-seeded stream re-derives child seeds per
#: call, so ``run(n); run(m)`` never equals ``run(n + m)``.
_LEDGER_ENGINES = frozenset({"numpy", "fused", "interpreter"})

#: Dynamic probe sizes: a full run of ``_PROBE_FULL`` rows is compared
#: against a split ``_PROBE_SPLIT + (full - split)`` run, slot by slot.
_PROBE_FULL = 32
_PROBE_SPLIT = 13


def _canonical_entropy(entropy) -> tuple:
    """Entropy of a ``SeedSequence`` as a hashable canonical tuple."""
    if entropy is None:
        return ()
    if isinstance(entropy, (int, np.integer)):
        return (int(entropy),)
    try:
        return tuple(int(e) for e in entropy)
    except TypeError:
        return (int(entropy),)


def _lineage(rng_spec, config) -> "tuple[tuple, tuple] | None":
    """Resolve an rng argument into ``(lineage_token, base_spec)``.

    ``lineage_token`` keys the ledger entry; ``base_spec`` is the
    serialisable recipe :func:`_base_generator` rebuilds the entry's
    private stream from (which is what makes eviction/rebuild
    deterministic).  Returns ``None`` when no stable lineage exists
    (caller bypasses the ledger).

    Three lineage kinds, strongest first:

    - ``("seed", s)`` — a raw integer seed: the entry's stream is
      ``default_rng(s)``, so served rows are bit-identical to ledger-off.
    - ``("origin", ...)`` — a *pristine* generator (state still equal to
      its seed-sequence construction state, which is what
      ``ensure_rng(int)`` hands every consumer): the entry's stream
      starts exactly where the caller's would, so served rows are again
      bit-identical to ledger-off.  The facade re-creates such a
      generator per call, so pristineness is the common case for every
      explicitly seeded query.
    - ``("stream", ...)`` — an already-advanced generator (typically the
      ambient ``config.rng``): no fixed replayable start exists, so the
      entry forks a ledger-private stream from the generator's
      seed-sequence origin.  Reproducible and i.i.d., but a *different*
      stream than ledger-off would consume — the documented trade.
    """
    if rng_spec is None:
        rng_spec = config.rng
    if isinstance(rng_spec, (int, np.integer)) and not isinstance(rng_spec, bool):
        seed = int(rng_spec)
        return ("seed", seed), ("seed", seed)
    if isinstance(rng_spec, np.random.Generator):
        bit_gen = rng_spec.bit_generator
        seed_seq = getattr(bit_gen, "seed_seq", None)
        if seed_seq is None or not hasattr(seed_seq, "entropy"):
            return None
        entropy = _canonical_entropy(seed_seq.entropy)
        if not entropy:
            return None
        spawn_key = tuple(int(k) for k in getattr(seed_seq, "spawn_key", ()))
        bg_name = type(bit_gen).__name__
        if hasattr(np.random, bg_name):
            try:
                pristine = type(bit_gen)(
                    _rebuild_seed_seq(entropy, spawn_key)
                )
                if bit_gen.state == pristine.state:
                    spec = ("origin", bg_name, entropy, spawn_key)
                    return spec, spec
            except Exception:
                pass
        token = ("stream", entropy, spawn_key)
        return token, ("derived", entropy, spawn_key)
    return None


def _rebuild_seed_seq(entropy: tuple, spawn_key: tuple) -> np.random.SeedSequence:
    return np.random.SeedSequence(
        entropy=list(entropy), spawn_key=tuple(spawn_key)
    )


def _base_generator(base_spec: tuple) -> np.random.Generator:
    """A fresh generator at the entry's lineage stream start."""
    kind = base_spec[0]
    if kind == "seed":
        from repro.rng import default_rng

        return default_rng(base_spec[1])
    if kind == "origin":
        _, bg_name, entropy, spawn_key = base_spec
        bit_gen = getattr(np.random, bg_name)(
            _rebuild_seed_seq(entropy, spawn_key)
        )
        return np.random.Generator(bit_gen)
    _, entropy, spawn_key = base_spec
    seed_seq = np.random.SeedSequence(
        entropy=list(entropy),
        spawn_key=tuple(spawn_key) + (_LEDGER_SPAWN_TAG,),
    )
    return np.random.default_rng(seed_seq)


def _admit(config, n: int) -> None:
    """Budget/deadline admission for ``n`` *newly drawn* rows.

    Same semantics as ``sampling._execute_plan`` — served-from-cache rows
    are free (only the deadline is re-checked), drawn rows are charged.
    """
    from repro.core.sampling import DeadlineExceeded, SampleBudgetExceeded

    if config.deadline is not None and monotonic() > config.deadline_at:
        raise DeadlineExceeded(
            f"evaluation deadline of {config.deadline}s expired before a "
            f"draw of {n} samples"
        )
    if n <= 0:
        return
    if config.sample_budget is not None:
        if config.samples_executed + n > config.sample_budget:
            raise SampleBudgetExceeded(
                f"sample budget exhausted: {config.samples_executed} drawn + "
                f"{n} requested > budget {config.sample_budget}"
            )
    config.samples_executed += n


def _record(**counters) -> None:
    sink = _metrics.active()
    if sink is not None:
        sink.record_ledger(**counters)


class LedgerEntry:
    """One cached sample stream: plan shape × lineage × engine."""

    __slots__ = (
        "key", "plan", "engine_name", "mode", "base_spec",
        "column", "count", "gen", "cursor", "runs", "nbytes",
    )

    def __init__(self, key, plan, engine_name: str, mode: str,
                 base_spec: tuple) -> None:
        self.key = key
        self.plan = plan  # the executed (optimized) plan object
        self.engine_name = engine_name
        self.mode = mode  # "stream" | "replay"
        self.base_spec = base_spec
        # stream mode: one growing column + the live continuation stream.
        self.column: np.ndarray | None = None
        self.count = 0
        self.gen = _base_generator(base_spec) if mode == "stream" else None
        self.cursor = 0
        # replay mode: one full fresh-from-base column per distinct N.
        self.runs: dict[int, np.ndarray] = {}
        self.nbytes = 0


class LedgerWindow:
    """Sequential window reads over one entry's stream (SPRT batches).

    Each ``draw(k)`` returns the next ``k`` rows of the entry's logical
    run — batch ``i`` reads rows ``[i*k, (i+1)*k)`` — so a sequence of
    batches is bit-identical to the batches a fresh generator would
    produce (``run(k); run(k)`` ≡ rows ``[0, 2k)`` of one run, which is
    the same prefix-stability the stream mode certifies).  A re-run of
    the same test starts a fresh window at row 0 and is served entirely
    from cache.  Only stream-mode entries support windows: replaying
    overlapping fresh runs would hand correlated rows to a sequential
    test.
    """

    __slots__ = ("_ledger", "_plan", "_rng_spec", "_engine", "_offset")

    def __init__(self, ledger: "SampleLedger", plan, rng_spec, engine) -> None:
        self._ledger = ledger
        self._plan = plan
        self._rng_spec = rng_spec
        self._engine = engine
        self._offset = 0

    def draw(self, k: int) -> "np.ndarray | None":
        """Rows ``[offset, offset + k)``, or ``None`` to signal fallback."""
        rows = self._ledger.serve(
            self._plan, int(k), self._rng_spec, self._engine,
            _cond.get_config(), start=self._offset, windowed=True,
        )
        if rows is not None:
            self._offset += int(k)
        return rows


class SampleLedger:
    """Memory-bounded cache of realized sample columns (process-global).

    Entries are pure functions of (plan shape, lineage, engine), so LRU
    eviction is always safe: a rebuilt entry reproduces bit-identical
    columns.  Keyed like the structural plan cache — isomorphic plans
    from different sessions share one entry.
    """

    def __init__(self, max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, LedgerEntry]" = OrderedDict()
        #: Sticky certify-or-probe verdicts per (structural hash, engine):
        #: ``(mode, reason)``.  Deterministic in the plan shape, so they
        #: survive entry eviction.
        self._modes: dict[tuple, tuple[str, str]] = {}
        self.max_bytes = int(max_bytes)

    # -- public API ---------------------------------------------------------

    def serve(
        self,
        plan,
        n: int,
        rng_spec,
        engine: "str | ExecutionEngine | None",
        config,
        *,
        start: int | None = None,
        windowed: bool = False,
    ) -> "np.ndarray | None":
        """Serve ``n`` rows for ``plan``, or ``None`` to signal fallback.

        ``None`` means the caller must draw fresh (opaque plan, untracked
        engine/lineage, resample policy, replay-mode window, ...).  A
        returned array is always a private copy — callers may mutate it.

        ``start`` selects an explicit row range (window reads); ``None``
        picks the entry's default read semantics: prefix rows ``[0, n)``
        for reductions, or cursor rows for single-sample draws under a
        live-generator lineage (where the ledger-off behaviour is also a
        fresh value per call).
        """
        resolved = self._resolve(plan, rng_spec, engine, config)
        if resolved is None:
            _record(bypasses=1)
            return None
        eng, exec_plan, key, base_spec = resolved
        budget = config.sample_cache
        if budget is not True:
            self.max_bytes = int(budget)
        with self._lock:
            entry = self._entry_for(key, exec_plan, eng, base_spec)
            if entry.mode == "replay":
                if windowed or (start or 0) != 0:
                    # Sequential windows need one logical run; replay
                    # columns are independent fresh runs per N.
                    _record(bypasses=1)
                    return None
                if key[2][0] != "seed" and n == 1:
                    # A live-generator single draw expects a fresh value
                    # per call; replay mode cannot provide that.
                    _record(bypasses=1)
                    return None
                return self._serve_replay(entry, eng, n, config)
            if start is None:
                if key[2][0] != "seed" and n == 1:
                    start = entry.cursor
                    rows = self._serve_stream(entry, eng, start, n, config)
                    entry.cursor = start + n
                    return rows
                start = 0
            return self._serve_stream(entry, eng, int(start), n, config)

    def open_window(
        self, plan, rng_spec, engine, config
    ) -> "LedgerWindow | None":
        """A sequential batch reader for ``plan``, or ``None`` if untracked.

        Returns ``None`` unless the entry resolves to stream mode — the
        only mode where successive windows form one logical run.
        """
        resolved = self._resolve(plan, rng_spec, engine, config)
        if resolved is None:
            _record(bypasses=1)
            return None
        eng, exec_plan, key, base_spec = resolved
        with self._lock:
            entry = self._entry_for(key, exec_plan, eng, base_spec)
            if entry.mode != "stream":
                _record(bypasses=1)
                return None
        return LedgerWindow(self, plan, rng_spec, engine)

    def invalidate_entries(self, plan) -> int:
        """Drop every entry for ``plan``'s shape (and its optimized
        variants); returns how many were dropped.

        Invalidation is keyed by structural hash, so isomorphic plans
        sharing the entry are invalidated together — conservative, and
        exactly what the health-repair path needs.
        """
        hashes = set()
        for p in self._plan_variants(plan):
            h = getattr(p, "structural_hash", None)
            if h is not None:
                hashes.add(h)
        if not hashes:
            return 0
        with self._lock:
            doomed = [k for k in self._entries if k[0] in hashes]
            for k in doomed:
                self._drop(k)
        if doomed:
            _record(invalidations=len(doomed),
                    bytes_now=self.total_bytes(), entries_now=len(self._entries))
        return len(doomed)

    def clear(self) -> None:
        """Drop every entry and every sticky probe verdict."""
        with self._lock:
            self._entries.clear()
            self._modes.clear()
        _record(bytes_now=0, entries_now=0)

    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self._entries.values())

    def stats(self) -> dict:
        """Snapshot of the ledger's contents (diagnostics/tests)."""
        with self._lock:
            modes: dict[str, int] = {}
            for entry in self._entries.values():
                modes[entry.mode] = modes.get(entry.mode, 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": sum(e.nbytes for e in self._entries.values()),
                "max_bytes": self.max_bytes,
                "modes": modes,
                "verdicts": {
                    f"{shash[:12]}@{engine}": mode
                    for (shash, engine), (mode, _r) in self._modes.items()
                },
            }

    # -- resolution ---------------------------------------------------------

    def _resolve(self, plan, rng_spec, engine, config):
        """Common eligibility gate: ``(engine, exec_plan, key, base_spec)``
        or ``None``."""
        if not config.sample_cache:
            return None
        if config.on_nonfinite == "resample":
            # Row repair redraws from the serving stream mid-run; cached
            # columns must never absorb (or skip) repair draws.
            return None
        try:
            eng = get_engine(engine if engine is not None else config.engine)
        except Exception:
            return None
        if eng.name not in _LEDGER_ENGINES:
            return None
        exec_plan = plan
        if eng.supports_optimized:
            level = resolve_level(config.optimize)
            if level:
                exec_plan = plan.optimized(level)
        shash = exec_plan.structural_hash
        if shash is None:
            return None
        lin = _lineage(rng_spec, config)
        if lin is None:
            return None
        token, base_spec = lin
        return eng, exec_plan, (shash, eng.name, token), base_spec

    def _plan_variants(self, plan):
        yield plan
        optimized = getattr(plan, "_optimized", None)
        if optimized:
            yield from optimized.values()

    # -- entries ------------------------------------------------------------

    def _entry_for(self, key, exec_plan, eng, base_spec) -> LedgerEntry:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return entry
        mode_key = (key[0], eng.name)
        verdict = self._modes.get(mode_key)
        if verdict is None:
            verdict = self._certify_or_probe(exec_plan, eng)
            self._modes[mode_key] = verdict
        mode, reason = verdict
        _trace.event("ledger.entry", mode=mode, reason=reason,
                     engine=eng.name, structural_hash=key[0])
        entry = LedgerEntry(key, exec_plan, eng.name, mode, base_spec)
        self._entries[key] = entry
        return entry

    def _drop(self, key) -> None:
        self._entries.pop(key, None)

    def _certify_or_probe(self, exec_plan, eng) -> tuple[str, str]:
        """Is suffix extension provably bit-identical for this plan shape
        on this engine?  ``("stream", why)`` or ``("replay", why)``."""
        from repro.analysis.certify import plan_draw_sequence

        events = plan_draw_sequence(exec_plan)
        total = sum(e.count for e in events)
        if total == 0:
            _record(certified=1)
            return "stream", "no stochastic draws"
        if (len(events) == 1 and events[0].count == 1
                and events[0].family != "delegated"):
            _record(certified=1)
            return "stream", f"single trusted bulk draw ({events[0].family})"
        _record(probes=1)
        if self._probe(exec_plan, eng):
            return "stream", "probe verified split-draw identity"
        _record(rejections=1)
        return "replay", (
            f"{total} interleaved draw(s): split runs diverge from full runs"
        )

    def _probe(self, exec_plan, eng) -> bool:
        """Dynamic gate: compare a split run against a full run, slot by
        slot.  The root alone is not enough — a boolean root can be
        constant over the probe batch and pass vacuously while the
        underlying streams have already diverged."""
        shash = exec_plan.structural_hash or ""
        try:
            probe_seed = int(shash.split("#")[0][:16] or "0", 16)
        except ValueError:
            probe_seed = 0
        seed_seq = np.random.SeedSequence(
            entropy=[probe_seed], spawn_key=(_LEDGER_SPAWN_TAG,)
        )
        try:
            full = eng.run(exec_plan, _PROBE_FULL,
                           np.random.default_rng(seed_seq))
            split_rng = np.random.default_rng(seed_seq)
            head = eng.run(exec_plan, _PROBE_SPLIT, split_rng)
            tail = eng.run(exec_plan, _PROBE_FULL - _PROBE_SPLIT, split_rng)
        except Exception:
            return False
        for slot in range(len(exec_plan.steps)):
            fv, hv, tv = full[slot], head[slot], tail[slot]
            if fv is None or hv is None or tv is None:
                continue
            fv = np.asarray(fv)
            if fv.dtype == object:
                return False
            part = np.concatenate(
                [np.atleast_1d(np.asarray(hv)), np.atleast_1d(np.asarray(tv))]
            )
            fv = np.atleast_1d(fv)
            if part.shape != fv.shape or part.dtype != fv.dtype:
                return False
            equal_nan = fv.dtype.kind in "fc"
            if not np.array_equal(part, fv, equal_nan=equal_nan):
                return False
        return True

    # -- serving ------------------------------------------------------------

    def _fill(self, entry: LedgerEntry, eng, k: int, gen, config) -> np.ndarray:
        """One instrumented engine run for the entry's stream.

        Uses the engine's ``sample`` entry point so metrics, tracing and
        the (non-mutating) health policies apply exactly as on a fresh
        draw.  Any failure drops the entry: a stream-mode generator may
        already have advanced, and a half-consumed stream must never
        serve another query.
        """
        try:
            return eng.sample(entry.plan, k, gen,
                              telemetry=config.plan_telemetry)
        except BaseException:
            self._drop(entry.key)
            raise

    def _serve_stream(self, entry: LedgerEntry, eng, start: int, n: int,
                      config) -> np.ndarray:
        needed = start + n
        have = entry.count
        if needed > have:
            d = needed - have
            _admit(config, d)
            rows = self._fill(entry, eng, d, entry.gen, config)
            rows = np.asarray(rows)
            if entry.column is None:
                entry.column = rows
            else:
                entry.column = np.concatenate([entry.column, rows])
            entry.count = needed
            entry.nbytes = entry.column.nbytes
            _record(
                suffix_extensions=1, rows_drawn=d,
                rows_reused=max(0, have - start),
                misses=int(have == 0), hits=int(have > 0 and have > start),
            )
            self._evict(keep=entry.key)
            _record(bytes_now=self.total_bytes(),
                    entries_now=len(self._entries))
        else:
            _admit(config, 0)  # deadline still applies to cached serves
            _record(hits=1, rows_reused=n)
        return entry.column[start:needed].copy()

    def _serve_replay(self, entry: LedgerEntry, eng, n: int,
                      config) -> np.ndarray:
        column = entry.runs.get(n)
        if column is None:
            _admit(config, n)
            gen = _base_generator(entry.base_spec)
            column = np.asarray(self._fill(entry, eng, n, gen, config))
            entry.runs[n] = column
            entry.nbytes += column.nbytes
            _record(misses=1, rows_drawn=n)
            self._evict(keep=entry.key)
            _record(bytes_now=self.total_bytes(),
                    entries_now=len(self._entries))
        else:
            _admit(config, 0)
            _record(hits=1, rows_reused=n)
        return column.copy()

    def _evict(self, keep) -> None:
        """LRU-evict whole entries until under the byte budget.

        The entry just served is never evicted (evicting it would thrash);
        a single column larger than the whole budget therefore survives
        until another entry displaces it.
        """
        if self.max_bytes <= 0:
            return
        total = self.total_bytes()
        if total <= self.max_bytes:
            return
        for key in list(self._entries):
            if key == keep:
                continue
            entry = self._entries.pop(key)
            total -= entry.nbytes
            _record(evictions=1)
            if total <= self.max_bytes:
                break


#: The process-global ledger every consumer serves from.
LEDGER = SampleLedger()


def clear_ledger() -> None:
    """Drop every cached sample column and probe verdict."""
    LEDGER.clear()


def ledger_stats() -> dict:
    """Contents snapshot of the process-global ledger."""
    return LEDGER.stats()
