"""Figure 14 bench: SensorLife accuracy and sampling cost vs noise.

Also carries the SPRT-vs-fixed-test ablation: the goal-directed SPRT
should match a large fixed sample's accuracy at a fraction of its cost.
"""

import numpy as np

from benchmarks.conftest import run_and_report
from repro.core.conditionals import evaluation_config
from repro.core.sprt import FixedSampleTest
from repro.life.variants import SensorLife
from repro.life.engine import true_decision
from repro.rng import default_rng


def test_fig14_sensorlife(benchmark):
    run_and_report(benchmark, "fig14", fast=True)


def test_ablation_sprt_vs_fixed_sampling(benchmark):
    """Ablation: the paper's SPRT vs a fixed 500-sample pool per conditional.

    Both must be (nearly) as accurate; the SPRT should use far fewer
    samples on easy conditionals — its whole reason for existing
    (Section 4.3's "only taking as many samples as necessary").
    """
    sigma = 0.15
    states = np.array([1.0] * 3 + [0.0] * 5)
    cases = [(True, states)] * 20

    def run_with(test_factory):
        wrong = 0
        with evaluation_config(
            rng=default_rng(99), max_samples=2_000, test_factory=test_factory
        ) as cfg:
            for is_alive, neighbor_states in cases:
                outcome = SensorLife(sigma).decide(
                    is_alive, neighbor_states, default_rng(1)
                )
                wrong += outcome.will_be_alive != true_decision(is_alive, 3)
            return wrong, cfg.samples_drawn

    sprt_wrong, sprt_samples = benchmark(lambda: run_with(None))
    fixed_wrong, fixed_samples = run_with(
        lambda t: FixedSampleTest(t, n=500)
    )
    print(
        f"\nSPRT: {sprt_wrong} wrong, {sprt_samples} samples | "
        f"fixed-500: {fixed_wrong} wrong, {fixed_samples} samples"
    )
    assert sprt_wrong <= fixed_wrong + 1
    assert sprt_samples < fixed_samples / 2
