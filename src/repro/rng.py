"""Random-number-generator plumbing shared across the package.

Every stochastic component in the reproduction accepts an optional
``numpy.random.Generator``.  Centralising construction here keeps experiments
reproducible: the benchmark harness seeds one root generator per experiment
and spawns independent child streams from it.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20140301  # ASPLOS 2014 conference date; any fixed seed works.


def default_rng(seed: int | None = None) -> np.random.Generator:
    """Return a numpy Generator seeded deterministically.

    ``seed=None`` uses :data:`DEFAULT_SEED` rather than OS entropy so that
    examples and tests are reproducible by default.  Pass an explicit seed to
    vary streams.
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


def ensure_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``None``/seed/Generator into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return default_rng(rng)
