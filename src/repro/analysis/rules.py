"""The rule catalogue shared by both static passes.

``UNC1xx`` rules are graph diagnostics produced by abstract interpretation
of a compiled plan (:mod:`repro.analysis.diagnostics`); ``UNC2xx`` rules
are source-level lints produced by the AST checker
(:mod:`repro.analysis.lint`); ``UNC3xx`` rules are runtime findings
produced by probing a plan with actual samples
(``Uncertain.diagnose(samples=...)`` via :mod:`repro.resilience`).
``docs/analysis.md`` is the narrative catalogue; this module is the
machine-readable one.
"""

from __future__ import annotations

import dataclasses

#: Severities, in increasing order of concern.
INFO = "info"
WARNING = "warning"
ERROR = "error"

_SEVERITY_ORDER = {INFO: 0, WARNING: 1, ERROR: 2}


def severity_at_least(severity: str, floor: str) -> bool:
    return _SEVERITY_ORDER[severity] >= _SEVERITY_ORDER[floor]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One diagnosable uncertainty-bug pattern."""

    id: str
    severity: str
    title: str
    #: True for rules that only run when explicitly selected.
    opt_in: bool = False


GRAPH_RULES = {
    "UNC101": Rule("UNC101", ERROR,
                   "division by a quantity whose support contains zero"),
    "UNC102": Rule("UNC102", ERROR,
                   "domain-restricted function applied to a support crossing "
                   "its domain boundary"),
    "UNC103": Rule("UNC103", WARNING,
                   "comparison is statically decidable: Pr is provably 0 or "
                   "1, so the hypothesis test is wasted work"),
    "UNC104": Rule("UNC104", WARNING,
                   "tautological self-comparison of a shared node"),
    "UNC105": Rule("UNC105", INFO,
                   "constant (point-mass-only) sub-DAG: folded by the "
                   "optimizer's constant-fold pass when enabled, otherwise "
                   "a re-evaluation cost on every joint sample"),
}

RUNTIME_RULES = {
    "UNC301": Rule("UNC301", WARNING,
                   "plan slot produced non-finite samples in a runtime "
                   "probe; see repro.resilience for policies"),
}

LINT_RULES = {
    "UNC201": Rule("UNC201", ERROR,
                   "float()/int()/bool() coercion collapses an uncertain "
                   "value to a fact"),
    "UNC202": Rule("UNC202", WARNING,
                   "branching on expected_value() treats an estimate as a "
                   "fact; compare the uncertain value and branch on evidence"),
    "UNC203": Rule("UNC203", WARNING,
                   "math.* call on an uncertain operand; use "
                   "repro.lift(math.fn) so uncertainty propagates"),
    "UNC204": Rule("UNC204", INFO,
                   "implicit conditional inside a loop; prefer an explicit "
                   ".pr(alpha) with a stated evidence threshold",
                   opt_in=True),
}

ALL_RULES = {**GRAPH_RULES, **RUNTIME_RULES, **LINT_RULES}
