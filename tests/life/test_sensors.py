"""Tests for the noisy Game of Life sensors."""

import numpy as np
import pytest

from repro.life.sensors import (
    corrected_sensor_leaf,
    corrected_sensor_sum,
    noisy_sensor_readings,
    sensor_sum,
)
from scipy.stats import norm


class TestNoisyReadings:
    def test_zero_noise_is_exact(self, rng):
        states = np.array([1.0, 0.0, 1.0])
        assert np.array_equal(noisy_sensor_readings(states, 0.0, rng), states)

    def test_noise_statistics(self, fixed_rng):
        states = np.zeros(50_000)
        readings = noisy_sensor_readings(states, 0.3, fixed_rng)
        assert readings.std() == pytest.approx(0.3, rel=0.02)
        assert readings.mean() == pytest.approx(0.0, abs=0.01)

    def test_negative_sigma_rejected(self, rng):
        with pytest.raises(ValueError):
            noisy_sensor_readings(np.array([1.0]), -0.1, rng)


class TestSensorSum:
    def test_mean_is_true_count(self, fixed_rng):
        states = np.array([1.0, 1.0, 0.0, 1.0, 0.0])
        total = sensor_sum(states, 0.2)
        assert total.expected_value(20_000, fixed_rng) == pytest.approx(3.0, abs=0.05)

    def test_variance_adds_across_sensors(self, fixed_rng):
        states = np.zeros(8)
        total = sensor_sum(states, 0.25)
        assert total.var(20_000, fixed_rng) == pytest.approx(8 * 0.0625, rel=0.1)

    def test_network_has_one_leaf_per_sensor(self):
        from repro.core.graph import leaf_nodes

        total = sensor_sum(np.array([1.0, 0.0, 1.0]), 0.1)
        assert len(leaf_nodes(total.node)) == 3

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            sensor_sum(np.array([]), 0.1)

    def test_zero_noise_sum_exact(self, rng):
        total = sensor_sum(np.array([1.0, 1.0, 1.0]), 0.0)
        assert np.all(total.samples(50, rng) == 3.0)


class TestCorrectedSensor:
    def test_values_are_binary(self, rng):
        leaf = corrected_sensor_leaf(1.0, 0.3)
        samples = leaf.samples(500, rng)
        assert set(np.unique(samples)) <= {0.0, 1.0}

    def test_flip_probability_matches_gaussian_tail(self, fixed_rng):
        sigma = 0.3
        leaf = corrected_sensor_leaf(0.0, sigma)
        flip_rate = leaf.samples(50_000, fixed_rng).mean()
        expected = norm.sf(0.5 / sigma)  # Pr[N(0, sigma) > 0.5]
        assert flip_rate == pytest.approx(expected, abs=0.01)

    def test_low_noise_is_nearly_perfect(self, fixed_rng):
        leaf = corrected_sensor_leaf(1.0, 0.05)
        assert leaf.samples(10_000, fixed_rng).mean() == pytest.approx(1.0)

    def test_corrected_sum_concentrates_on_integers(self, fixed_rng):
        states = np.array([1.0, 1.0, 1.0, 0.0, 0.0])
        total = corrected_sensor_sum(states, 0.1)
        samples = total.samples(5_000, fixed_rng)
        assert np.all(samples == np.round(samples))
        assert np.mean(samples == 3.0) > 0.95

    def test_empty_states_rejected(self):
        with pytest.raises(ValueError):
            corrected_sensor_sum(np.array([]), 0.1)
