"""The Figure 14 experiment: decision accuracy and sampling cost vs noise.

The paper's protocol: random 20x20 boards, 25 generations (10,000 cell
updates per run), 50 runs per noise level, reporting the rate of incorrect
decisions (Figure 14a) and samples drawn per cell update (Figure 14b) for
NaiveLife, SensorLife and BayesLife.

Each generation every variant senses the *exact* board and decides every
cell; a decision is incorrect when it differs from the exact rule outcome.
The exact board then advances, so all variants are judged on identical,
well-defined ground truth (errors do not compound across variants).
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.conditionals import evaluation_config
from repro.life.engine import (
    Board,
    neighbor_states,
    random_board,
    step_board,
    true_decision,
)
from repro.life.variants import LifeVariant
from repro.rng import ensure_rng, spawn


@dataclasses.dataclass
class LifePoint:
    """One (variant, sigma) cell of Figure 14."""

    variant: str
    sigma: float
    error_rate: float
    error_ci95: float
    sensor_samples_per_update: float
    joint_samples_per_update: float
    updates: int


def run_generation(
    board: Board, variant: LifeVariant, rng: np.random.Generator
) -> tuple[int, int, int, int]:
    """Decide every cell of one generation.

    Returns (wrong_decisions, cell_updates, sensor_samples, joint_samples).
    """
    from repro.life.engine import neighbor_counts

    counts = neighbor_counts(board)
    wrong = 0
    sensor_samples = 0
    joint_samples = 0
    rows, cols = board.shape
    for r in range(rows):
        for c in range(cols):
            is_alive = bool(board[r, c])
            states = neighbor_states(board, r, c)
            outcome = variant.decide(is_alive, states, rng)
            sensor_samples += outcome.sensor_samples
            joint_samples += outcome.joint_samples
            if outcome.will_be_alive != true_decision(is_alive, int(counts[r, c])):
                wrong += 1
    return wrong, rows * cols, sensor_samples, joint_samples


def evaluate_variant(
    variant: LifeVariant,
    sigma: float,
    rows: int = 20,
    cols: int = 20,
    generations: int = 25,
    runs: int = 50,
    density: float = 0.35,
    max_samples: int = 500,
    rng=None,
) -> LifePoint:
    """Run the paper's protocol for one variant at one noise level."""
    rng = ensure_rng(rng)
    per_run_error = []
    total_sensor = 0
    total_joint = 0
    total_updates = 0
    for run_rng in spawn(rng, runs):
        board = random_board(rows, cols, density, run_rng)
        wrong = 0
        updates = 0
        with evaluation_config(rng=run_rng, max_samples=max_samples) as cfg:
            for _ in range(generations):
                w, u, s, j = run_generation(board, variant, run_rng)
                wrong += w
                updates += u
                total_sensor += s
                total_joint += j
                board = step_board(board)
        per_run_error.append(wrong / updates)
        total_updates += updates
    errors = np.asarray(per_run_error)
    ci = 1.96 * errors.std(ddof=1) / np.sqrt(runs) if runs > 1 else 0.0
    return LifePoint(
        variant=variant.name,
        sigma=sigma,
        error_rate=float(errors.mean()),
        error_ci95=float(ci),
        sensor_samples_per_update=total_sensor / total_updates,
        joint_samples_per_update=total_joint / total_updates,
        updates=total_updates,
    )


def evaluate_variants(
    sigmas: Sequence[float],
    variant_factories=None,
    rng=None,
    **protocol,
) -> list[LifePoint]:
    """Full Figure 14 sweep: every variant at every noise level."""
    from repro.life.variants import BayesLife, NaiveLife, SensorLife

    if variant_factories is None:
        variant_factories = [NaiveLife, SensorLife, BayesLife]
    rng = ensure_rng(rng)
    points = []
    for sigma in sigmas:
        for factory in variant_factories:
            child = np.random.default_rng(rng.integers(0, 2**63))
            points.append(evaluate_variant(factory(sigma), sigma, rng=child, **protocol))
    return points
