"""Tests for Beta and Poisson."""

import numpy as np
import pytest

from repro.dists import Beta, Poisson


class TestBeta:
    def test_moments(self):
        b = Beta(2.0, 3.0)
        assert b.mean == pytest.approx(0.4)
        assert b.variance == pytest.approx(0.04)

    def test_samples_in_unit_interval(self, rng):
        s = Beta(0.5, 0.5).sample_n(5_000, rng)
        assert s.min() >= 0.0 and s.max() <= 1.0

    def test_uniform_special_case(self):
        b = Beta(1.0, 1.0)
        assert float(b.pdf(0.3)) == pytest.approx(1.0)
        assert float(b.pdf(0.9)) == pytest.approx(1.0)

    def test_cdf_endpoints(self):
        b = Beta(2.0, 2.0)
        assert float(b.cdf(0.0)) == 0.0
        assert float(b.cdf(1.0)) == pytest.approx(1.0)

    def test_symmetry(self):
        b = Beta(3.0, 3.0)
        assert float(b.pdf(0.3)) == pytest.approx(float(b.pdf(0.7)))

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            Beta(0.0, 1.0)
        with pytest.raises(ValueError):
            Beta(1.0, -2.0)


class TestPoisson:
    def test_moments(self):
        p = Poisson(4.0)
        assert p.mean == 4.0
        assert p.variance == 4.0

    def test_samples_are_counts(self, rng):
        s = Poisson(3.0).sample_n(5_000, rng)
        assert s.min() >= 0
        assert np.all(s == s.astype(int))

    def test_pmf_sums_to_one(self):
        p = Poisson(2.0)
        total = sum(float(p.pdf(k)) for k in range(40))
        assert total == pytest.approx(1.0)

    def test_pmf_zero_for_non_integers(self):
        p = Poisson(2.0)
        assert float(p.pdf(1.5)) == 0.0
        assert float(p.pdf(-1)) == 0.0

    def test_lambda_zero(self, rng):
        p = Poisson(0.0)
        assert np.all(p.sample_n(20, rng) == 0)
        assert float(p.pdf(0)) == pytest.approx(1.0)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            Poisson(-1.0)
