"""Microbenchmark: compiled plans vs. the per-batch graph interpreter.

The workload is shaped like the paper's SPRT conditional (Section 4.3):
many small sequential batches (k=10) over a non-trivial network (>= 20
nodes).  The seed implementation re-walked the DAG for every batch; the
plan/engine layer compiles once and replays a flat program.  This bench
measures both, asserts the compiled engine is at least 1.5x faster, checks
seed-for-seed equality of the two sample streams, and writes the numbers
to ``BENCH_plan.json`` at the repo root.
"""

from __future__ import annotations

import json
import operator
import time
from pathlib import Path

import numpy as np

from repro.core.engines import get_engine
from repro.core.graph import BinaryOpNode, LeafNode, node_count
from repro.core.plan import compile_plan
from repro.dists import Gaussian
from repro.rng import default_rng

BATCHES = 150
BATCH_K = 10
REPEATS = 7
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_plan.json"


def _sprt_shaped_root() -> BinaryOpNode:
    """A >= 20-node comparison network: a 12-leaf sum tested against a
    shared leaf, mimicking `usum(sensors) > threshold`."""
    leaves = [LeafNode(Gaussian(0.0, 1.0)) for _ in range(12)]
    acc = leaves[0]
    for leaf in leaves[1:]:
        acc = BinaryOpNode(operator.add, acc, leaf, "+")
    return BinaryOpNode(operator.gt, acc, leaves[0], ">")


def _run_batches(engine, plan, seed: int) -> np.ndarray:
    rng = default_rng(seed)
    chunks = [engine.sample(plan, BATCH_K, rng) for _ in range(BATCHES)]
    return np.concatenate(chunks)


def _best_time(engine, plan) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        _run_batches(engine, plan, seed=0)
        best = min(best, time.perf_counter() - start)
    return best


def test_plan_compilation_speedup(benchmark):
    root = _sprt_shaped_root()
    nodes = node_count(root)
    assert nodes >= 20

    plan = compile_plan(root)
    compiled_engine = get_engine("numpy")
    interpreter = get_engine("interpreter")

    # Correctness before speed: both engines must emit the same stream.
    assert np.array_equal(
        _run_batches(compiled_engine, plan, seed=1),
        _run_batches(interpreter, plan, seed=1),
    )

    # Warm up (plan program specialization, allocator), then time.
    _run_batches(compiled_engine, plan, seed=0)
    compiled_s = _best_time(compiled_engine, plan)
    interpreted_s = _best_time(interpreter, plan)
    speedup = interpreted_s / compiled_s

    result = {
        "workload": {
            "nodes": nodes,
            "batches": BATCHES,
            "batch_k": BATCH_K,
            "repeats": REPEATS,
        },
        "compiled_engine": compiled_engine.name,
        "interpreted_engine": interpreter.name,
        "compiled_seconds": compiled_s,
        "interpreted_seconds": interpreted_s,
        "speedup": speedup,
        "compiled_batches_per_second": BATCHES / compiled_s,
        "interpreted_batches_per_second": BATCHES / interpreted_s,
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(
        f"plan compilation: {nodes} nodes, {BATCHES} batches of k={BATCH_K}: "
        f"compiled {compiled_s * 1e3:.2f} ms, interpreted "
        f"{interpreted_s * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )

    benchmark.pedantic(
        lambda: _run_batches(compiled_engine, plan, seed=0), rounds=3, iterations=1
    )
    assert speedup >= 1.5, (
        f"compiled engine only {speedup:.2f}x faster than the interpreter "
        f"(need >= 1.5x); see {RESULT_PATH}"
    )


def test_plan_cache_amortises_compilation(benchmark):
    """Compiling once must dominate: repeated compile_plan calls on the
    same root are cache hits, not re-lowering."""
    root = _sprt_shaped_root()
    first = compile_plan(root)
    result = benchmark(lambda: compile_plan(root))
    assert result is first
