"""Table 1: the Uncertain<T> operator and method algebra, conformance-checked."""

from __future__ import annotations

from repro.core.conditionals import evaluation_config
from repro.core.uncertain import Uncertain, UncertainBool
from repro.dists.gaussian import Gaussian
from repro.experiments.base import ExperimentResult, experiment
from repro.rng import default_rng


@experiment("table1")
def run(seed: int = 1, fast: bool = True) -> ExperimentResult:
    """Exercise every row of Table 1 and record its type signature."""
    rng = default_rng(seed)
    a = Uncertain(Gaussian(1.0, 0.5))
    b = Uncertain(Gaussian(2.0, 0.5))

    rows = []
    checks: dict[str, bool] = {}

    def check(name: str, signature: str, value, expected_type) -> None:
        ok = isinstance(value, expected_type)
        rows.append(
            {
                "operator": name,
                "signature": signature,
                "result_type": type(value).__name__,
                "conforms": ok,
            }
        )
        checks[f"{name} has type {signature}"] = ok

    check("+", "U T -> U T -> U T", a + b, Uncertain)
    check("-", "U T -> U T -> U T", a - b, Uncertain)
    check("*", "U T -> U T -> U T", a * b, Uncertain)
    check("/", "U T -> U T -> U T", a / b, Uncertain)
    check("<", "U T -> U T -> U Bool", a < b, UncertainBool)
    check(">", "U T -> U T -> U Bool", a > b, UncertainBool)
    check("<=", "U T -> U T -> U Bool", a <= b, UncertainBool)
    check(">=", "U T -> U T -> U Bool", a >= b, UncertainBool)
    check("and (&)", "U Bool -> U Bool -> U Bool", (a < b) & (b > a), UncertainBool)
    check("or (|)", "U Bool -> U Bool -> U Bool", (a < b) | (b > a), UncertainBool)
    check("not (~)", "U Bool -> U Bool", ~(a < b), UncertainBool)
    check("Pointmass", "T -> U T", Uncertain.pointmass(3.0), Uncertain)

    with evaluation_config(rng=rng):
        explicit = (a < b).pr(0.9)
        implicit = bool(a < b)
        expected = a.expected_value(2_000)
    check("Pr (explicit)", "U Bool -> [0,1] -> Bool", explicit, bool)
    check("Pr (implicit)", "U Bool -> Bool", implicit, bool)
    check("E", "U T -> T", expected, float)

    checks["explicit conditional agrees with ground truth"] = explicit is True
    checks["implicit conditional agrees with ground truth"] = implicit is True
    checks["E is close to the true mean"] = abs(expected - 1.0) < 0.1

    return ExperimentResult("table1", "operator/method conformance", rows, checks)
