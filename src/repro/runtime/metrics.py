"""Process-global runtime metrics for the sampling runtime.

The plan/engine layer answers "what did this process spend its sampling
time on": how many plans were compiled (vs served from cache), how many
samples each engine drew and how long it took, how many SPRT batches the
conditionals consumed.  The counters live in a single process-global
:class:`RuntimeMetrics` registry (:data:`METRICS`), cheap enough to stay
on by default — recording is plain attribute arithmetic on the hot path,
locking only on snapshot/reset.

``repro.runtime.stats()`` returns a snapshot; selection is governed by
``EvaluationConfig.metrics``:

- ``True`` (default) — record into the global registry;
- ``False``/``None`` — record nothing;
- a :class:`RuntimeMetrics` instance — record into that instance (for
  scoped measurement, e.g. per-request accounting under
  ``evaluation_config(metrics=RuntimeMetrics())``).

This module must stay import-light (stdlib only): every ``repro.core``
module imports it, so it can depend on none of them.
"""

from __future__ import annotations

import threading
from typing import Callable


class EngineStats:
    """Per-engine sampling counters (samples drawn, batches, wall time)."""

    __slots__ = ("batches", "samples", "seconds")

    def __init__(self) -> None:
        self.batches = 0
        self.samples = 0
        self.seconds = 0.0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "samples": self.samples,
            "seconds": self.seconds,
        }


class RuntimeMetrics:
    """Counter registry for the sampling runtime.

    One instance is process-global (:data:`METRICS`); independent
    instances can be installed per evaluation scope via
    ``evaluation_config(metrics=RuntimeMetrics())``.  Counters are plain
    attributes updated without a lock (the runtime records from the
    coordinating process only); :meth:`snapshot` and :meth:`reset` take a
    lock so concurrent readers see a consistent copy.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.reset()

    # -- recording (hot path: no locks, plain arithmetic) -------------------

    def record_compile(self) -> None:
        self.plans_compiled += 1

    def record_cache_hit(self) -> None:
        self.plan_cache_hits += 1

    def record_structural(self, hit: bool) -> None:
        """One fresh compile checked against the structural plan cache."""
        if hit:
            self.structural_hits += 1
        else:
            self.structural_misses += 1

    def record_fused(
        self, built: int = 0, rejected: int = 0, kernel_hits: int = 0,
        certified: int = 0, probed: int = 0,
    ) -> None:
        """Fused-backend events: kernels generated, verification rejections,
        plans served by an already-generated kernel (same shape), and how
        fresh kernels were admitted — statically certified stream-safe
        (probe run skipped) vs dynamically probe-verified."""
        self.fused_kernels_built += built
        self.fused_kernels_rejected += rejected
        self.fused_kernel_hits += kernel_hits
        self.fused_kernels_certified += certified
        self.fused_kernels_probed += probed

    def record_engine(self, engine: str, n: int, seconds: float) -> None:
        stats = self.engines.get(engine)
        if stats is None:
            stats = self.engines.setdefault(engine, EngineStats())
        stats.batches += 1
        stats.samples += int(n)
        stats.seconds += seconds

    def record_test(self, kind: str, steps: int, samples: int) -> None:
        """One hypothesis-test run: ``steps`` batch draws, ``samples`` total."""
        self.sprt_tests += 1
        self.sprt_steps += int(steps)
        self.sprt_samples += int(samples)
        self.tests_by_kind[kind] = self.tests_by_kind.get(kind, 0) + 1

    def record_expectation(self, kind: str, samples: int) -> None:
        self.expectations += 1
        self.expectation_samples += int(samples)
        if kind == "adaptive":
            self.adaptive_expectations += 1

    def record_conditional(self, samples_used: int) -> None:
        self.conditionals += 1
        self.conditional_samples += int(samples_used)

    def record_parallel(
        self, chunks: int = 0, retries: int = 0, crashes: int = 0,
        fallbacks: int = 0, serial_rescues: int = 0,
        payload_skips: int = 0, payload_misses: int = 0,
    ) -> None:
        self.parallel_chunks += chunks
        self.parallel_retries += retries
        self.worker_crashes += crashes
        self.parallel_fallbacks += fallbacks
        self.parallel_serial_rescues += serial_rescues
        self.parallel_payload_skips += payload_skips
        self.parallel_payload_misses += payload_misses

    # -- resilience layer ---------------------------------------------------

    def record_nonfinite(
        self, policy: str, rows: int = 0, resamples: int = 0
    ) -> None:
        """One batch containing non-finite samples, handled under ``policy``."""
        self.nonfinite_batches += 1
        self.nonfinite_rows += int(rows)
        self.nonfinite_resamples += int(resamples)
        self.nonfinite_by_policy[policy] = (
            self.nonfinite_by_policy.get(policy, 0) + 1
        )

    def record_source(
        self, retries: int = 0, failures: int = 0, fallbacks: int = 0,
        trips: int = 0, recoveries: int = 0,
    ) -> None:
        """ResilientSource events: retries, breaker trips, fallback draws."""
        self.source_retries += retries
        self.source_failures += failures
        self.source_fallbacks += fallbacks
        self.breaker_trips += trips
        self.breaker_recoveries += recoveries

    def record_inconclusive(self, policy: str) -> None:
        """One truncated hypothesis test, handled under ``policy``."""
        self.inconclusive_tests += 1
        self.inconclusive_by_policy[policy] = (
            self.inconclusive_by_policy.get(policy, 0) + 1
        )

    # -- lifecycle ----------------------------------------------------------

    def reset(self) -> None:
        with self._lock:
            self.plans_compiled = 0
            self.plan_cache_hits = 0
            self.structural_hits = 0
            self.structural_misses = 0
            self.fused_kernels_built = 0
            self.fused_kernels_rejected = 0
            self.fused_kernel_hits = 0
            self.fused_kernels_certified = 0
            self.fused_kernels_probed = 0
            self.engines: dict[str, EngineStats] = {}
            self.sprt_tests = 0
            self.sprt_steps = 0
            self.sprt_samples = 0
            self.tests_by_kind: dict[str, int] = {}
            self.expectations = 0
            self.expectation_samples = 0
            self.adaptive_expectations = 0
            self.conditionals = 0
            self.conditional_samples = 0
            self.parallel_chunks = 0
            self.parallel_retries = 0
            self.worker_crashes = 0
            self.parallel_fallbacks = 0
            self.parallel_serial_rescues = 0
            self.parallel_payload_skips = 0
            self.parallel_payload_misses = 0
            self.nonfinite_batches = 0
            self.nonfinite_rows = 0
            self.nonfinite_resamples = 0
            self.nonfinite_by_policy: dict[str, int] = {}
            self.source_retries = 0
            self.source_failures = 0
            self.source_fallbacks = 0
            self.breaker_trips = 0
            self.breaker_recoveries = 0
            self.inconclusive_tests = 0
            self.inconclusive_by_policy: dict[str, int] = {}

    def snapshot(self) -> dict:
        """A consistent, JSON-serialisable copy of every counter.

        Schema (see ``docs/runtime.md``): top-level keys ``plans``,
        ``engines``, ``tests``, ``expectations``, ``conditionals``, and
        ``parallel``.
        """
        with self._lock:
            return {
                "plans": {
                    "compiled": self.plans_compiled,
                    "cache_hits": self.plan_cache_hits,
                    "structural_hits": self.structural_hits,
                    "structural_misses": self.structural_misses,
                },
                "fused": {
                    "kernels_built": self.fused_kernels_built,
                    "kernels_rejected": self.fused_kernels_rejected,
                    "kernel_hits": self.fused_kernel_hits,
                    "kernels_certified": self.fused_kernels_certified,
                    "kernels_probed": self.fused_kernels_probed,
                },
                "engines": {
                    name: stats.as_dict() for name, stats in self.engines.items()
                },
                "tests": {
                    "runs": self.sprt_tests,
                    "sprt_steps": self.sprt_steps,
                    "samples": self.sprt_samples,
                    "by_kind": dict(self.tests_by_kind),
                    "inconclusive": self.inconclusive_tests,
                    "inconclusive_by_policy": dict(self.inconclusive_by_policy),
                },
                "expectations": {
                    "runs": self.expectations,
                    "samples": self.expectation_samples,
                    "adaptive_runs": self.adaptive_expectations,
                },
                "conditionals": {
                    "runs": self.conditionals,
                    "samples": self.conditional_samples,
                },
                "parallel": {
                    "chunks": self.parallel_chunks,
                    "retries": self.parallel_retries,
                    "worker_crashes": self.worker_crashes,
                    "serial_fallbacks": self.parallel_fallbacks,
                    "serial_rescues": self.parallel_serial_rescues,
                    "payload_skips": self.parallel_payload_skips,
                    "payload_misses": self.parallel_payload_misses,
                },
                "health": {
                    "nonfinite_batches": self.nonfinite_batches,
                    "nonfinite_rows": self.nonfinite_rows,
                    "resamples": self.nonfinite_resamples,
                    "by_policy": dict(self.nonfinite_by_policy),
                },
                "sources": {
                    "retries": self.source_retries,
                    "failures": self.source_failures,
                    "fallbacks": self.source_fallbacks,
                    "breaker_trips": self.breaker_trips,
                    "breaker_recoveries": self.breaker_recoveries,
                },
            }

    def total_samples(self) -> int:
        """Samples drawn across every engine (convenience for budgets)."""
        return sum(stats.samples for stats in self.engines.values())


#: The process-global registry that ``repro.runtime.stats()`` reads.
METRICS = RuntimeMetrics()


# ---------------------------------------------------------------------------
# Sink resolution.  ``repro.core.conditionals`` binds a resolver returning
# the active config's ``metrics`` selection; until it does (or when running
# without a config), the global registry is used.
# ---------------------------------------------------------------------------

_resolver: Callable[[], object] | None = None


def bind_resolver(resolver: Callable[[], object]) -> None:
    """Install the callable that yields the active ``metrics`` selection."""
    global _resolver
    _resolver = resolver


def active() -> RuntimeMetrics | None:
    """The metrics sink the runtime should record into right now.

    ``None`` means recording is disabled for the active evaluation scope.
    """
    if _resolver is None:
        return METRICS
    selection = _resolver()
    if selection is True:
        return METRICS
    if not selection:
        return None
    return selection  # a RuntimeMetrics instance
