"""Extension experiment: approximate hardware as an uncertainty source."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.ml.accelerator import (
    ApproximateAccelerator,
    HardwareModel,
    hardware_error_rate,
)
from repro.ml.images import make_dataset
from repro.ml.parakeet import train_parrot
from repro.rng import default_rng


@experiment("ext_hardware")
def run(seed: int = 23, fast: bool = True) -> ExperimentResult:
    """Parrot's analog-NPU setting: hardware noise through the evidence lens.

    An analog accelerator evaluating the Sobel network with weight and
    activation noise is yet another estimator; consuming its single noisy
    invocation in ``s > 0.1`` is the same uncertainty bug as consuming one
    GPS fix.  Treating its output as an Uncertain and averaging evidence
    over invocations recovers accuracy.
    """
    n_eval = 80 if fast else 300
    x_train, t_train = make_dataset(800 if fast else 3_000, rng=default_rng(seed))
    x_eval, t_eval = make_dataset(n_eval, rng=default_rng(seed + 1))
    parrot = train_parrot(x_train, t_train, epochs=100, rng=default_rng(seed + 2))

    rows = []
    for weight_noise in (0.02, 0.06, 0.12):
        acc = ApproximateAccelerator(
            parrot.mlp,
            HardwareModel(weight_noise=weight_noise, activation_noise=0.02),
            rng=default_rng(seed + 3),
        )
        naive = hardware_error_rate(
            acc, x_eval, t_eval, evidence=None, rng=default_rng(seed + 4)
        )
        uncertain = hardware_error_rate(
            acc, x_eval, t_eval, evidence=0.5, samples_per_input=100,
            rng=default_rng(seed + 5),
        )
        rows.append(
            {
                "weight_noise": weight_noise,
                "naive_error_rate": naive,
                "uncertain_error_rate": uncertain,
            }
        )
    claims = {
        "hardware noise degrades the naive flow": rows[-1]["naive_error_rate"]
        >= rows[0]["naive_error_rate"],
        "the evidence flow is at least as accurate at every noise level": all(
            r["uncertain_error_rate"] <= r["naive_error_rate"] + 0.02 for r in rows
        ),
        "the evidence flow strictly wins under heavy noise": rows[-1][
            "uncertain_error_rate"
        ]
        < rows[-1]["naive_error_rate"],
    }
    return ExperimentResult(
        "ext_hardware", "approximate hardware through the evidence lens", rows, claims
    )
