"""Property-based tests over the distribution library (hypothesis)."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dists import (
    Beta,
    Bernoulli,
    Exponential,
    Gamma,
    Gaussian,
    LogNormal,
    Rayleigh,
    Triangular,
    Uniform,
)
from repro.rng import default_rng

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)
positive = st.floats(min_value=1e-2, max_value=1e2, allow_nan=False)
probability = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@given(mu=finite, sigma=positive)
@settings(max_examples=30, deadline=None)
def test_gaussian_samples_match_moments(mu, sigma):
    rng = default_rng(7)
    g = Gaussian(mu, sigma)
    s = g.sample_n(4_000, rng)
    assert abs(np.mean(s) - mu) < 6 * sigma / math.sqrt(4_000) + 1e-9
    assert 0.8 * sigma < np.std(s) < 1.2 * sigma


@given(mu=finite, sigma=positive)
@settings(max_examples=30, deadline=None)
def test_gaussian_cdf_monotone_and_bounded(mu, sigma):
    g = Gaussian(mu, sigma)
    xs = np.linspace(mu - 4 * sigma, mu + 4 * sigma, 101)
    cdf = np.asarray(g.cdf(xs), dtype=float)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[0] >= 0.0 and cdf[-1] <= 1.0


@given(scale=positive)
@settings(max_examples=30, deadline=None)
def test_rayleigh_support_and_cdf(scale):
    r = Rayleigh(scale)
    rng = default_rng(11)
    s = r.sample_n(500, rng)
    assert s.min() >= 0
    assert float(r.cdf(scale * 10)) > 0.99


@given(p=probability)
@settings(max_examples=30, deadline=None)
def test_bernoulli_mean_is_p(p):
    b = Bernoulli(p)
    assert b.mean == p
    assert 0.0 <= b.variance <= 0.25


@given(rate=positive)
@settings(max_examples=30, deadline=None)
def test_exponential_quantiles(rate):
    e = Exponential(rate)
    median = math.log(2) / rate
    assert abs(float(e.cdf(median)) - 0.5) < 1e-9


@given(a=positive, b=positive)
@settings(max_examples=30, deadline=None)
def test_beta_mean_in_unit_interval(a, b):
    beta = Beta(a, b)
    assert 0.0 < beta.mean < 1.0
    assert beta.variance < 0.25


@given(shape=positive, rate=positive)
@settings(max_examples=30, deadline=None)
def test_gamma_pdf_non_negative(shape, rate):
    g = Gamma(shape, rate)
    xs = np.linspace(0.01, 10.0, 50)
    assert np.all(np.asarray(g.pdf(xs)) >= 0)


@given(low=finite, width=positive)
@settings(max_examples=30, deadline=None)
def test_uniform_samples_in_support(low, width):
    u = Uniform(low, low + width)
    rng = default_rng(3)
    s = u.sample_n(200, rng)
    assert s.min() >= low and s.max() <= low + width


@given(
    low=st.floats(min_value=-10, max_value=0, allow_nan=False),
    mode_frac=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    width=st.floats(min_value=0.5, max_value=10, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_triangular_mean_between_bounds(low, mode_frac, width):
    high = low + width
    mode = low + mode_frac * width
    t = Triangular(low, mode, high)
    assert low <= t.mean <= high


@given(mu=st.floats(min_value=-2, max_value=2), sigma=st.floats(min_value=0.05, max_value=1.5))
@settings(max_examples=30, deadline=None)
def test_lognormal_median(mu, sigma):
    ln = LogNormal(mu, sigma)
    assert abs(float(ln.cdf(math.exp(mu))) - 0.5) < 1e-9
