"""Run every registered experiment and print its regenerated table.

Usage::

    python -m repro.experiments            # fast protocol, all experiments
    python -m repro.experiments fig14      # one experiment
    python -m repro.experiments --full     # the paper's full protocol
"""

from __future__ import annotations

import sys
import time

from repro.experiments import registry, run_experiment


def main(argv: list[str]) -> int:
    fast = "--full" not in argv
    ids = [a for a in argv if not a.startswith("-")]
    targets = ids or sorted(registry)
    failures = 0
    for experiment_id in targets:
        start = time.perf_counter()
        result = run_experiment(experiment_id, fast=fast)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"  ({elapsed:.1f}s)\n")
        failures += sum(not ok for ok in result.claims.values())
    if failures:
        print(f"{failures} shape claim(s) FAILED")
        return 1
    print("all shape claims hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
