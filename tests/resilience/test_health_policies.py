"""Numerical-health policy matrix: on_nonfinite across the engine path."""

from __future__ import annotations

import numpy as np
import pytest

from repro import NonFiniteError, Uncertain, evaluation_config
from repro.core.conditionals import EvaluationConfig
from repro.core.sampling import SampleContext
from repro.dists import Empirical, Gaussian
from repro.dists.kde import KernelDensity
from repro.resilience import NonFiniteWarning, attribute_nonfinite, nonfinite_mask
from repro.runtime.metrics import RuntimeMetrics


def poisoned() -> Uncertain:
    """1 / (x * 0): every sample is inf/NaN, introduced at the division."""
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    return Uncertain(Gaussian(1.0, 0.1), label="Y") / (x * 0.0)


def sometimes_nan() -> Uncertain:
    """log of a Gaussian(1, 1): NaN for the ~16% of draws below zero."""
    return Uncertain(Gaussian(1.0, 1.0), label="X").map(np.log)


class TestPropagateDefault:
    def test_default_policy_keeps_ieee_semantics(self, rng):
        values = poisoned().samples(64, rng)
        assert np.any(~np.isfinite(values))

    def test_default_policy_emits_no_warning(self, rng):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", NonFiniteWarning)
            poisoned().samples(64, rng)


class TestWarnPolicy:
    def test_warns_and_returns_the_batch(self, rng):
        with evaluation_config(on_nonfinite="warn"):
            with pytest.warns(NonFiniteWarning, match="non-finite"):
                values = poisoned().samples(64, rng)
        assert len(values) == 64

    def test_clean_batches_do_not_warn(self, rng):
        import warnings

        clean = Uncertain(Gaussian(0.0, 1.0)) + 1.0
        with evaluation_config(on_nonfinite="warn"):
            with warnings.catch_warnings():
                warnings.simplefilter("error", NonFiniteWarning)
                clean.samples(64, rng)


class TestRaisePolicy:
    def test_raises_with_slot_attribution(self, rng):
        with evaluation_config(on_nonfinite="raise"):
            with pytest.raises(NonFiniteError) as excinfo:
                poisoned().samples(64, rng)
        attrs = excinfo.value.attributions
        assert attrs, "expected at least one attribution"
        # The division slot is blamed, not the healthy leaves.
        assert any(a.label == "/" for a in attrs)
        assert all(a.rows > 0 for a in attrs)

    def test_message_names_the_operator(self, rng):
        with evaluation_config(on_nonfinite="raise"):
            with pytest.raises(NonFiniteError, match="'/'"):
                poisoned().samples(64, rng)


class TestResamplePolicy:
    def test_repairs_recoverable_batches(self, rng):
        with evaluation_config(on_nonfinite="resample", nonfinite_retries=32):
            values = sometimes_nan().samples(2_000, rng)
        assert len(values) == 2_000
        assert np.all(np.isfinite(values))

    def test_cap_exhaustion_raises(self, rng):
        # Every draw is poisoned, so no amount of resampling helps.
        with evaluation_config(on_nonfinite="resample", nonfinite_retries=3):
            with pytest.raises(NonFiniteError, match="retry cap"):
                poisoned().samples(64, rng)

    def test_repair_is_deterministic_from_seed(self):
        expr = sometimes_nan()
        with evaluation_config(on_nonfinite="resample", nonfinite_retries=32):
            a = expr.samples(500, rng=99)
            b = expr.samples(500, rng=99)
        assert np.array_equal(a, b)

    def test_shared_context_draws_refuse_row_repair(self):
        # Replacing rows of one root would desynchronise the memoised joint
        # assignment, so resample under a SampleContext must raise.
        expr = poisoned()
        with evaluation_config(on_nonfinite="resample", rng=np.random.default_rng(0)):
            context = SampleContext(16)
            with pytest.raises(NonFiniteError, match="shared-context"):
                expr.sample_with(context)


class TestMetricsAndHelpers:
    def test_health_counters_record_rows_and_resamples(self):
        sink = RuntimeMetrics()
        with evaluation_config(
            on_nonfinite="resample", nonfinite_retries=32, metrics=sink
        ):
            sometimes_nan().samples(2_000, rng=5)
        health = sink.snapshot()["health"]
        assert health["nonfinite_batches"] == 1
        assert health["nonfinite_rows"] > 0
        assert health["resamples"] >= 1
        assert health["by_policy"] == {"resample": 1}

    def test_nonfinite_mask_skips_non_float_batches(self):
        assert nonfinite_mask(np.array([True, False])) is None
        assert nonfinite_mask(np.array([1, 2, 3])) is None
        assert nonfinite_mask([1.0, np.nan]) is None  # not an ndarray
        mask = nonfinite_mask(np.array([1.0, np.nan, np.inf]))
        assert mask.tolist() == [False, True, True]

    def test_attribution_blames_first_slot_only(self, rng):
        expr = poisoned()
        plan = expr.plan
        from repro.core.engines import NumpyEngine

        values = NumpyEngine().run(plan, 32, rng)
        attrs = attribute_nonfinite(plan, values)
        # Downstream slots that merely inherit the corruption are not blamed.
        assert len(attrs) == 1
        assert attrs[0].label == "/"

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="on_nonfinite"):
            EvaluationConfig(on_nonfinite="explode")
        with pytest.raises(ValueError, match="on_inconclusive"):
            EvaluationConfig(on_inconclusive="explode")
        with pytest.raises(ValueError, match="nonfinite_retries"):
            EvaluationConfig(nonfinite_retries=-1)


class TestDiagnoseProbe:
    def test_runtime_probe_reports_unc301(self):
        diags = sometimes_nan().diagnose(samples=500)
        runtime = [d for d in diags if d.rule == "UNC301"]
        assert len(runtime) == 1
        assert runtime[0].data["rows"] > 0
        assert runtime[0].data["probe_samples"] == 500

    def test_probe_is_deterministic_and_isolated(self):
        expr = sometimes_nan()
        a = expr.diagnose(samples=500)
        b = expr.diagnose(samples=500)
        assert [d.as_dict() for d in a] == [d.as_dict() for d in b]

    def test_static_only_when_samples_omitted(self):
        diags = sometimes_nan().diagnose()
        assert not [d for d in diags if d.rule == "UNC301"]


class TestConstructorScreening:
    def test_empirical_rejects_nonfinite_pools(self):
        with pytest.raises(ValueError, match="non-finite"):
            Empirical([1.0, np.nan, 3.0])
        with pytest.raises(ValueError, match="non-finite"):
            Empirical([1.0, np.inf])

    def test_empirical_opt_in_keeps_them(self):
        dist = Empirical([1.0, np.nan], allow_nonfinite=True)
        assert len(dist) == 2

    def test_empirical_object_pools_unscreened(self):
        Empirical([object(), object()])  # no dtype notion of finiteness

    def test_kde_rejects_nonfinite_data(self):
        with pytest.raises(ValueError, match="non-finite"):
            KernelDensity([0.0, 1.0, np.nan])

    def test_kde_opt_in(self):
        KernelDensity([0.0, 1.0, np.inf], allow_nonfinite=True, bandwidth=1.0)
