"""Named demo graphs for ``python -m repro.analysis graph <demo>``.

Each demo builds a small, self-contained uncertain computation that
exercises one or more graph rules, so the CLI can show the abstract
interpreter working end-to-end without the user writing code first.
``resolve_target`` also accepts a ``module.path:callable`` spec whose
callable returns an ``Uncertain`` (or raw ``Node``), which is how users
point the analyzer at their own graphs.
"""

from __future__ import annotations

import importlib
import math
from typing import Callable

from repro.core.uncertain import Uncertain


def _demo_quickstart() -> Uncertain:
    """The quickstart pace computation.

    Deliberately instructive: a Gaussian speed has support ``(-inf, inf)``
    even though physical speed is positive, so the pace division trips
    UNC101 — exactly the silent inf/NaN samples the paper's Section 2
    warns about.  A truncated or Rayleigh speed model fixes it.
    """
    from repro.dists import Gaussian

    speed = Uncertain(Gaussian(3.5, 1.0), label="speed")
    km_per_h = speed * 1.609344
    return 60.0 / km_per_h


def _demo_div_by_zero() -> Uncertain:
    """Division by a zero-crossing Gaussian — the UNC101 poster child."""
    from repro.dists import Gaussian, Uniform

    distance = Uncertain(Uniform(0.0, 100.0), label="distance_m")
    dt = Uncertain(Gaussian(1.0, 0.5), label="dt_s")
    return distance / dt


def _demo_log_domain() -> Uncertain:
    """``log`` of a support that dips below zero — UNC102."""
    from repro.dists import Gaussian

    from repro.core.lifting import lift

    x = Uncertain(Gaussian(2.0, 1.0), label="x")
    return lift(math.log, vectorized=False)(x)


def _demo_decided() -> Uncertain:
    """A comparison the SPRT can never change — UNC103."""
    from repro.dists import Uniform

    x = Uncertain(Uniform(0.0, 1.0), label="x")
    return x > 2.0


def _demo_self_compare() -> Uncertain:
    """``x == x`` on a shared node — UNC104."""
    from repro.dists import Gaussian

    x = Uncertain(Gaussian(0.0, 1.0), label="x")
    return x == x


def _demo_const_fold() -> Uncertain:
    """A point-mass-only subexpression — UNC105."""
    from repro.dists import Gaussian

    mph_per_mps = Uncertain.pointmass(3600.0) / Uncertain.pointmass(1609.344)
    speed_mps = Uncertain(Gaussian(1.5, 0.3), label="speed_mps")
    return speed_mps * mph_per_mps


def _demo_fig08() -> Uncertain:
    """Figure 8's shared-subexpression diamond — clean."""
    from repro.dists import Gaussian

    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return (y + x) + x


DEMOS: dict[str, Callable[[], Uncertain]] = {
    "quickstart": _demo_quickstart,
    "div-by-zero": _demo_div_by_zero,
    "log-domain": _demo_log_domain,
    "decided-comparison": _demo_decided,
    "self-compare": _demo_self_compare,
    "const-fold": _demo_const_fold,
    "fig08": _demo_fig08,
}


def resolve_target(spec: str) -> Uncertain:
    """Build the graph named by ``spec``.

    ``spec`` is either a demo name from :data:`DEMOS` or a
    ``module.path:callable`` reference to a zero-argument function
    returning an ``Uncertain`` or ``Node``.
    """
    if spec in DEMOS:
        return DEMOS[spec]()
    if ":" in spec:
        module_name, _, attr = spec.partition(":")
        module = importlib.import_module(module_name)
        factory = getattr(module, attr)
        value = factory()
        return value if isinstance(value, Uncertain) else Uncertain(value)
    raise SystemExit(
        f"unknown demo {spec!r}; choose one of {', '.join(sorted(DEMOS))} "
        "or pass a 'module.path:callable' spec"
    )
