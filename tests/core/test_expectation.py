"""Tests for the expected-value operator (fixed and adaptive)."""

import pytest

from repro.core.conditionals import evaluation_config
from repro.core.expectation import expected_value, expected_value_adaptive
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, PointMass
from repro.rng import default_rng


class TestFixedExpectation:
    def test_matches_mean(self, fixed_rng):
        u = Uncertain(Gaussian(3.0, 1.0))
        assert expected_value(u, 50_000, fixed_rng) == pytest.approx(3.0, abs=0.02)

    def test_default_sample_size_from_config(self):
        u = Uncertain(PointMass(2.0))
        with evaluation_config(expectation_samples=17, rng=default_rng(0)):
            assert expected_value(u) == 2.0

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            expected_value(Uncertain(PointMass(1.0)), 0)

    def test_object_mean(self, rng):
        class Vec:
            def __init__(self, x):
                self.x = x

            def __add__(self, other):
                return Vec(self.x + other.x)

            def __truediv__(self, k):
                return Vec(self.x / k)

        u = Uncertain(lambda r: Vec(r.normal(4.0, 0.1)))
        mean = expected_value(u, 500, rng)
        assert isinstance(mean, Vec)
        assert mean.x == pytest.approx(4.0, abs=0.1)

    def test_linearity(self, fixed_rng):
        a = Uncertain(Gaussian(1.0, 1.0))
        combo = 2.0 * a + 3.0
        assert expected_value(combo, 50_000, fixed_rng) == pytest.approx(5.0, abs=0.05)


class TestAdaptiveExpectation:
    def test_converges_to_mean(self):
        u = Uncertain(Gaussian(7.0, 2.0))
        mean, n = expected_value_adaptive(u, tolerance=0.05, rng=default_rng(1))
        assert mean == pytest.approx(7.0, abs=0.2)

    def test_tighter_tolerance_needs_more_samples(self):
        u = Uncertain(Gaussian(0.0, 1.0))
        _, loose = expected_value_adaptive(u, tolerance=0.2, rng=default_rng(2))
        _, tight = expected_value_adaptive(u, tolerance=0.02, rng=default_rng(2))
        assert tight > loose

    def test_low_variance_stops_early(self):
        u = Uncertain(Gaussian(5.0, 0.001))
        _, n = expected_value_adaptive(
            u, tolerance=0.01, batch_size=50, rng=default_rng(3)
        )
        assert n == 100  # two batches: the minimum before stopping is allowed

    def test_max_samples_cap(self):
        u = Uncertain(Gaussian(0.0, 100.0))
        _, n = expected_value_adaptive(
            u, tolerance=1e-6, max_samples=1_000, rng=default_rng(4)
        )
        assert n == 1_000

    def test_validation(self):
        u = Uncertain(PointMass(0.0))
        with pytest.raises(ValueError):
            expected_value_adaptive(u, tolerance=0.0)
        with pytest.raises(ValueError):
            expected_value_adaptive(u, confidence=1.0)
        with pytest.raises(ValueError):
            expected_value_adaptive(u, batch_size=1)
        with pytest.raises(ValueError):
            expected_value_adaptive(u, batch_size=100, max_samples=50)

    def test_adaptive_beats_fixed_on_easy_cases(self):
        # The paper anticipates adaptive E outperforming a fixed budget on
        # low-variance variables: same accuracy, far fewer samples.
        u = Uncertain(Gaussian(1.0, 0.01))
        _, n = expected_value_adaptive(
            u, tolerance=0.01, batch_size=50, rng=default_rng(5)
        )
        assert n < 1_000  # the fixed default
