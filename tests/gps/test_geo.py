"""Tests for GeoCoordinate and geometry helpers."""


import pytest

from repro.gps.geo import GeoCoordinate, enu_distance_m, haversine_m


class TestArithmetic:
    def test_add_sub(self):
        a = GeoCoordinate(1.0, 2.0)
        b = GeoCoordinate(0.5, 0.25)
        assert a + b == GeoCoordinate(1.5, 2.25)
        assert a - b == GeoCoordinate(0.5, 1.75)

    def test_scalar_mul_div(self):
        a = GeoCoordinate(2.0, 4.0)
        assert a * 0.5 == GeoCoordinate(1.0, 2.0)
        assert 0.5 * a == GeoCoordinate(1.0, 2.0)
        assert a / 2.0 == GeoCoordinate(1.0, 2.0)

    def test_neg(self):
        assert -GeoCoordinate(1.0, -2.0) == GeoCoordinate(-1.0, 2.0)

    def test_mean_via_sum_and_div(self):
        # The object path of expected_value relies on + and /.
        pts = [GeoCoordinate(0.0, 0.0), GeoCoordinate(2.0, 4.0)]
        mean = (pts[0] + pts[1]) / 2
        assert mean == GeoCoordinate(1.0, 2.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            GeoCoordinate(0.0, 0.0).latitude = 1.0


class TestGeometry:
    def test_offset_north(self):
        origin = GeoCoordinate(47.0, -122.0)
        moved = origin.offset_m(0.0, 100.0)
        east, north = moved.enu_m(origin)
        assert east == pytest.approx(0.0, abs=1e-6)
        assert north == pytest.approx(100.0, rel=1e-6)

    def test_offset_east_accounts_for_latitude(self):
        origin = GeoCoordinate(60.0, 10.0)  # high latitude
        moved = origin.offset_m(100.0, 0.0)
        east, _ = moved.enu_m(origin)
        assert east == pytest.approx(100.0, rel=1e-3)

    def test_offset_roundtrip(self):
        origin = GeoCoordinate(47.64, -122.13)
        moved = origin.offset_m(123.0, -45.0)
        east, north = moved.enu_m(origin)
        assert east == pytest.approx(123.0, rel=1e-4)
        assert north == pytest.approx(-45.0, rel=1e-4)

    def test_haversine_known_distance(self):
        # One degree of latitude is ~111.2 km.
        a = GeoCoordinate(0.0, 0.0)
        b = GeoCoordinate(1.0, 0.0)
        assert haversine_m(a, b) == pytest.approx(111_195, rel=1e-3)

    def test_haversine_zero(self):
        a = GeoCoordinate(10.0, 20.0)
        assert haversine_m(a, a) == 0.0

    def test_enu_matches_haversine_at_walk_scale(self):
        a = GeoCoordinate(47.64, -122.13)
        b = a.offset_m(30.0, 40.0)
        assert enu_distance_m(a, b) == pytest.approx(50.0, rel=1e-4)
        assert haversine_m(a, b) == pytest.approx(50.0, rel=1e-2)

    def test_symmetry(self):
        a = GeoCoordinate(47.0, -122.0)
        b = a.offset_m(10.0, 20.0)
        assert enu_distance_m(a, b) == pytest.approx(enu_distance_m(b, a), rel=1e-6)
