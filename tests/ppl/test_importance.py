"""Tests for likelihood weighting."""

import math

import numpy as np
import pytest

from repro.ppl.importance import (
    WeightedTrace,
    alarm_model_weighted,
    exact_noisy_alarm_posterior,
    likelihood_weighting,
)
from repro.rng import default_rng


class TestWeightedTrace:
    def test_flip_forward_sampling(self):
        rng = default_rng(0)
        values = [WeightedTrace(rng).flip(0.7) for _ in range(2_000)]
        assert np.mean(values) == pytest.approx(0.7, abs=0.03)

    def test_flip_observed_weights(self):
        trace = WeightedTrace(default_rng(1))
        assert trace.flip_observed(0.25, True) is True
        assert trace.log_weight == pytest.approx(math.log(0.25))
        trace.flip_observed(0.25, False)
        assert trace.log_weight == pytest.approx(math.log(0.25) + math.log(0.75))

    def test_factor(self):
        trace = WeightedTrace(default_rng(2))
        trace.factor(-1.5)
        assert trace.log_weight == -1.5

    def test_validation(self):
        trace = WeightedTrace(default_rng(3))
        with pytest.raises(ValueError):
            trace.flip(2.0)
        with pytest.raises(ValueError):
            trace.flip_observed(-0.1, True)


class TestLikelihoodWeighting:
    def test_simple_posterior(self):
        # x ~ flip(0.5); observe a sensor that fires with p=0.9 if x else 0.1.
        def model(trace: WeightedTrace) -> bool:
            x = trace.flip(0.5)
            trace.flip_observed(0.9 if x else 0.1, True)
            return x

        result = likelihood_weighting(model, 20_000, rng=default_rng(4))
        assert result.estimate() == pytest.approx(0.9, abs=0.02)

    def test_every_execution_counts(self):
        result = likelihood_weighting(
            alarm_model_weighted, 5_000, rng=default_rng(5)
        )
        assert result.executions == 5_000
        assert len(result.samples) == 5_000

    def test_alarm_posterior_matches_enumeration(self):
        # The ESS is only ~0.1% of the executions (the evidence is rare),
        # so the tolerance must respect the weighted estimator's variance.
        result = likelihood_weighting(
            alarm_model_weighted, 100_000, rng=default_rng(6)
        )
        assert result.estimate() == pytest.approx(
            exact_noisy_alarm_posterior(), abs=0.05
        )

    def test_ess_reflects_rare_evidence(self):
        result = likelihood_weighting(
            alarm_model_weighted, 10_000, rng=default_rng(7)
        )
        # Almost all weight concentrates on the rare alarm-true executions.
        assert result.effective_sample_size < 0.05 * result.executions

    def test_validation(self):
        with pytest.raises(ValueError):
            likelihood_weighting(alarm_model_weighted, 0)


class TestExactEnumeration:
    def test_posterior_value_plausible(self):
        # The noisy sensor admits false positives, which (unlike the hard
        # observation) mix in no-alarm worlds where the phone is fine.
        p = exact_noisy_alarm_posterior()
        assert 0.96 < p < 1.0
