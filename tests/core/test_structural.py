"""Property tests for structural plan hashing (stage 2 of the compiler).

Contract: two plans get the same structural key iff their programs are
interchangeable — same op kinds, arities, distribution parameters, and
topology — and plans containing anything whose sampling behaviour the
hash cannot capture (lambdas, closures, stateful sources) are opaque.
"""

import numpy as np
import pytest

from repro.core.plan import compile_plan
from repro.core.structural import (
    StructuralCache,
    canonical_value,
    clear_structural_cache,
    plan_fingerprint,
    structural_cache_stats,
)
from repro.core.uncertain import Uncertain
from repro.dists.exponential import Exponential
from repro.dists.gaussian import Gaussian
from repro.dists.uniform import Uniform


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_structural_cache()
    yield
    clear_structural_cache()


def gps_speed(mu=1.5):
    a = Uncertain(Gaussian(mu, 0.3))
    b = Uncertain(Gaussian(mu + 1.0, 0.4))
    d = b - a
    return (d * d) / Uncertain(Uniform(0.5, 2.0)) + 1.0


class TestHashEquality:
    def test_isomorphic_plans_hash_equal(self):
        p1 = compile_plan(gps_speed().node)
        p2 = compile_plan(gps_speed().node)
        assert p1.root is not p2.root
        assert p1.structural_hash is not None
        assert p1.structural_hash == p2.structural_hash

    def test_hash_is_stable_across_recompiles(self):
        u = gps_speed()
        first = compile_plan(u.node).structural_hash
        assert compile_plan(u.node).structural_hash == first

    def test_differing_dist_params_differ(self):
        p1 = compile_plan(gps_speed(mu=1.5).node)
        p2 = compile_plan(gps_speed(mu=2.5).node)
        assert p1.structural_hash != p2.structural_hash

    def test_differing_dist_family_differs(self):
        g = Uncertain(Gaussian(1.0, 1.0)) + 1.0
        e = Uncertain(Exponential(1.0)) + 1.0
        assert (
            compile_plan(g.node).structural_hash
            != compile_plan(e.node).structural_hash
        )

    def test_differing_topology_differs(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        shared = compile_plan((x + x).node)
        y1, y2 = Uncertain(Gaussian(0.0, 1.0)), Uncertain(Gaussian(0.0, 1.0))
        independent = compile_plan((y1 + y2).node)
        assert shared.structural_hash != independent.structural_hash

    def test_differing_op_differs(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert (
            compile_plan((x + 1.0).node).structural_hash
            != compile_plan((x - 1.0).node).structural_hash
        )

    def test_point_mass_value_is_structural(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert (
            compile_plan((x + 2.0).node).structural_hash
            != compile_plan((x + 3.0).node).structural_hash
        )


class TestOpacity:
    def test_lambda_apply_is_opaque(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x.map(lambda v: v * 2, vectorized=True)
        assert compile_plan(y.node).structural_hash is None

    def test_ufunc_apply_is_hashable(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = (x * x).map(np.sqrt, vectorized=True)
        assert compile_plan(y.node).structural_hash is not None

    def test_opaque_plans_do_not_pollute_the_cache(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        compile_plan(x.map(lambda v: v, vectorized=True).node)
        assert structural_cache_stats()["entries"] == 0


class TestCollisionHandling:
    def test_hit_requires_full_fingerprint_equality(self):
        cache = StructuralCache()
        p1 = compile_plan(gps_speed(mu=1.5).node)
        key1, hit1 = cache.key_for(p1)
        assert not hit1
        # Another plan with an equal fingerprint hits the same key only
        # after the stored fingerprint compares equal in full.
        p2 = compile_plan(gps_speed(mu=1.5).node)
        key2, hit2 = cache.key_for(p2)
        assert (key2, hit2) == (key1, True)

    def test_true_digest_collision_gets_salted_key(self):
        cache = StructuralCache()
        p1 = compile_plan(gps_speed(mu=1.5).node)
        key1, _ = cache.key_for(p1)
        # Simulate a BLAKE2b collision: replace the stored fingerprint
        # under p1's digest with a different structure.  The cache must
        # notice the mismatch and salt p1's key rather than alias it.
        cache._entries[key1] = [(("bogus",), key1)]
        key1b, hit1b = cache.key_for(p1)
        assert key1b == f"{key1}#1"
        assert not hit1b
        assert cache.stats()["collisions"] == 1
        # The salted variant is now registered: the same shape hits it.
        p2 = compile_plan(gps_speed(mu=1.5).node)
        key2, hit2 = cache.key_for(p2)
        assert (key2, hit2) == (key1b, True)

    def test_reuse_requires_identical_fingerprints(self):
        p1 = compile_plan(gps_speed(mu=1.5).node)
        p2 = compile_plan(gps_speed(mu=2.0).node)
        assert plan_fingerprint(p1) != plan_fingerprint(p2)
        assert p1.structural_hash != p2.structural_hash


class TestCacheBounds:
    def test_lru_eviction_respects_limit(self):
        cache = StructuralCache(limit=4)
        for i in range(10):
            plan = compile_plan((Uncertain(Gaussian(float(i), 1.0)) + float(i)).node)
            cache.key_for(plan)
        assert len(cache) <= 4

    def test_global_stats_shape(self):
        compile_plan(gps_speed().node)
        stats = structural_cache_stats()
        assert set(stats) >= {"entries", "hits", "misses", "collisions"}


class TestCanonicalValues:
    def test_scalars_and_arrays_round_trip(self):
        assert canonical_value(1.5) == canonical_value(1.5)
        assert canonical_value(np.float64(1.5)) == canonical_value(1.5)
        assert canonical_value(True) != canonical_value(1)
        a = canonical_value(np.arange(3))
        b = canonical_value(np.arange(3))
        assert a == b
        assert canonical_value(np.arange(3)) != canonical_value(np.arange(4))
