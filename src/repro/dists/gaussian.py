"""Gaussian (normal) distributions, including truncated and multivariate."""

from __future__ import annotations

import math

import numpy as np
from scipy import stats

from repro.dists.base import Distribution, REAL_LINE, Support


class Gaussian(Distribution):
    """Normal distribution N(mu, sigma^2).

    The workhorse error model of the paper: sensor noise in SensorLife
    (Section 5.2) and the Central-Limit-Theorem rationale for means
    (Section 3.2) are both Gaussian.
    """

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0.0:
            return np.full(n, self.mu)
        return rng.normal(self.mu, self.sigma, size=n)

    def bulk_draw_spec(self):
        # ``rng.normal(mu, sigma, n)`` computes ``mu + sigma * z`` per value
        # (numpy's random_normal), so the affine-over-standard_normal form
        # is bit-identical.  The degenerate sigma=0 path never draws.
        if self.sigma == 0.0:
            return None
        return ("standard_normal", self.mu, self.sigma)

    def log_pdf(self, x):
        if self.sigma == 0.0:
            raise NotImplementedError("degenerate Gaussian has no density")
        z = (np.asarray(x, dtype=float) - self.mu) / self.sigma
        return -0.5 * z * z - math.log(self.sigma) - 0.5 * math.log(2 * math.pi)

    def cdf(self, x):
        if self.sigma == 0.0:
            return (np.asarray(x, dtype=float) >= self.mu).astype(float)
        z = (np.asarray(x, dtype=float) - self.mu) / (self.sigma * math.sqrt(2))
        from scipy.special import erf

        return 0.5 * (1 + erf(z))

    @property
    def mean(self) -> float:
        return self.mu

    @property
    def variance(self) -> float:
        return self.sigma**2

    @property
    def support(self) -> Support:
        return REAL_LINE


class TruncatedGaussian(Distribution):
    """Gaussian restricted (and renormalised) to ``[lower, upper]``.

    Used as the walking-speed prior in the GPS-Walking case study: humans
    are overwhelmingly likely to walk between 0 and ~6 mph.
    """

    def __init__(self, mu: float, sigma: float, lower: float, upper: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if not lower < upper:
            raise ValueError(f"need lower < upper, got [{lower}, {upper}]")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.lower = float(lower)
        self.upper = float(upper)
        self._a = (self.lower - self.mu) / self.sigma
        self._b = (self.upper - self.mu) / self.sigma
        self._dist = stats.truncnorm(self._a, self._b, loc=self.mu, scale=self.sigma)

    # The frozen scipy distribution is derived state; these four define it.
    structural_fields = ("mu", "sigma", "lower", "upper")

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return self._dist.rvs(size=n, random_state=rng)

    def log_pdf(self, x):
        return self._dist.logpdf(np.asarray(x, dtype=float))

    def cdf(self, x):
        return self._dist.cdf(np.asarray(x, dtype=float))

    @property
    def mean(self) -> float:
        return float(self._dist.mean())

    @property
    def variance(self) -> float:
        return float(self._dist.var())

    @property
    def support(self) -> Support:
        return Support(self.lower, self.upper)


class MultivariateGaussian(Distribution):
    """Multivariate normal; samples are arrays of shape ``(n, d)``.

    The GPS sensor's planar error before conversion to the Rayleigh radial
    form is an isotropic 2-D Gaussian; this class backs that derivation and
    tests for it.
    """

    def __init__(self, mean: np.ndarray, cov: np.ndarray) -> None:
        mean = np.asarray(mean, dtype=float)
        cov = np.asarray(cov, dtype=float)
        if mean.ndim != 1:
            raise ValueError("mean must be a vector")
        if cov.shape != (mean.size, mean.size):
            raise ValueError(f"cov shape {cov.shape} incompatible with mean {mean.shape}")
        self.mu = mean
        self.cov = cov
        # Fail fast on non-PSD covariance.
        self._chol = np.linalg.cholesky(cov + 1e-12 * np.eye(mean.size))

    @property
    def dim(self) -> int:
        return self.mu.size

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        z = rng.standard_normal(size=(n, self.dim))
        return self.mu + z @ self._chol.T

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return self.sample_n(1, rng)[0]

    def log_pdf(self, x):
        return stats.multivariate_normal(self.mu, self.cov).logpdf(x)

    @property
    def mean(self):
        return self.mu

    @property
    def variance(self):
        return self.cov
