"""Cooperative cancellation for in-flight evaluations.

Deadlines and budgets are enforced *between* draws by
:func:`repro.core.sampling._execute_plan`, but a draw that is already
executing on a worker thread used to run to completion no matter what —
an expired per-request deadline or a disconnected client kept burning a
thread.  This module closes that gap with the standard cooperative
pattern: a :class:`CancellationToken` installed around an evaluation
(:func:`scope`) is polled by the engines at their natural batch
boundaries — per program step in :class:`~repro.core.engines.NumpyEngine`
and the interpreter, per kernel in the fused backend, per chunk in
:class:`~repro.runtime.parallel.ParallelEngine` — and a tripped token
stops the run at the next boundary with :class:`EvaluationCancelled`.

Tokens trip two ways:

- **explicitly** — ``token.cancel("client-disconnected")``; the service
  tier wires this to the asyncio future of each request, so a caller
  abandoning a request actually frees the worker thread;
- **by deadline** — ``CancellationToken(deadline_at=...)`` (or
  :meth:`CancellationToken.with_timeout`) trips once ``monotonic()``
  passes the given instant; ``_execute_plan`` derives one from the
  active config's ``deadline`` so ambient deadlines stop mid-run too.

Cancellation never consumes or perturbs the sampling RNG stream: a check
is a flag read plus (for deadline tokens) a clock read, so a run that is
*not* cancelled draws exactly the samples it would have drawn with no
token installed.  :class:`EvaluationCancelled` carries partial-progress
metadata (``progress``) naming how far the run got — steps for the
serial engines, chunks/rows for the parallel engine.

This module is stdlib-only by design: :mod:`repro.core.engines` imports
it, so it can depend on nothing in ``repro``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic

__all__ = [
    "CancellationToken",
    "EvaluationCancelled",
    "current",
    "check_current",
    "scope",
]


class EvaluationCancelled(RuntimeError):
    """An in-flight evaluation was stopped at a batch boundary.

    Structured fields:

    - ``reason`` — why the token tripped (``"deadline"``,
      ``"client-disconnected"``, or whatever the canceller passed);
    - ``progress`` — partial-progress metadata recorded at the boundary
      that observed the cancellation (e.g. ``{"step": 12, "steps": 40}``
      from a serial engine, ``{"chunks_done": 3, "chunks": 8,
      "rows_done": 24576}`` from the parallel engine).  Empty when the
      cancellation was observed before any work started.
    """

    def __init__(self, message: str, *, reason: str = "cancelled",
                 progress: dict | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.progress = dict(progress or {})


class CancellationToken:
    """A thread-safe tripwire polled by engines at batch boundaries.

    Parameters
    ----------
    deadline_at:
        Absolute ``time.monotonic()`` instant after which the token
        reports cancelled with reason ``"deadline"``; ``None`` for a
        token that only trips explicitly.
    """

    __slots__ = ("_cancelled", "_reason", "deadline_at", "_lock")

    def __init__(self, deadline_at: float | None = None) -> None:
        self._cancelled = False
        self._reason: str | None = None
        self.deadline_at = deadline_at
        self._lock = threading.Lock()

    @classmethod
    def with_timeout(cls, seconds: float | None) -> "CancellationToken":
        """A token that trips ``seconds`` from now (``None``: never)."""
        if seconds is None:
            return cls()
        if seconds < 0:
            raise ValueError(f"timeout must be >= 0, got {seconds}")
        return cls(deadline_at=monotonic() + float(seconds))

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token explicitly (idempotent; first reason wins)."""
        with self._lock:
            if not self._cancelled:
                self._cancelled = True
                self._reason = str(reason)

    @property
    def cancelled(self) -> bool:
        """Tripped — explicitly or by an expired deadline."""
        if self._cancelled:
            return True
        if self.deadline_at is not None and monotonic() > self.deadline_at:
            self.cancel("deadline")
            return True
        return False

    @property
    def expired(self) -> bool:
        """The deadline (if any) has passed."""
        return self.deadline_at is not None and monotonic() > self.deadline_at

    @property
    def reason(self) -> str | None:
        """Why the token tripped (``None`` while still live)."""
        self.cancelled  # noqa: B018 — promotes an expired deadline to a reason
        return self._reason

    def check(self, **progress) -> None:
        """Raise :class:`EvaluationCancelled` if tripped; else no-op.

        Keyword arguments become the exception's partial-progress
        metadata, recorded at the boundary that observed the trip.
        """
        if self.cancelled:
            raise EvaluationCancelled(
                f"evaluation cancelled ({self._reason})"
                + (f" at {progress}" if progress else ""),
                reason=self._reason or "cancelled",
                progress=progress,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = self._reason if self.cancelled else "live"
        return f"<CancellationToken {state} deadline_at={self.deadline_at}>"


# -- the ambient token --------------------------------------------------------
#
# Engines cannot take a ``token=`` parameter without threading it through
# every caller (SampleContext, SPRT, expectation, the coalescer, pickled
# parallel chunks ...), so the active token travels the same way the
# active EvaluationConfig does: per-thread ambient state installed by a
# context manager around the evaluation.

_active = threading.local()


def current() -> CancellationToken | None:
    """The token installed for this thread, or ``None``."""
    return getattr(_active, "token", None)


def check_current(**progress) -> None:
    """Convenience: ``current().check(...)`` when a token is installed."""
    token = getattr(_active, "token", None)
    if token is not None:
        token.check(**progress)


@contextmanager
def scope(token: CancellationToken | None):
    """Install ``token`` as this thread's ambient cancellation token.

    ``scope(None)`` is a no-op context (callers need not branch).
    Scopes nest; the inner token shadows the outer one for its extent.
    """
    if token is None:
        yield None
        return
    previous = getattr(_active, "token", None)
    _active.token = token
    try:
        yield token
    finally:
        _active.token = previous
