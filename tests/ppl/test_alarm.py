"""Tests for the Figure 17 alarm comparison."""

import pytest

from repro.ppl.alarm import (
    alarm_model,
    exact_alarm_probability,
    exact_phone_working_posterior,
    run_alarm_comparison,
)
from repro.ppl.language import rejection_query
from repro.rng import default_rng


class TestExactValues:
    def test_alarm_probability_is_011_percent(self):
        assert exact_alarm_probability() == pytest.approx(0.0011, abs=1e-5)

    def test_phone_working_posterior(self):
        # Hand-derived: (1e-4*0.7 + (1-1e-4)*1e-3*0.99) / Pr[alarm].
        assert exact_phone_working_posterior() == pytest.approx(0.9636, abs=0.001)


class TestAlarmModel:
    def test_rejection_matches_exact(self):
        result = rejection_query(alarm_model, 300, rng=default_rng(0))
        assert result.estimate() == pytest.approx(
            exact_phone_working_posterior(), abs=0.05
        )

    def test_acceptance_rate_matches_alarm_probability(self):
        result = rejection_query(alarm_model, 100, rng=default_rng(1))
        assert result.acceptance_rate == pytest.approx(0.0011, rel=0.6)


class TestComparison:
    def test_comparison_shape_claims(self):
        cmp = run_alarm_comparison(30, rng=default_rng(2))
        assert cmp.uncertain_decision is True
        assert cmp.uncertain_samples < 1_000
        assert cmp.rejection.executions > 100 * len(cmp.rejection.samples)
        assert cmp.rejection_estimate == pytest.approx(
            cmp.exact_posterior, abs=0.15
        )
