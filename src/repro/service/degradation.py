"""Graceful degradation under overload: brownout levels and bulkheads.

The paper's semantics make *precision* a tunable resource: an answer
computed from fewer samples is still a correct answer — the evidence is
just wider.  This module exploits that to give the service tier a
response to pressure that is better than the binary accept-or-shed:

- :class:`BrownoutController` — a queue-pressure-driven controller that
  walks the service through configurable **degradation levels**, each a
  sample-budget factor.  Under sustained pressure it *escalates* one
  level at a time (additive increase of severity, rate-limited by a
  dwell time); once pressure has stayed below the low watermark for a
  hold period it *recovers* one level (hysteresis — the
  escalate/recover watermarks and dwell times form the classic AIMD
  sawtooth over precision instead of admission).  Hard shedding at
  ``max_pending`` remains the last resort above the deepest level.
- :class:`DegradationRecord` — the frozen provenance attached to every
  degraded :class:`~repro.service.requests.QueryResult`: the level, the
  nominal sample count the request asked for, and the effective count it
  was answered with.  Callers always see exactly what precision they
  got.
- :class:`BulkheadRegistry` / :class:`GroupBulkhead` — per-structural-
  hash-group isolation in the coalescer: each group gets a concurrency
  limit and its own reused :class:`~repro.resilience.source.CircuitBreaker`,
  so one pathological plan shape (a huge fused kernel, a chaos-stalled
  source) cannot starve every other group.  Tripped groups fail fast
  with :class:`~repro.service.errors.BulkheadRejected` carrying
  ``Retry-After``-style metadata while healthy groups keep serving.

Determinism contract, extended
------------------------------

Degradation changes *how many* samples answer a request, never *which*
stream they come from.  The effective count is a pure function of
``(nominal_samples, level)`` — :meth:`DegradationDecision.apply` — so a
seeded request answered at level *k* is bit-identical to solo evaluation
of the same request with ``samples=effective`` at level 0.  The level a
request is answered at depends on load (it is *not* reproducible across
runs); the record says which level that was, and replaying the request
solo at that budget reproduces the answer bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from time import monotonic

from repro.resilience.source import CircuitBreaker
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace
from repro.service.errors import BulkheadRejected

__all__ = [
    "BrownoutController",
    "BulkheadRegistry",
    "DegradationDecision",
    "DegradationRecord",
    "GroupBulkhead",
]

#: Default degradation ladder: nominal, then halving steps down to 10%.
DEFAULT_LEVELS = (1.0, 0.5, 0.25, 0.1)


@dataclasses.dataclass(frozen=True)
class DegradationRecord:
    """Frozen provenance of one degraded answer.

    ``effective_samples`` is what actually answered the query,
    ``nominal_samples`` what the request (or the config default) asked
    for; their ratio is the precision the caller traded for latency.
    """

    level: int
    factor: float
    nominal_samples: int
    effective_samples: int


@dataclasses.dataclass(frozen=True)
class DegradationDecision:
    """One batch's frozen brownout state: the level every request in the
    batch is answered at.  Freezing the decision per batch is what makes
    the determinism contract statable — a request is answered *at a
    level*, not at whatever the controller drifted to mid-evaluation."""

    level: int
    factor: float
    min_samples: int

    def effective(self, nominal: int) -> int:
        """The degraded sample count: pure in ``(nominal, level)``."""
        if self.level == 0:
            return int(nominal)
        return max(self.min_samples, int(int(nominal) * self.factor))

    def apply(self, nominal: int) -> "tuple[int, DegradationRecord | None]":
        """``(effective_samples, record)``; record is ``None`` at level 0
        (undegraded answers carry no degradation provenance)."""
        nominal = int(nominal)
        effective = self.effective(nominal)
        if self.level == 0 or effective >= nominal:
            return nominal, None
        return effective, DegradationRecord(
            level=self.level,
            factor=self.factor,
            nominal_samples=nominal,
            effective_samples=effective,
        )


#: The identity decision (level 0) used when no controller is installed.
NO_DEGRADATION = DegradationDecision(level=0, factor=1.0, min_samples=1)


class BrownoutController:
    """Queue-pressure-driven degradation levels with hysteresis.

    Parameters
    ----------
    levels:
        The degradation ladder as sample-budget factors; index 0 must be
        1.0 (nominal).  Deeper indices are more degraded.
    high_watermark / low_watermark:
        Queue-pressure thresholds (``pending / max_pending``).  Pressure
        at or above the high watermark escalates one level; pressure at
        or below the low watermark begins recovery.  The gap between
        them is the hysteresis band where the level holds.
    escalate_hold_s:
        Minimum dwell between successive escalations (rate-limits the
        additive-increase ramp so one burst cannot slam to max level).
    recover_hold_s:
        How long pressure must stay at or below the low watermark before
        one recovery step (the slow half of the AIMD sawtooth).
    min_samples:
        Floor on any degraded sample count — answers stay statistically
        meaningful even at the deepest level.
    clock:
        Injection point for the monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        levels: "tuple[float, ...]" = DEFAULT_LEVELS,
        *,
        high_watermark: float = 0.75,
        low_watermark: float = 0.25,
        escalate_hold_s: float = 0.02,
        recover_hold_s: float = 0.2,
        min_samples: int = 16,
        clock=monotonic,
    ) -> None:
        levels = tuple(float(f) for f in levels)
        if not levels or levels[0] != 1.0:
            raise ValueError(
                f"levels must start at factor 1.0 (nominal), got {levels}"
            )
        if any(not 0.0 < f <= 1.0 for f in levels):
            raise ValueError(f"level factors must be in (0, 1], got {levels}")
        if any(a <= b for a, b in zip(levels, levels[1:])):
            raise ValueError(
                f"level factors must strictly decrease, got {levels}"
            )
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ValueError(
                "watermarks must satisfy 0 <= low < high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        if escalate_hold_s < 0 or recover_hold_s < 0:
            raise ValueError("hold times must be non-negative")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.levels = levels
        self.high_watermark = float(high_watermark)
        self.low_watermark = float(low_watermark)
        self.escalate_hold_s = float(escalate_hold_s)
        self.recover_hold_s = float(recover_hold_s)
        self.min_samples = int(min_samples)
        self._clock = clock
        self._lock = threading.Lock()
        self._level = 0
        self._peak_level = 0
        self._escalations = 0
        self._recoveries = 0
        self._last_escalation = float("-inf")
        self._calm_since: float | None = None

    # -- state ---------------------------------------------------------------

    @property
    def level(self) -> int:
        return self._level

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    @property
    def at_max_level(self) -> bool:
        return self._level >= self.max_level

    def decision(self) -> DegradationDecision:
        """Freeze the current level into a per-batch decision."""
        level = self._level
        return DegradationDecision(
            level=level, factor=self.levels[level], min_samples=self.min_samples
        )

    # -- the control loop ----------------------------------------------------

    def observe(self, pending: int, max_pending: int) -> int:
        """Feed one queue-depth observation; returns the (new) level.

        Called from the service's submit path and batch loop — cheap
        enough for both: a clock read and a couple of comparisons under
        a lock.
        """
        pressure = pending / max_pending if max_pending > 0 else 1.0
        now = self._clock()
        with self._lock:
            if pressure >= self.high_watermark:
                self._calm_since = None
                if (
                    self._level < self.max_level
                    and now - self._last_escalation >= self.escalate_hold_s
                ):
                    self._transition(self._level + 1, now, "escalate", pressure)
            elif pressure <= self.low_watermark:
                if self._level > 0:
                    if self._calm_since is None:
                        self._calm_since = now
                    elif now - self._calm_since >= self.recover_hold_s:
                        self._transition(
                            self._level - 1, now, "recover", pressure
                        )
                        # Recovery of further levels requires a fresh
                        # calm period: one step per hold (the slow half).
                        self._calm_since = now
            else:
                # Hysteresis band: hold the level, reset the calm timer.
                self._calm_since = None
            return self._level

    def _transition(self, new: int, now: float, kind: str, pressure: float):
        old, self._level = self._level, new
        self._peak_level = max(self._peak_level, new)
        if kind == "escalate":
            self._escalations += 1
            self._last_escalation = now
        else:
            self._recoveries += 1
        sink = _metrics.active()
        if sink is not None:
            sink.record_degradation(transitions=1, level_now=new)
        _trace.event(
            f"service.brownout.{kind}",
            level=new,
            previous=old,
            pressure=round(pressure, 4),
        )

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "level": self._level,
                "max_level": self.max_level,
                "factor": self.levels[self._level],
                "peak_level": self._peak_level,
                "escalations": self._escalations,
                "recoveries": self._recoveries,
                "transitions": self._escalations + self._recoveries,
            }


# ---------------------------------------------------------------------------
# Bulkheads: per-structural-group isolation in the coalescer.
# ---------------------------------------------------------------------------


class GroupBulkhead:
    """One structural group's isolation state: slots + a circuit breaker.

    ``try_enter`` admits (or refuses) one bulk evaluation of the group;
    ``exit`` releases the slot and feeds the outcome to the breaker.
    Cancelled evaluations exit with ``success=None`` — a cancellation is
    the *caller's* deadline, not evidence the group is unhealthy.
    """

    __slots__ = ("key", "limit", "breaker", "retry_after_s", "_active", "_lock")

    def __init__(
        self,
        key: str,
        *,
        limit: int,
        breaker: CircuitBreaker,
        retry_after_s: float,
    ) -> None:
        self.key = key
        self.limit = int(limit)
        self.breaker = breaker
        self.retry_after_s = float(retry_after_s)
        self._active = 0
        self._lock = threading.Lock()

    @property
    def active(self) -> int:
        return self._active

    def try_enter(self) -> "BulkheadRejected | None":
        """Admit one bulk evaluation; returns the rejection to apply to
        the group's requests (``None`` when admitted)."""
        with self._lock:
            if self._active >= self.limit:
                return BulkheadRejected(
                    group=self.key,
                    breaker_state=self.breaker.state,
                    reason="concurrency-limit",
                    retry_after_hint=self.retry_after_s,
                )
            if not self.breaker.allow_primary():
                remaining = max(1, self.breaker.recovery_remaining)
                _trace.event(
                    "service.bulkhead.reject", group=self.key,
                    state=self.breaker.state,
                )
                return BulkheadRejected(
                    group=self.key,
                    breaker_state=self.breaker.state,
                    reason="breaker-open",
                    retry_after_hint=self.retry_after_s * remaining,
                )
            self._active += 1
            return None

    def exit(self, success: "bool | None") -> None:
        """Release the slot; ``True``/``False`` feed the breaker,
        ``None`` (cancelled) records no outcome."""
        with self._lock:
            self._active -= 1
            if success is True:
                self.breaker.record_success()
            elif success is False:
                self.breaker.record_failure()

    def state(self) -> dict:
        with self._lock:
            return {
                "breaker": self.breaker.state,
                "active": self._active,
                "limit": self.limit,
                "trips": self.breaker.trips,
                "recoveries": self.breaker.recoveries,
            }


class BulkheadRegistry:
    """LRU-bounded map from group key to :class:`GroupBulkhead`.

    Parameters
    ----------
    max_concurrency:
        Concurrent bulk evaluations allowed per group (across worker
        threads).  The default of 1 gives the strict bulkhead: one slow
        group occupies at most one worker, leaving the rest for healthy
        shapes.
    breaker_factory:
        Zero-argument callable building each group's
        :class:`~repro.resilience.source.CircuitBreaker`.  The default
        is deliberately smaller than the source-level breaker (group
        bulk evaluations are coarse events): window 8, trip at half
        failing with at least 2 outcomes, 4 refused evaluations per
        recovery probe.
    retry_after_s:
        Base unit for ``retry_after_hint`` on rejections (scaled by the
        breaker's remaining recovery count for breaker-open rejects).
    max_groups:
        Bound on tracked groups; least-recently-used state is dropped
        (a re-arriving group starts with a fresh, closed breaker).
    """

    def __init__(
        self,
        *,
        max_concurrency: int = 1,
        breaker_factory=None,
        retry_after_s: float = 0.05,
        max_groups: int = 512,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_groups < 1:
            raise ValueError(f"max_groups must be >= 1, got {max_groups}")
        if retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {retry_after_s}"
            )
        self.max_concurrency = int(max_concurrency)
        self.retry_after_s = float(retry_after_s)
        self.max_groups = int(max_groups)
        self._breaker_factory = breaker_factory or (
            lambda: CircuitBreaker(
                window=8, failure_threshold=0.5, min_calls=2, recovery_calls=4
            )
        )
        self._groups: "OrderedDict[str, GroupBulkhead]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> GroupBulkhead:
        with self._lock:
            bulkhead = self._groups.get(key)
            if bulkhead is None:
                bulkhead = GroupBulkhead(
                    key,
                    limit=self.max_concurrency,
                    breaker=self._breaker_factory(),
                    retry_after_s=self.retry_after_s,
                )
                self._groups[key] = bulkhead
                while len(self._groups) > self.max_groups:
                    self._groups.popitem(last=False)
            else:
                self._groups.move_to_end(key)
            return bulkhead

    def states(self) -> dict:
        """Per-group breaker/occupancy snapshot (for ``/stats``)."""
        with self._lock:
            groups = list(self._groups.items())
        return {key: bulkhead.state() for key, bulkhead in groups}

    def open_groups(self) -> int:
        """How many tracked groups have a non-closed breaker right now."""
        with self._lock:
            groups = list(self._groups.values())
        return sum(1 for b in groups if b.breaker.state != "closed")
