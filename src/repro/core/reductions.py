"""Lifted reductions over collections of uncertain values.

The paper's SensorLife listing sums eight sensors with a loop of ``+``
operators; these helpers generalise that pattern (and keep the network
balanced, which matters for very wide sums: a left-leaning chain of ``+``
nodes is deep and slow to traverse, a balanced tree is logarithmic).

``umin``/``umax``/``umedian`` are lifted order statistics: per *joint
sample* they pick the extreme of the operands' values, which is the
correct distributional semantics (the max of random variables, not the max
of their means).  They intentionally do **not** impose an order on the
uncertain values themselves — Section 3.4's ternary logic explains why
comparisons cannot totally order distributions.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.graph import ApplyNode
from repro.core.uncertain import Uncertain, _as_node


def _nodes(values: Iterable[Any]) -> list:
    nodes = [_as_node(v) for v in values]
    if not nodes:
        raise ValueError("reduction over an empty collection")
    return nodes


def usum(values: Iterable[Any]) -> Uncertain:
    """Sum of uncertain (or plain) values as one balanced network."""
    items = [v if isinstance(v, Uncertain) else Uncertain(v) for v in values]
    if not items:
        raise ValueError("usum over an empty collection")
    while len(items) > 1:
        paired = []
        for i in range(0, len(items) - 1, 2):
            paired.append(items[i] + items[i + 1])
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


def umean(values: Sequence[Any]) -> Uncertain:
    """Arithmetic mean of uncertain values (a scaled :func:`usum`)."""
    values = list(values)
    return usum(values) / len(values)


def _order_statistic(values: Iterable[Any], fn, label: str) -> Uncertain:
    nodes = _nodes(values)
    return Uncertain.from_node(
        ApplyNode(
            lambda *xs: fn(np.stack(xs), axis=0),
            nodes,
            vectorized=True,
            label=label,
        )
    )


def umin(values: Iterable[Any]) -> Uncertain:
    """Per-joint-sample minimum of the operands."""
    return _order_statistic(values, np.min, "umin")


def umax(values: Iterable[Any]) -> Uncertain:
    """Per-joint-sample maximum of the operands."""
    return _order_statistic(values, np.max, "umax")


def umedian(values: Iterable[Any]) -> Uncertain:
    """Per-joint-sample median of the operands."""
    return _order_statistic(values, np.median, "umedian")


def _balanced_boolean(items: list, combine, name: str) -> "Uncertain":
    """Reduce pairwise so the network (and its compiled plan) stays
    logarithmic in depth, like :func:`usum`."""
    from repro.core.uncertain import UncertainBool

    if not items:
        raise ValueError(f"{name} over an empty collection")
    while len(items) > 1:
        paired = [combine(items[i], items[i + 1]) for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    result = items[0]
    if not isinstance(result, UncertainBool):
        raise TypeError(f"{name} requires UncertainBool operands")
    return result


def uall(conditions: Iterable[Any]) -> "Uncertain":
    """Conjunction of uncertain booleans (balanced ``&`` tree)."""
    return _balanced_boolean(list(conditions), lambda a, b: a & b, "uall")


def uany(conditions: Iterable[Any]) -> "Uncertain":
    """Disjunction of uncertain booleans (balanced ``|`` tree)."""
    return _balanced_boolean(list(conditions), lambda a, b: a | b, "uany")
