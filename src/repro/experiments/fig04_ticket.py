"""Figure 4: probability of a speeding ticket vs true speed and accuracy."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult, experiment
from repro.gps.ticket import ticket_probability
from repro.rng import default_rng


@experiment("fig04")
def run(seed: int = 4, fast: bool = True) -> ExperimentResult:
    """Sweep true speed x GPS accuracy for the naive ``Speed > 60`` ticket.

    Paper's headline cell: 57 mph true speed at 4 m accuracy gives a 32%
    ticket probability from random noise alone.
    """
    rng = default_rng(seed)
    n = 20_000 if fast else 200_000
    speeds = [50, 54, 57, 60, 63, 66, 70]
    epsilons = [2.0, 4.0, 8.0, 16.0]
    rows = []
    for speed in speeds:
        row: dict = {"true_speed_mph": speed}
        for eps in epsilons:
            row[f"pr_ticket_eps_{eps:g}m"] = ticket_probability(
                speed, eps, n=n, rng=rng
            )
        rows.append(row)
    by_speed = {row["true_speed_mph"]: row for row in rows}
    claims = {
        "57 mph at 4 m accuracy has a substantial ticket probability (~32%)": 0.2
        < by_speed[57]["pr_ticket_eps_4m"] < 0.45,
        "ticket probability rises with true speed": by_speed[70]["pr_ticket_eps_4m"]
        > by_speed[50]["pr_ticket_eps_4m"],
        "below the limit, worse accuracy means more false tickets": by_speed[54][
            "pr_ticket_eps_16m"
        ]
        > by_speed[54]["pr_ticket_eps_2m"],
        "fast speeders are caught at any accuracy": by_speed[70]["pr_ticket_eps_2m"]
        > 0.95,
    }
    return ExperimentResult(
        "fig04", "ticket probability across speed and accuracy", rows, claims
    )
