"""The service-tier error taxonomy: structured, machine-actionable failures.

Every way the service can refuse or abandon a request maps to one class
here, and every class carries the fields a client needs to *act* on the
failure instead of parsing the message:

===========================  ================================================
:class:`ServiceError`        Base class for every service-tier failure.
:class:`ServiceClosed`       Submit before ``start()`` or after ``stop()``.
:class:`ServiceOverloaded`   Shed at the ``max_pending`` queue bound.
                             Fields: ``pending``, ``max_pending``,
                             ``retry_after_hint``.
:class:`BulkheadRejected`    A structural group's bulkhead refused the
                             request — its circuit breaker is open after
                             repeated bulk faults, or the group is already
                             at its concurrency limit.  Fields:
                             ``group``, ``breaker_state``, ``reason``,
                             plus the overload fields above.
:class:`EvaluationCancelled` (re-exported from
                             :mod:`repro.runtime.cancellation`) An
                             in-flight evaluation stopped at a batch
                             boundary.  Fields: ``reason``, ``progress``.
===========================  ================================================

``retry_after_hint`` is the ``Retry-After``-style backoff suggestion in
**seconds** (a heuristic, not a promise): for sheds it estimates when the
queue will have drained below the bound, for tripped bulkheads when the
breaker's next recovery probe is due.  ``None`` means the server has no
estimate.

Admission failures reuse the library's own exceptions
(:class:`~repro.core.sampling.SampleBudgetExceeded`,
:class:`~repro.core.sampling.DeadlineExceeded`) — a service shares one
error vocabulary with solo evaluation.  See the error table in
``docs/api.md`` and the degradation model in ``docs/degradation.md``.
"""

from __future__ import annotations

from repro.runtime.cancellation import EvaluationCancelled

__all__ = [
    "ServiceError",
    "ServiceClosed",
    "ServiceOverloaded",
    "BulkheadRejected",
    "EvaluationCancelled",
]


class ServiceError(RuntimeError):
    """Base class for every service-tier failure."""


class ServiceClosed(ServiceError):
    """The service is not running (never started, or already stopped)."""


class ServiceOverloaded(ServiceError):
    """The pending queue exceeded ``max_pending``; the request was shed.

    Structured fields:

    - ``pending`` — queue depth observed at the shed decision;
    - ``max_pending`` — the configured bound it hit;
    - ``retry_after_hint`` — suggested client backoff in seconds
      (``None`` when the server has no estimate).
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        pending: int | None = None,
        max_pending: int | None = None,
        retry_after_hint: float | None = None,
    ) -> None:
        if message is None:
            message = (
                f"pending queue at bound ({pending}/{max_pending}); "
                "request shed"
            )
        super().__init__(message)
        self.pending = pending
        self.max_pending = max_pending
        self.retry_after_hint = retry_after_hint


class BulkheadRejected(ServiceOverloaded):
    """One structural group's bulkhead refused this request.

    A :class:`BulkheadRejected` is a *scoped* overload: only the named
    group is unhealthy (its circuit breaker opened after repeated bulk
    faults, or it is already running at its concurrency limit); other
    groups keep serving.  Additional fields:

    - ``group`` — the structural-hash group key that was refused;
    - ``breaker_state`` — ``"open"`` / ``"half-open"`` / ``"closed"``
      at rejection time;
    - ``reason`` — ``"breaker-open"`` or ``"concurrency-limit"``.
    """

    def __init__(
        self,
        message: str | None = None,
        *,
        group: str | None = None,
        breaker_state: str | None = None,
        reason: str = "breaker-open",
        pending: int | None = None,
        max_pending: int | None = None,
        retry_after_hint: float | None = None,
    ) -> None:
        if message is None:
            message = (
                f"bulkhead for group {group!r} rejected the request "
                f"({reason}; breaker {breaker_state})"
            )
        super().__init__(
            message,
            pending=pending,
            max_pending=max_pending,
            retry_after_hint=retry_after_hint,
        )
        self.group = group
        self.breaker_state = breaker_state
        self.reason = reason
