"""Categorical and point-mass distributions.

Point masses implement the paper's coercion rule: a plain value ``x`` of base
type ``T`` used in an Uncertain computation becomes ``Pointmass :: T -> U T``
(Table 1), a distribution all of whose samples equal ``x``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.dists.base import Distribution, Support


def _values_array(values: Sequence[Any]) -> np.ndarray:
    """Pack sample values, preserving arbitrary Python objects when needed."""
    arr = np.asarray(values)
    if arr.dtype == object or arr.ndim != 1:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            arr[i] = v
    return arr


class Categorical(Distribution):
    """Finite discrete distribution over arbitrary values.

    This is the representation used by CES-style ``prob<T>`` types that the
    related-work section contrasts with sampling functions; here it is just
    one distribution among many.
    """

    discrete = True

    def __init__(self, values: Sequence[Any], probs: Sequence[float]) -> None:
        if len(values) == 0:
            raise ValueError("Categorical needs at least one value")
        if len(values) != len(probs):
            raise ValueError("values and probs must have equal length")
        probs_arr = np.asarray(probs, dtype=float)
        if np.any(probs_arr < 0):
            raise ValueError("probabilities must be non-negative")
        total = probs_arr.sum()
        if total <= 0:
            raise ValueError("probabilities must sum to a positive value")
        self.values = _values_array(values)
        self.probs = probs_arr / total

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        idx = rng.choice(len(self.values), size=n, p=self.probs)
        return self.values[idx]

    def log_pdf(self, x):
        x = np.asarray(x)
        out = np.full(x.shape, -np.inf, dtype=float)
        for value, p in zip(self.values, self.probs):
            if p > 0:
                out = np.where(x == value, np.log(p), out)
        return out

    @property
    def mean(self) -> float:
        return float(np.dot(self.values.astype(float), self.probs))

    @property
    def variance(self) -> float:
        vals = self.values.astype(float)
        m = float(np.dot(vals, self.probs))
        return float(np.dot((vals - m) ** 2, self.probs))

    @property
    def support(self) -> Support:
        try:
            vals = self.values.astype(float)
        except (TypeError, ValueError):
            raise NotImplementedError("non-numeric categorical has no interval support")
        return Support(float(vals.min()), float(vals.max()))


class PointMass(Distribution):
    """Degenerate distribution concentrated on a single value."""

    discrete = True

    def __init__(self, value: Any) -> None:
        self.value = value

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if isinstance(self.value, (int, float, np.integer, np.floating, bool, np.bool_)):
            return np.full(n, self.value)
        out = np.empty(n, dtype=object)
        out[:] = [self.value] * n
        return out

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def log_pdf(self, x):
        x = np.asarray(x)
        with np.errstate(divide="ignore"):
            return np.where(x == self.value, 0.0, -np.inf)

    @property
    def mean(self):
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    @property
    def support(self) -> Support:
        v = float(self.value)
        return Support(v, v)
