"""Cross-feature integration: the extensions compose with the core.

Each test wires at least three subsystems together, the way a downstream
application would.
"""

import numpy as np
import pytest

from repro.core.bayes import posterior
from repro.core.conditionals import evaluation_config
from repro.core.joint import correlated_gaussians
from repro.core.reductions import uall, umax, usum
from repro.core.sprt import GroupSequentialTest
from repro.core.uncertain import Uncertain
from repro.core.viz import summary
from repro.dists import Gaussian, TruncatedGaussian
from repro.rng import default_rng


class TestJointThroughPriorsAndConditionals:
    def test_correlated_sensors_fused_and_questioned(self):
        # Two correlated temperature sensors; their mean, improved by a
        # physical prior, answers an evidence question.
        cov = np.array([[1.0, 0.6], [0.6, 1.0]])
        s1, s2 = correlated_gaussians([21.0, 21.4], cov, ["s1", "s2"])
        fused = (s1 + s2) / 2.0
        better = posterior(
            fused, TruncatedGaussian(20.0, 2.0, 10.0, 30.0), rng=default_rng(0)
        )
        with evaluation_config(rng=default_rng(1)):
            assert bool(better > 18.0)
            assert not (better > 25.0).pr(0.5)

    def test_joint_network_inspectable(self):
        s1, s2 = correlated_gaussians([0.0, 0.0], np.eye(2))
        info = summary(s1 + s2)
        # components share the single joint leaf.
        assert info["leaves"] == 1
        assert info["nodes"] == 4  # leaf, two components, sum


class TestReductionsThroughConditioning:
    def test_max_sensor_given_all_plausible(self):
        sensors = [Uncertain(Gaussian(m, 0.5)) for m in (1.0, 2.0, 3.0)]
        peak = umax(sensors)
        plausible = uall([s > -1.0 for s in sensors])
        conditioned = peak.given(plausible, rng=default_rng(2))
        assert conditioned.expected_value(5_000, default_rng(3)) == pytest.approx(
            3.05, abs=0.15
        )

    def test_sum_conditioned_on_component(self):
        parts = [Uncertain(Gaussian(0.0, 1.0)) for _ in range(4)]
        total = usum(parts)
        conditioned = total.given(parts[0] > 2.0, rng=default_rng(4))
        # E[x | x > 2] for N(0,1) ~ 2.37; others unchanged.
        assert conditioned.expected_value(5_000, default_rng(5)) == pytest.approx(
            2.37, abs=0.25
        )


class TestAlternativeTestsEndToEnd:
    def test_group_sequential_drives_application_conditionals(self):
        from repro.gps.ticket import ticket_condition

        cond = ticket_condition(70.0, 4.0)
        with evaluation_config(
            rng=default_rng(6),
            test_factory=lambda t: GroupSequentialTest(t, looks=5, group_size=100),
        ) as cfg:
            assert cond.pr(0.5)
            assert cfg.samples_drawn <= 500

    def test_fixed_single_sample_reproduces_naivety_in_life(self):
        # Wiring FixedSampleTest(n=1) into SensorLife makes it behave like
        # NaiveLife statistically: boundary cells flip.
        from repro.core.sprt import FixedSampleTest
        from repro.life.variants import SensorLife

        states = np.array([1.0, 1.0] + [0.0] * 6)  # live cell, 2 neighbours
        wrong = 0
        with evaluation_config(
            rng=default_rng(7),
            test_factory=lambda t: FixedSampleTest(t, n=1),
        ):
            for seed in range(100):
                outcome = SensorLife(0.3).decide(True, states, default_rng(seed))
                wrong += not outcome.will_be_alive  # truth: survives
        assert wrong > 10  # single-sample decisions flip often


class TestFilteredLocationThroughEverything:
    def test_fusion_geofence_prior_pipeline(self):
        from repro.gps.fusion import ParticleFilter
        from repro.gps.geo import GeoCoordinate
        from repro.gps.geofence import Geofence
        from repro.gps.sensor import GpsFix

        origin = GeoCoordinate(47.64, -122.13)
        pf = ParticleFilter(
            GpsFix(origin.offset_m(50.0, 40.0), 4.0, 0.0),
            n_particles=300,
            rng=default_rng(8),
        )
        for t in range(1, 5):
            pf.predict(1.0)
            pf.update(GpsFix(origin.offset_m(50.0, 40.0), 4.0, float(t)))
        location = pf.location()
        park = Geofence.rectangle(origin, 100.0, 80.0)
        inside = park.contains(location)
        with evaluation_config(rng=default_rng(9)):
            assert inside.pr(0.9)
        # The evidence itself is high.
        assert inside.evidence(2_000, default_rng(10)) > 0.95
