"""Bernoulli and binomial distributions.

Every comparison in Uncertain<T> produces a Bernoulli random variable whose
parameter ``p`` is the evidence for the comparison (Section 3.4).  The SPRT
in :mod:`repro.core.sprt` tests hypotheses about exactly this parameter.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.dists.base import Distribution, Support


class Bernoulli(Distribution):
    """Bernoulli(p): 1 with probability ``p``, else 0."""

    discrete = True

    def __init__(self, p: float) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.p = float(p)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return (rng.random(n) < self.p).astype(np.int64)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        with np.errstate(divide="ignore"):
            return np.where(
                x == 1,
                np.log(self.p),
                np.where(x == 0, np.log1p(-self.p), -np.inf),
            )

    @property
    def mean(self) -> float:
        return self.p

    @property
    def variance(self) -> float:
        return self.p * (1.0 - self.p)

    @property
    def support(self) -> Support:
        return Support(0, 1)


class Binomial(Distribution):
    """Binomial(n, p): number of successes in ``n`` Bernoulli(p) trials."""

    discrete = True

    def __init__(self, trials: int, p: float) -> None:
        if trials < 0:
            raise ValueError(f"trials must be non-negative, got {trials}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        self.trials = int(trials)
        self.p = float(p)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.binomial(self.trials, self.p, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        k = np.floor(x)
        valid = (k == x) & (k >= 0) & (k <= self.trials)
        k = np.clip(k, 0, self.trials)
        if self.p in (0.0, 1.0):
            target = self.trials * self.p
            with np.errstate(divide="ignore"):
                return np.where(valid & (k == target), 0.0, -np.inf)
        log_comb = (
            special.gammaln(self.trials + 1)
            - special.gammaln(k + 1)
            - special.gammaln(self.trials - k + 1)
        )
        lp = log_comb + k * math.log(self.p) + (self.trials - k) * math.log1p(-self.p)
        return np.where(valid, lp, -np.inf)

    @property
    def mean(self) -> float:
        return self.trials * self.p

    @property
    def variance(self) -> float:
        return self.trials * self.p * (1.0 - self.p)

    @property
    def support(self) -> Support:
        return Support(0, self.trials)
