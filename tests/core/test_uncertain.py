"""Tests for the Uncertain type and its operator algebra."""

import numpy as np
import pytest

from repro.core.graph import node_count
from repro.core.uncertain import Uncertain, UncertainBool, uncertain
from repro.dists import Gaussian, PointMass


class TestConstruction:
    def test_from_distribution(self):
        u = Uncertain(Gaussian(0.0, 1.0))
        assert node_count(u.node) == 1

    def test_from_scalar_is_pointmass(self, rng):
        u = Uncertain(5.0)
        assert u.sample(rng) == 5.0

    def test_from_callable(self, rng):
        u = Uncertain(lambda r: r.normal(3.0, 0.01))
        assert u.sample(rng) == pytest.approx(3.0, abs=0.1)

    def test_from_uncertain_shares_node(self):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(a)
        assert b.node is a.node

    def test_pointmass_classmethod(self, rng):
        assert Uncertain.pointmass("label").sample(rng) == "label"

    def test_uncertain_helper(self):
        assert isinstance(uncertain(Gaussian(0, 1)), Uncertain)


class TestArithmetic:
    def test_add_means(self, fixed_rng):
        c = Uncertain(Gaussian(4.0, 1.0)) + Uncertain(Gaussian(5.0, 1.0))
        assert c.expected_value(20_000, fixed_rng) == pytest.approx(9.0, abs=0.05)

    def test_scalar_coercion_right(self, fixed_rng):
        c = Uncertain(Gaussian(4.0, 0.5)) + 1.0
        assert c.expected_value(10_000, fixed_rng) == pytest.approx(5.0, abs=0.05)

    def test_scalar_coercion_left(self, fixed_rng):
        c = 10.0 - Uncertain(Gaussian(4.0, 0.5))
        assert c.expected_value(10_000, fixed_rng) == pytest.approx(6.0, abs=0.05)

    def test_division(self, fixed_rng):
        speed = Uncertain(Gaussian(10.0, 0.1)) / 2.0
        assert speed.expected_value(5_000, fixed_rng) == pytest.approx(5.0, abs=0.05)

    def test_rdiv(self, fixed_rng):
        inv = 1.0 / Uncertain(Gaussian(2.0, 0.01))
        assert inv.expected_value(5_000, fixed_rng) == pytest.approx(0.5, abs=0.01)

    def test_pow(self, fixed_rng):
        sq = Uncertain(Gaussian(3.0, 0.01)) ** 2
        assert sq.expected_value(5_000, fixed_rng) == pytest.approx(9.0, abs=0.1)

    def test_rpow(self, fixed_rng):
        two_x = 2.0 ** Uncertain(PointMass(3.0))
        assert two_x.sample(fixed_rng) == 8.0

    def test_mod_and_floordiv(self, rng):
        u = Uncertain(PointMass(7.0))
        assert (u % 3).sample(rng) == 1.0
        assert (u // 2).sample(rng) == 3.0
        assert (9.0 // u).sample(rng) == 1.0
        assert (10.0 % u).sample(rng) == 3.0

    def test_neg_abs_pos(self, rng):
        u = Uncertain(PointMass(-4.0))
        assert (-u).sample(rng) == 4.0
        assert abs(u).sample(rng) == 4.0
        assert (+u) is u

    def test_mul_reflected(self, rng):
        u = 3 * Uncertain(PointMass(2.0))
        assert u.sample(rng) == 6.0

    def test_shared_subexpression_variance(self, fixed_rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert (x + x).var(50_000, fixed_rng) == pytest.approx(4.0, rel=0.05)

    def test_self_subtraction_is_zero(self, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        assert np.all((x - x).samples(100, rng) == 0.0)

    def test_operator_chain_builds_dag(self):
        a = Uncertain(Gaussian(0, 1))
        b = Uncertain(Gaussian(0, 1))
        c = (a + b) * (a - b)
        # a, b, a+b, a-b, product: 5 distinct nodes.
        assert node_count(c.node) == 5


class TestComparisons:
    def test_comparison_type(self):
        a = Uncertain(Gaussian(0, 1))
        assert isinstance(a > 0.0, UncertainBool)
        assert isinstance(a < 0.0, UncertainBool)
        assert isinstance(a >= 0.0, UncertainBool)
        assert isinstance(a <= 0.0, UncertainBool)
        assert isinstance(a == 0.0, UncertainBool)
        assert isinstance(a != 0.0, UncertainBool)

    def test_reflected_comparison(self):
        a = Uncertain(Gaussian(0, 1))
        cond = 2.0 <= a
        assert isinstance(cond, UncertainBool)

    def test_evidence_estimates_probability(self, fixed_rng):
        cond = Uncertain(Gaussian(0.0, 1.0)) > 0.0
        assert cond.evidence(20_000, fixed_rng) == pytest.approx(0.5, abs=0.02)

    def test_between(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 1.0))
        inside = u.between(-1.0, 1.0)
        assert inside.evidence(20_000, fixed_rng) == pytest.approx(0.6827, abs=0.02)

    def test_equality_on_discrete(self, fixed_rng):
        u = Uncertain(PointMass(3))
        assert (u == 3).evidence(100, fixed_rng) == 1.0
        assert (u != 3).evidence(100, fixed_rng) == 0.0

    def test_hash_is_identity(self):
        a = Uncertain(Gaussian(0, 1))
        assert hash(a) == hash(a)
        {a: 1}  # hashable despite __eq__ override


class TestEvaluation:
    def test_plain_uncertain_bool_raises(self):
        with pytest.raises(TypeError, match="no direct truth value"):
            bool(Uncertain(Gaussian(0, 1)))

    def test_samples_shape(self, rng):
        assert Uncertain(Gaussian(0, 1)).samples(33, rng).shape == (33,)

    def test_sd_var(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 2.0))
        assert u.sd(50_000, fixed_rng) == pytest.approx(2.0, rel=0.03)
        assert u.var(50_000, fixed_rng) == pytest.approx(4.0, rel=0.05)

    def test_ci(self, fixed_rng):
        lo, hi = Uncertain(Gaussian(0.0, 1.0)).ci(0.95, 50_000, fixed_rng)
        assert lo == pytest.approx(-1.96, abs=0.08)
        assert hi == pytest.approx(1.96, abs=0.08)

    def test_ci_validation(self):
        with pytest.raises(ValueError):
            Uncertain(Gaussian(0, 1)).ci(1.5)

    def test_histogram(self, rng):
        density, edges = Uncertain(Gaussian(0, 1)).histogram(20, 2_000, rng)
        assert len(density) == 20 and len(edges) == 21

    def test_to_empirical_freezes(self, fixed_rng):
        u = Uncertain(Gaussian(5.0, 1.0)).to_empirical(5_000, fixed_rng)
        assert u.expected_value(5_000, fixed_rng) == pytest.approx(5.0, abs=0.1)

    def test_expected_value_alias_E(self, fixed_rng):
        u = Uncertain(Gaussian(2.0, 0.1))
        assert u.E(5_000, fixed_rng) == pytest.approx(2.0, abs=0.02)

    def test_map(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 1.0)).map(lambda v: v * v)
        assert u.expected_value(20_000, fixed_rng) == pytest.approx(1.0, abs=0.05)

    def test_map_vectorized(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 1.0)).map(np.square, vectorized=True)
        assert u.expected_value(20_000, fixed_rng) == pytest.approx(1.0, abs=0.05)

    def test_repr_mentions_nodes(self):
        assert "nodes=" in repr(Uncertain(Gaussian(0, 1)) + 1.0)


class TestUncertainBoolAlgebra:
    def test_and_or_not(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 1.0))
        both = (u > -1.0) & (u < 1.0)
        assert both.evidence(20_000, fixed_rng) == pytest.approx(0.6827, abs=0.02)
        either = (u < -1.0) | (u > 1.0)
        assert either.evidence(20_000, fixed_rng) == pytest.approx(0.3173, abs=0.02)
        negated = ~(u > 0.0)
        assert negated.evidence(20_000, fixed_rng) == pytest.approx(0.5, abs=0.02)

    def test_xor(self, fixed_rng):
        u = Uncertain(Gaussian(0.0, 1.0))
        x = (u > 0.0) ^ (u > 0.0)  # identical condition: always false
        assert x.evidence(1_000, fixed_rng) == 0.0

    def test_logical_with_plain_bool(self, fixed_rng):
        u = Uncertain(Gaussian(10.0, 0.1))
        cond = (u > 0.0) & True
        assert cond.evidence(1_000, fixed_rng) == 1.0

    def test_complement_duality(self, fixed_rng):
        u = Uncertain(Gaussian(0.3, 1.0))
        p = (u > 0.0).evidence(30_000, fixed_rng)
        q = (u <= 0.0).evidence(30_000, fixed_rng)
        assert p + q == pytest.approx(1.0, abs=0.02)
