"""The speeding-ticket model (Figure 4 and Section 2's quantitative claims).

Issuing tickets from GPS with the conditional ``Speed > 60`` asks a boolean
question of probabilistic data.  The paper reports that at a true speed of
57 mph with 4 m GPS accuracy there is a 32% chance of a ticket from random
noise alone, and that a 4 m 95% location CI compounds into a ~12.7 mph 95%
speed CI.  Both fall out of the Rayleigh error model:

- each fix's planar error is isotropic Gaussian with per-axis sigma equal
  to the Rayleigh scale ``rho = eps / sqrt(ln 400)``;
- the *difference* of two fixes has per-axis sigma ``rho * sqrt(2)``;
- with zero true displacement the apparent distance is Rayleigh
  (rho*sqrt(2)), whose 95th percentile is ``rho*sqrt(2)*sqrt(ln 400)`` —
  for eps = 4 m and dt = 1 s that is 5.66 m/s = 12.7 mph, the paper's
  number exactly.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.uncertain import Uncertain, UncertainBool
from repro.dists.rayleigh import SCALE_FROM_95CI
from repro.dists.sampling_function import FunctionDistribution
from repro.gps.units import MPS_TO_MPH, mph_to_mps


def speed_ci_95_mph(epsilon_m: float, dt_s: float = 1.0) -> float:
    """Closed-form 95% speed error at zero true displacement (Section 2)."""
    rho = epsilon_m * SCALE_FROM_95CI
    return rho * math.sqrt(2.0) / SCALE_FROM_95CI / dt_s * MPS_TO_MPH


def speed_distribution_mph(
    true_speed_mph: float, epsilon_m: float, dt_s: float = 1.0
) -> Uncertain:
    """Distribution of GPS-computed speed given a true speed and accuracy.

    The apparent displacement is the true displacement plus the difference
    of two independent planar Rayleigh errors; its magnitude is Rice
    distributed, sampled here directly.
    """
    if true_speed_mph < 0:
        raise ValueError(f"true speed must be non-negative, got {true_speed_mph}")
    if epsilon_m <= 0 or dt_s <= 0:
        raise ValueError("epsilon_m and dt_s must be positive")
    rho = epsilon_m * SCALE_FROM_95CI
    sigma_diff = rho * math.sqrt(2.0)
    true_dist_m = mph_to_mps(true_speed_mph) * dt_s

    def sample_many(n: int, rng: np.random.Generator) -> np.ndarray:
        dx = true_dist_m + rng.normal(0.0, sigma_diff, size=n)
        dy = rng.normal(0.0, sigma_diff, size=n)
        return np.hypot(dx, dy) / dt_s * MPS_TO_MPH

    dist = FunctionDistribution(
        lambda rng: sample_many(1, rng)[0], fn_n=sample_many
    )
    return Uncertain(dist, label=f"speed({true_speed_mph}mph,eps={epsilon_m}m)")


def ticket_condition(
    true_speed_mph: float, epsilon_m: float, limit_mph: float = 60.0, dt_s: float = 1.0
) -> UncertainBool:
    """The evidence variable ``Speed > limit``."""
    return speed_distribution_mph(true_speed_mph, epsilon_m, dt_s) > limit_mph


def ticket_probability(
    true_speed_mph: float,
    epsilon_m: float,
    limit_mph: float = 60.0,
    dt_s: float = 1.0,
    n: int = 50_000,
    rng=None,
) -> float:
    """Monte-Carlo Pr[ticket] for a naive ``Speed > limit`` conditional.

    This regenerates Figure 4: sweep ``true_speed_mph`` and ``epsilon_m``
    and plot the false-positive/false-negative structure of the naive
    conditional.
    """
    return ticket_condition(true_speed_mph, epsilon_m, limit_mph, dt_s).evidence(
        n, rng
    )
