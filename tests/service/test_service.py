"""The asyncio front end: batching, determinism under concurrency, shedding.

The headline test: N concurrent identical-shape requests, under
``workers=1`` and ``workers=2``, produce answers bit-identical to serial
per-request evaluation with the same seeds — including when a
chaos-injected engine kills bulk evaluations mid-batch.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

import repro
from repro import Uncertain
from repro.dists import Gaussian
from repro.resilience.chaos import ChaosEngine
from repro.service import (
    QueryRequest,
    Service,
    ServiceClosed,
    ServiceOverloaded,
    evaluate_request,
)


def speed_query() -> Uncertain:
    east = Uncertain(Gaussian(4.0, 1.0))
    north = Uncertain(Gaussian(4.0, 1.0))
    return (east * east + north * north) ** 0.5


def run(coro):
    return asyncio.run(coro)


def solo_reference(value, seeds, samples=64):
    return [
        evaluate_request(
            QueryRequest(value=value, kind="samples", samples=samples, seed=s),
            engine="numpy",
        ).value
        for s in seeds
    ]


class TestConcurrentDeterminism:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_bit_identical_to_serial(self, workers):
        value = speed_query()
        seeds = list(range(16))
        expected = solo_reference(value, seeds)

        async def scenario():
            async with Service(
                engine="numpy", window=0.001, workers=workers
            ) as svc:
                return await asyncio.gather(*[
                    svc.samples(value, 64, seed=s) for s in seeds
                ])

        results = run(scenario())
        assert any(r.batched for r in results)  # coalescing actually happened
        for want, got in zip(expected, results):
            assert np.array_equal(want, got.value)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_chaos_injected_worker_kills_stay_bit_identical(self, workers):
        # The chaos engine kills bulk evaluations nondeterministically
        # (w.r.t. scheduling); answers must not move by a single bit.
        value = speed_query()
        seeds = list(range(12))
        expected = solo_reference(value, seeds)
        chaos = ChaosEngine(inner="numpy", seed=23, error_rate=0.3)

        async def scenario():
            async with Service(
                engine=chaos, window=0.001, workers=workers, retries=10
            ) as svc:
                return await asyncio.gather(*[
                    svc.samples(value, 64, seed=s) for s in seeds
                ])

        results = run(scenario())
        for want, got in zip(expected, results):
            assert np.array_equal(want, got.value)

    def test_repeated_submission_is_stable(self):
        value = speed_query()

        async def once():
            async with Service(engine="numpy", window=0.0) as svc:
                r = await svc.expected_value(value, samples=512, seed=7)
                return r.value

        assert run(once()) == run(once())


class TestBatching:
    def test_flood_coalesces(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy", window=0.005) as svc:
                await asyncio.gather(*[
                    svc.expected_value(value, samples=128) for _ in range(32)
                ])
                return svc.stats()

        stats = run(scenario())
        assert stats["batches"] < 32            # fewer evaluations than requests
        assert stats["coalesced_requests"] > 0
        assert stats["pooled_requests"] > 0     # seedless requests pooled
        assert stats["engine_runs"] < 32

    def test_max_batch_one_disables_coalescing(self):
        value = speed_query()

        async def scenario():
            async with Service(
                engine="numpy", window=0.0, max_batch=1
            ) as svc:
                results = await asyncio.gather(*[
                    svc.samples(value, 16, seed=s) for s in range(8)
                ])
                return results, svc.stats()

        results, stats = run(scenario())
        assert stats["batches"] == 8
        assert all(not r.batched for r in results)


class TestAdmissionControl:
    def test_shedding_at_queue_bound(self):
        value = speed_query()

        async def scenario():
            # window keeps the worker asleep while the flood arrives.
            async with Service(
                engine="numpy", window=0.05, max_pending=4
            ) as svc:
                outcomes = await asyncio.gather(
                    *[
                        svc.samples(value, 16, seed=s)
                        for s in range(32)
                    ],
                    return_exceptions=True,
                )
                return outcomes, svc.stats()

        outcomes, stats = run(scenario())
        shed = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert shed, "queue bound never shed"
        assert served, "shedding starved every request"
        assert stats["shed"] == len(shed)

    def test_sample_budget_rejects(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy", sample_budget=200) as svc:
                first = await svc.samples(value, 150, seed=1)
                with pytest.raises(repro.SampleBudgetExceeded):
                    await svc.samples(value, 150, seed=2)
                return first, svc.stats()

        first, stats = run(scenario())
        assert len(first.value) == 150
        assert stats["rejected"] >= 1

    def test_deadline_rejects_after_expiry(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy", deadline=0.01) as svc:
                await asyncio.sleep(0.05)
                with pytest.raises(repro.DeadlineExceeded):
                    await svc.sample(value, seed=1)

        run(scenario())

    def test_submit_after_stop_raises(self):
        value = speed_query()

        async def scenario():
            svc = Service(engine="numpy")
            await svc.start()
            await svc.stop()
            with pytest.raises(ServiceClosed):
                await svc.sample(value, seed=0)

        run(scenario())


class TestRequestSurface:
    def test_every_kind_round_trips(self):
        value = speed_query()
        cond = value > 4.0

        async def scenario():
            async with Service(engine="numpy", window=0.001) as svc:
                return await asyncio.gather(
                    svc.pr(cond, 0.5, samples=2_000, seed=1),
                    svc.is_probable(cond, 0.5, samples=2_000, seed=2),
                    svc.expected_value(value, samples=1_000, seed=3),
                    svc.sample(value, seed=4),
                    svc.samples(value, 32, seed=5),
                    svc.percentiles(value, 10, samples=1_000, seed=6),
                    svc.confidence_interval(value, 0.9, samples=1_000, seed=7),
                )

        pr, isp, ev, one, many, pct, ci = run(scenario())
        assert isinstance(pr.value, bool) and "evidence" in pr.extra
        assert isinstance(isp.value, bool)
        assert ev.value == pytest.approx(5.75, abs=0.5)
        assert np.isscalar(one.value) or np.asarray(one.value).shape == ()
        assert len(many.value) == 32
        assert len(pct.value) == 11
        lo, hi = ci.value
        assert lo < ev.value < hi

    def test_results_carry_provenance_and_latency(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy", window=0.002) as svc:
                return await asyncio.gather(*[
                    svc.samples(value, 16, seed=s) for s in range(4)
                ])

        results = run(scenario())
        for r in results:
            assert r.engine == "numpy"
            assert r.latency_s > 0.0
            assert r.batch_size >= 1


class TestMetricsExposition:
    def test_render_metrics_covers_required_signals(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy", window=0.002) as svc:
                await asyncio.gather(*[
                    svc.expected_value(value, samples=256, seed=s)
                    for s in range(6)
                ])
                return svc.render_metrics()

        text = run(scenario())
        # Queue depth, occupancy, shed count, per-kind and per-engine
        # latency histograms: the acceptance checklist for observability.
        assert "repro_service_queue_depth" in text
        assert "repro_service_shed_total" in text
        assert "repro_service_batch_occupancy_bucket" in text
        assert 'repro_service_requests_total{kind="expected_value"} 6' in text
        assert 'repro_service_request_latency_seconds_bucket{kind="expected_value"' in text
        assert 'repro_engine_latency_seconds_bucket{engine="numpy"' in text
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name, _, tail = line.rpartition(" ")
            assert name, f"malformed exposition line: {line!r}"
            float(tail)

    def test_stats_snapshot_shape(self):
        value = speed_query()

        async def scenario():
            async with Service(engine="numpy") as svc:
                await svc.sample(value, seed=0)
                return svc.stats()

        stats = run(scenario())
        for key in (
            "requests_total", "requests_by_kind", "queue_depth", "shed",
            "rejected", "batches", "groups", "coalesced_requests",
            "pooled_requests", "engine_runs", "samples_drawn",
            "batch_occupancy", "latency_by_kind", "samples_executed",
        ):
            assert key in stats, key
        assert stats["requests_total"] == 1
        assert stats["latency_by_kind"]["sample"]["count"] == 1


class TestConstructionValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": -0.1},
            {"max_batch": 0},
            {"max_pending": 0},
            {"workers": 0},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Service(**kwargs)
