"""Road snapping with priors (Section 3.5, Figure 10).

A GPS fix lands 12 m away from the only road in the area.  Encoding "the
user is probably on a road" as a prior shifts the location posterior back
towards the road — unless the GPS evidence against it is strong.

Run with::

    python examples/road_snapping.py
"""

from repro.core.bayes import posterior
from repro.gps.geo import GeoCoordinate
from repro.gps.priors import build_road_graph, distance_to_roads_m, road_prior
from repro.gps.sensor import GpsFix, gps_posterior
from repro.rng import default_rng


def main() -> None:
    origin = GeoCoordinate(47.6404, -122.1298)
    # An east-west road through the origin plus a side street.
    roads = build_road_graph(
        [
            (origin, origin.offset_m(300.0, 0.0)),
            (origin.offset_m(150.0, 0.0), origin.offset_m(150.0, 200.0)),
        ]
    )

    for accuracy, north_offset in ((8.0, 12.0), (2.0, 12.0)):
        fix = GpsFix(origin.offset_m(60.0, north_offset), accuracy, 0.0)
        raw = gps_posterior(fix)
        snapped = posterior(
            raw, road_prior(roads, sigma_m=5.0), n_proposals=8_000,
            rng=default_rng(int(accuracy)),
        )
        raw_mean = raw.expected_value(2_000, default_rng(10))
        snapped_mean = snapped.expected_value(2_000, default_rng(11))
        print(f"fix {north_offset:.0f} m north of the road, accuracy {accuracy:.0f} m:")
        print(f"  raw posterior mean     : {distance_to_roads_m(raw_mean, roads):5.1f} m off-road")
        print(f"  snapped posterior mean : {distance_to_roads_m(snapped_mean, roads):5.1f} m off-road")
        print(
            "  (weak GPS evidence -> strong snap; strong evidence -> the fix wins)"
            if accuracy > 4
            else "  (tight accuracy: the prior moves the estimate less)"
        )
        print()


if __name__ == "__main__":
    main()
