"""Tests for conditioning on uncertain evidence (x.given(cond))."""

import numpy as np
import pytest

from repro.core.conditioning import condition
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, Uniform
from repro.rng import default_rng


class TestCondition:
    def test_truncates_support(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        positive = x.given(x > 0.0, rng=default_rng(0))
        samples = positive.samples(2_000, default_rng(1))
        assert samples.min() > 0.0

    def test_truncated_gaussian_mean(self):
        # E[X | X > 0] for N(0,1) is sqrt(2/pi).
        x = Uncertain(Gaussian(0.0, 1.0))
        positive = x.given(x > 0.0, pool_size=20_000, rng=default_rng(2))
        assert positive.expected_value(20_000, default_rng(3)) == pytest.approx(
            np.sqrt(2 / np.pi), abs=0.03
        )

    def test_evidence_on_shared_network(self):
        # Condition a sum on one of its own addends: Pr structure must use
        # the same joint assignment for both.
        x = Uncertain(Gaussian(0.0, 1.0))
        y = Uncertain(Gaussian(0.0, 1.0))
        total = x + y
        conditioned = total.given(x > 1.0, rng=default_rng(4))
        # E[x | x > 1] ~ 1.525; y unaffected -> E[total | x > 1] ~ 1.525.
        assert conditioned.expected_value(10_000, default_rng(5)) == pytest.approx(
            1.525, abs=0.08
        )

    def test_independent_evidence_changes_nothing(self):
        x = Uncertain(Gaussian(3.0, 1.0))
        unrelated = Uncertain(Gaussian(0.0, 1.0))
        conditioned = x.given(unrelated > 0.0, rng=default_rng(6))
        assert conditioned.expected_value(10_000, default_rng(7)) == pytest.approx(
            3.0, abs=0.05
        )

    def test_composes_with_further_computation(self):
        u = Uncertain(Uniform(0.0, 1.0))
        upper = u.given(u > 0.5, rng=default_rng(8))
        doubled = upper * 2.0
        assert doubled.expected_value(10_000, default_rng(9)) == pytest.approx(
            1.5, abs=0.03
        )

    def test_impossible_evidence_raises(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(ValueError, match="never true"):
            x.given(x > 100.0, max_batches=3, batch_size=100, rng=default_rng(10))

    def test_evidence_type_checked(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(TypeError, match="UncertainBool"):
            condition(x, x)

    def test_parameter_validation(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        with pytest.raises(ValueError):
            condition(x, x > 0.0, pool_size=0)

    def test_conjunction_evidence(self):
        u = Uncertain(Uniform(0.0, 1.0))
        band = u.given((u > 0.25) & (u < 0.75), rng=default_rng(11))
        samples = band.samples(2_000, default_rng(12))
        assert samples.min() > 0.25 and samples.max() < 0.75
