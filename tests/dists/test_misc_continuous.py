"""Tests for Triangular, LogNormal and StudentT."""

import math

import numpy as np
import pytest

from repro.dists import LogNormal, StudentT, Triangular


class TestTriangular:
    def test_moments(self):
        t = Triangular(0.0, 1.0, 2.0)
        assert t.mean == pytest.approx(1.0)
        assert t.variance == pytest.approx(1.0 / 6.0)

    def test_samples_in_range(self, rng):
        t = Triangular(-1.0, 0.0, 3.0)
        s = t.sample_n(5_000, rng)
        assert s.min() >= -1.0 and s.max() <= 3.0

    def test_pdf_integrates_to_one(self):
        t = Triangular(0.0, 0.5, 2.0)
        xs = np.linspace(-0.5, 2.5, 4_001)
        assert np.trapezoid(t.pdf(xs), xs) == pytest.approx(1.0, abs=1e-3)

    def test_cdf_endpoints(self):
        t = Triangular(0.0, 1.0, 2.0)
        assert float(t.cdf(0.0)) == 0.0
        assert float(t.cdf(2.0)) == 1.0
        assert float(t.cdf(1.0)) == pytest.approx(0.5)

    def test_mode_at_edge(self, rng):
        t = Triangular(0.0, 0.0, 1.0)
        assert t.sample_n(100, rng).min() >= 0.0
        assert float(t.pdf(0.0)) == pytest.approx(2.0)

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            Triangular(2.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            Triangular(1.0, 1.0, 1.0)


class TestLogNormal:
    def test_samples_positive(self, rng):
        assert LogNormal(0.0, 1.0).sample_n(5_000, rng).min() > 0.0

    def test_mean(self):
        ln = LogNormal(0.0, 1.0)
        assert ln.mean == pytest.approx(math.exp(0.5))

    def test_median_via_cdf(self):
        ln = LogNormal(1.0, 0.5)
        assert float(ln.cdf(math.exp(1.0))) == pytest.approx(0.5)

    def test_pdf_zero_for_non_positive(self):
        ln = LogNormal(0.0, 1.0)
        assert float(ln.pdf(0.0)) == 0.0
        assert float(ln.pdf(-1.0)) == 0.0

    def test_sampled_mean(self, fixed_rng):
        ln = LogNormal(0.0, 0.25)
        s = ln.sample_n(50_000, fixed_rng)
        assert s.mean() == pytest.approx(ln.mean, rel=0.02)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            LogNormal(0.0, 0.0)


class TestStudentT:
    def test_location(self):
        t = StudentT(5.0, loc=2.0)
        assert t.mean == 2.0

    def test_variance_inflation(self):
        t = StudentT(5.0, scale=1.0)
        assert t.variance == pytest.approx(5.0 / 3.0)

    def test_moments_undefined_for_low_df(self):
        with pytest.raises(NotImplementedError):
            _ = StudentT(1.0).mean
        with pytest.raises(NotImplementedError):
            _ = StudentT(2.0).variance

    def test_cdf_at_loc(self):
        assert float(StudentT(3.0, loc=1.0).cdf(1.0)) == pytest.approx(0.5)

    def test_heavier_tails_than_gaussian(self):
        from repro.dists import Gaussian

        t = StudentT(3.0)
        g = Gaussian(0.0, 1.0)
        assert float(t.pdf(4.0)) > float(g.pdf(4.0))

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            StudentT(0.0)
        with pytest.raises(ValueError):
            StudentT(3.0, scale=0.0)
