"""Static diagnostics for uncertain computations.

Two complementary passes over the two representations every
``Uncertain`` program has:

1. **Graph diagnostics** (:mod:`repro.analysis.diagnostics`) — interval
   abstract interpretation over a compiled
   :class:`~repro.core.plan.EvaluationPlan`, reporting division by
   zero-crossing supports (UNC101), domain-boundary violations (UNC102),
   statically decided comparisons (UNC103), tautological self-comparisons
   (UNC104), and foldable constant sub-DAGs (UNC105).
2. **Source lint** (:mod:`repro.analysis.lint`) — an AST checker for the
   paper's uncertainty anti-patterns in user code: coercing estimates to
   facts (UNC201), branching on point estimates (UNC202), un-lifted
   ``math.*`` calls (UNC203), implicit conditionals in loops
   (UNC204, opt-in), and chained comparisons on uncertain operands
   (UNC205).

The graph pass layers a dependence-tracking **affine domain**
(:mod:`repro.analysis.affine`) on top of the intervals, which powers the
correlation-aware rules (UNC106, UNC107) and the opt-in static bounds
report (UNC100).  A third pass, **stream-safety certification**
(:mod:`repro.analysis.certify`), proves optimizer rewrites and fused
kernels RNG-stream-equivalent to the reference engine (UNC401 on
failure) so the runtime can skip its probe execution.

Entry points: ``python -m repro.analysis`` (CLI),
``Uncertain.diagnose()`` (per-value), and
``EvaluationConfig.enable_plan_analysis()`` (warn at compile time).
See ``docs/analysis.md`` for the full rule catalogue.
"""

from repro.analysis.affine import (
    AffineForm,
    infer_affine,
    leaf_variances,
    sd_bounds,
)
from repro.analysis.certify import (
    CertificationRecord,
    DrawEvent,
    certification_records,
    certify_kernel,
    certify_rewrite,
    certify_value,
    plan_draw_sequence,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    UncertaintyWarning,
    analyze,
    analyze_plan,
    inferred_supports,
    warn_on_diagnostics,
)
from repro.analysis.intervals import Interval, infer_intervals
from repro.analysis.lint import (
    LintSummary,
    default_selection,
    lint_paths,
    lint_source,
)
from repro.analysis.report import (
    render_certification_json,
    render_certification_text,
    render_json,
    render_text,
)
from repro.analysis.rules import (
    ALL_RULES,
    CERTIFY_RULES,
    GRAPH_RULES,
    LINT_RULES,
    Rule,
)

__all__ = [
    "AffineForm",
    "CertificationRecord",
    "Diagnostic",
    "DrawEvent",
    "UncertaintyWarning",
    "Interval",
    "Rule",
    "ALL_RULES",
    "CERTIFY_RULES",
    "GRAPH_RULES",
    "LINT_RULES",
    "analyze",
    "analyze_plan",
    "certification_records",
    "certify_kernel",
    "certify_rewrite",
    "certify_value",
    "infer_affine",
    "infer_intervals",
    "inferred_supports",
    "leaf_variances",
    "plan_draw_sequence",
    "sd_bounds",
    "warn_on_diagnostics",
    "lint_source",
    "lint_paths",
    "default_selection",
    "LintSummary",
    "render_text",
    "render_json",
    "render_certification_text",
    "render_certification_json",
]
