"""Figures 5 & 13: GPS-Walking — naive vs Uncertain vs prior-improved."""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult, experiment
from repro.experiments.fig03_naive_speed import WALK_SENSOR
from repro.gps.priors import walking_speed_prior
from repro.gps.sensor import GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.gps.walking import run_naive_walking, run_uncertain_walking
from repro.rng import default_rng


@experiment("fig13")
def run(seed: int = 13, fast: bool = True) -> ExperimentResult:
    """The full GPS-Walking comparison.

    Paper claims: naive conditionals report running (> 7 mph) for ~30 s;
    the Uncertain version for only ~4 s; the prior-improved estimates have
    much tighter spread with no absurd values (Figure 13).
    """
    duration = 300.0 if fast else 900.0
    trace = generate_walk(WalkConfig(duration_s=duration), rng=default_rng(seed))

    def fresh_sensor() -> GpsSensor:
        # Same seed => all three programs see the identical fix sequence.
        return GpsSensor(rng=default_rng(seed + 1), **WALK_SENSOR)

    naive = run_naive_walking(trace, fresh_sensor())
    uncertain = run_uncertain_walking(
        trace, fresh_sensor(), rng=default_rng(seed + 2)
    )
    improved = run_uncertain_walking(
        trace,
        fresh_sensor(),
        prior=walking_speed_prior(),
        rng=default_rng(seed + 3),
    )

    def describe(label: str, result) -> dict:
        return {
            "version": label,
            "mean_mph": float(np.mean(result.speeds_mph)),
            "max_mph": float(np.max(result.speeds_mph)),
            "running_reports_s": result.running_reports,
            "speed_rmse_vs_truth": float(
                np.sqrt(np.mean((result.speeds_mph - result.true_speeds_mph) ** 2))
            ),
        }

    rows = [
        describe("naive (Fig 5a)", naive),
        describe("uncertain (Fig 5b)", uncertain),
        describe("uncertain + walking prior", improved),
    ]
    claims = {
        "uncertain conditional reports running less often than naive": rows[1][
            "running_reports_s"
        ]
        <= rows[0]["running_reports_s"],
        "prior removes absurd values entirely": rows[2]["max_mph"] < 7.0,
        "prior-improved estimates track truth best (lowest RMSE)": rows[2][
            "speed_rmse_vs_truth"
        ]
        == min(r["speed_rmse_vs_truth"] for r in rows),
        "naive contains absurd speeds": rows[0]["max_mph"] > 20.0,
    }
    notes = (
        "Uncertain running reports use the explicit .pr(0.9) operator; see "
        "EXPERIMENTS.md for why the implicit conditional cannot reproduce the "
        "paper's 30s->4s claim under the published error model."
    )
    return ExperimentResult("fig13", "GPS-Walking accuracy", rows, claims, notes)
