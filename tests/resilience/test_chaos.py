"""Chaos harness: every injected fault is reproducible bit-for-bit."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DeadlineExceeded, Uncertain, evaluation_config
from repro.dists import Gaussian
from repro.dists.base import Distribution
from repro.resilience import (
    ChaosDistribution,
    ChaosEngine,
    InjectedFault,
    ResilientSource,
    arm_kill_sentinel,
)
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.parallel import ParallelEngine

from tests.runtime.test_parallel_engine import chunked_numpy_reference, diamond


class TestChaosDistribution:
    def test_nan_bursts_are_seed_reproducible(self):
        def run():
            dist = ChaosDistribution(Gaussian(0.0, 1.0), seed=13, nan_rate=0.5)
            rng = np.random.default_rng(0)
            return np.concatenate([dist.sample_n(32, rng) for _ in range(8)])

        a, b = run(), run()
        assert np.array_equal(a, b, equal_nan=True)
        assert np.any(np.isnan(a))

    def test_uncorrupted_rows_match_the_clean_run(self):
        # The chaos generator is separate from the sampling generator, so
        # rows the burst did not touch are exactly the clean run's rows.
        clean = Gaussian(0.0, 1.0).sample_n(256, np.random.default_rng(4))
        dirty = ChaosDistribution(
            Gaussian(0.0, 1.0), seed=13, nan_rate=1.0, nan_burst=0.25
        ).sample_n(256, np.random.default_rng(4))
        bad = np.isnan(dirty)
        assert bad.sum() == 64  # round(0.25 * 256)
        assert np.array_equal(clean[~bad], dirty[~bad])

    def test_injected_errors_fire_on_deterministic_call_indices(self):
        def fault_calls(seed):
            dist = ChaosDistribution(Gaussian(0.0, 1.0), seed=seed, error_rate=0.3)
            rng = np.random.default_rng(0)
            fired = []
            for call in range(1, 21):
                try:
                    dist.sample_n(8, rng)
                except InjectedFault:
                    fired.append(call)
            return fired

        assert fault_calls(7) == fault_calls(7)
        assert fault_calls(7) != fault_calls(8)
        assert fault_calls(7), "error_rate=0.3 over 20 calls should fire"

    def test_zero_rates_are_a_transparent_wrapper(self):
        clean = Gaussian(0.0, 1.0).sample_n(64, np.random.default_rng(9))
        wrapped = ChaosDistribution(Gaussian(0.0, 1.0), seed=1).sample_n(
            64, np.random.default_rng(9)
        )
        assert np.array_equal(clean, wrapped)

    def test_validation(self):
        with pytest.raises(ValueError, match="nan_rate"):
            ChaosDistribution(Gaussian(0, 1), nan_rate=1.5)
        with pytest.raises(ValueError, match="nan_burst"):
            ChaosDistribution(Gaussian(0, 1), nan_burst=0.0)

    def test_chaos_plus_resilient_source_recovers(self):
        # The harness exercising the hardening layer it was built to test:
        # injected faults are absorbed by retries, and the stream remains
        # reproducible because both sides are seeded.
        def run():
            flaky = ChaosDistribution(Gaussian(0.0, 1.0), seed=3, error_rate=0.4)
            source = ResilientSource(
                flaky, max_retries=4, failure_types=(InjectedFault,)
            )
            rng = np.random.default_rng(1)
            out = np.concatenate([source.sample_n(16, rng) for _ in range(10)])
            return out, source.retries

        (a, retries_a), (b, retries_b) = run(), run()
        assert np.array_equal(a, b)
        assert retries_a == retries_b > 0

    def test_chaos_plus_health_policy_repairs_bursts(self):
        # nan_rate < 1 so some redraws are clean — a burst on *every* call
        # (including the repairs) could never converge, by design.
        flaky = ChaosDistribution(
            Gaussian(0.0, 1.0), seed=5, nan_rate=0.5, nan_burst=0.25
        )
        value = Uncertain(flaky) + 0.0
        with evaluation_config(on_nonfinite="resample", nonfinite_retries=16):
            out = value.samples(256, rng=2)
        assert np.all(np.isfinite(out))


class TestChaosEngine:
    def test_certain_error_rate_always_raises(self):
        engine = ChaosEngine(error_rate=1.0, seed=0)
        value = diamond()
        with pytest.raises(InjectedFault, match="injected engine failure"):
            value.samples(64, rng=0, engine=engine)

    def test_latency_drives_deadline_enforcement(self):
        engine = ChaosEngine(latency_s=0.05, seed=0)
        value = diamond()
        with evaluation_config(deadline=0.02):
            # The stall outlives the deadline; the ambient deadline token
            # stops the draw at the inner engine's next batch boundary
            # (mid-draw), not merely before the following draw.
            with pytest.raises(DeadlineExceeded):
                value.samples(8, rng=0, engine=engine)

    def test_faults_are_per_batch_and_reproducible(self):
        def fault_batches(seed):
            engine = ChaosEngine(error_rate=0.5, seed=seed)
            value = diamond()
            fired = []
            for batch in range(1, 13):
                try:
                    value.samples(16, rng=batch, engine=engine)
                except InjectedFault:
                    fired.append(batch)
            return fired

        assert fault_batches(11) == fault_batches(11)
        assert fault_batches(11), "error_rate=0.5 over 12 batches should fire"

    def test_clean_batches_match_the_inner_engine(self):
        engine = ChaosEngine(seed=0)  # no fault classes enabled
        value = diamond()
        via_chaos = value.samples(128, rng=6, engine=engine)
        direct = value.samples(128, rng=6, engine="numpy")
        assert np.array_equal(via_chaos, direct)


class TestWorkerKillDeterminism:
    N = 4_096
    CHUNK = 512

    def test_killed_worker_recovery_is_bit_identical(self, tmp_path):
        # workers=1 runs chunks serially in the parent process, where an
        # armed sentinel would kill the test itself — so the serial leg
        # runs without the sentinel.  The contract is that the kill leg
        # recovers to the *same* stream, because retried chunks reuse
        # their original chunk seeds.
        plan = (Uncertain(ChaosDistribution(Gaussian(0.0, 1.0), seed=1)) + 0.0).plan

        def run(workers, sentinel=None):
            dist = ChaosDistribution(
                Gaussian(0.0, 1.0), seed=1, kill_sentinel=sentinel
            )
            value = Uncertain(dist) + 0.0
            engine = ParallelEngine(
                workers=workers, chunk_size=self.CHUNK, mp_context="fork"
            )
            try:
                out = engine.run(value.plan, self.N, np.random.default_rng(17))
                return out[value.plan.root_slot]
            finally:
                engine.shutdown()

        serial = run(1)
        sentinel = arm_kill_sentinel(tmp_path / "kill-once")
        killed = run(2, sentinel=sentinel)
        import os

        assert not os.path.exists(sentinel)  # the kill actually fired
        assert np.array_equal(serial, killed)
        assert np.array_equal(
            killed, chunked_numpy_reference(plan, self.N, 17, self.CHUNK)
        )


class WorkerOnlyCrasher(Distribution):
    """Dies only inside pool workers: the parent's serial rescue survives.

    Picklable (module level) because it ships to workers in the plan
    payload; ``parent_pid`` is captured at construction, in the parent.
    """

    def __init__(self, sentinel: str) -> None:
        import os

        self.sentinel = sentinel
        self.parent_pid = os.getpid()

    def sample_n(self, n, rng):
        import os

        if os.getpid() != self.parent_pid and os.path.exists(self.sentinel):
            os._exit(1)
        return rng.normal(0.0, 1.0, size=n)


class TestSerialFallback:
    def test_persistent_crashes_are_rescued_in_process(self, tmp_path):
        sentinel = tmp_path / "crash-always"
        sentinel.touch()
        value = Uncertain(WorkerOnlyCrasher(str(sentinel))) + 0.0
        engine = ParallelEngine(
            workers=2,
            chunk_size=512,
            mp_context="fork",
            serial_fallback=True,
        )
        sink = RuntimeMetrics()
        try:
            with evaluation_config(metrics=sink):
                with pytest.warns(RuntimeWarning, match="serially in-process"):
                    out = engine.run(value.plan, 4_096, np.random.default_rng(11))
            root = out[value.plan.root_slot]
            # The rescue preserves the chunked stream: retried chunks run
            # on NumpyEngine with their original chunk seeds.
            assert np.array_equal(
                root, chunked_numpy_reference(value.plan, 4_096, 11, 512)
            )
            assert sink.snapshot()["parallel"]["serial_rescues"] > 0
        finally:
            engine.shutdown()
            sentinel.unlink(missing_ok=True)

    def test_without_fallback_the_failure_still_raises(self, tmp_path):
        from repro import SamplingError

        sentinel = tmp_path / "crash-always"
        sentinel.touch()
        value = Uncertain(WorkerOnlyCrasher(str(sentinel))) + 0.0
        engine = ParallelEngine(workers=2, chunk_size=512, mp_context="fork")
        try:
            with pytest.raises(SamplingError, match="crashed the worker pool"):
                engine.run(value.plan, 4_096, np.random.default_rng(11))
        finally:
            engine.shutdown()
            sentinel.unlink(missing_ok=True)
