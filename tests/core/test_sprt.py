"""Tests for the hypothesis tests (SPRT, fixed, group sequential)."""

import numpy as np
import pytest

from repro.core.sprt import (
    FixedSampleTest,
    GroupSequentialTest,
    SPRT,
    TestDecision,
    TestResult,
)
from repro.rng import default_rng


def bernoulli_stream(p, seed=0):
    rng = default_rng(seed)

    def draw(k):
        return rng.random(k) < p

    return draw


class TestTestDecision:
    def test_as_bool(self):
        assert TestDecision.ACCEPT_ALTERNATIVE.as_bool() is True
        assert TestDecision.ACCEPT_NULL.as_bool() is False
        assert TestDecision.INCONCLUSIVE.as_bool() is False

    def test_result_truthiness(self):
        r = TestResult(TestDecision.ACCEPT_ALTERNATIVE, 10, 9)
        assert bool(r) is True
        assert r.p_hat == pytest.approx(0.9)


class TestSPRT:
    def test_clear_alternative(self):
        result = SPRT(threshold=0.5).run(bernoulli_stream(0.9, 1))
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE

    def test_clear_null(self):
        result = SPRT(threshold=0.5).run(bernoulli_stream(0.1, 2))
        assert result.decision is TestDecision.ACCEPT_NULL

    def test_indifference_region_inconclusive(self):
        # p exactly at the threshold: the test should hit max_samples.
        test = SPRT(threshold=0.5, epsilon=0.02, max_samples=500)
        result = test.run(bernoulli_stream(0.5, 3))
        assert result.decision is TestDecision.INCONCLUSIVE
        assert result.samples_used == 500

    def test_easy_decisions_use_few_samples(self):
        result = SPRT(threshold=0.5).run(bernoulli_stream(0.99, 4))
        assert result.samples_used <= 40

    def test_hard_decisions_use_more_samples(self):
        easy = SPRT(threshold=0.5).run(bernoulli_stream(0.95, 5))
        hard = SPRT(threshold=0.5).run(bernoulli_stream(0.58, 5))
        assert hard.samples_used > easy.samples_used

    def test_error_rate_bounded(self):
        # With p = threshold + 2*epsilon, false negatives should be ~beta.
        test = SPRT(threshold=0.5, epsilon=0.05, alpha=0.05, beta=0.05)
        wrong = 0
        for seed in range(200):
            result = test.run(bernoulli_stream(0.6, seed))
            wrong += result.decision is not TestDecision.ACCEPT_ALTERNATIVE
        assert wrong / 200 <= 0.1

    def test_false_positive_rate_bounded(self):
        test = SPRT(threshold=0.5, epsilon=0.05, alpha=0.05, beta=0.05)
        wrong = 0
        for seed in range(200):
            result = test.run(bernoulli_stream(0.4, seed))
            wrong += result.decision is TestDecision.ACCEPT_ALTERNATIVE
        assert wrong / 200 <= 0.1

    def test_llr_calculation(self):
        test = SPRT(threshold=0.5, epsilon=0.1)
        # successes push the LLR up, failures down.
        assert test.llr(10, 0) > 0 > test.llr(0, 10)
        assert test.llr(5, 5) == pytest.approx(0.0, abs=1e-9)

    def test_extreme_threshold_clipping(self):
        # .pr(0.99) must not produce degenerate hypotheses.
        test = SPRT(threshold=0.99, epsilon=0.05)
        assert 0.0 < test.p0 < test.p1 < 1.0

    def test_batch_respects_max(self):
        test = SPRT(threshold=0.5, batch_size=7, max_samples=10, epsilon=0.001)
        result = test.run(bernoulli_stream(0.5, 6))
        assert result.samples_used == 10  # 7 + 3, capped

    def test_sampler_shape_validated(self):
        test = SPRT()
        with pytest.raises(ValueError):
            test.run(lambda k: np.zeros(k + 1, dtype=bool))

    def test_validation(self):
        with pytest.raises(ValueError):
            SPRT(threshold=0.0)
        with pytest.raises(ValueError):
            SPRT(alpha=0.0)
        with pytest.raises(ValueError):
            SPRT(epsilon=0.0)
        with pytest.raises(ValueError):
            SPRT(batch_size=0)
        with pytest.raises(ValueError):
            SPRT(batch_size=100, max_samples=50)


class TestFixedSampleTest:
    def test_naive_mode_decides_by_phat(self):
        test = FixedSampleTest(threshold=0.5, n=101)
        assert test.run(bernoulli_stream(0.9, 1)).decision is TestDecision.ACCEPT_ALTERNATIVE
        assert test.run(bernoulli_stream(0.1, 1)).decision is TestDecision.ACCEPT_NULL

    def test_naive_mode_never_inconclusive(self):
        test = FixedSampleTest(threshold=0.5, n=50)
        for seed in range(20):
            assert (
                test.run(bernoulli_stream(0.5, seed)).decision
                is not TestDecision.INCONCLUSIVE
            )

    def test_single_sample_reproduces_naive_decisions(self):
        test = FixedSampleTest(threshold=0.5, n=1)
        result = test.run(bernoulli_stream(1.0, 0))
        assert result.samples_used == 1
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE

    def test_significant_mode_inconclusive_near_threshold(self):
        test = FixedSampleTest(threshold=0.5, n=100, significance=0.05)
        result = test.run(bernoulli_stream(0.5, 7))
        assert result.decision is TestDecision.INCONCLUSIVE

    def test_significant_mode_decides_clear_cases(self):
        test = FixedSampleTest(threshold=0.5, n=200, significance=0.05)
        assert test.run(bernoulli_stream(0.8, 8)).decision is TestDecision.ACCEPT_ALTERNATIVE
        assert test.run(bernoulli_stream(0.2, 8)).decision is TestDecision.ACCEPT_NULL

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedSampleTest(n=0)
        with pytest.raises(ValueError):
            FixedSampleTest(significance=1.0)


class TestGroupSequentialTest:
    def test_bounded_sample_size(self):
        test = GroupSequentialTest(looks=4, group_size=100)
        assert test.max_samples == 400
        result = test.run(bernoulli_stream(0.5, 9))
        assert result.samples_used <= 400

    def test_early_stop_on_clear_evidence(self):
        test = GroupSequentialTest(looks=5, group_size=100)
        result = test.run(bernoulli_stream(0.95, 10))
        assert result.decision is TestDecision.ACCEPT_ALTERNATIVE
        assert result.samples_used == 100  # stopped at the first look

    def test_null_acceptance(self):
        test = GroupSequentialTest(looks=5, group_size=100)
        result = test.run(bernoulli_stream(0.05, 11))
        assert result.decision is TestDecision.ACCEPT_NULL

    def test_inconclusive_at_threshold(self):
        test = GroupSequentialTest(looks=3, group_size=50)
        result = test.run(bernoulli_stream(0.5, 12))
        assert result.decision is TestDecision.INCONCLUSIVE

    def test_error_rate_bounded(self):
        test = GroupSequentialTest(threshold=0.5, looks=5, group_size=100, alpha=0.05)
        wrong = sum(
            test.run(bernoulli_stream(0.5, seed)).decision
            is TestDecision.ACCEPT_ALTERNATIVE
            for seed in range(200)
        )
        assert wrong / 200 <= 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupSequentialTest(looks=0)
        with pytest.raises(ValueError):
            GroupSequentialTest(group_size=1)
