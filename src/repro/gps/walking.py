"""The GPS-Walking application (Figure 5), naive and Uncertain versions.

GPS-Walking encourages users to walk faster than 4 mph.  Each second it
takes two GPS fixes and computes ``Speed = Distance / dt``:

- The **naive** version (Figure 5a) treats fixes as facts, producing the
  absurd speeds of Figure 3 and unfair admonishments.
- The **Uncertain** version (Figure 5b) computes a speed *distribution* and
  branches on evidence: ``if Speed > 4: GoodJob()`` (more likely than not)
  and ``elif (Speed < 4).pr(0.9): SpeedUp()`` (strong evidence before
  admonishing).  An optional walking-speed prior produces the "Improved
  speed" series of Figure 13.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Sequence

import numpy as np

from repro.core.bayes import Prior, posterior
from repro.core.uncertain import Uncertain
from repro.gps.geo import enu_distance_m
from repro.gps.sensor import GpsFix, GpsSensor, gps_posterior_enu
from repro.gps.trace import WalkTrace
from repro.gps.units import MPS_TO_MPH, RUNNING_MPH, TARGET_WALK_MPH


class GpsWalkingDecision(enum.Enum):
    """What the app tells the user this second."""

    GOOD_JOB = "good_job"
    SPEED_UP = "speed_up"
    SILENT = "silent"  # Uncertain version only: insufficient evidence either way


def naive_speed_mph(fix1: GpsFix, fix2: GpsFix) -> float:
    """Figure 5(a): treat both fixes as facts."""
    dt = fix2.timestamp - fix1.timestamp
    if dt <= 0:
        raise ValueError(f"fixes must be time-ordered, got dt={dt}")
    return enu_distance_m(fix1.coordinate, fix2.coordinate) / dt * MPS_TO_MPH


def naive_speeds_mph(fixes: Sequence[GpsFix]) -> np.ndarray:
    """Per-interval naive speeds for a whole fix sequence (Figure 3)."""
    if len(fixes) < 2:
        raise ValueError("need at least two fixes to compute a speed")
    return np.asarray(
        [naive_speed_mph(a, b) for a, b in zip(fixes, fixes[1:])]
    )


def uncertain_speed_mph(fix1: GpsFix, fix2: GpsFix) -> Uncertain:
    """Figure 5(b): the speed distribution implied by two fixes.

    Built from planar (east, north) posterior components so the whole
    network evaluates vectorised: Speed = |L2 - L1| / dt, converted to mph.
    """
    dt = fix2.timestamp - fix1.timestamp
    if dt <= 0:
        raise ValueError(f"fixes must be time-ordered, got dt={dt}")
    origin = fix1.coordinate
    east1, north1 = gps_posterior_enu(fix1, origin)
    east2, north2 = gps_posterior_enu(fix2, origin)
    distance_m = ((east2 - east1) ** 2 + (north2 - north1) ** 2) ** 0.5
    return distance_m / dt * MPS_TO_MPH


@dataclasses.dataclass
class WalkingResult:
    """Outcome of running GPS-Walking over a trace."""

    speeds_mph: np.ndarray  # the app's per-second speed estimates
    decisions: list[GpsWalkingDecision]
    true_speeds_mph: np.ndarray
    #: Seconds the app's *conditional* reported a running pace (> 7 mph) —
    #: the paper's headline accuracy metric (30 s naive vs 4 s Uncertain).
    running_reports: int = 0

    @property
    def seconds_above(self) -> dict[float, int]:
        """Seconds the estimate exceeded notable thresholds (Figure 3)."""
        return {t: int(np.sum(self.speeds_mph > t)) for t in (7.0, 10.0, 20.0)}

    @property
    def max_speed_mph(self) -> float:
        return float(self.speeds_mph.max())

    def unfair_speedups(self, slack_mph: float = 0.0) -> int:
        """SpeedUp messages issued while the user truly walked fast enough."""
        truly_fast = self.true_speeds_mph >= TARGET_WALK_MPH - slack_mph
        return sum(
            1
            for fast, decision in zip(truly_fast, self.decisions)
            if fast and decision is GpsWalkingDecision.SPEED_UP
        )


def measure_trace(trace: WalkTrace, sensor: GpsSensor) -> list[GpsFix]:
    """Run the sensor over the whole ground-truth trace."""
    return [
        sensor.measure(pos, float(t))
        for pos, t in zip(trace.positions, trace.timestamps)
    ]


def run_naive_walking(trace: WalkTrace, sensor: GpsSensor) -> WalkingResult:
    """Figure 5(a)'s program over a trace: speeds as facts, naive branches."""
    fixes = measure_trace(trace, sensor)
    speeds = naive_speeds_mph(fixes)
    decisions = [
        GpsWalkingDecision.GOOD_JOB if s > TARGET_WALK_MPH else GpsWalkingDecision.SPEED_UP
        for s in speeds
    ]
    running = int(np.sum(speeds > RUNNING_MPH))
    return WalkingResult(speeds, decisions, trace.true_speeds_mph, running)


def run_uncertain_walking(
    trace: WalkTrace,
    sensor: GpsSensor,
    prior: Prior | None = None,
    speedup_evidence: float = 0.9,
    running_evidence: float | None = 0.9,
    expectation_samples: int = 500,
    posterior_proposals: int = 2_000,
    rng: np.random.Generator | None = None,
) -> WalkingResult:
    """Figure 5(b)'s program over a trace.

    With ``prior`` set (e.g. :func:`repro.gps.priors.walking_speed_prior`),
    each second's speed distribution is first improved by Bayesian
    resampling — the "Improved speed" series of Figure 13.

    ``running_evidence`` controls the ">7 mph" accuracy telemetry: ``None``
    uses the implicit more-likely-than-not conditional; a value uses the
    explicit ``.pr(value)`` operator.  See EXPERIMENTS.md — under the
    published error model the posterior is centred on the *measured* fix,
    which inflates distances (a Rice-median effect), so the false-positive
    control the paper reports comes from demanding strong evidence.
    """
    fixes = measure_trace(trace, sensor)
    speeds = []
    decisions = []
    running = 0
    for fix1, fix2 in zip(fixes, fixes[1:]):
        speed = uncertain_speed_mph(fix1, fix2)
        if prior is not None:
            speed = posterior(speed, prior, n_proposals=posterior_proposals, rng=rng)
        if speed > TARGET_WALK_MPH:  # implicit: more likely than not
            decisions.append(GpsWalkingDecision.GOOD_JOB)
        elif (speed < TARGET_WALK_MPH).pr(speedup_evidence):
            decisions.append(GpsWalkingDecision.SPEED_UP)
        else:
            decisions.append(GpsWalkingDecision.SILENT)
        running_cond = speed > RUNNING_MPH  # ">7 mph for N seconds" metric
        if running_evidence is None:
            if running_cond:
                running += 1
        elif running_cond.pr(running_evidence):
            running += 1
        speeds.append(speed.expected_value(expectation_samples))
    return WalkingResult(np.asarray(speeds), decisions, trace.true_speeds_mph, running)
