"""ParallelEngine on single-CPU hosts: auto-sized serial degradation.

``workers=None`` resolves from ``os.cpu_count()``; when that is 1 there
is nothing to parallelise across, so the engine must take the in-process
serial path (same chunk-seeded stream) instead of paying pool startup
and IPC — surfacing the degradation once as a warning plus the
``parallel.auto_serial`` metric.
"""

import warnings

import numpy as np
import pytest

from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists.gaussian import Gaussian
from repro.rng import default_rng
from repro.runtime import parallel as parallel_mod
from repro.runtime.metrics import RuntimeMetrics
from repro.runtime.parallel import ParallelEngine


@pytest.fixture
def single_cpu(monkeypatch):
    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)


@pytest.fixture
def plan():
    u = Uncertain(Gaussian(5.0, 2.0)) * 1.5
    return compile_plan(u.node)


def _run(engine, plan, n=10_000, seed=3):
    root = engine.run(plan, n, default_rng(seed))[plan.root_slot]
    return np.asarray(root)


class TestAutoSerial:
    def test_degrades_without_building_a_pool(self, single_cpu, plan):
        engine = ParallelEngine(chunk_size=2048)
        assert engine.workers == 1
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            _run(engine, plan)
        assert engine._executor is None  # never paid pool construction

    def test_records_metric_and_warns_once(self, single_cpu, plan):
        engine = ParallelEngine(chunk_size=2048)
        scoped = RuntimeMetrics()
        from repro.core.conditionals import evaluation_config

        with evaluation_config(metrics=scoped):
            with pytest.warns(RuntimeWarning, match="auto-sized"):
                _run(engine, plan)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second run must not warn
                _run(engine, plan)
        assert scoped.parallel_auto_serial == 2
        assert scoped.snapshot()["parallel"]["auto_serial"] == 2

    def test_stream_matches_explicit_workers(self, single_cpu, plan):
        auto = ParallelEngine(chunk_size=2048)
        explicit = ParallelEngine(workers=1, chunk_size=2048)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            a = _run(auto, plan)
        b = _run(explicit, plan)
        assert np.array_equal(a, b)

    def test_explicit_workers_do_not_trigger_auto_serial(self, single_cpu, plan):
        engine = ParallelEngine(workers=1, chunk_size=2048)
        scoped = RuntimeMetrics()
        from repro.core.conditionals import evaluation_config

        with evaluation_config(metrics=scoped):
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                _run(engine, plan)
        assert scoped.parallel_auto_serial == 0

    def test_multi_cpu_default_keeps_the_pool_path(self, monkeypatch, plan):
        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 8)
        engine = ParallelEngine(chunk_size=2048)
        assert engine.workers == 8
        assert not engine._auto_single
