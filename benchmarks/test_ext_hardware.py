"""Extension bench: approximate hardware through the evidence lens."""

from benchmarks.conftest import run_and_report


def test_ext_hardware(benchmark):
    run_and_report(benchmark, "ext_hardware", fast=True)
