"""The Figure 16 experiment: precision/recall versus evidence threshold.

For each evaluation window we know the ground truth ``sobel(p) > 0.1``.
Parrot answers with its point prediction; Parakeet evaluates the evidence
``Pr[s(p) > 0.1]`` from its PPD and reports an edge when the evidence
exceeds a developer-chosen threshold ``alpha``.  Precision describes false
positives, recall false negatives; sweeping ``alpha`` traces the curve the
paper plots, with Parrot a single fixed point on it.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.ml.parakeet import Parakeet, Parrot

#: The paper's edge-detection threshold on gradient magnitude.
EDGE_THRESHOLD = 0.1


@dataclasses.dataclass(frozen=True)
class PrecisionRecallPoint:
    """Precision/recall of one detector configuration."""

    label: str
    alpha: float | None  # evidence threshold; None for Parrot
    precision: float
    recall: float
    true_positives: int
    false_positives: int
    false_negatives: int


def _precision_recall(
    label: str, alpha: float | None, predicted: np.ndarray, actual: np.ndarray
) -> PrecisionRecallPoint:
    tp = int(np.sum(predicted & actual))
    fp = int(np.sum(predicted & ~actual))
    fn = int(np.sum(~predicted & actual))
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    return PrecisionRecallPoint(label, alpha, precision, recall, tp, fp, fn)


def parrot_point(
    parrot: Parrot,
    windows: np.ndarray,
    truths: np.ndarray,
    threshold: float = EDGE_THRESHOLD,
) -> PrecisionRecallPoint:
    """Parrot's fixed precision/recall point: ``prediction > threshold``."""
    predicted = parrot.predict_batch(windows) > threshold
    actual = np.asarray(truths, dtype=float) > threshold
    return _precision_recall("Parrot", None, predicted, actual)


def precision_recall_sweep(
    parakeet: Parakeet,
    windows: np.ndarray,
    truths: np.ndarray,
    alphas: Sequence[float] = tuple(np.round(np.arange(0.1, 0.95, 0.1), 2)),
    threshold: float = EDGE_THRESHOLD,
) -> list[PrecisionRecallPoint]:
    """Parakeet's precision/recall curve over evidence thresholds.

    Evidence is computed exactly from the PPD pool (the fraction of
    posterior networks voting "edge"); the runtime's SPRT estimates this
    same quantity at conditionals.
    """
    ppd = parakeet.ppd_matrix(windows)  # (n_windows, n_networks)
    if parakeet.noise_sigma > 0:
        # Marginalise the Gaussian likelihood term in closed form:
        # Pr[t > thr] = mean over networks of Phi((y_w - thr) / sigma).
        from scipy.stats import norm

        evidence = np.mean(
            norm.sf(threshold, loc=ppd, scale=parakeet.noise_sigma), axis=1
        )
    else:
        evidence = np.mean(ppd > threshold, axis=1)
    actual = np.asarray(truths, dtype=float) > threshold
    return [
        _precision_recall(f"Parakeet(alpha={a})", float(a), evidence > a, actual)
        for a in alphas
    ]
