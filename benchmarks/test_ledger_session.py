"""Analyst-session benchmark: cross-query sample reuse on the fig08 plan.

An analyst working a dashboard re-asks the same questions of the same
model — re-run the walking test after a parameter glance, refresh the
expectation, re-plot the percentile curve.  Ledger-off, every repeat
pays a full engine run over the ~110-node GPS plan; ledger-on, the
first session fills the sample ledger and every later session serves
the identical rows from cache (replay-mode exact-``n`` memo hits for
this multi-leaf plan), bit-identical seed-for-seed.

Writes ``BENCH_ledger.json`` (with host metadata) and asserts the
ledger delivers at least the 2x wall-clock win the repeated-query
workload is entitled to.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host
from benchmarks.test_plan_compilation import _fig08_root
from repro.core.conditionals import evaluation_config
from repro.core.ledger import clear_ledger, ledger_stats
from repro.core.uncertain import Uncertain, UncertainBool
from repro.runtime.metrics import RuntimeMetrics

RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_ledger.json"

SESSIONS = 6
E_SAMPLES = 1_000
TAIL_SAMPLES = 10_000
MIN_SPEEDUP = 2.0


def _queries():
    """The fig08 walking-speed conditional plus its float speed estimate."""
    node = _fig08_root()
    walking = UncertainBool.from_node(node)
    speed = Uncertain.from_node(node.parents[0])
    return walking, speed


def _analyst_session(walking, speed) -> dict:
    """One dashboard refresh: SPRT verdict, mean, interval, curve.

    Every query carries a fixed int seed — the analyst's repeated
    queries are deterministic reruns, the ledger's best case and the
    bit-identity contract's strictest one.
    """
    verdict = walking.test(0.5, rng=101)
    return {
        "decision": str(verdict.decision),
        "samples_used": verdict.samples_used,
        "E": float(speed.expected_value(E_SAMPLES, rng=202)),
        "CI": [float(x) for x in speed.confidence_interval(0.95, samples=TAIL_SAMPLES, rng=303)],
        "pct": speed.percentiles(20, samples=TAIL_SAMPLES, rng=404).tolist(),
    }


def _run_sessions(sample_cache: bool):
    clear_ledger()
    walking, speed = _queries()  # fresh graph: both modes pay compilation
    metrics = RuntimeMetrics()
    sessions = []
    start = time.perf_counter()
    with evaluation_config(engine="numpy", sample_cache=sample_cache, metrics=metrics):
        for _ in range(SESSIONS):
            sessions.append(_analyst_session(walking, speed))
    elapsed = time.perf_counter() - start
    snap = metrics.snapshot()
    stats = ledger_stats()
    clear_ledger()
    return sessions, elapsed, snap["ledger"], stats


def test_ledger_analyst_session():
    off_sessions, off_seconds, _, _ = _run_sessions(sample_cache=False)
    on_sessions, on_seconds, on_ledger, on_stats = _run_sessions(sample_cache=True)

    # Bit-identity: the ledger changes when samples are drawn, never
    # what they are.  Every session's verdict, mean, interval, and
    # percentile curve must match the fresh-run answers exactly.
    assert on_sessions == off_sessions
    # All sessions within a mode repeat the same seeded queries, so
    # they agree with each other too (sanity on the workload itself).
    assert all(s == off_sessions[0] for s in off_sessions)

    speedup = off_seconds / on_seconds
    result = {
        "workload": {
            "plan": "fig08 GPS walking-speed DAG",
            "sessions": SESSIONS,
            "queries_per_session": ["sprt_test", "expected_value", "confidence_interval", "percentiles"],
            "expectation_samples": E_SAMPLES,
            "tail_samples": TAIL_SAMPLES,
            "engine": "numpy",
        },
        "ledger_off": {"seconds": off_seconds},
        "ledger_on": {
            "seconds": on_seconds,
            "metrics": on_ledger,
            "entries": on_stats["entries"],
            "modes": on_stats["modes"],
        },
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
    }
    stamp_host(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")

    print()
    print(
        f"analyst session x{SESSIONS}: ledger off {off_seconds:.3f}s, "
        f"on {on_seconds:.3f}s -> {speedup:.2f}x "
        f"(rows reused {on_ledger['rows_reused']}, drawn {on_ledger['rows_drawn']})"
    )

    # The repeated-query workload must be at least 2x faster with the
    # ledger on, and the win must come from actual row reuse.
    assert on_ledger["rows_reused"] > 0
    assert on_ledger["hits"] > 0
    assert speedup >= MIN_SPEEDUP, (
        f"ledger speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor "
        f"({off_seconds:.3f}s -> {on_seconds:.3f}s)"
    )
