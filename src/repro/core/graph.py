"""Bayesian-network nodes built by Uncertain<T>'s lifted operators.

The paper represents every computation over uncertain data as a directed
acyclic graph whose leaves are known distributions and whose inner nodes are
base-type operations (Section 3.3, Figure 7).  Two design points matter:

1. **Node identity is random-variable identity.**  When the same
   ``Uncertain`` value appears twice in an expression, both uses reference
   the *same* node object, so a joint sample assigns it one value.  This is
   the paper's SSA-like dependence analysis (Figure 8): ``(Y + X) + X`` must
   share ``X``, not resample it.

2. **Construction is lazy.**  Building a node never draws samples; sampling
   happens only at conditionals, ``expected_value``, or explicit ``sample``
   calls (Section 4.2's "much like a JIT" strategy).

Nodes are immutable after construction, so the graph is acyclic by
construction: a node can only reference previously constructed nodes.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Sequence

import numpy as np

from repro.dists.base import Distribution

_node_ids = itertools.count()


class Node:
    """Abstract node of the computation graph.

    Subclasses implement :meth:`evaluate_batch`, mapping a batch of parent
    sample-arrays to a batch of this node's samples.  ``parents`` is the
    tuple of graph predecessors (the variables this one conditionally
    depends on).
    """

    # ``_compiled_plan`` caches this node's lowered evaluation plan
    # (repro.core.plan) directly on the graph, so plan lifetime equals
    # graph lifetime; ``__weakref__`` lets the plan registry track roots
    # without keeping them alive.
    __slots__ = ("parents", "label", "uid", "_compiled_plan", "__weakref__")

    def __init__(self, parents: Sequence["Node"], label: str) -> None:
        self.parents: tuple[Node, ...] = tuple(parents)
        self.label = label
        self.uid = next(_node_ids)
        self._compiled_plan = None

    def evaluate_batch(
        self, parent_values: list[np.ndarray], n: int, rng: np.random.Generator
    ) -> np.ndarray:
        raise NotImplementedError

    # Nodes pickle without their cached plan: the plan is a per-process
    # lowering artifact (it holds bound methods and a weakly registered
    # root), and receivers — ParallelEngine workers — recompile in one
    # pass.  Pickle's memo preserves shared-subexpression identity, so a
    # diamond DAG stays a diamond on the other side.
    def __getstate__(self):
        state = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if name in ("_compiled_plan", "__weakref__"):
                    continue
                state[name] = getattr(self, name)
        return state

    def __setstate__(self, state):
        self._compiled_plan = None
        for name, value in state.items():
            setattr(self, name, value)

    # Nodes hash/compare by identity; they are graph vertices, not values.
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} #{self.uid} {self.label!r}>"


class LeafNode(Node):
    """A known distribution provided by an expert developer (shaded nodes)."""

    __slots__ = ("dist",)

    def __init__(self, dist: Distribution, label: str | None = None) -> None:
        super().__init__((), label or type(dist).__name__)
        self.dist = dist

    def evaluate_batch(self, parent_values, n, rng):
        return self.dist.sample_n(n, rng)


class PointMassNode(Node):
    """A constant lifted to a degenerate distribution (Table 1's Pointmass)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        super().__init__((), f"pointmass({value!r})")
        self.value = value

    def evaluate_batch(self, parent_values, n, rng):
        if isinstance(
            self.value, (int, float, np.integer, np.floating, bool, np.bool_)
        ):
            return np.full(n, self.value)
        out = np.empty(n, dtype=object)
        out[:] = [self.value] * n
        return out


class BinaryOpNode(Node):
    """An inner node applying a binary base-type operator elementwise.

    ``op`` must accept numpy arrays (all the ``operator`` module functions
    do, including on object-dtype arrays whose elements define the dunder).
    """

    __slots__ = ("op",)

    def __init__(self, op: Callable[[Any, Any], Any], left: Node, right: Node, symbol: str) -> None:
        super().__init__((left, right), symbol)
        self.op = op

    def evaluate_batch(self, parent_values, n, rng):
        left, right = parent_values
        return self.op(left, right)


class UnaryOpNode(Node):
    """An inner node applying a unary base-type operator elementwise."""

    __slots__ = ("op",)

    def __init__(self, op: Callable[[Any], Any], operand: Node, symbol: str) -> None:
        super().__init__((operand,), symbol)
        self.op = op

    def evaluate_batch(self, parent_values, n, rng):
        (operand,) = parent_values
        return self.op(operand)


class ApplyNode(Node):
    """An inner node applying an arbitrary lifted function.

    With ``vectorized=True`` the function is called once on the parent
    sample arrays; otherwise it is mapped over individual joint samples,
    which supports functions of arbitrary Python objects (for example,
    great-circle distance between two ``GeoCoordinate`` samples).
    """

    __slots__ = ("fn", "vectorized")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: Sequence[Node],
        vectorized: bool = False,
        label: str | None = None,
    ) -> None:
        super().__init__(tuple(args), label or getattr(fn, "__name__", "apply"))
        self.fn = fn
        self.vectorized = vectorized

    def evaluate_batch(self, parent_values, n, rng):
        if self.vectorized:
            return np.asarray(self.fn(*parent_values))
        results = [self.fn(*(vals[i] for vals in parent_values)) for i in range(n)]
        if isinstance(
            results[0], (int, float, np.integer, np.floating, bool, np.bool_)
        ):
            # Let numpy infer the result dtype: integer-valued functions keep
            # an integer dtype instead of being silently coerced to float
            # (mixed int/float batches still widen to float as before).
            return np.asarray(results)
        out = np.empty(n, dtype=object)
        out[:] = results
        return out


class BindNode(Node):
    """Monadic bind: per joint sample, ``fn`` maps the operand's value to a
    *new* uncertain value, from which exactly one sample is drawn.

    This is ``Uncertain.flat_map`` (the exemplar's ``flatMap``): the
    returned value may be an ``Uncertain``, a ``Distribution``, or a plain
    value (treated as a point mass).  Each row of the batch drives one
    independent inner draw from the shared generator, so dependence on the
    operand is preserved row-by-row while inner randomness stays fresh.

    Bind is inherently opaque to the structural layer (``fn`` is arbitrary
    Python), so plans containing a ``BindNode`` never enter the structural
    cache or the fused backend — they execute through the generic
    ``evaluate_batch`` path of every engine.
    """

    __slots__ = ("fn",)

    def __init__(
        self,
        fn: Callable[[Any], Any],
        operand: Node,
        label: str | None = None,
    ) -> None:
        super().__init__(
            (operand,), label or f"bind({getattr(fn, '__name__', 'fn')})"
        )
        self.fn = fn

    @staticmethod
    def _draw_one(result: Any, rng: np.random.Generator) -> Any:
        # Imported lazily: uncertain.py imports this module.
        from repro.core.uncertain import Uncertain

        if isinstance(result, Uncertain):
            plan = result.plan
            # Draw through the compiled plan but below the budget/metrics
            # facade: the inner draw is *part of* the enclosing joint
            # sample, not a separate evaluation.
            from repro.core.engines import get_engine

            return get_engine("numpy").run(plan, 1, rng)[plan.root_slot][0]
        if isinstance(result, Distribution):
            return result.sample_n(1, rng)[0]
        return result

    def evaluate_batch(self, parent_values, n, rng):
        (operand,) = parent_values
        results = [self._draw_one(self.fn(operand[i]), rng) for i in range(n)]
        if results and isinstance(
            results[0], (int, float, np.integer, np.floating, bool, np.bool_)
        ):
            return np.asarray(results)
        out = np.empty(n, dtype=object)
        out[:] = results
        return out


# ---------------------------------------------------------------------------
# Graph inspection utilities (used by tests, docs and the dependence bench).
# ---------------------------------------------------------------------------


def iter_nodes(root: Node):
    """Yield every node reachable from ``root`` exactly once (post-order)."""
    seen: set[int] = set()
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if id(node) in seen:
            continue
        if expanded:
            seen.add(id(node))
            yield node
        else:
            stack.append((node, True))
            for parent in node.parents:
                if id(parent) not in seen:
                    stack.append((parent, False))


def node_count(root: Node) -> int:
    """Number of distinct random variables in the network."""
    return sum(1 for _ in iter_nodes(root))


def leaf_nodes(root: Node) -> list[Node]:
    """All distinct leaves (known distributions and point masses)."""
    return [n for n in iter_nodes(root) if not n.parents]


def depth(root: Node) -> int:
    """Longest path from a leaf to ``root`` (leaves have depth 0)."""
    depths: dict[int, int] = {}
    for node in iter_nodes(root):
        if not node.parents:
            depths[id(node)] = 0
        else:
            depths[id(node)] = 1 + max(depths[id(p)] for p in node.parents)
    return depths[id(root)]


def to_networkx(root: Node):
    """Export the Bayesian network as a ``networkx.DiGraph``.

    Edges point from parents (dependencies) to children (dependents),
    matching the paper's figures.  Node attributes carry labels and whether
    the node is a leaf ("shaded" in the figures).
    """
    import networkx as nx

    graph = nx.DiGraph()
    for node in iter_nodes(root):
        graph.add_node(
            node.uid, label=node.label, leaf=not node.parents, kind=type(node).__name__
        )
        for parent in node.parents:
            graph.add_edge(parent.uid, node.uid)
    return graph
