"""The sampling runtime: parallel execution, metrics, and tracing.

This package is the operational layer over the compile/execute core:

- :mod:`repro.runtime.parallel` — :class:`ParallelEngine`, sharding plan
  batches across a persistent process pool with a deterministic
  ``SeedSequence``-spawn stream (registered as engine ``"parallel"``).
- :mod:`repro.runtime.metrics` — process-global counters answering "what
  did this process spend its sampling time on"; read with :func:`stats`.
- :mod:`repro.runtime.trace` — an opt-in span tracer with a JSON
  exporter for per-operation timelines.

See ``docs/runtime.md`` for engine selection, the parallel determinism
model, and the metrics/trace schemas.

Import note: ``repro.core`` modules import :mod:`repro.runtime.metrics`
and :mod:`repro.runtime.trace` (which depend on nothing in ``repro``),
while :mod:`repro.runtime.parallel` imports ``repro.core`` — so this
``__init__`` loads the observability half eagerly and the engine half
lazily via module ``__getattr__``.
"""

from __future__ import annotations

from repro.runtime.cancellation import CancellationToken, EvaluationCancelled
from repro.runtime.metrics import (
    METRICS,
    EngineStats,
    LatencyHistogram,
    RuntimeMetrics,
    render_prometheus,
)
from repro.runtime.trace import Span, Tracer, get_tracer, set_tracer, tracing

__all__ = [
    "ParallelEngine",
    "chunk_layout",
    "spawn_chunk_seeds",
    "CancellationToken",
    "EvaluationCancelled",
    "RuntimeMetrics",
    "EngineStats",
    "LatencyHistogram",
    "METRICS",
    "render_prometheus",
    "stats",
    "reset_stats",
    "Tracer",
    "Span",
    "set_tracer",
    "get_tracer",
    "tracing",
]


def stats() -> dict:
    """Snapshot of the process-global runtime counters.

    Answers "what did this process spend its sampling time on": plans
    compiled vs cache hits, samples/batches/wall-time per engine, SPRT
    steps and samples, expectation and conditional activity, and parallel
    chunk/crash/retry counts.  Schema in ``docs/runtime.md``.
    """
    return METRICS.snapshot()


def reset_stats() -> None:
    """Zero the process-global runtime counters."""
    METRICS.reset()


def __getattr__(name: str):
    if name in ("ParallelEngine", "chunk_layout", "spawn_chunk_seeds"):
        from repro.runtime import parallel

        return getattr(parallel, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
