"""Sensor fusion: a particle filter over walks, exposed as Uncertain values.

The paper's future-work section calls for "models of common phenomena,
such as physics, calendar, and history in uncertain data libraries".  This
module is the *history + physics* instance for GPS: a particle filter whose

- **motion model** encodes pedestrian physics (plausible walking speeds,
  smooth headings), and
- **measurement model** is the same Rayleigh fix likelihood the posterior
  of Section 4.1 uses,

and whose state is exposed back to applications as
``Uncertain[GeoCoordinate]``, so filtered locations flow into geofences,
speed computations and conditionals exactly like raw ones — just tighter.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.core.uncertain import Uncertain
from repro.dists.sampling_function import FunctionDistribution
from repro.gps.geo import GeoCoordinate
from repro.gps.sensor import GpsFix, rayleigh_scale
from repro.gps.units import mph_to_mps
from repro.rng import ensure_rng


@dataclasses.dataclass(frozen=True)
class MotionModel:
    """Pedestrian kinematics for the prediction step."""

    max_speed_mph: float = 8.0  # nobody walks faster
    typical_speed_mph: float = 3.0
    speed_sigma_mph: float = 1.5
    heading_sigma_rad: float = 0.6  # per-second heading diffusion

    def propagate(
        self,
        positions: np.ndarray,  # (n, 2) east/north metres
        headings: np.ndarray,  # (n,) radians
        dt: float,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        n = len(positions)
        speeds = np.clip(
            rng.normal(
                mph_to_mps(self.typical_speed_mph),
                mph_to_mps(self.speed_sigma_mph),
                size=n,
            ),
            0.0,
            mph_to_mps(self.max_speed_mph),
        )
        headings = headings + rng.normal(0.0, self.heading_sigma_rad * dt, size=n)
        step = speeds[:, None] * dt * np.stack(
            [np.cos(headings), np.sin(headings)], axis=1
        )
        return positions + step, headings


class ParticleFilter:
    """Bootstrap particle filter over a walker's planar position."""

    def __init__(
        self,
        first_fix: GpsFix,
        n_particles: int = 500,
        motion: MotionModel | None = None,
        resample_threshold: float = 0.5,
        rng=None,
    ) -> None:
        if n_particles < 10:
            raise ValueError(f"need at least 10 particles, got {n_particles}")
        if not 0.0 < resample_threshold <= 1.0:
            raise ValueError(
                f"resample_threshold must be in (0, 1], got {resample_threshold}"
            )
        self.motion = motion or MotionModel()
        self.resample_threshold = float(resample_threshold)
        self._rng = ensure_rng(rng)
        self.origin = first_fix.coordinate
        self.n = int(n_particles)
        # Initialise from the first fix's Rayleigh posterior.
        rho = rayleigh_scale(first_fix.horizontal_accuracy)
        radii = self._rng.rayleigh(rho, size=self.n)
        angles = self._rng.uniform(0.0, 2 * math.pi, size=self.n)
        self.positions = np.stack(
            [radii * np.cos(angles), radii * np.sin(angles)], axis=1
        )
        self.headings = self._rng.uniform(0.0, 2 * math.pi, size=self.n)
        self.weights = np.full(self.n, 1.0 / self.n)
        self._time = first_fix.timestamp
        self.resample_count = 0

    # -- filtering steps ---------------------------------------------------

    def predict(self, dt: float) -> None:
        """Advance particles through the motion model."""
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        self.positions, self.headings = self.motion.propagate(
            self.positions, self.headings, dt, self._rng
        )
        self._time += dt

    def update(self, fix: GpsFix) -> None:
        """Reweight particles by the Rayleigh fix likelihood and resample."""
        fix_en = np.asarray(fix.coordinate.enu_m(self.origin))
        rho = rayleigh_scale(fix.horizontal_accuracy)
        # Planar error model: fix = position + isotropic N(0, rho^2 I),
        # so the likelihood is a 2-D Gaussian in the offset.
        offsets = self.positions - fix_en
        sq = (offsets**2).sum(axis=1)
        log_lik = -sq / (2 * rho * rho)
        log_lik -= log_lik.max()
        self.weights = self.weights * np.exp(log_lik)
        total = self.weights.sum()
        if total <= 0 or not np.isfinite(total):
            # Degenerate update (fix wildly inconsistent): reset weights.
            self.weights = np.full(self.n, 1.0 / self.n)
        else:
            self.weights = self.weights / total
        if self.effective_sample_size < self.resample_threshold * self.n:
            self._systematic_resample()

    @property
    def effective_sample_size(self) -> float:
        return float(1.0 / np.sum(self.weights**2))

    def _systematic_resample(self) -> None:
        cumulative = np.cumsum(self.weights)
        cumulative[-1] = 1.0
        anchors = (self._rng.random() + np.arange(self.n)) / self.n
        idx = np.searchsorted(cumulative, anchors)
        self.positions = self.positions[idx]
        self.headings = self.headings[idx]
        self.weights = np.full(self.n, 1.0 / self.n)
        self.resample_count += 1

    # -- Uncertain-facing API ----------------------------------------------

    def mean_position(self) -> GeoCoordinate:
        east, north = (self.weights[:, None] * self.positions).sum(axis=0)
        return self.origin.offset_m(float(east), float(north))

    def location(self) -> Uncertain:
        """The filtered location as an Uncertain[GeoCoordinate].

        Samples resample the (weighted) particle cloud, so the value drops
        into geofences, lifted distances and conditionals unchanged.
        """
        positions = self.positions.copy()
        weights = self.weights.copy()
        origin = self.origin

        def sample_many(k: int, rng: np.random.Generator) -> np.ndarray:
            idx = rng.choice(len(positions), size=k, p=weights)
            out = np.empty(k, dtype=object)
            for i, j in enumerate(idx):
                out[i] = origin.offset_m(positions[j, 0], positions[j, 1])
            return out

        return Uncertain(
            FunctionDistribution(lambda rng: sample_many(1, rng)[0], fn_n=sample_many),
            label="fused_location",
        )


@dataclasses.dataclass
class FusionResult:
    """Tracking-accuracy comparison: raw fixes vs fused estimates."""

    raw_errors_m: np.ndarray
    fused_errors_m: np.ndarray

    @property
    def raw_rmse_m(self) -> float:
        return float(np.sqrt(np.mean(self.raw_errors_m**2)))

    @property
    def fused_rmse_m(self) -> float:
        return float(np.sqrt(np.mean(self.fused_errors_m**2)))

    @property
    def improvement(self) -> float:
        """Raw RMSE divided by fused RMSE (> 1 means fusion helps)."""
        return self.raw_rmse_m / self.fused_rmse_m if self.fused_rmse_m else math.inf


def track_walk(trace, sensor, n_particles: int = 400, rng=None) -> FusionResult:
    """Run the filter over a ground-truth walk measured by ``sensor``."""
    from repro.gps.geo import enu_distance_m

    rng = ensure_rng(rng)
    fixes = [
        sensor.measure(pos, float(t))
        for pos, t in zip(trace.positions, trace.timestamps)
    ]
    pf = ParticleFilter(fixes[0], n_particles=n_particles, rng=rng)
    raw_errors = []
    fused_errors = []
    for i in range(1, len(fixes)):
        dt = fixes[i].timestamp - fixes[i - 1].timestamp
        pf.predict(dt)
        pf.update(fixes[i])
        truth = trace.positions[i]
        raw_errors.append(enu_distance_m(truth, fixes[i].coordinate))
        fused_errors.append(enu_distance_m(truth, pf.mean_position()))
    return FusionResult(np.asarray(raw_errors), np.asarray(fused_errors))
