"""Throughput benchmark: ParallelEngine vs serial NumpyEngine (Section 4.2).

The workload is the fig08 dependence diamond ``(y + x) + x`` at 10^6 joint
samples — large enough that chunk dispatch is amortised, small enough to
run in CI.  The bench times the serial engine and a 4-worker pool (pool
warmed up first, so process start-up is not billed to the steady state),
verifies the parallel stream is bit-deterministic (identical for 1 and 4
workers, and equal to the serial chunked reference), and writes the
numbers to ``BENCH_runtime.json`` at the repo root.

The >= 2x speedup assertion is gated on the machine actually having >= 4
CPUs: on fewer cores a process pool cannot beat serial numpy, and the
honest number is still recorded in the JSON either way.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks._host import stamp_host

from repro import Uncertain
from repro.core.engines import NumpyEngine
from repro.dists import Gaussian
from repro.runtime.parallel import ParallelEngine, chunk_layout, spawn_chunk_seeds

N = 1_000_000
WORKERS = 4
REPEATS = 3
RESULT_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"


def _fig08_plan():
    x = Uncertain(Gaussian(0.0, 1.0), label="X")
    y = Uncertain(Gaussian(0.0, 1.0), label="Y")
    return ((y + x) + x).plan


def _chunked_reference(plan, n, seed) -> np.ndarray:
    chunks = chunk_layout(n)
    seeds = spawn_chunk_seeds(np.random.default_rng(seed), len(chunks))
    inner = NumpyEngine()
    return np.concatenate(
        [
            inner.run(plan, size, np.random.default_rng(child))[plan.root_slot]
            for size, child in zip(chunks, seeds)
        ]
    )


def _best_time(fn) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_engine_throughput(benchmark):
    plan = _fig08_plan()
    serial = NumpyEngine()
    parallel = ParallelEngine(workers=WORKERS)
    try:
        # Correctness before speed: the parallel stream must be a pure
        # function of (plan, n, seed) — identical across worker counts and
        # reproducible by the serial chunked reference.
        single = ParallelEngine(workers=1)
        one = single.run(plan, N, np.random.default_rng(42))[plan.root_slot]
        four = parallel.run(plan, N, np.random.default_rng(42))[plan.root_slot]
        reference = _chunked_reference(plan, N, 42)
        deterministic = bool(
            np.array_equal(one, four) and np.array_equal(four, reference)
        )
        assert deterministic

        # Pool and plan payload are warm; time the steady state.
        serial_s = _best_time(
            lambda: serial.run(plan, N, np.random.default_rng(0))
        )
        parallel_s = benchmark.pedantic(
            lambda: _best_time(
                lambda: parallel.run(plan, N, np.random.default_rng(0))
            ),
            rounds=1,
            iterations=1,
        )
    finally:
        parallel.shutdown()
        single.shutdown()

    speedup = serial_s / parallel_s
    cpus = os.cpu_count() or 1
    result = {
        "workload": {"plan": "fig08 (y + x) + x", "n": N, "repeats": REPEATS},
        "workers": WORKERS,
        "cpus": cpus,
        "numpy_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "numpy_samples_per_second": N / serial_s,
        "parallel_samples_per_second": N / parallel_s,
        "deterministic": deterministic,
    }
    stamp_host(result)
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print()
    print(json.dumps(result, indent=2))

    if cpus >= WORKERS:
        assert speedup >= 2.0, (
            f"ParallelEngine({WORKERS}) only {speedup:.2f}x over serial numpy "
            f"on a {cpus}-cpu machine"
        )
