"""Poisson distribution."""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.dists.base import Distribution, NON_NEGATIVE, Support


class Poisson(Distribution):
    """Poisson(lam) counts."""

    discrete = True

    def __init__(self, lam: float) -> None:
        if lam < 0:
            raise ValueError(f"lam must be non-negative, got {lam}")
        self.lam = float(lam)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.poisson(self.lam, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        k = np.floor(x)
        valid = (k == x) & (k >= 0)
        if self.lam == 0.0:
            with np.errstate(divide="ignore"):
                return np.where(valid & (k == 0), 0.0, -np.inf)
        lp = k * math.log(self.lam) - self.lam - special.gammaln(k + 1)
        return np.where(valid, lp, -np.inf)

    @property
    def mean(self) -> float:
        return self.lam

    @property
    def variance(self) -> float:
        return self.lam

    @property
    def support(self) -> Support:
        return NON_NEGATIVE
