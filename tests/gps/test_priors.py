"""Tests for the GPS preset priors (walking speed, roads)."""

import numpy as np
import pytest

from repro.core.bayes import posterior
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian
from repro.gps.geo import GeoCoordinate
from repro.gps.priors import (
    build_road_graph,
    distance_to_roads_m,
    driving_speed_prior,
    road_prior,
    walking_speed_prior,
)
from repro.gps.sensor import GpsFix, gps_posterior
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


class TestSpeedPriors:
    def test_walking_prior_prefers_walking_speeds(self):
        prior = walking_speed_prior()
        w = prior.weight(np.array([3.0, 30.0]))
        assert w[0] > 0 and w[1] == 0.0  # 30 mph outside support

    def test_walking_prior_zero_for_negative(self):
        prior = walking_speed_prior()
        assert prior.weight(np.array([-1.0]))[0] == 0.0

    def test_driving_prior_spans_highway_speeds(self):
        prior = driving_speed_prior()
        w = prior.weight(np.array([35.0, 60.0, 120.0]))
        assert w[0] > 0 and w[1] > 0 and w[2] == 0.0

    def test_priors_compose(self):
        # Product of walking and driving priors: only the overlap survives.
        combined = walking_speed_prior() & driving_speed_prior()
        w = combined.weight(np.array([3.0]))
        assert w[0] > 0.0

    def test_posterior_removes_absurd_speeds(self):
        absurd = Uncertain(Gaussian(30.0, 20.0))
        post = posterior(absurd, walking_speed_prior(), rng=default_rng(0))
        samples = post.samples(5_000, default_rng(1))
        assert samples.max() <= 10.0


class TestRoadGraph:
    @pytest.fixture
    def straight_road(self):
        return build_road_graph([(ORIGIN, ORIGIN.offset_m(200.0, 0.0))])

    def test_distance_on_road_is_zero(self, straight_road):
        on_road = ORIGIN.offset_m(100.0, 0.0)
        assert distance_to_roads_m(on_road, straight_road) == pytest.approx(0.0, abs=0.01)

    def test_distance_off_road(self, straight_road):
        off = ORIGIN.offset_m(100.0, 30.0)
        assert distance_to_roads_m(off, straight_road) == pytest.approx(30.0, rel=0.01)

    def test_distance_beyond_endpoint(self, straight_road):
        past = ORIGIN.offset_m(230.0, 40.0)
        assert distance_to_roads_m(past, straight_road) == pytest.approx(50.0, rel=0.01)

    def test_multiple_segments_use_nearest(self):
        roads = build_road_graph(
            [
                (ORIGIN, ORIGIN.offset_m(100.0, 0.0)),
                (ORIGIN.offset_m(0.0, 50.0), ORIGIN.offset_m(100.0, 50.0)),
            ]
        )
        point = ORIGIN.offset_m(50.0, 40.0)
        assert distance_to_roads_m(point, roads) == pytest.approx(10.0, rel=0.02)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            build_road_graph([])

    def test_degenerate_segment_distance(self):
        # point-segment distance with a zero-length "segment" exercises the
        # guard inside the helper.
        from repro.gps.priors import _point_segment_distance_m

        d = _point_segment_distance_m(ORIGIN.offset_m(3.0, 4.0), ORIGIN, ORIGIN)
        assert d == pytest.approx(5.0, rel=1e-3)


class TestRoadPrior:
    def test_weights_decay_with_distance(self):
        roads = build_road_graph([(ORIGIN, ORIGIN.offset_m(200.0, 0.0))])
        prior = road_prior(roads, sigma_m=5.0, off_road_weight=0.0)
        on = prior.weight(np.array([ORIGIN.offset_m(50.0, 0.0)], dtype=object))
        off = prior.weight(np.array([ORIGIN.offset_m(50.0, 20.0)], dtype=object))
        assert on[0] > 100 * max(off[0], 1e-12)

    def test_off_road_floor(self):
        roads = build_road_graph([(ORIGIN, ORIGIN.offset_m(200.0, 0.0))])
        prior = road_prior(roads, sigma_m=5.0, off_road_weight=0.1)
        far = prior.weight(np.array([ORIGIN.offset_m(0.0, 500.0)], dtype=object))
        assert far[0] == pytest.approx(0.1, rel=0.01)

    def test_snapping_moves_posterior_toward_road(self):
        # Figure 10: the posterior mean shifts from the fix towards the road.
        roads = build_road_graph([(ORIGIN, ORIGIN.offset_m(200.0, 0.0))])
        fix = GpsFix(ORIGIN.offset_m(50.0, 12.0), 8.0, 0.0)
        snapped = posterior(
            gps_posterior(fix), road_prior(roads, sigma_m=5.0),
            n_proposals=5_000, rng=default_rng(2),
        )
        mean = snapped.expected_value(1_000, default_rng(3))
        _, north = mean.enu_m(ORIGIN)
        assert north < 11.0  # pulled towards the road at north=0

    def test_validation(self):
        roads = build_road_graph([(ORIGIN, ORIGIN.offset_m(10.0, 0.0))])
        with pytest.raises(ValueError):
            road_prior(roads, sigma_m=0.0)
        with pytest.raises(ValueError):
            road_prior(roads, off_road_weight=2.0)
