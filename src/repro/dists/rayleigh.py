"""Rayleigh distribution — the GPS error model of Section 4.1.

The paper derives the posterior for a GPS fix as

    Pr[Location = p | GPS = Sample] = Rayleigh(|Sample - p|; eps / sqrt(ln 400))

where ``eps`` is the sensor's reported 95% confidence radius ("horizontal
accuracy").  The ``sqrt(ln 400)`` factor converts the 95% radius into the
Rayleigh scale parameter: for Rayleigh(rho), Pr[X <= r] = 1 - exp(-r^2/2rho^2),
and solving Pr[X <= eps] = 0.95 gives rho = eps / sqrt(-2 ln 0.05)
= eps / sqrt(2 ln 20) = eps / sqrt(ln 400).
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, NON_NEGATIVE, Support

#: Conversion from a 95% confidence radius to the Rayleigh scale rho.
SCALE_FROM_95CI = 1.0 / math.sqrt(math.log(400.0))


class Rayleigh(Distribution):
    """Rayleigh(rho) over non-negative reals.

    Density: f(x; rho) = (x / rho^2) exp(-x^2 / 2 rho^2), x >= 0.
    """

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    @classmethod
    def from_95ci(cls, epsilon: float) -> "Rayleigh":
        """Build from a 95% confidence radius, as GPS sensors report it."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        return cls(epsilon * SCALE_FROM_95CI)

    def sample_n(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.rayleigh(self.scale, size=n)

    def log_pdf(self, x):
        x = np.asarray(x, dtype=float)
        rho2 = self.scale**2
        with np.errstate(divide="ignore", invalid="ignore"):
            lp = np.log(x) - math.log(rho2) - x**2 / (2 * rho2)
        return np.where(x >= 0, lp, -np.inf)

    def cdf(self, x):
        x = np.asarray(x, dtype=float)
        return np.where(x >= 0, 1.0 - np.exp(-(x**2) / (2 * self.scale**2)), 0.0)

    @property
    def mean(self) -> float:
        return self.scale * math.sqrt(math.pi / 2.0)

    @property
    def variance(self) -> float:
        return (2.0 - math.pi / 2.0) * self.scale**2

    @property
    def support(self) -> Support:
        return NON_NEGATIVE
