"""Tests for the exact Game of Life engine."""

import numpy as np
import pytest

from repro.life.engine import (
    neighbor_counts,
    neighbor_states,
    random_board,
    step_board,
    true_decision,
)
from repro.rng import default_rng


def board_from(rows: list[str]) -> np.ndarray:
    return np.array([[c == "#" for c in row] for row in rows])


class TestRules:
    def test_true_decision_survival(self):
        assert true_decision(True, 2) and true_decision(True, 3)

    def test_true_decision_death(self):
        assert not true_decision(True, 1)
        assert not true_decision(True, 4)
        assert not true_decision(True, 0)

    def test_true_decision_birth(self):
        assert true_decision(False, 3)
        assert not true_decision(False, 2)
        assert not true_decision(False, 4)


class TestStepBoard:
    def test_block_is_still_life(self):
        block = board_from(["....", ".##.", ".##.", "...."])
        assert np.array_equal(step_board(block), block)

    def test_blinker_oscillates(self):
        horizontal = board_from([".....", ".....", ".###.", ".....", "....."])
        vertical = board_from([".....", "..#..", "..#..", "..#..", "....."])
        assert np.array_equal(step_board(horizontal), vertical)
        assert np.array_equal(step_board(vertical), horizontal)

    def test_empty_board_stays_empty(self):
        empty = np.zeros((5, 5), dtype=bool)
        assert not step_board(empty).any()

    def test_lonely_cell_dies(self):
        board = np.zeros((3, 3), dtype=bool)
        board[1, 1] = True
        assert not step_board(board).any()

    def test_glider_translates(self):
        glider = board_from(
            [".#....", "..#...", "###...", "......", "......", "......"]
        )
        result = glider.copy()
        for _ in range(4):
            result = step_board(result)
        # After 4 generations a glider moves one cell diagonally.
        expected = np.zeros_like(glider)
        expected[1:4, 1:4] = glider[0:3, 0:3]
        assert np.array_equal(result, expected)


class TestNeighborCounts:
    def test_interior_count(self):
        board = board_from(["###", "#.#", "###"])
        assert neighbor_counts(board)[1, 1] == 8

    def test_corner_has_three_neighbors_max(self):
        board = np.ones((3, 3), dtype=bool)
        assert neighbor_counts(board)[0, 0] == 3

    def test_no_wraparound(self):
        board = board_from(["#..", "...", "..#"])
        counts = neighbor_counts(board)
        assert counts[0, 2] == 0  # opposite corner is not adjacent

    def test_neighbor_states_interior(self):
        board = np.ones((3, 3), dtype=bool)
        states = neighbor_states(board, 1, 1)
        assert len(states) == 8 and states.sum() == 8

    def test_neighbor_states_corner(self):
        board = np.ones((3, 3), dtype=bool)
        assert len(neighbor_states(board, 0, 0)) == 3

    def test_neighbor_states_edge(self):
        board = np.ones((4, 4), dtype=bool)
        assert len(neighbor_states(board, 0, 1)) == 5


class TestRandomBoard:
    def test_density(self):
        board = random_board(100, 100, density=0.3, rng=default_rng(0))
        assert board.mean() == pytest.approx(0.3, abs=0.02)

    def test_shape(self):
        assert random_board(7, 9, rng=default_rng(1)).shape == (7, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_board(0, 5)
        with pytest.raises(ValueError):
            random_board(5, 5, density=1.5)

    def test_seeded_determinism(self):
        a = random_board(10, 10, rng=default_rng(2))
        b = random_board(10, 10, rng=default_rng(2))
        assert np.array_equal(a, b)
