"""Hamiltonian (hybrid) Monte Carlo over neural-network weights.

The paper adopts Neal's hybrid Monte Carlo to sample the weight posterior
``p(w | D)`` and approximate the posterior predictive distribution by Monte
Carlo integration (Section 5.3).  The posterior is the standard Bayesian
regression form:

    U(w) = ||y(X; w) - t||^2 / (2 sigma_noise^2) + ||w||^2 / (2 sigma_prior^2)

HMC proposes by simulating Hamiltonian dynamics with leapfrog integration
and accepts/rejects with Metropolis, giving far better movement through the
89-dimensional weight space than a random walk.  As the paper does, we
discard most samples and retain every ``thin``-th one to reduce the chain's
autocorrelation.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.ml.mlp import MLP
from repro.rng import ensure_rng


@dataclasses.dataclass(frozen=True)
class HMCConfig:
    """Tuning parameters for the sampler.

    The paper notes hybrid Monte Carlo "often requires hand tuning to
    achieve practical rejection rates" — these defaults were hand-tuned on
    the Sobel task.
    """

    n_samples: int = 40  # posterior networks to keep
    thin: int = 10  # keep every thin-th accepted state
    burn_in: int = 200  # discarded warm-up iterations
    leapfrog_steps: int = 20
    step_size: float = 2e-3
    noise_sigma: float = 0.05  # observation noise scale
    prior_sigma: float = 1.0  # Gaussian weight prior scale
    #: Adapt step size during burn-in toward this acceptance rate; the
    #: paper notes HMC "often requires hand tuning to achieve practical
    #: rejection rates" — this automates that tuning.
    target_acceptance: float = 0.7
    adapt_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.thin <= 0 or self.leapfrog_steps <= 0:
            raise ValueError("n_samples, thin and leapfrog_steps must be positive")
        if self.step_size <= 0 or self.noise_sigma <= 0 or self.prior_sigma <= 0:
            raise ValueError("step_size, noise_sigma and prior_sigma must be positive")


@dataclasses.dataclass
class HMCResult:
    """Posterior weight samples plus chain diagnostics."""

    samples: np.ndarray  # (n_samples, n_params)
    acceptance_rate: float
    potential_trace: list[float]
    final_step_size: float = 0.0


def hmc_sample(
    mlp: MLP,
    x: np.ndarray,
    t: np.ndarray,
    config: HMCConfig | None = None,
    rng=None,
) -> HMCResult:
    """Sample network weights from the posterior given data ``(x, t)``.

    The chain starts at the network's current (typically pre-trained)
    weights, which dramatically shortens burn-in — the standard trick for
    Bayesian neural networks.
    """
    config = config or HMCConfig()
    rng = ensure_rng(rng)
    x = np.atleast_2d(np.asarray(x, dtype=float))
    t = np.asarray(t, dtype=float)

    inv_noise_var = 1.0 / config.noise_sigma**2
    inv_prior_var = 1.0 / config.prior_sigma**2

    def potential_and_grad(w: np.ndarray) -> tuple[float, np.ndarray]:
        loss, grad = mlp.forward_backward(x, t, w)
        u = loss * inv_noise_var + 0.5 * inv_prior_var * float(w @ w)
        g = grad * inv_noise_var + inv_prior_var * w
        return u, g

    w = mlp.weights.copy()
    u, grad_u = potential_and_grad(w)

    kept: list[np.ndarray] = []
    trace: list[float] = []
    accepted = 0
    proposals = 0
    step_size = config.step_size
    total_iterations = config.burn_in + config.n_samples * config.thin

    for iteration in range(total_iterations):
        momentum = rng.standard_normal(w.size)
        kinetic0 = 0.5 * float(momentum @ momentum)

        # Leapfrog integration of Hamiltonian dynamics.
        w_new = w.copy()
        grad_new = grad_u
        p = momentum - 0.5 * step_size * grad_new
        for step in range(config.leapfrog_steps):
            w_new = w_new + step_size * p
            u_new, grad_new = potential_and_grad(w_new)
            if step < config.leapfrog_steps - 1:
                p = p - step_size * grad_new
        p = p - 0.5 * step_size * grad_new

        kinetic1 = 0.5 * float(p @ p)
        log_accept = (u + kinetic0) - (u_new + kinetic1)
        took = np.isfinite(log_accept) and np.log(rng.random()) < log_accept
        if took:
            w, u, grad_u = w_new, u_new, grad_new
        trace.append(u)

        if iteration < config.burn_in:
            # Robbins-Monro-style multiplicative adaptation: in equilibrium
            # the up-moves (on accept) balance the down-moves (on reject)
            # exactly at the target acceptance rate.
            direction = (1.0 - config.target_acceptance) if took else -config.target_acceptance
            step_size *= float(np.exp(config.adapt_rate * direction))
        else:
            proposals += 1
            accepted += int(took)
            k = iteration - config.burn_in
            if (k + 1) % config.thin == 0:
                kept.append(w.copy())

    return HMCResult(
        samples=np.asarray(kept),
        acceptance_rate=accepted / proposals if proposals else 0.0,
        potential_trace=trace,
        final_step_size=step_size,
    )
