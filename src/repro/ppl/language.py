"""The generative-model language: traces, observe, rejection queries."""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

import numpy as np

from repro.rng import ensure_rng


class Observe(Exception):
    """Raised internally when an execution violates an observation."""


class Trace:
    """One stochastic execution of a generative model.

    Models are plain Python functions ``model(trace) -> value``; they draw
    randomness through the trace (``flip``, ``uniform``, ``gaussian``) and
    constrain executions with ``observe``.  Rejection inference simply
    re-executes the model until the observations hold — executing *both*
    branches of conditionals across executions, which is precisely the cost
    Uncertain<T> avoids.
    """

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self.choices: list[tuple[str, Any]] = []

    def flip(self, p: float, name: str = "flip") -> bool:
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {p}")
        value = bool(self._rng.random() < p)
        self.choices.append((name, value))
        return value

    def uniform(self, low: float, high: float, name: str = "uniform") -> float:
        value = float(self._rng.uniform(low, high))
        self.choices.append((name, value))
        return value

    def gaussian(self, mu: float, sigma: float, name: str = "gaussian") -> float:
        value = float(self._rng.normal(mu, sigma))
        self.choices.append((name, value))
        return value

    def observe(self, condition: bool, name: str = "observe") -> None:
        """Constrain the execution; a violated observation rejects it."""
        if not condition:
            raise Observe(name)


@dataclasses.dataclass
class RejectionResult:
    """Posterior samples plus the cost of obtaining them."""

    samples: list[Any]
    executions: int  # total model executions (accepted + rejected)

    @property
    def acceptance_rate(self) -> float:
        return len(self.samples) / self.executions if self.executions else 0.0

    def estimate(self) -> float:
        """Posterior mean of a boolean/numeric query value."""
        if not self.samples:
            raise ValueError("no accepted samples to estimate from")
        return float(np.mean([float(s) for s in self.samples]))


def rejection_query(
    model: Callable[[Trace], Any],
    n_samples: int,
    max_executions: int = 10_000_000,
    rng=None,
) -> RejectionResult:
    """Draw posterior samples by rejection: re-run until observations hold.

    ``max_executions`` bounds the total work; hitting it returns however
    many samples were accepted (possibly fewer than requested), mirroring
    how rare evidence starves rejection samplers.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    rng = ensure_rng(rng)
    samples: list[Any] = []
    executions = 0
    while len(samples) < n_samples and executions < max_executions:
        executions += 1
        trace = Trace(rng)
        try:
            samples.append(model(trace))
        except Observe:
            continue
    return RejectionResult(samples, executions)
