"""A stdlib-only metrics endpoint for the service tier.

No aiohttp, no third-party web framework: a
:class:`http.server.ThreadingHTTPServer` running in a daemon thread
serves the service's Prometheus text exposition.  Three routes:

- ``GET /metrics``  — ``Service.render_metrics()`` (Prometheus 0.0.4 text)
- ``GET /healthz``  — load-aware health from ``Service.health()``:
  ``ok`` (200) nominal, ``degraded`` (200) serving at a brownout level
  or with open group breakers, ``overloaded`` (503) shedding, and
  ``closed`` (503) once stopped
- ``GET /stats``    — the raw ``Service.stats()`` snapshot as JSON

Usage::

    server = serve_metrics(service, port=0)   # port=0: pick a free port
    ...                                        # scrape http://host:server.port/metrics
    server.close()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = ["MetricsServer", "serve_metrics"]

_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(service):
    class _Handler(BaseHTTPRequestHandler):
        def log_message(self, *args) -> None:  # silence per-request stderr
            pass

        def _send(self, status: int, body: str, content_type: str) -> None:
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/metrics":
                self._send(200, service.render_metrics(), _CONTENT_TYPE)
            elif path == "/healthz":
                health = getattr(service, "health", None)
                if health is not None:
                    state = health()
                    self._send(
                        state.get("http", 200),
                        state.get("status", "ok") + "\n",
                        "text/plain; charset=utf-8",
                    )
                elif getattr(service, "_closed", True):
                    self._send(503, "closed\n", "text/plain; charset=utf-8")
                else:
                    self._send(200, "ok\n", "text/plain; charset=utf-8")
            elif path == "/stats":
                body = json.dumps(service.stats(), default=_jsonable, indent=2)
                self._send(200, body + "\n", "application/json; charset=utf-8")
            else:
                self._send(404, "not found\n", "text/plain; charset=utf-8")

    return _Handler


def _jsonable(value):
    """JSON fallback for numpy scalars/arrays inside stats snapshots."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    return str(value)


class MetricsServer:
    """A running metrics endpoint; close it when the scrape target retires."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(service))
        self._httpd.daemon_threads = True
        self.host = host
        #: The bound port (useful with ``port=0``: the OS picks a free one).
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-metrics",
            daemon=True,
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_metrics(service, host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
    """Expose ``service``'s metrics over HTTP; returns the running server."""
    return MetricsServer(service, host=host, port=port)
