"""Tests for the NaiveLife / SensorLife / BayesLife deciders."""

import numpy as np
import pytest

from repro.core.conditionals import evaluation_config
from repro.life.engine import true_decision
from repro.life.variants import BayesLife, NaiveLife, SensorLife
from repro.rng import default_rng

ALL_VARIANTS = [NaiveLife, SensorLife, BayesLife]


def states_with(live: int, total: int = 8) -> np.ndarray:
    return np.array([1.0] * live + [0.0] * (total - live))


class TestZeroNoiseCorrectness:
    """With sigma=0 every variant must implement the exact rules."""

    @pytest.mark.parametrize("factory", ALL_VARIANTS)
    @pytest.mark.parametrize("is_alive", [True, False])
    @pytest.mark.parametrize("live", [0, 1, 2, 3, 4, 5, 8])
    def test_matches_exact_rules(self, factory, is_alive, live):
        variant = factory(0.0)
        rng = default_rng(live)
        with evaluation_config(rng=default_rng(live + 100)):
            outcome = variant.decide(is_alive, states_with(live), rng)
        assert outcome.will_be_alive == true_decision(is_alive, live)


class TestNaiveLife:
    def test_single_joint_sample(self, rng):
        outcome = NaiveLife(0.1).decide(True, states_with(3), rng)
        assert outcome.joint_samples == 1
        assert outcome.sensor_samples == 8

    def test_boundary_count_flips_randomly(self):
        # A live cell with exactly 2 neighbours sits on the rule boundary:
        # noise makes NaiveLife's decision a near coin flip regardless of
        # sigma (the paper's flat ~8% error).
        wrong = 0
        for seed in range(300):
            outcome = NaiveLife(0.2).decide(
                True, states_with(2), default_rng(seed)
            )
            wrong += outcome.will_be_alive != true_decision(True, 2)
        assert 0.3 < wrong / 300 < 0.7

    def test_interior_counts_robust_at_low_noise(self):
        wrong = 0
        for seed in range(200):
            outcome = NaiveLife(0.05).decide(
                False, states_with(0), default_rng(seed)
            )
            wrong += outcome.will_be_alive  # births from nothing are errors
        assert wrong == 0


class TestSensorLife:
    def test_boundary_ternary_keeps_current_state(self):
        # Live cell with 2 neighbours: Pr[NumLive < 2] = 0.5 exactly, the
        # SPRT is inconclusive, and the cascade keeps the cell alive, which
        # happens to be the correct rule outcome.
        variant = SensorLife(0.3)
        with evaluation_config(rng=default_rng(0), max_samples=400):
            outcome = variant.decide(True, states_with(2), default_rng(1))
        assert outcome.will_be_alive is True

    def test_records_joint_and_sensor_samples(self):
        variant = SensorLife(0.2)
        with evaluation_config(rng=default_rng(2), max_samples=300):
            outcome = variant.decide(True, states_with(5), default_rng(3))
        assert outcome.joint_samples >= 10
        assert outcome.sensor_samples == outcome.joint_samples * 8

    def test_more_accurate_than_naive_under_noise(self):
        sigma = 0.25
        naive_wrong = 0
        sensor_wrong = 0
        cases = [(True, 3), (False, 3), (True, 4), (False, 2), (True, 1)]
        for seed in range(40):
            for is_alive, live in cases:
                truth = true_decision(is_alive, live)
                n = NaiveLife(sigma).decide(is_alive, states_with(live), default_rng(seed))
                naive_wrong += n.will_be_alive != truth
                with evaluation_config(rng=default_rng(seed + 1000), max_samples=300):
                    s = SensorLife(sigma).decide(
                        is_alive, states_with(live), default_rng(seed)
                    )
                sensor_wrong += s.will_be_alive != truth
        assert sensor_wrong < naive_wrong


class TestBayesLife:
    def test_perfect_at_moderate_noise(self):
        sigma = 0.2
        wrong = 0
        cases = [(True, 1), (True, 2), (True, 3), (True, 4), (False, 3), (False, 2)]
        for seed in range(25):
            for is_alive, live in cases:
                with evaluation_config(rng=default_rng(seed + 2000), max_samples=300):
                    outcome = BayesLife(sigma).decide(
                        is_alive, states_with(live), default_rng(seed)
                    )
                wrong += outcome.will_be_alive != true_decision(is_alive, live)
        assert wrong == 0

    def test_cheaper_than_sensor_life(self):
        sigma = 0.3
        sensor_cost = 0
        bayes_cost = 0
        for seed in range(20):
            with evaluation_config(rng=default_rng(seed), max_samples=300):
                sensor_cost += SensorLife(sigma).decide(
                    False, states_with(3), default_rng(seed)
                ).joint_samples
            with evaluation_config(rng=default_rng(seed), max_samples=300):
                bayes_cost += BayesLife(sigma).decide(
                    False, states_with(3), default_rng(seed)
                ).joint_samples
        assert bayes_cost < sensor_cost


class TestValidation:
    @pytest.mark.parametrize("factory", ALL_VARIANTS)
    def test_negative_sigma_rejected(self, factory):
        with pytest.raises(ValueError):
            factory(-0.1)
