"""Tests for the CES-style prob<T> baseline."""

import pytest

from repro.baselines.ces import ProbT
from repro.rng import default_rng


class TestConstruction:
    def test_normalisation(self):
        p = ProbT([(1, 2.0), (2, 6.0)])
        assert p.probability(1) == pytest.approx(0.25)
        assert p.probability(2) == pytest.approx(0.75)

    def test_merging_duplicates(self):
        p = ProbT([(1, 0.25), (1, 0.25), (2, 0.5)])
        assert p.support_size == 2
        assert p.probability(1) == pytest.approx(0.5)

    def test_zero_mass_dropped(self):
        p = ProbT([(1, 0.5), (2, 0.0), (3, 0.5)])
        assert p.support_size == 2

    def test_point_and_uniform(self):
        assert ProbT.point(5).probability(5) == 1.0
        d6 = ProbT.uniform(range(1, 7))
        assert d6.probability(3) == pytest.approx(1 / 6)

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbT([])
        with pytest.raises(ValueError):
            ProbT([(1, -0.5)])


class TestCombination:
    def test_two_dice(self):
        d6 = ProbT.uniform(range(1, 7))
        total = d6 + d6  # NOTE: independent dice, unlike Uncertain sharing
        assert total.probability(7) == pytest.approx(6 / 36)
        assert total.probability(2) == pytest.approx(1 / 36)
        assert total.support_size == 11

    def test_support_blowup(self):
        # The baseline's cost model: support size multiplies generically
        # (primes avoid accidental product collisions).
        base = ProbT.uniform([2, 3, 5, 7, 11, 13, 17, 19])
        product = base * base
        assert product.support_size > 30  # 8 squares + C(8,2) cross terms

    def test_repeated_addition_grows_support(self):
        coin = ProbT.uniform([0.0, 1.0])
        acc = coin
        for _ in range(9):
            acc = acc + coin
        assert acc.support_size == 11  # binomial collapses; values merge

    def test_map(self):
        p = ProbT.uniform([-1, 0, 1]).map(abs)
        assert p.probability(1) == pytest.approx(2 / 3)

    def test_subtraction(self):
        coin = ProbT.uniform([0, 1])
        diff = coin - coin
        # Independent coins: not zero (contrast with Uncertain's x - x).
        assert diff.support_size == 3


class TestQueries:
    def test_expected_value(self):
        d6 = ProbT.uniform(range(1, 7))
        assert d6.expected_value() == pytest.approx(3.5)

    def test_exact_evidence(self):
        d6 = ProbT.uniform(range(1, 7))
        assert d6.pr_greater(4) == pytest.approx(2 / 6)

    def test_sampling(self):
        p = ProbT([(0, 0.2), (1, 0.8)])
        rng = default_rng(0)
        draws = [p.sample(rng) for _ in range(2_000)]
        assert sum(draws) / len(draws) == pytest.approx(0.8, abs=0.03)

    def test_continuous_is_out_of_reach(self):
        # There is no finite pair list for a Gaussian: the baseline can only
        # discretise, which is the paper's point.  (Nothing to assert beyond
        # the type's constructor requiring explicit finite support.)
        with pytest.raises(TypeError):
            ProbT(None)  # type: ignore[arg-type]
