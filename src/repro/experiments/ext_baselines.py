"""Extension experiment: related-work baselines, measured (Section 6)."""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.ces import ProbT
from repro.baselines.interval import Interval
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian
from repro.experiments.base import ExperimentResult, experiment
from repro.rng import default_rng


@experiment("ext_baselines")
def run(seed: int = 24, fast: bool = True) -> ExperimentResult:
    """Interval analysis and CES prob<T> vs Uncertain<T> on shared probes.

    Probes the paper's three critiques: intervals lose dependence (the
    ``x - x`` dependency problem) and cannot grade evidence; exact discrete
    representations blow up under computation and cannot express continuous
    error models at all.
    """
    rng = default_rng(seed)

    # Probe 1: dependence. x in [4, 6] (Uncertain: N(5, 0.5) truncated view).
    x_interval = Interval(4.0, 6.0)
    interval_self_diff = (x_interval - x_interval).width
    x_uncertain = Uncertain(Gaussian(5.0, 0.5))
    uncertain_self_diff = float(
        np.max(np.abs((x_uncertain - x_uncertain).samples(1_000, rng)))
    )

    # Probe 2: evidence. Mass location inside identical bounds.
    concentrated = Uncertain(Gaussian(50.9, 0.05))  # lives near 51
    spread = Uncertain(Gaussian(49.1, 0.05))  # lives near 49
    evidence_high = (concentrated > 50.0).evidence(5_000, rng)
    evidence_low = (spread > 50.0).evidence(5_000, rng)
    bounds = Interval(49.0, 51.0)
    interval_answer = bounds.possibly_greater(50.0)  # same for both variables

    # Probe 3: cost growth under repeated combination.
    values = [2, 3, 5, 7, 11, 13, 17, 19]
    chain = 4 if fast else 6
    ces = ProbT.uniform(values)
    t0 = time.perf_counter()
    ces_acc = ces
    for _ in range(chain):
        ces_acc = ces_acc * ProbT.uniform(values)
    ces_seconds = time.perf_counter() - t0
    ces_support = ces_acc.support_size

    from repro.core.graph import node_count

    t0 = time.perf_counter()
    unc_acc = Uncertain(Gaussian(1.0, 0.1))
    for _ in range(chain):
        unc_acc = unc_acc * Uncertain(Gaussian(1.0, 0.1))
    unc_acc.samples(1_000, rng)  # force evaluation so timing is honest
    uncertain_seconds = time.perf_counter() - t0
    uncertain_nodes = node_count(unc_acc.node)

    rows = [
        {
            "probe": "x - x (dependence)",
            "interval": f"width {interval_self_diff:g}",
            "ces_probt": "width 2 (independent copies)",
            "uncertain": f"max |sample| {uncertain_self_diff:g}",
        },
        {
            "probe": "evidence for > 50 inside [49, 51]",
            "interval": f"'possible' for both ({interval_answer})",
            "ces_probt": "exact, discrete only",
            "uncertain": f"{evidence_low:.3f} vs {evidence_high:.3f}",
        },
        {
            "probe": f"{chain} chained multiplications",
            "interval": "O(1) per op",
            "ces_probt": f"support {ces_support}, {ces_seconds * 1e3:.1f} ms",
            "uncertain": f"{uncertain_nodes} nodes, {uncertain_seconds * 1e3:.1f} ms for 1k samples",
        },
    ]
    claims = {
        "interval analysis suffers the dependency problem": interval_self_diff > 0,
        "Uncertain<T> keeps x - x identically zero": uncertain_self_diff == 0.0,
        "intervals cannot distinguish where the mass lies": interval_answer is True,
        "Uncertain<T> grades the same two cases decisively": evidence_high > 0.99
        and evidence_low < 0.01,
        "prob<T> support grows multiplicatively": ces_support
        >= len(values) ** 2,
        "Uncertain<T>'s representation grows linearly": uncertain_nodes
        == 2 * chain + 1,
    }
    return ExperimentResult(
        "ext_baselines", "related-work baselines, measured", rows, claims
    )
