"""The expected-value operator ``E`` (Table 1, Section 4.3).

Hypothesis tests cannot drive ``E`` — there is no alternative to compare
against — so the paper's implementation draws a fixed number of samples and
returns their mean.  The paper anticipates "a more intelligent adaptive
sampling process, sampling until the mean converges"; we provide that too as
:func:`expected_value_adaptive`, which grows the sample until the CLT
confidence interval of the running mean is narrower than a tolerance.
``expected_value(..., adaptive=True)`` reaches it through the unified
estimator surface (``Uncertain.E`` is a true alias of
``Uncertain.expected_value``).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np
from scipy import stats

from repro.core import conditionals as _cond
from repro.core.plan import compile_plan
from repro.core.sampling import _execute_plan
from repro.rng import ensure_rng
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace


def _resolve(uncertain, rng):
    """Resolve the operand's cached evaluation plan and an RNG.

    ``uncertain`` is normally an :class:`~repro.core.uncertain.Uncertain`
    (whose ``plan`` property carries the compiled program), but raw nodes
    are accepted too for internal callers.
    """
    plan = getattr(uncertain, "plan", None)
    if plan is None:
        node = getattr(uncertain, "node", uncertain)
        plan = compile_plan(node, telemetry=_cond.get_config().plan_telemetry)
    if rng is None:
        rng = _cond.get_config().rng
    return plan, ensure_rng(rng)


def expected_value(
    uncertain,
    n: int | None = None,
    rng=None,
    adaptive: bool = False,
    **adaptive_options,
) -> Any:
    """Fixed-sample-size Monte-Carlo mean (the paper's ``E``).

    Works for any base type with ``+`` and ``/`` (numbers, vectors,
    ``GeoCoordinate``), because the mean of objects is their sample sum
    scaled by ``1/n``.

    With ``adaptive=True`` the fixed sample size is replaced by the
    CLT stopping rule of :func:`expected_value_adaptive` (keyword options
    — ``tolerance``, ``confidence``, ``batch_size``, ``max_samples`` —
    pass through); the return value is still just the mean.  Call
    :func:`expected_value_adaptive` directly to also get the number of
    samples the rule consumed.
    """
    if adaptive:
        if n is not None:
            raise TypeError(
                "expected_value(adaptive=True) sizes its own sample; pass "
                "max_samples=/tolerance= instead of n="
            )
        return expected_value_adaptive(uncertain, rng=rng, **adaptive_options)[0]
    if adaptive_options:
        unexpected = ", ".join(sorted(adaptive_options))
        raise TypeError(
            f"unexpected keyword argument(s) {unexpected}; adaptive "
            "stopping options require adaptive=True"
        )
    plan, rng = _resolve(uncertain, rng)
    if n is None:
        n = _cond.get_config().expectation_samples
    if n <= 0:
        raise ValueError(f"sample size must be positive, got {n}")
    with _trace.span("expectation.fixed", n=int(n)):
        values = _execute_plan(plan, n, rng)
        sink = _metrics.active()
        if sink is not None:
            sink.record_expectation("fixed", n)
        if values.dtype == object:
            total = values[0]
            for v in values[1:]:
                total = total + v
            return total / n
        return float(np.mean(values))


def expected_value_adaptive(
    uncertain,
    tolerance: float = 1e-2,
    confidence: float = 0.95,
    batch_size: int = 100,
    max_samples: int = 100_000,
    rng=None,
) -> tuple[float, int]:
    """Adaptive mean: sample until the running mean's CI half-width is small.

    Returns ``(mean, samples_used)``.  The stopping rule is the CLT interval
    ``z * s / sqrt(n) <= tolerance`` at the requested confidence, evaluated
    after every batch.  This is the paper's anticipated improvement over the
    fixed-size ``E``; the ablation bench compares their sample economics.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if batch_size < 2 or max_samples < batch_size:
        raise ValueError("need batch_size >= 2 and max_samples >= batch_size")
    plan, rng = _resolve(uncertain, rng)
    z = float(stats.norm.isf((1.0 - confidence) / 2.0))
    total = 0.0
    total_sq = 0.0
    count = 0
    config = _cond.get_config()
    window = None
    if config.sample_cache:
        from repro.core.ledger import LEDGER

        window = LEDGER.open_window(plan, rng, None, config)

    def _draw(k: int) -> np.ndarray:
        # Growing batches must read disjoint stream windows, never the
        # same ledger prefix twice (see sampling._execute_plan).
        if window is not None:
            rows = window.draw(k)
            if rows is not None:
                return rows
        return _execute_plan(plan, k, rng, use_ledger=False)

    with _trace.span("expectation.adaptive", tolerance=tolerance) as span_attrs:
        while count < max_samples:
            k = min(batch_size, max_samples - count)
            values = np.asarray(_draw(k), dtype=float)
            total += float(values.sum())
            total_sq += float((values**2).sum())
            count += k
            mean = total / count
            var = max(total_sq / count - mean**2, 0.0)
            half_width = z * math.sqrt(var / count)
            if count >= 2 * batch_size and half_width <= tolerance:
                break
        span_attrs["samples"] = count
    sink = _metrics.active()
    if sink is not None:
        sink.record_expectation("adaptive", count)
    return total / count, count
