"""Numerical-health enforcement for engine batches.

The evaluation pipeline computes with IEEE floats, so a single leaf that
emits NaN (a dropped sensor reading, a division by a zero-crossing
support) silently poisons every downstream statistic.  This module gives
that failure a policy: :func:`enforce` runs after every
:meth:`~repro.core.engines.ExecutionEngine.sample` when the active
configuration's ``on_nonfinite`` is not ``"propagate"``, detects
non-finite rows in the root batch, *attributes* them to the first slot of
the compiled plan that introduced them, and applies the configured policy
(warn / raise / bounded resample).

Attribution walks the plan's slot program in topological order: a slot is
blamed for exactly the rows that are non-finite in its output but finite
in every earlier slot, which pinpoints the leaf or operator where the
corruption began (surfaced in :meth:`Uncertain.diagnose`, runtime
metrics, and trace events).

Layering: this module is imported by ``repro.core.engines``, so it may
not import anything from ``repro.core`` — plans and engines arrive
duck-typed.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from repro.resilience.policies import NonFiniteError, NonFiniteWarning
from repro.runtime import metrics as _metrics
from repro.runtime import trace as _trace


@dataclasses.dataclass(frozen=True)
class NonFiniteAttribution:
    """Rows of one batch first corrupted at one plan slot."""

    slot: int
    kind: str
    label: str
    rows: int
    first_row: int

    def describe(self) -> str:
        return (
            f"slot {self.slot} ({self.kind} {self.label!r}) introduced "
            f"{self.rows} non-finite sample(s), first at row {self.first_row}"
        )


def nonfinite_mask(batch) -> "np.ndarray | None":
    """Per-row non-finite mask for a batch, or ``None`` when the batch's
    dtype has no notion of finiteness (bool/int/object samples)."""
    if not isinstance(batch, np.ndarray):
        return None
    if batch.dtype.kind not in "fc":
        return None
    finite = np.isfinite(batch)
    if batch.ndim > 1:
        finite = finite.reshape(batch.shape[0], -1).all(axis=1)
    bad = ~finite
    return bad if bad.any() else None


def attribute_nonfinite(plan, values) -> list[NonFiniteAttribution]:
    """Blame each non-finite row on the first slot that produced it.

    ``values`` is the engine's slot vector (entries may be ``None`` when a
    memo pre-seeded part of the plan).  Slots are visited in topological
    order, so "first" is well-defined.
    """
    attributions: list[NonFiniteAttribution] = []
    blamed: np.ndarray | None = None
    for step in plan.steps:
        batch = values[step.slot]
        if batch is None:
            continue
        mask = nonfinite_mask(batch)
        if mask is None:
            continue
        fresh = mask if blamed is None else (mask & ~blamed)
        introduced = int(fresh.sum())
        if introduced:
            attributions.append(
                NonFiniteAttribution(
                    slot=step.slot,
                    kind=step.kind,
                    label=step.node.label,
                    rows=introduced,
                    first_row=int(np.argmax(fresh)),
                )
            )
        blamed = mask if blamed is None else (blamed | mask)
    return attributions


def _record(policy: str, rows: int, attributions, resamples: int = 0) -> None:
    sink = _metrics.active()
    if sink is not None:
        sink.record_nonfinite(policy, rows=rows, resamples=resamples)
    _trace.event(
        "health.nonfinite",
        policy=policy,
        rows=rows,
        resamples=resamples,
        slots=[a.slot for a in attributions],
    )


def _summary(attributions, rows: int, n: int) -> str:
    where = "; ".join(a.describe() for a in attributions) or "unattributable"
    return f"{rows}/{n} non-finite sample(s) in batch: {where}"


def enforce(engine, plan, values, n: int, rng, config, allow_resample: bool = True):
    """Apply the active ``on_nonfinite`` policy to a freshly run batch.

    Returns the (possibly repaired) root batch.  Called by
    ``ExecutionEngine.sample`` only when the policy is not
    ``"propagate"``, so the default path pays nothing beyond one string
    comparison.  ``allow_resample=False`` marks draws that cannot be
    repaired row-wise (shared-context draws, where replacing rows of one
    root would desynchronise the memoised joint assignment); the
    ``"resample"`` policy then raises instead of silently desyncing.
    """
    policy = config.on_nonfinite
    root = values[plan.root_slot]
    bad = nonfinite_mask(root)
    if bad is None:
        return root
    attributions = attribute_nonfinite(plan, values)
    rows = int(bad.sum())
    if policy == "warn":
        _record(policy, rows, attributions)
        warnings.warn(
            NonFiniteWarning(_summary(attributions, rows, n)), stacklevel=3
        )
        return root
    if policy == "raise":
        _record(policy, rows, attributions)
        raise NonFiniteError(_summary(attributions, rows, n), attributions)
    if not allow_resample:
        _record(policy, rows, attributions)
        raise NonFiniteError(
            "on_nonfinite='resample' cannot repair a shared-context draw "
            "(replacing rows of one root would desynchronise the memoised "
            "joint assignment): " + _summary(attributions, rows, n),
            attributions,
        )
    # policy == "resample": redraw replacements for the poisoned rows only,
    # bounded by the configured retry cap.  Each redraw is a fresh run of
    # the same plan with the caller's generator, so the repaired batch is
    # still a pure function of (plan, n, seed, policy).
    #
    # A repaired batch consumed extra stream and contains substituted
    # rows, so any sample-ledger columns for this plan shape are no
    # longer extensions of a pure run — drop them before repairing (the
    # drop must happen even if the retry cap below is exhausted).
    # Resolved via sys.modules: this module may not import repro.core.
    import sys

    ledger_mod = sys.modules.get("repro.core.ledger")
    if ledger_mod is not None:
        ledger_mod.LEDGER.invalidate_entries(plan)
    root = np.array(root, copy=True)
    resamples = 0
    while True:
        if resamples >= config.nonfinite_retries:
            _record(policy, rows, attributions, resamples=resamples)
            raise NonFiniteError(
                f"on_nonfinite='resample' exhausted its retry cap of "
                f"{config.nonfinite_retries}: "
                + _summary(attributions, int(bad.sum()), n),
                attributions,
            )
        k = int(bad.sum())
        replacement_values = engine.run(plan, k, rng)
        resamples += 1
        root[bad] = replacement_values[plan.root_slot]
        bad_replacement = nonfinite_mask(root[bad])
        if bad_replacement is None:
            break
        still_bad = np.zeros_like(bad)
        still_bad[np.flatnonzero(bad)[bad_replacement]] = True
        bad = still_bad
    _record(policy, rows, attributions, resamples=resamples)
    return root
