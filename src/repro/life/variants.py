"""NaiveLife, SensorLife and BayesLife cell deciders (Section 5.2).

Each variant answers: given a cell's current state and its noisy neighbour
sensors, will the cell be alive next generation?  The structure mirrors the
paper's listing::

    bool WillBeAlive = IsAlive;
    Uncertain<double> NumLive = CountLiveNeighbors(me);
    if (IsAlive && NumLive < 2)                     WillBeAlive = false;
    else if (IsAlive && 2 <= NumLive && NumLive <= 3) WillBeAlive = true;
    else if (IsAlive && NumLive > 3)                WillBeAlive = false;
    else if (!IsAlive && NumLive == 3)              WillBeAlive = true;

On real-valued noisy sums, ``NumLive == 3`` is read as "within half a count
of 3" (the nearest-integer band (2.5, 3.5)); a literal float equality would
be identically false, making births impossible.  For SensorLife and
BayesLife each comparison runs a hypothesis test; inconclusive tests leave
``WillBeAlive`` at its default — the ternary logic of Section 3.4 — which
is also why boundary counts (e.g. a live cell with exactly 2 neighbours,
where Pr[NumLive < 2] = 0.5) degrade gracefully instead of flipping coins
the way NaiveLife does.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.conditionals import get_config
from repro.core.uncertain import Uncertain
from repro.life.sensors import (
    corrected_sensor_sum,
    noisy_sensor_readings,
    sensor_sum,
)


@dataclasses.dataclass(frozen=True)
class UpdateOutcome:
    """One cell-update decision plus its sampling cost."""

    will_be_alive: bool
    sensor_samples: int  # physical sensor reads consumed
    joint_samples: int  # joint draws of the NumLive network


class LifeVariant:
    """Base class: a strategy for deciding one cell update."""

    name = "abstract"

    def __init__(self, sigma: float) -> None:
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = float(sigma)

    def decide(
        self, is_alive: bool, neighbor_states: np.ndarray, rng: np.random.Generator
    ) -> UpdateOutcome:
        raise NotImplementedError


class NaiveLife(LifeVariant):
    """Reads each sensor once and applies the rules to the raw sum."""

    name = "NaiveLife"

    def decide(self, is_alive, neighbor_states, rng) -> UpdateOutcome:
        readings = noisy_sensor_readings(neighbor_states, self.sigma, rng)
        num_live = float(readings.sum())
        will_be_alive = is_alive
        if is_alive and num_live < 2:
            will_be_alive = False
        elif is_alive and 2 <= num_live <= 3:
            will_be_alive = True
        elif is_alive and num_live > 3:
            will_be_alive = False
        elif not is_alive and abs(num_live - 3) < 0.5:
            will_be_alive = True
        return UpdateOutcome(will_be_alive, len(neighbor_states), 1)


class _UncertainRuleMixin:
    """Shared conditional cascade for the Uncertain-based variants."""

    @staticmethod
    def _apply_rules(is_alive: bool, num_live: Uncertain) -> tuple[bool, int]:
        """Run the paper's conditional cascade; return (decision, joint samples).

        Python's short-circuit ``and`` on the crisp ``is_alive`` flag means
        only the relevant hypothesis tests execute, matching the C# code.
        """
        config = get_config()
        before = config.samples_drawn
        will_be_alive = is_alive
        if is_alive and (num_live < 2):
            will_be_alive = False
        elif is_alive and ((2 <= num_live) & (num_live <= 3)):
            will_be_alive = True
        elif is_alive and (num_live > 3):
            will_be_alive = False
        elif not is_alive and ((2.5 < num_live) & (num_live < 3.5)):
            will_be_alive = True
        return will_be_alive, config.samples_drawn - before


class SensorLife(_UncertainRuleMixin, LifeVariant):
    """Wraps each sensor with Uncertain<T> and tests the rule conditionals."""

    name = "SensorLife"

    def decide(self, is_alive, neighbor_states, rng) -> UpdateOutcome:
        num_live = sensor_sum(neighbor_states, self.sigma)
        decision, joint = self._apply_rules(is_alive, num_live)
        return UpdateOutcome(decision, joint * len(neighbor_states), joint)


class BayesLife(_UncertainRuleMixin, LifeVariant):
    """SensorLife with MAP-corrected sensors (domain knowledge)."""

    name = "BayesLife"

    def decide(self, is_alive, neighbor_states, rng) -> UpdateOutcome:
        num_live = corrected_sensor_sum(neighbor_states, self.sigma)
        decision, joint = self._apply_rules(is_alive, num_live)
        return UpdateOutcome(decision, joint * len(neighbor_states), joint)
