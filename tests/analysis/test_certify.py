"""Stream-safety certifier tests: the zero-false-accept contract.

The certifier replaces the probe run for kernels it can prove
stream-equivalent, so its one non-negotiable property is that **every
statically certified kernel would also have passed the probe**.  The
differential harness here force-runs the dynamic bit-identity check on
every certified kernel across the CLI corpus plus randomized plans and
asserts zero divergences — and separately that coverage is useful
(>= 80% of fusable kernels certify without the probe).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis.certify import (
    TRUSTED_BULK_FAMILIES,
    CertificationRecord,
    certification_records,
    certify_kernel,
    certify_rewrite,
    certify_value,
    plan_draw_sequence,
)
from repro.analysis.demos import CERTIFY_CORPUS
from repro.core import fused as fused_mod
from repro.core.engines import get_engine
from repro.core.plan import compile_plan
from repro.core.uncertain import Uncertain
from repro.dists import Exponential, Gaussian, Uniform


@pytest.fixture(autouse=True)
def _fresh_kernels():
    fused_mod.clear_kernel_cache()
    yield
    fused_mod.clear_kernel_cache()


def _certified_kernel_passes_probe(value: Uncertain) -> tuple[str, bool]:
    """Generate + certify the kernel for ``value``; force-run the probe.

    Returns ``(status, probe_ok)`` where ``probe_ok`` is only meaningful
    for certified kernels (the zero-false-accept check).
    """
    plan = compile_plan(value.node)
    opt = plan.optimized(2)
    if opt.structural_hash is None:
        return "opaque", True
    try:
        spec = fused_mod._generate(opt, False)
    except Exception:
        return "nofuse", True
    record = certify_kernel(spec, opt)
    if record.status != "certified":
        return record.status, True
    S, F, G, K, R = fused_mod._binding_args(spec, opt)
    kernel = spec.factory(
        np, fused_mod._chk, S, F, G, K, R, fused_mod._numexpr()
    )
    ok = fused_mod._verify(kernel, opt, get_engine("numpy"))
    return "certified", ok


def _random_fusable(rng: random.Random) -> Uncertain:
    """Random plans over trusted families, scalar mixes, and ufunc maps."""
    leaves = []
    for _ in range(rng.randint(2, 5)):
        kind = rng.choice(["gauss", "uniform", "expo", "point"])
        if kind == "gauss":
            leaves.append(Uncertain(Gaussian(rng.uniform(-1, 1), 1.0)))
        elif kind == "uniform":
            leaves.append(Uncertain(Uniform(0.5, 2.0)))
        elif kind == "expo":
            leaves.append(Uncertain(Exponential(1.0)))
        else:
            leaves.append(Uncertain.pointmass(rng.choice([2, 2.5, -3.0])))
    exprs = list(leaves)
    for _ in range(rng.randint(3, 8)):
        op = rng.choice(["+", "-", "*", "/", "scalar", "cmp", "sqrt"])
        a = rng.choice(exprs)
        b = rng.choice(exprs)
        if op == "scalar":
            exprs.append(a + rng.choice([1, 1.5, -2.0, True]))
        elif op == "cmp":
            exprs.append(a > b)
        elif op == "sqrt":
            exprs.append((a * a).map(np.sqrt, vectorized=True))
        else:
            exprs.append({"+": a + b, "-": a - b,
                          "*": a * b, "/": a / b}[op])
    return exprs[-1]


class TestDifferentialHarness:
    def test_zero_false_accepts_and_useful_coverage(self):
        """The acceptance gate: certified => probe passes, coverage >= 80%."""
        statuses = []
        targets = [fn() for fn in CERTIFY_CORPUS.values()]
        rng = random.Random(2014)
        targets += [_random_fusable(rng) for _ in range(40)]
        for value in targets:
            status, probe_ok = _certified_kernel_passes_probe(value)
            assert probe_ok, (
                f"FALSE ACCEPT: statically certified kernel diverged from "
                f"the numpy engine for {value!r}"
            )
            statuses.append(status)
        fusable = [s for s in statuses if s in ("certified", "probe")]
        assert fusable, "corpus produced no fusable kernels"
        coverage = statuses.count("certified") / len(fusable)
        assert coverage >= 0.80, (
            f"certifier only covers {coverage:.0%} of fusable kernels "
            f"(statuses: {statuses})"
        )


class TestCertifyKernel:
    def test_trusted_families_certify(self):
        value = Uncertain(Gaussian(0, 1)) + Uncertain(Uniform(0, 1))
        plan = compile_plan(value.node).optimized(2)
        spec = fused_mod._generate(plan, False)
        record = certify_kernel(spec, plan)
        assert record.status == "certified"
        assert record.subject == "fused-kernel"
        assert record.name == "kernel-certify"
        families = sorted(e.family for e in record.draw_sequence)
        assert families == ["random", "standard_normal"]

    def test_untrusted_subclass_defers_to_probe(self):
        class HomemadeGaussian(Gaussian):
            pass

        value = Uncertain(HomemadeGaussian(0.0, 1.0)) + 1.0
        plan = compile_plan(value.node).optimized(2)
        spec = fused_mod._generate(plan, False)
        record = certify_kernel(spec, plan)
        assert record.status == "probe"
        assert any("not a trusted" in r for r in record.reasons)

    def test_bool_scalar_defers_to_probe(self):
        # Python bools promote differently inlined vs. materialized under
        # NEP 50; the certifier must not claim this case statically.
        value = Uncertain(Gaussian(0.0, 1.0)) + True
        plan = compile_plan(value.node).optimized(2)
        spec = fused_mod._generate(plan, False)
        record = certify_kernel(spec, plan)
        assert record.status in ("probe", "certified")
        if record.status == "probe":
            assert any("scalar" in r for r in record.reasons)

    def test_trust_table_is_exact_types_only(self):
        assert ("repro.dists.gaussian", "Gaussian") in TRUSTED_BULK_FAMILIES

        class Impostor(Gaussian):
            pass

        key = (Impostor.__module__, Impostor.__qualname__)
        assert key not in TRUSTED_BULK_FAMILIES


class TestCertifyRewrite:
    def test_preserved_sources_certify(self):
        value = Uncertain(Gaussian(0, 1)) * (
            Uncertain.pointmass(2.0) + Uncertain.pointmass(3.0))
        plan = compile_plan(value.node)
        opt = plan.optimized(2)
        record = certify_rewrite(plan, opt)
        assert record.certified
        assert record.subject == "optimizer-rewrite"
        assert record.name == "stream-certify"

    def test_optimizer_provenance_carries_certificate(self):
        value = Uncertain(Gaussian(0, 1)) + (
            Uncertain.pointmass(1.0) + Uncertain.pointmass(2.0))
        opt = compile_plan(value.node).optimized(2)
        records = [r for r in opt.provenance
                   if isinstance(r, CertificationRecord)]
        assert len(records) == 1
        assert records[0].certified
        assert opt.certification_records() == tuple(records)

    def test_reordered_sources_rejected(self):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Uniform(0.0, 1.0))
        plan = compile_plan((a + b).node)
        swapped = compile_plan((b + a).node)
        record = certify_rewrite(plan, swapped)
        assert record.status == "rejected"
        assert record.rule == "UNC401"

    def test_dropped_source_rejected(self):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Uniform(0.0, 1.0))
        record = certify_rewrite(
            compile_plan((a + b).node), compile_plan(a.node))
        assert record.status == "rejected"
        assert record.rule == "UNC401"


class TestDrawSequence:
    def test_coalesces_adjacent_same_family(self):
        value = sum(
            [Uncertain(Gaussian(0, 1)) for _ in range(4)],
            Uncertain.pointmass(0.0),
        )
        plan = compile_plan(value.node)
        events = plan_draw_sequence(plan)
        normals = [e for e in events if e.family == "standard_normal"]
        assert len(normals) == 1 and normals[0].count == 4

    def test_untrusted_leaves_marked_delegated(self):
        from repro.dists import Beta

        value = Uncertain(Beta(2.0, 3.0)) + Uncertain(Gaussian(0, 1))
        plan = compile_plan(value.node)
        events = plan_draw_sequence(plan)
        assert any(e.family == "delegated" for e in events)
        assert any(e.family == "standard_normal" for e in events)


class TestCertifyValue:
    def test_report_shape(self):
        report = certify_value(Uncertain(Gaussian(0, 1)) + 1.0)
        assert report["status"] == "certified"
        assert {r["subject"] for r in report["records"]} == {
            "optimizer-rewrite", "fused-kernel"}
        assert all(r["structural_hash"] for r in report["records"])

    def test_opaque_plan_reports_probe(self):
        value = Uncertain(Gaussian(0, 1)).map(lambda v: v * 2.0)
        report = certify_value(value)
        assert report["status"] == "probe"
        assert any("opaque" in reason
                   for r in report["records"] for reason in r["reasons"])

    def test_record_round_trips_to_dict(self):
        report = certify_value(Uncertain(Uniform(0, 1)) * 2.0)
        for record in report["records"]:
            assert record["name"] in ("stream-certify", "kernel-certify")
            assert record["status"] in ("certified", "probe", "rejected")
            assert isinstance(record["reasons"], list)


class TestRuntimeIntegration:
    def test_certified_kernel_skips_probe_and_counts(self):
        from repro.core.conditionals import evaluation_config
        from repro.runtime.metrics import RuntimeMetrics

        metrics = RuntimeMetrics()
        value = Uncertain(Gaussian(0, 1)) + Uncertain(Exponential(1.0))
        plan = compile_plan(value.node).optimized(2)
        with evaluation_config(metrics=metrics):
            get_engine("fused").run(plan, 8, np.random.default_rng(0))
        snap = metrics.snapshot()["fused"]
        assert snap["kernels_certified"] == 1
        assert snap["kernels_probed"] == 0
        records = certification_records(plan)
        assert any(r.subject == "fused-kernel" and r.certified
                   for r in records)

    def test_untrusted_kernel_still_probes(self):
        from repro.core.conditionals import evaluation_config
        from repro.runtime.metrics import RuntimeMetrics

        class HonestCustom(Gaussian):
            pass

        metrics = RuntimeMetrics()
        value = Uncertain(HonestCustom(0.0, 1.0)) + 1.0
        plan = compile_plan(value.node).optimized(2)
        with evaluation_config(metrics=metrics):
            out = get_engine("fused").run(
                plan, 8, np.random.default_rng(0))[plan.root_slot]
        ref = get_engine("numpy").run(
            plan, 8, np.random.default_rng(0))[plan.root_slot]
        np.testing.assert_array_equal(out, ref)
        snap = metrics.snapshot()["fused"]
        assert snap["kernels_probed"] == 1
        assert snap["kernels_certified"] == 0
