"""Tests for lifting arbitrary functions."""

import math

import numpy as np
import pytest

from repro.core.lifting import apply, lift
from repro.core.uncertain import Uncertain, UncertainBool
from repro.dists import Gaussian, PointMass


class TestApply:
    def test_scalar_function(self, fixed_rng):
        a = Uncertain(Gaussian(3.0, 0.1))
        b = Uncertain(Gaussian(4.0, 0.1))
        hyp = apply(lambda x, y: math.hypot(x, y), a, b)
        assert hyp.expected_value(5_000, fixed_rng) == pytest.approx(5.0, abs=0.05)

    def test_vectorized_function(self, fixed_rng):
        a = Uncertain(Gaussian(3.0, 0.1))
        b = Uncertain(Gaussian(4.0, 0.1))
        hyp = apply(np.hypot, a, b, vectorized=True)
        assert hyp.expected_value(5_000, fixed_rng) == pytest.approx(5.0, abs=0.05)

    def test_plain_operands_coerced(self, rng):
        out = apply(lambda x, y: x * y, Uncertain(PointMass(3.0)), 4.0)
        assert out.sample(rng) == 12.0

    def test_boolean_result_type(self):
        cond = apply(lambda x: x > 0, Uncertain(Gaussian(0, 1)), boolean=True)
        assert isinstance(cond, UncertainBool)

    def test_shared_operand_sampled_once(self, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        diff = apply(lambda a, b: a - b, x, x)
        assert np.all(diff.samples(50, rng) == 0.0)

    def test_mixed_int_to_float(self, rng):
        # The paper's Int -> Int -> Double example.
        real_div = apply(lambda a, b: a / b, Uncertain(PointMass(7)), Uncertain(PointMass(2)))
        assert real_div.sample(rng) == 3.5


class TestLift:
    def test_lifted_function_returns_uncertain(self, fixed_rng):
        distance = lift(lambda a, b: abs(a - b))
        d = distance(Uncertain(Gaussian(1.0, 0.01)), Uncertain(Gaussian(4.0, 0.01)))
        assert isinstance(d, Uncertain)
        assert d.expected_value(2_000, fixed_rng) == pytest.approx(3.0, abs=0.05)

    def test_lift_preserves_name(self):
        def my_metric(a, b):
            return a + b

        lifted = lift(my_metric)
        assert lifted.__name__ == "my_metric"
        out = lifted(1.0, 2.0)
        assert out.node.label == "my_metric"

    def test_lift_boolean(self):
        is_positive = lift(lambda x: x > 0, boolean=True)
        assert isinstance(is_positive(Uncertain(Gaussian(0, 1))), UncertainBool)

    def test_lift_on_plain_values(self, rng):
        add = lift(lambda a, b: a + b)
        assert add(2.0, 3.0).sample(rng) == 5.0
