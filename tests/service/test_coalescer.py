"""The batching coalescer: grouping, determinism, pooling, fault isolation.

The load-bearing claim is bit-identity: a seeded request answered from a
coalesced batch — any batch, any grouping, even after a chaos-injected
bulk-evaluation failure — returns exactly the bytes solo evaluation
returns.  These tests exercise the synchronous core directly, without an
event loop.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import Uncertain
from repro.core.conditionals import EvaluationConfig
from repro.dists import Gaussian, Uniform
from repro.resilience.chaos import ChaosEngine, InjectedFault
from repro.service import (
    CoalescerStats,
    QueryRequest,
    evaluate_batch,
    evaluate_request,
)


def speed_query(mean: float = 4.0) -> Uncertain:
    """The GPS-walking standard form: a same-shape speeding-test operand."""
    east = Uncertain(Gaussian(mean, 1.0))
    north = Uncertain(Gaussian(mean, 1.0))
    return (east * east + north * north) ** 0.5


class TestGrouping:
    def test_same_shape_requests_share_a_group(self):
        reqs = [
            QueryRequest(value=speed_query(), kind="samples", samples=16, seed=i)
            for i in range(6)
        ]
        stats = CoalescerStats()
        evaluate_batch(reqs, engine="numpy", stats=stats)
        assert stats.groups == 1
        assert stats.coalesced_requests == 6

    def test_different_parameters_split_groups(self):
        # Structural hashing is parameter-inclusive: a different Gaussian
        # mean is a different program, never merged.
        reqs = [
            QueryRequest(value=speed_query(4.0), kind="samples", samples=8, seed=1),
            QueryRequest(value=speed_query(5.0), kind="samples", samples=8, seed=2),
        ]
        stats = CoalescerStats()
        evaluate_batch(reqs, engine="numpy", stats=stats)
        assert stats.groups == 2

    def test_opaque_plans_group_by_identity(self):
        opaque = Uncertain(Uniform(0.0, 1.0)).map(lambda v: v)
        assert opaque.plan.structural_hash is None
        reqs = [
            QueryRequest(value=opaque, kind="samples", samples=8, seed=i)
            for i in range(3)
        ]
        stats = CoalescerStats()
        outcomes = evaluate_batch(reqs, engine="numpy", stats=stats)
        assert stats.groups == 1  # same value object: still batchable
        assert all(not isinstance(o, BaseException) for o in outcomes)


class TestSeededDeterminism:
    @pytest.mark.parametrize(
        "kind,kwargs",
        [
            ("samples", {"samples": 64}),
            ("expected_value", {"samples": 512}),
            ("percentiles", {"samples": 512, "divisions": 10}),
            ("confidence_interval", {"samples": 512, "level": 0.9}),
            ("sample", {}),
        ],
    )
    def test_batched_equals_solo(self, kind, kwargs):
        value = speed_query()
        solo = [
            evaluate_request(
                QueryRequest(value=value, kind=kind, seed=seed, **kwargs),
                engine="numpy",
            )
            for seed in range(5)
        ]
        batch = evaluate_batch(
            [
                QueryRequest(value=value, kind=kind, seed=seed, **kwargs)
                for seed in range(5)
            ],
            engine="numpy",
        )
        for s, b in zip(solo, batch):
            assert np.array_equal(
                np.asarray(s.value, dtype=float),
                np.asarray(b.value, dtype=float),
            )

    def test_pr_batched_equals_solo(self):
        cond = speed_query() > 4.0
        req = lambda seed: QueryRequest(
            value=cond, kind="pr", samples=2_000, threshold=0.5, seed=seed
        )
        solo = [evaluate_request(req(s), engine="numpy") for s in range(4)]
        batch = evaluate_batch([req(s) for s in range(4)], engine="numpy")
        for s, b in zip(solo, batch):
            assert s.value == b.value
            assert s.extra["evidence"] == b.extra["evidence"]

    def test_batch_composition_is_irrelevant(self):
        # The same request answered from two differently composed batches
        # gets the same bytes: the stream belongs to the request.
        value = speed_query()
        probe = QueryRequest(value=value, kind="samples", samples=32, seed=99)
        small = evaluate_batch([probe], engine="numpy")[0]
        noise = [
            QueryRequest(value=value, kind="samples", samples=32, seed=i)
            for i in range(7)
        ]
        large = evaluate_batch(noise + [probe], engine="numpy")[-1]
        assert np.array_equal(small.value, large.value)

    def test_fused_engine_batched_equals_fused_solo(self):
        # The determinism contract is per-engine: fused batched answers
        # are bit-identical to fused solo answers (numpy may differ from
        # fused by an ULP on transcendental lowerings).
        value = speed_query()
        reqs = [
            QueryRequest(value=value, kind="samples", samples=64, seed=s)
            for s in range(4)
        ]
        solo = [evaluate_request(r, engine="fused") for r in reqs]
        batch = evaluate_batch(reqs, engine="fused")
        for s, b in zip(solo, batch):
            assert np.array_equal(s.value, b.value)

    def test_fused_engine_close_to_numpy(self):
        value = speed_query()
        req = QueryRequest(value=value, kind="samples", samples=64, seed=3)
        a = evaluate_request(req, engine="numpy")
        b = evaluate_request(req, engine="fused")
        np.testing.assert_allclose(a.value, b.value, rtol=1e-12)


class TestPooledRequests:
    def test_seedless_requests_share_one_engine_run(self):
        value = speed_query()
        reqs = [
            QueryRequest(value=value, kind="expected_value", samples=256)
            for _ in range(8)
        ]
        stats = CoalescerStats()
        outcomes = evaluate_batch(
            reqs, engine="numpy", pool_rng=0, stats=stats
        )
        assert stats.engine_runs == 1          # ONE draw answered all 8
        assert stats.pooled_requests == 8
        assert stats.samples_drawn == 8 * 256
        estimates = [o.value for o in outcomes]
        # Distinct slices: the answers are iid estimates, not copies.
        assert len(set(estimates)) == 8
        for est in estimates:
            # E[sqrt(E^2 + N^2)] with E, N ~ N(4, 1) is ~5.75.
            assert est == pytest.approx(5.75, abs=0.5)

    def test_pool_rng_reproducible(self):
        value = speed_query()
        reqs = lambda: [
            QueryRequest(value=value, kind="samples", samples=16)
            for _ in range(3)
        ]
        a = evaluate_batch(reqs(), engine="numpy", pool_rng=7)
        b = evaluate_batch(reqs(), engine="numpy", pool_rng=7)
        for x, y in zip(a, b):
            assert np.array_equal(x.value, y.value)

    def test_mixed_seeded_and_pooled(self):
        value = speed_query()
        seeded = QueryRequest(value=value, kind="samples", samples=16, seed=5)
        pooled = QueryRequest(value=value, kind="samples", samples=16)
        outcomes = evaluate_batch([seeded, pooled], engine="numpy", pool_rng=0)
        solo = evaluate_request(seeded, engine="numpy")
        assert np.array_equal(outcomes[0].value, solo.value)
        assert not np.array_equal(outcomes[1].value, solo.value)


class TestFaultIsolation:
    def test_chaos_fault_falls_back_per_request_bit_identically(self):
        # A bulk evaluation killed mid-group must not corrupt answers:
        # the fallback re-derives every stream from the request seeds.
        value = speed_query()
        reqs = [
            QueryRequest(value=value, kind="samples", samples=32, seed=i)
            for i in range(6)
        ]
        solo = [evaluate_request(r, engine="numpy") for r in reqs]
        chaos = ChaosEngine(inner="numpy", seed=13, error_rate=0.4)
        stats = CoalescerStats()
        outcomes = evaluate_batch(
            reqs, engine=chaos, retries=8, stats=stats
        )
        assert stats.group_fallbacks >= 1  # the chaos actually bit
        for s, o in zip(solo, outcomes):
            assert not isinstance(o, BaseException)
            assert np.array_equal(s.value, o.value)

    def test_unrecoverable_request_fails_alone(self):
        good = QueryRequest(
            value=speed_query(), kind="samples", samples=8, seed=1
        )
        boom = Uncertain(Uniform(0.0, 1.0)).map(
            lambda v: (_ for _ in ()).throw(RuntimeError("bad model"))
        )
        bad = QueryRequest(value=boom, kind="sample", seed=2)
        outcomes = evaluate_batch([good, bad], engine="numpy", retries=0)
        assert not isinstance(outcomes[0], BaseException)
        assert isinstance(outcomes[1], BaseException)

    def test_chaos_with_zero_retries_surfaces_injected_fault(self):
        value = speed_query()
        req = QueryRequest(value=value, kind="samples", samples=8, seed=1)
        chaos = ChaosEngine(inner="numpy", seed=1, error_rate=1.0)
        outcomes = evaluate_batch([req], engine=chaos, retries=0)
        assert isinstance(outcomes[0], InjectedFault)


class TestAdmission:
    def test_sample_budget_rejects_with_library_error(self):
        config = EvaluationConfig(sample_budget=100)
        reqs = [
            QueryRequest(
                value=speed_query(), kind="samples", samples=80, seed=i
            )
            for i in range(2)
        ]
        outcomes = evaluate_batch(reqs, engine="numpy", config=config)
        kinds = sorted(type(o).__name__ for o in outcomes)
        assert "QueryResult" in str(kinds) or not isinstance(
            outcomes[0], BaseException
        )
        assert isinstance(outcomes[1], repro.SampleBudgetExceeded)

    def test_expired_deadline_rejects(self):
        config = EvaluationConfig(deadline=0.0)
        req = QueryRequest(value=speed_query(), kind="sample", seed=0)
        outcomes = evaluate_batch([req], engine="numpy", config=config)
        assert isinstance(outcomes[0], repro.DeadlineExceeded)


class TestRequestValidation:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            QueryRequest(value=speed_query(), kind="median")

    def test_value_type_validation(self):
        with pytest.raises(TypeError):
            QueryRequest(value=3.0)

    def test_parameter_validation(self):
        value = speed_query()
        with pytest.raises(ValueError):
            QueryRequest(value=value, samples=0)
        with pytest.raises(ValueError):
            QueryRequest(value=value, threshold=1.5)
        with pytest.raises(ValueError):
            QueryRequest(value=value, level=1.0)
        with pytest.raises(ValueError):
            QueryRequest(value=value, divisions=0)

    def test_seedless_request_has_no_stream(self):
        with pytest.raises(ValueError):
            QueryRequest(value=speed_query()).rng()
