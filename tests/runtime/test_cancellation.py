"""Cooperative cancellation: tokens, scopes, and engine batch boundaries.

The contract under test: a tripped :class:`CancellationToken` installed
around an evaluation stops the run at the engine's *next batch boundary*
with :class:`EvaluationCancelled` carrying partial-progress metadata —
on the numpy engine (per program step), the fused engine (before the
kernel / via its delegating inner), and the parallel engine (per chunk).
Checks never consume the sampling RNG, so an uncancelled run is
bit-identical to a run with no token installed.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import Uncertain, evaluation_config
from repro.core.engines import get_engine
from repro.dists import Gaussian
from repro.resilience.chaos import ChaosDistribution, latency_storm
from repro.runtime import cancellation
from repro.runtime.cancellation import CancellationToken, EvaluationCancelled
from repro.runtime.parallel import ParallelEngine


def speed_query() -> Uncertain:
    east = Uncertain(Gaussian(4.0, 1.0))
    north = Uncertain(Gaussian(4.0, 1.0))
    return (east * east + north * north) ** 0.5


def stalling_query(stall_s: float = 0.05, seed: int = 0) -> Uncertain:
    """A plan whose leaf stalls every batch: the draw outlives short
    deadlines, so the *next* step boundary observes the expiry."""
    slow = Uncertain(ChaosDistribution(
        Gaussian(0.0, 1.0), seed=seed, latency_s=stall_s, latency_rate=1.0,
    ))
    return slow + slow * 2.0


class TestToken:
    def test_explicit_cancel_is_idempotent_first_reason_wins(self):
        token = CancellationToken()
        assert not token.cancelled and token.reason is None
        token.cancel("client-disconnected")
        token.cancel("second-call-ignored")
        assert token.cancelled
        assert token.reason == "client-disconnected"

    def test_deadline_trips_and_promotes_reason(self):
        token = CancellationToken.with_timeout(0.0)
        time.sleep(0.002)
        assert token.expired
        assert token.cancelled
        assert token.reason == "deadline"

    def test_check_raises_with_progress_metadata(self):
        token = CancellationToken()
        token.check(step=1)  # live: no-op
        token.cancel("deadline")
        with pytest.raises(EvaluationCancelled) as err:
            token.check(step=3, steps=10)
        assert err.value.reason == "deadline"
        assert err.value.progress == {"step": 3, "steps": 10}

    def test_with_timeout_validation(self):
        assert CancellationToken.with_timeout(None).deadline_at is None
        with pytest.raises(ValueError, match="timeout"):
            CancellationToken.with_timeout(-1.0)

    def test_scope_installs_nests_and_restores(self):
        outer, inner = CancellationToken(), CancellationToken()
        assert cancellation.current() is None
        with cancellation.scope(outer):
            assert cancellation.current() is outer
            with cancellation.scope(inner):
                assert cancellation.current() is inner
            assert cancellation.current() is outer
        assert cancellation.current() is None

    def test_scope_none_is_a_noop(self):
        with cancellation.scope(None):
            assert cancellation.current() is None

    def test_check_current_without_token_is_a_noop(self):
        cancellation.check_current(step=1)  # must not raise


class TestEngineBoundaries:
    def test_numpy_stops_mid_run_at_next_step(self):
        value = stalling_query(stall_s=0.05)
        token = CancellationToken.with_timeout(0.01)
        with cancellation.scope(token):
            with pytest.raises(EvaluationCancelled) as err:
                get_engine("numpy").sample(value.plan, 64, np.random.default_rng(0))
        # The leaf's stall outlived the deadline; a later step boundary
        # (not the end of the run) observed it.
        assert err.value.reason == "deadline"
        assert "step" in err.value.progress

    def test_interpreter_stops_mid_run(self):
        value = stalling_query(stall_s=0.05)
        token = CancellationToken.with_timeout(0.01)
        with cancellation.scope(token):
            with pytest.raises(EvaluationCancelled) as err:
                get_engine("interpreter").sample(
                    value.plan, 64, np.random.default_rng(0)
                )
        assert err.value.reason == "deadline"

    def test_fused_checks_before_the_kernel(self):
        value = speed_query()  # clean, fusable shape
        token = CancellationToken()
        token.cancel("client-disconnected")
        with cancellation.scope(token):
            with pytest.raises(EvaluationCancelled):
                get_engine("fused").sample(value.plan, 64, np.random.default_rng(0))

    def test_fused_fallback_inherits_per_step_boundaries(self):
        # Chaos-wrapped plans are structurally opaque, so the fused
        # engine delegates to its inner numpy engine — which polls the
        # same ambient token per step.
        value = stalling_query(stall_s=0.05)
        token = CancellationToken.with_timeout(0.01)
        with cancellation.scope(token):
            with pytest.raises(EvaluationCancelled):
                get_engine("fused").sample(value.plan, 64, np.random.default_rng(0))

    def test_parallel_serial_path_stops_at_chunk_boundary(self):
        value = stalling_query(stall_s=0.05)
        engine = ParallelEngine(workers=0, chunk_size=16)
        token = CancellationToken.with_timeout(0.01)
        with cancellation.scope(token):
            with pytest.raises(EvaluationCancelled) as err:
                engine.run(value.plan, 64, np.random.default_rng(0))
        assert err.value.reason == "deadline"

    def test_uncancelled_run_is_bit_identical_to_tokenless_run(self):
        value = speed_query()
        plan = value.plan
        bare = get_engine("numpy").sample(plan, 256, np.random.default_rng(7))
        token = CancellationToken.with_timeout(60.0)
        with cancellation.scope(token):
            scoped = get_engine("numpy").sample(
                plan, 256, np.random.default_rng(7)
            )
        assert np.array_equal(bare, scoped)

    def test_ambient_deadline_stops_mid_draw_as_deadline_exceeded(self):
        # No explicit token: evaluation_config(deadline=...) derives one,
        # and the mid-run trip surfaces as the classic DeadlineExceeded.
        from repro import DeadlineExceeded

        value = stalling_query(stall_s=0.05)
        with evaluation_config(deadline=0.01):
            with pytest.raises(DeadlineExceeded, match="mid-draw"):
                value.samples(64, rng=0)


class TestLatencyStormScenario:
    def test_storm_stalls_exactly_the_first_k_batches(self):
        engine = latency_storm(stall_s=0.03, batches=2)
        value = speed_query()
        durations = []
        for i in range(4):
            start = time.perf_counter()
            value.samples(16, rng=i, engine=engine)
            durations.append(time.perf_counter() - start)
        assert durations[0] >= 0.03 and durations[1] >= 0.03
        assert durations[2] < 0.03 and durations[3] < 0.03

    def test_storm_validation(self):
        from repro.resilience.chaos import ChaosEngine

        with pytest.raises(ValueError, match="storm_calls"):
            ChaosEngine(storm_calls=-1)
