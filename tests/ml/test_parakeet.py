"""Tests for the Parrot and Parakeet predictors and the PR evaluation."""

import numpy as np
import pytest

from repro.core.uncertain import Uncertain
from repro.ml.evaluation import (
    EDGE_THRESHOLD,
    PrecisionRecallPoint,
    _precision_recall,
    parrot_point,
    precision_recall_sweep,
)
from repro.ml.hmc import HMCConfig
from repro.ml.images import make_dataset
from repro.ml.mlp import MLP
from repro.ml.parakeet import Parakeet, train_parakeet, train_parrot
from repro.rng import default_rng


@pytest.fixture(scope="module")
def small_task():
    x_train, t_train = make_dataset(600, rng=default_rng(0))
    x_eval, t_eval = make_dataset(150, rng=default_rng(1))
    return x_train, t_train, x_eval, t_eval


@pytest.fixture(scope="module")
def parrot(small_task):
    x_train, t_train, _, _ = small_task
    return train_parrot(x_train, t_train, epochs=80, rng=default_rng(2))


@pytest.fixture(scope="module")
def parakeet(small_task):
    x_train, t_train, _, _ = small_task
    config = HMCConfig(n_samples=12, thin=3, burn_in=60, leapfrog_steps=10)
    return train_parakeet(
        x_train, t_train, pretrain_epochs=80, hmc_config=config, rng=default_rng(3)
    )


class TestParrot:
    def test_predict_is_float(self, parrot, small_task):
        _, _, x_eval, _ = small_task
        assert isinstance(parrot.predict(x_eval[0]), float)

    def test_reasonable_rmse(self, parrot, small_task):
        _, _, x_eval, t_eval = small_task
        assert parrot.mlp.rmse(x_eval, t_eval) < 0.12

    def test_batch_matches_single(self, parrot, small_task):
        _, _, x_eval, _ = small_task
        batch = parrot.predict_batch(x_eval[:5])
        singles = [parrot.predict(w) for w in x_eval[:5]]
        assert np.allclose(batch, singles)


class TestParakeet:
    def test_predict_returns_uncertain(self, parakeet, small_task):
        _, _, x_eval, _ = small_task
        assert isinstance(parakeet.predict(x_eval[0]), Uncertain)

    def test_ppd_pool_shape(self, parakeet, small_task):
        _, _, x_eval, _ = small_task
        assert parakeet.ppd_values(x_eval[0]).shape == (12,)

    def test_ppd_matrix_shape(self, parakeet, small_task):
        _, _, x_eval, _ = small_task
        assert parakeet.ppd_matrix(x_eval[:9]).shape == (9, 12)

    def test_ppd_includes_noise_spread(self, parakeet, small_task):
        _, _, x_eval, _ = small_task
        ppd = parakeet.predict(x_eval[0])
        assert ppd.sd(5_000, default_rng(4)) >= parakeet.noise_sigma * 0.8

    def test_ppd_mean_near_truth(self, parakeet, small_task):
        _, _, x_eval, t_eval = small_task
        errors = []
        for i in range(10):
            ppd = parakeet.predict(x_eval[i])
            errors.append(abs(ppd.expected_value(2_000, default_rng(i)) - t_eval[i]))
        assert np.mean(errors) < 0.15

    def test_edge_conditional_usable(self, parakeet, small_task):
        _, _, x_eval, t_eval = small_task
        idx = int(np.argmax(t_eval))  # strongest edge
        ppd = parakeet.predict(x_eval[idx])
        from repro.core.conditionals import evaluation_config

        with evaluation_config(rng=default_rng(5)):
            assert (ppd > EDGE_THRESHOLD).pr(0.5)

    def test_empty_pool_rejected(self):
        mlp = MLP((9, 8, 1), rng=default_rng(6))
        with pytest.raises(ValueError):
            Parakeet(mlp, np.empty((0, mlp.n_params)))

    def test_negative_noise_rejected(self):
        mlp = MLP((9, 8, 1), rng=default_rng(7))
        with pytest.raises(ValueError):
            Parakeet(mlp, np.zeros((3, mlp.n_params)), noise_sigma=-0.1)


class TestPrecisionRecall:
    def test_arithmetic(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        point = _precision_recall("x", None, predicted, actual)
        assert point.precision == 0.5
        assert point.recall == 0.5
        assert point.true_positives == 1
        assert point.false_positives == 1
        assert point.false_negatives == 1

    def test_degenerate_no_predictions(self):
        predicted = np.zeros(4, dtype=bool)
        actual = np.zeros(4, dtype=bool)
        point = _precision_recall("x", None, predicted, actual)
        assert point.precision == 1.0 and point.recall == 1.0

    def test_parrot_point(self, parrot, small_task):
        _, _, x_eval, t_eval = small_task
        point = parrot_point(parrot, x_eval, t_eval)
        assert isinstance(point, PrecisionRecallPoint)
        assert 0.0 <= point.precision <= 1.0

    def test_sweep_tradeoff_directions(self, parakeet, small_task):
        _, _, x_eval, t_eval = small_task
        sweep = precision_recall_sweep(
            parakeet, x_eval, t_eval, alphas=(0.1, 0.5, 0.9)
        )
        precisions = [p.precision for p in sweep]
        recalls = [p.recall for p in sweep]
        assert precisions[0] <= precisions[-1] + 0.05
        assert recalls[0] >= recalls[-1] - 0.05

    def test_sweep_labels(self, parakeet, small_task):
        _, _, x_eval, t_eval = small_task
        sweep = precision_recall_sweep(parakeet, x_eval, t_eval, alphas=(0.3,))
        assert sweep[0].alpha == 0.3
