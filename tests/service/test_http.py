"""The stdlib metrics endpoint: /metrics, /healthz, /stats over real HTTP."""

from __future__ import annotations

import asyncio
import json
import urllib.error
import urllib.request

import pytest

from repro import Uncertain
from repro.dists import Gaussian
from repro.service import Service, serve_metrics


def fetch(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()


class TestMetricsServer:
    def test_endpoints(self):
        value = Uncertain(Gaussian(4.0, 1.0))

        async def scenario():
            async with Service(engine="numpy") as svc:
                await svc.expected_value(value, samples=256, seed=1)
                with serve_metrics(svc) as server:
                    metrics = fetch(server.url + "/metrics")
                    health = fetch(server.url + "/healthz")
                    stats = fetch(server.url + "/stats")
                    with pytest.raises(urllib.error.HTTPError) as missing:
                        fetch(server.url + "/nope")
                    return metrics, health, stats, missing.value.code

        metrics, health, stats, missing_code = asyncio.run(scenario())

        status, ctype, body = metrics
        assert status == 200
        assert ctype.startswith("text/plain") and "0.0.4" in ctype
        assert "repro_service_requests_total" in body
        assert "repro_engine_latency_seconds_bucket" in body

        status, _, body = health
        assert (status, body.strip()) == (200, "ok")

        status, ctype, body = stats
        assert status == 200 and ctype.startswith("application/json")
        snapshot = json.loads(body)
        assert snapshot["requests_total"] == 1

        assert missing_code == 404

    def test_healthz_reports_closed_service(self):
        async def scenario():
            svc = Service(engine="numpy")
            await svc.start()
            await svc.stop()
            with serve_metrics(svc) as server:
                with pytest.raises(urllib.error.HTTPError) as err:
                    fetch(server.url + "/healthz")
                return err.value.code

        assert asyncio.run(scenario()) == 503

    def test_port_zero_binds_free_port(self):
        async def scenario():
            async with Service(engine="numpy") as svc:
                with serve_metrics(svc, port=0) as server:
                    return server.port

        assert asyncio.run(scenario()) > 0
