"""Resilience layer: fault injection, health policies, graceful degradation.

The evaluation pipeline treats misbehaving evidence as a first-class,
policy-controlled outcome rather than an opaque crash:

- :mod:`repro.resilience.policies` — the policy vocabulary
  (``on_nonfinite``, ``on_inconclusive``), the exception taxonomy
  (:class:`NonFiniteError`, :class:`SourceFailure`,
  :class:`InconclusiveError`) and the structured :class:`Inconclusive`
  outcome attached to truncated hypothesis tests.
- :mod:`repro.resilience.health` — per-batch non-finite detection with
  per-slot attribution, enforced inside ``ExecutionEngine.sample``.
- :mod:`repro.resilience.source` — :class:`ResilientSource`: seeded
  bounded retries with backoff + jitter and a sliding-window
  :class:`CircuitBreaker` that degrades to a declared fallback
  distribution.
- :mod:`repro.resilience.chaos` — the deterministic chaos harness:
  :class:`ChaosDistribution` / :class:`ChaosEngine` inject NaN bursts,
  exceptions, latency stalls and worker kills, reproducibly from a seed.

See ``docs/resilience.md`` for the policy catalogue, the breaker state
machine, and the metrics/trace event schema.

Import note: ``repro.core.sprt`` and ``repro.core.engines`` import the
``policies`` and ``health`` submodules (which depend on nothing in
``repro.core``), while ``source`` and ``chaos`` import ``repro.dists`` /
``repro.core.engines`` — so this ``__init__`` loads the policy half
eagerly and the wrapper half lazily via module ``__getattr__``, exactly
like :mod:`repro.runtime`.
"""

from __future__ import annotations

from repro.resilience.policies import (
    INCONCLUSIVE_POLICIES,
    NONFINITE_POLICIES,
    Inconclusive,
    InconclusiveError,
    InconclusiveWarning,
    NonFiniteError,
    NonFiniteWarning,
    ResilienceError,
    SourceFailure,
)

__all__ = [
    # policies
    "NONFINITE_POLICIES",
    "INCONCLUSIVE_POLICIES",
    "Inconclusive",
    "ResilienceError",
    "NonFiniteError",
    "NonFiniteWarning",
    "InconclusiveError",
    "InconclusiveWarning",
    "SourceFailure",
    # health (lazy)
    "NonFiniteAttribution",
    "attribute_nonfinite",
    "nonfinite_mask",
    # sources (lazy)
    "ResilientSource",
    "CircuitBreaker",
    # chaos (lazy)
    "ChaosDistribution",
    "ChaosEngine",
    "InjectedFault",
    "arm_kill_sentinel",
    "latency_storm",
    "flood_requests",
]

_LAZY = {
    "NonFiniteAttribution": "repro.resilience.health",
    "attribute_nonfinite": "repro.resilience.health",
    "nonfinite_mask": "repro.resilience.health",
    "ResilientSource": "repro.resilience.source",
    "CircuitBreaker": "repro.resilience.source",
    "ChaosDistribution": "repro.resilience.chaos",
    "ChaosEngine": "repro.resilience.chaos",
    "InjectedFault": "repro.resilience.chaos",
    "arm_kill_sentinel": "repro.resilience.chaos",
    "latency_storm": "repro.resilience.chaos",
    "flood_requests": "repro.resilience.chaos",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
