"""Tests for the GPS-Walking application."""

import numpy as np
import pytest

from repro.gps.geo import GeoCoordinate
from repro.gps.sensor import GpsFix, GpsSensor
from repro.gps.trace import WalkConfig, generate_walk
from repro.gps.units import MPS_TO_MPH
from repro.gps.walking import (
    GpsWalkingDecision,
    WalkingResult,
    naive_speed_mph,
    naive_speeds_mph,
    run_naive_walking,
    run_uncertain_walking,
    uncertain_speed_mph,
)
from repro.rng import default_rng

ORIGIN = GeoCoordinate(47.64, -122.13)


def fixes_apart(distance_m: float, epsilon: float = 4.0) -> tuple[GpsFix, GpsFix]:
    return (
        GpsFix(ORIGIN, epsilon, 0.0),
        GpsFix(ORIGIN.offset_m(distance_m, 0.0), epsilon, 1.0),
    )


class TestNaiveSpeed:
    def test_exact_distance_over_time(self):
        f1, f2 = fixes_apart(10.0)
        assert naive_speed_mph(f1, f2) == pytest.approx(10.0 * MPS_TO_MPH, rel=1e-4)

    def test_sequence(self):
        f1, f2 = fixes_apart(10.0)
        f3 = GpsFix(ORIGIN.offset_m(10.0, 10.0), 4.0, 2.0)
        speeds = naive_speeds_mph([f1, f2, f3])
        assert len(speeds) == 2

    def test_time_ordering_enforced(self):
        f1, f2 = fixes_apart(10.0)
        with pytest.raises(ValueError):
            naive_speed_mph(f2, f1)

    def test_too_few_fixes(self):
        f1, _ = fixes_apart(10.0)
        with pytest.raises(ValueError):
            naive_speeds_mph([f1])


class TestUncertainSpeed:
    def test_distribution_centres_above_fix_distance(self, fixed_rng):
        # The posterior speed is Rice distributed; its mean exceeds the
        # naive point estimate (this inflation is analysed in
        # EXPERIMENTS.md).
        f1, f2 = fixes_apart(10.0)
        speed = uncertain_speed_mph(f1, f2)
        naive = naive_speed_mph(f1, f2)
        assert speed.expected_value(10_000, fixed_rng) >= naive * 0.95

    def test_large_distance_dominates_noise(self, fixed_rng):
        f1, f2 = fixes_apart(1_000.0, epsilon=2.0)
        speed = uncertain_speed_mph(f1, f2)
        expected = 1_000.0 * MPS_TO_MPH
        assert speed.expected_value(2_000, fixed_rng) == pytest.approx(
            expected, rel=0.01
        )

    def test_evidence_responds_to_distance(self, fixed_rng):
        slow = uncertain_speed_mph(*fixes_apart(0.5))
        fast = uncertain_speed_mph(*fixes_apart(10.0))
        threshold = 4.0
        assert (fast > threshold).evidence(4_000, fixed_rng) > (
            slow > threshold
        ).evidence(4_000, fixed_rng)

    def test_time_ordering_enforced(self):
        f1, f2 = fixes_apart(10.0)
        with pytest.raises(ValueError):
            uncertain_speed_mph(f2, f1)


class TestRunWalking:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_walk(WalkConfig(duration_s=60.0), rng=default_rng(10))

    def test_naive_run_shapes(self, trace):
        result = run_naive_walking(trace, GpsSensor(4.0, rng=default_rng(11)))
        assert len(result.speeds_mph) == len(trace) - 1
        assert len(result.decisions) == len(trace) - 1
        assert all(isinstance(d, GpsWalkingDecision) for d in result.decisions)

    def test_naive_never_silent(self, trace):
        result = run_naive_walking(trace, GpsSensor(4.0, rng=default_rng(12)))
        assert GpsWalkingDecision.SILENT not in result.decisions

    def test_uncertain_run_shapes(self, trace):
        result = run_uncertain_walking(
            trace, GpsSensor(4.0, rng=default_rng(13)), rng=default_rng(14)
        )
        assert len(result.speeds_mph) == len(trace) - 1
        assert len(result.decisions) == len(trace) - 1

    def test_prior_tightens_estimates(self, trace):
        from repro.gps.priors import walking_speed_prior

        plain = run_uncertain_walking(
            trace, GpsSensor(4.0, rng=default_rng(15)), rng=default_rng(16)
        )
        improved = run_uncertain_walking(
            trace,
            GpsSensor(4.0, rng=default_rng(15)),
            prior=walking_speed_prior(),
            rng=default_rng(17),
        )
        assert improved.speeds_mph.max() < plain.speeds_mph.max()
        assert improved.speeds_mph.max() <= 10.0  # prior support

    def test_seconds_above_and_max(self):
        result = WalkingResult(
            speeds_mph=np.array([3.0, 8.0, 25.0]),
            decisions=[GpsWalkingDecision.GOOD_JOB] * 3,
            true_speeds_mph=np.array([3.0, 3.0, 3.0]),
            running_reports=1,
        )
        assert result.seconds_above[7.0] == 2
        assert result.seconds_above[20.0] == 1
        assert result.max_speed_mph == 25.0

    def test_unfair_speedups_counts_only_fast_truth(self):
        result = WalkingResult(
            speeds_mph=np.array([3.0, 3.0]),
            decisions=[GpsWalkingDecision.SPEED_UP, GpsWalkingDecision.SPEED_UP],
            true_speeds_mph=np.array([5.0, 2.0]),
            running_reports=0,
        )
        assert result.unfair_speedups() == 1
