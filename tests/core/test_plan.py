"""Tests for plan compilation and the pluggable execution engines.

The contract under test: compiling a Bayesian network into a flat
:class:`EvaluationPlan` and running it on any engine preserves the paper's
dependence semantics exactly — shared subexpressions stay shared, and the
compiled engine consumes the RNG stream in the same order as the reference
interpreter, so samples are bit-identical seed for seed.
"""

import operator

import numpy as np
import pytest

from repro.core.engines import (
    EngineError,
    InterpreterEngine,
    NumpyEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.core.conditionals import evaluation_config
from repro.core.graph import (
    ApplyNode,
    BinaryOpNode,
    LeafNode,
    PointMassNode,
    UnaryOpNode,
    node_count,
)
from repro.core.joint import ComponentNode
from repro.core.plan import (
    PlanTelemetry,
    clear_plan_cache,
    compile_plan,
    invalidate_plan,
    plan_cache_size,
)
from repro.core.sampling import SampleContext
from repro.core.uncertain import Uncertain
from repro.dists import Gaussian, Uniform
from repro.dists.sampling_function import FunctionDistribution
from repro.rng import default_rng

ENGINES = ["numpy", "interpreter"]


def every_node_kind_graph():
    """One graph exercising every node kind the runtime ships.

    LeafNode, PointMassNode, BinaryOpNode, UnaryOpNode, ApplyNode
    (vectorized and per-sample), and ComponentNode, with a shared
    subexpression thrown in.
    """
    vec_leaf = LeafNode(
        FunctionDistribution(
            lambda r: r.normal(size=2), fn_n=lambda n, r: r.normal(size=(n, 2))
        ),
        label="vec",
    )
    east = ComponentNode(vec_leaf, 0)
    north = ComponentNode(vec_leaf, 1)
    x = LeafNode(Gaussian(0.0, 1.0))
    u = LeafNode(Uniform(0.5, 2.0))
    shared = BinaryOpNode(operator.add, x, u, "+")
    doubled = BinaryOpNode(operator.add, shared, shared, "+")  # shared subexpr
    negated = UnaryOpNode(operator.neg, doubled, "neg")
    offset = BinaryOpNode(operator.add, negated, PointMassNode(3.5), "+")
    vec_mag = ApplyNode(
        lambda e, n_: np.hypot(e, n_), (east, north), vectorized=True, label="hypot"
    )
    slow = ApplyNode(lambda a, b: float(a) + float(b), (offset, vec_mag))
    return BinaryOpNode(operator.mul, slow, shared, "*")


class TestPlanCompilation:
    def test_plan_is_cached_per_root(self):
        root = every_node_kind_graph()
        assert compile_plan(root) is compile_plan(root)

    def test_invalidate_plan(self):
        root = every_node_kind_graph()
        plan = compile_plan(root)
        assert invalidate_plan(root)
        assert not invalidate_plan(root)  # already gone
        assert compile_plan(root) is not plan

    def test_cache_entry_dies_with_graph(self):
        clear_plan_cache()
        root = every_node_kind_graph()
        compile_plan(root)
        assert plan_cache_size() == 1
        del root
        import gc

        gc.collect()
        assert plan_cache_size() == 0

    def test_slots_are_topologically_ordered(self):
        plan = compile_plan(every_node_kind_graph())
        for step in plan.steps:
            assert step.slot == plan.steps.index(step)
            assert all(p < step.slot for p in step.parent_slots)
        assert plan.root_slot == len(plan.steps) - 1

    def test_shared_subexpressions_share_one_slot(self):
        x = LeafNode(Gaussian(0.0, 1.0))
        doubled = BinaryOpNode(operator.add, x, x, "+")
        plan = compile_plan(doubled)
        assert plan.num_slots == 2  # x once, + once
        (step,) = [s for s in plan.steps if s.parent_slots]
        assert step.parent_slots == (plan.slot_of[x],) * 2

    def test_plan_covers_every_node_once(self):
        root = every_node_kind_graph()
        plan = compile_plan(root)
        assert plan.num_slots == node_count(root)
        kinds = plan.op_histogram()
        for kind in (
            "LeafNode",
            "PointMassNode",
            "BinaryOpNode",
            "UnaryOpNode",
            "ApplyNode",
            "ComponentNode",
        ):
            assert kinds.get(kind, 0) >= 1

    def test_compile_telemetry(self):
        telemetry = PlanTelemetry()
        root = every_node_kind_graph()
        compile_plan(root, telemetry=telemetry)
        compile_plan(root, telemetry=telemetry)
        assert telemetry.plans_compiled == 1
        assert telemetry.plan_cache_hits == 1


class TestEngineEquivalence:
    """The compiled engine must be indistinguishable from the interpreter."""

    def test_identical_streams_across_every_node_kind(self):
        root = every_node_kind_graph()
        plan = compile_plan(root)
        for seed in (0, 7, 20140301):
            a = NumpyEngine().sample(plan, 64, default_rng(seed))
            b = InterpreterEngine().sample(plan, 64, default_rng(seed))
            assert np.array_equal(a, b), f"engines diverged at seed {seed}"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_x_minus_x_is_exactly_zero(self, engine, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(engine=engine):
            samples = (x - x).samples(2_000, rng)
        assert np.all(samples == 0.0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_var_of_x_plus_x_is_4x(self, engine, fixed_rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(engine=engine):
            samples = (x + x).samples(50_000, fixed_rng)
        assert np.var(samples) == pytest.approx(4.0, rel=0.05)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_independent_leaves_stay_independent(self, engine, fixed_rng):
        a = Uncertain(Gaussian(0.0, 1.0))
        b = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(engine=engine):
            samples = (a + b).samples(50_000, fixed_rng)
        assert np.var(samples) == pytest.approx(2.0, rel=0.05)

    def test_sequential_batches_match_seed_for_seed(self):
        # The SPRT-shaped workload: many small sequential batches must
        # produce the same concatenated stream on both engines.
        root = every_node_kind_graph()
        plan = compile_plan(root)
        rng_a, rng_b = default_rng(99), default_rng(99)
        numpy_eng, interp_eng = get_engine("numpy"), get_engine("interpreter")
        stream_a = np.concatenate(
            [numpy_eng.sample(plan, 10, rng_a) for _ in range(30)]
        )
        stream_b = np.concatenate(
            [interp_eng.sample(plan, 10, rng_b) for _ in range(30)]
        )
        assert np.array_equal(stream_a, stream_b)

    def test_shared_context_consistent_on_both_engines(self):
        x = LeafNode(Gaussian(0.0, 1.0))
        doubled = BinaryOpNode(operator.add, x, x, "+")
        for engine in ENGINES:
            ctx = SampleContext(50, default_rng(3), engine=engine)
            xs = ctx.value_of(x)
            assert np.allclose(ctx.value_of(doubled), 2 * xs)


class TestEngineSelection:
    def test_registry_lists_builtin_engines(self):
        assert {"numpy", "interpreter"} <= set(available_engines())

    def test_unknown_engine_raises(self):
        with pytest.raises(EngineError, match="unknown execution engine"):
            get_engine("gpu-cluster")

    def test_config_engine_selection(self, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(engine="interpreter"):
            assert (x > -10).pr(0.5, rng=rng)

    def test_engine_instance_accepted(self, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        with evaluation_config(engine=InterpreterEngine()):
            x.samples(10, rng)

    def test_custom_engine_registration(self):
        class TracingEngine(NumpyEngine):
            name = "tracing-test"

        register_engine(TracingEngine())
        assert get_engine("tracing-test").name == "tracing-test"


class TestTelemetry:
    def test_engine_records_batches_and_nodes(self, rng):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x + x
        with evaluation_config() as cfg:
            telemetry = cfg.enable_plan_telemetry()
            y.samples(10, rng)
            y.samples(10, rng)
        assert telemetry.batches_executed == 2
        assert telemetry.nodes_evaluated == 4  # 2 nodes x 2 batches
        assert telemetry.samples_generated == 20
        assert "LeafNode" in telemetry.node_seconds
        assert "BinaryOpNode" in telemetry.node_seconds
        snapshot = telemetry.as_dict()
        assert snapshot["batches_executed"] == 2
        telemetry.reset()
        assert telemetry.batches_executed == 0

    def test_telemetry_off_by_default(self, rng):
        with evaluation_config() as cfg:
            assert cfg.plan_telemetry is None


class TestUncertainPlanCarrying:
    def test_plan_property_is_cached(self):
        x = Uncertain(Gaussian(0.0, 1.0))
        y = x * 2 + 1
        assert y.plan is y.plan
        assert y.plan.root is y.node

    def test_conditional_reuses_the_carried_plan(self, rng):
        x = Uncertain(Gaussian(5.0, 1.0))
        cond = x > 0
        plan = cond.plan
        assert cond.pr(0.5, rng=rng)  # draws many batches through `plan`
        assert cond.plan is plan


class TestMemoSemantics:
    def test_memo_preseeds_and_receives_values(self):
        x = LeafNode(Gaussian(0.0, 1.0))
        y = BinaryOpNode(operator.add, x, PointMassNode(1.0), "+")
        plan = compile_plan(y)
        fixed = np.zeros(5)
        memo = {x: fixed}
        out = get_engine("numpy").sample(plan, 5, default_rng(0), memo=memo)
        assert np.array_equal(out, np.ones(5))
        assert y in memo  # newly evaluated nodes are written back

    def test_hidden_subtree_consumes_no_rng(self):
        # If an inner node is already memoised, the leaves beneath it must
        # not be sampled (they would consume RNG the lazy interpreter never
        # consumed).
        x = LeafNode(Gaussian(0.0, 1.0))
        inner = UnaryOpNode(operator.neg, x, "neg")
        probe = LeafNode(Gaussian(0.0, 1.0))
        root = BinaryOpNode(operator.add, inner, probe, "+")
        plan = compile_plan(root)
        rng = default_rng(11)
        reference = default_rng(11)
        memo = {inner: np.zeros(4)}
        out = get_engine("numpy").sample(plan, 4, rng, memo=memo)
        # Only `probe` should have drawn from the stream.
        expected = probe.dist.sample_n(4, reference)
        assert np.array_equal(out, expected)
        assert x not in memo

    def test_engine_draw_matches_context_draw(self):
        root = every_node_kind_graph()
        a = get_engine("numpy").sample(compile_plan(root), 32, default_rng(5))
        b = SampleContext(32, default_rng(5)).value_of(root)
        assert np.array_equal(a, b)
